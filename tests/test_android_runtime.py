"""Tests for the Android runtime: device, processes, sockets, hooks, monkey."""

import pytest

from repro.android.device import Device, DeviceError, NetworkMode
from repro.android.hooks import SOCKET_CONNECTED, HookError, HookManager
from repro.android.javasocket import JavaSocket, SocketOptionError
from repro.android.monkey import MonkeyExerciser
from repro.android.runtime import AndroidRuntimeError
from repro.apk.manifest import AndroidManifest
from repro.apk.package import build_apk
from repro.dex.builder import DexBuilder
from repro.android.app_model import AppBehavior, Functionality, NetworkRequest
from repro.netstack.sockets import Capability, PermissionDenied


@pytest.fixture()
def plain_device(enterprise_network):
    return Device(name="plain", network=enterprise_network, xposed_installed=True)


@pytest.fixture()
def running_app(plain_device, simple_app):
    apk, behavior = simple_app
    plain_device.install(apk, behavior)
    return plain_device.launch("com.test.app")


class TestDeviceLifecycle:
    def test_install_launch_uninstall(self, plain_device, simple_app):
        apk, behavior = simple_app
        installed = plain_device.install(apk, behavior)
        assert installed.package_name == "com.test.app"
        assert len(plain_device.installed_apps()) == 1
        process = plain_device.launch("com.test.app")
        assert process.pid >= 1000
        plain_device.uninstall("com.test.app")
        with pytest.raises(DeviceError):
            plain_device.launch("com.test.app")

    def test_duplicate_install_rejected(self, plain_device, simple_app):
        apk, behavior = simple_app
        plain_device.install(apk, behavior)
        with pytest.raises(DeviceError):
            plain_device.install(apk, behavior)

    def test_uninstall_missing_app(self, plain_device):
        with pytest.raises(DeviceError):
            plain_device.uninstall("com.not.installed")

    def test_mismatched_apk_and_behavior_rejected(self, plain_device, simple_app):
        apk, _ = simple_app
        other = AppBehavior(
            package_name="com.other.app",
            functionalities=(
                Functionality(
                    name="x",
                    call_chain=(apk.merged_dex().sorted_signatures()[0],),
                    requests=(NetworkRequest("x.com"),),
                ),
            ),
        )
        with pytest.raises(ValueError):
            plain_device.install(apk, other)

    def test_launch_requires_internet_permission(self, enterprise_network):
        builder = DexBuilder()
        builder.add_class("com.offline.Main").add_method("run")
        apk = build_apk(
            AndroidManifest(package_name="com.offline", permissions=()), builder.build()
        )
        behavior = AppBehavior(
            package_name="com.offline",
            functionalities=(
                Functionality(
                    name="run",
                    call_chain=(apk.merged_dex().sorted_signatures()[0],),
                    requests=(NetworkRequest("x.com"),),
                ),
            ),
        )
        device = Device(network=enterprise_network)
        device.install(apk, behavior)
        with pytest.raises(AndroidRuntimeError):
            device.launch("com.offline")

    def test_device_ip_allocated_from_network(self, enterprise_network):
        a = Device(network=enterprise_network)
        b = Device(network=enterprise_network)
        assert a.ip != b.ip
        assert a.ip.startswith(enterprise_network.config.internal_subnet)

    def test_slirp_mode_is_slower_than_tap(self, enterprise_network, simple_app):
        apk, behavior = simple_app
        latencies = {}
        for mode in (NetworkMode.TAP, NetworkMode.SLIRP):
            device = Device(network=enterprise_network, network_mode=mode, xposed_installed=False)
            device.install(apk, behavior)
            process = device.launch("com.test.app")
            latencies[mode] = process.invoke("login").latency_ms
        assert latencies[NetworkMode.SLIRP] > latencies[NetworkMode.TAP]


class TestAppProcessExecution:
    def test_invoke_generates_traffic_and_outcome(self, running_app, enterprise_network):
        outcome = running_app.invoke("login")
        assert outcome.completed
        assert outcome.packets_sent == outcome.packets_delivered == 1
        assert outcome.bytes_downloaded == 800
        server = enterprise_network.server_for("api.test.com")
        assert server.packets_received == 1

    def test_large_upload_is_fragmented(self, running_app):
        outcome = running_app.invoke("upload")
        assert outcome.packets_sent > 1
        assert outcome.completed

    def test_invoke_by_object(self, running_app):
        functionality = running_app.behavior.get("login")
        assert running_app.invoke(functionality).completed

    def test_call_stack_during_execution_contains_chain(self, running_app):
        # The stack is only populated while a functionality executes; use the
        # provenance recorded on the socket to check it after the fact.
        running_app.invoke("analytics")
        sock = running_app.device.kernel.all_sockets()[-1]
        chain = sock.provenance["call_chain"]
        assert any("FlurryAgent" in entry for entry in chain)
        assert sock.provenance["library"] == "com.flurry"
        assert sock.provenance["functionality"] == "analytics"

    def test_stack_is_empty_outside_invocation(self, running_app):
        running_app.invoke("login")
        assert running_app.current_stack().depth == 0

    def test_get_stack_trace_charges_cost(self, running_app):
        clock = running_app.device.clock
        before = clock.now()
        running_app.get_stack_trace(charge_cost=True)
        charged = clock.now() - before
        assert charged == pytest.approx(running_app.device.cost_model.getstacktrace_ms)
        before = clock.now()
        running_app.get_stack_trace(charge_cost=False)
        assert clock.now() == before

    def test_outcomes_by_functionality_merges_repeats(self, running_app):
        running_app.invoke("login")
        running_app.invoke("login")
        merged = running_app.outcomes_by_functionality()
        assert merged["login"].requests_attempted == 2


class TestJavaSocket:
    def test_lazy_socket_creation(self, running_app):
        socket = JavaSocket(running_app)
        assert socket.fd is None
        fd = socket.connect("api.test.com", 443)
        assert fd is not None and socket.is_connected
        socket.close()
        assert socket.is_closed

    def test_double_connect_rejected(self, running_app):
        socket = JavaSocket(running_app)
        socket.connect("api.test.com", 443)
        with pytest.raises(OSError):
            socket.connect("api.test.com", 443)

    def test_connect_after_close_rejected(self, running_app):
        socket = JavaSocket(running_app)
        socket.connect("api.test.com", 443)
        socket.close()
        with pytest.raises(OSError):
            socket.connect("api.test.com", 443)

    def test_managed_set_option_excludes_ip_options(self, running_app):
        socket = JavaSocket(running_app)
        socket.set_option("SO_KEEPALIVE", True)
        with pytest.raises(SocketOptionError):
            socket.set_option("IP_OPTIONS", b"\x01")

    def test_jni_setsockopt_requires_privilege_on_stock_kernel(self, running_app):
        # The fixture device runs a stock kernel (no BorderPatrol patch).
        socket = JavaSocket(running_app)
        socket.connect("api.test.com", 443)
        from repro.netstack.ip import IPOptions, BORDERPATROL_OPTION_TYPE

        options = IPOptions.single(BORDERPATROL_OPTION_TYPE, b"\x01")
        with pytest.raises(PermissionDenied):
            socket.set_ip_options_via_jni(options)
        socket.set_ip_options_via_jni(options, capabilities=Capability.NET_RAW)

    def test_jni_setsockopt_needs_live_socket(self, running_app):
        socket = JavaSocket(running_app)
        with pytest.raises(OSError):
            socket.set_ip_options_via_jni(b"\x01")


class TestHookManager:
    def test_post_hook_fires_after_connect(self, running_app):
        seen = []
        running_app.device.hook_manager.register_post_hook(
            SOCKET_CONNECTED, lambda ctx: seen.append(ctx), name="test-hook"
        )
        running_app.invoke("login")
        assert len(seen) == 1
        context = seen[0]
        assert context.host == "api.test.com"
        assert context.process is running_app
        # Post-hook guarantee: the OS socket already exists.
        assert context.fd is not None

    def test_native_requests_bypass_hooks(self, plain_device, simple_app):
        apk, behavior = simple_app
        native_behavior = AppBehavior(
            package_name="com.test.app",
            functionalities=(
                Functionality(
                    name="native_exfil",
                    call_chain=behavior.get("upload").call_chain,
                    requests=(NetworkRequest("api.test.com", via_native=True),),
                ),
            ),
        )
        plain_device.install(apk, native_behavior)
        process = plain_device.launch("com.test.app")
        seen = []
        plain_device.hook_manager.register_post_hook(
            SOCKET_CONNECTED, lambda ctx: seen.append(ctx), name="native-test"
        )
        process.invoke("native_exfil")
        assert seen == []

    def test_disabled_framework_rejects_registration_and_skips_dispatch(self):
        manager = HookManager(enabled=False)
        with pytest.raises(HookError):
            manager.register_post_hook(SOCKET_CONNECTED, lambda ctx: None)
        assert manager.dispatch(SOCKET_CONNECTED, None) == 0  # type: ignore[arg-type]

    def test_duplicate_hook_name_rejected(self):
        manager = HookManager()
        manager.register_post_hook(SOCKET_CONNECTED, lambda ctx: None, name="x")
        with pytest.raises(HookError):
            manager.register_post_hook(SOCKET_CONNECTED, lambda ctx: None, name="x")

    def test_unregister(self):
        manager = HookManager()
        manager.register_post_hook(SOCKET_CONNECTED, lambda ctx: None, name="x")
        assert manager.unregister(SOCKET_CONNECTED, "x")
        assert not manager.unregister(SOCKET_CONNECTED, "x")

    def test_crashing_hook_does_not_break_the_app(self, running_app):
        def explode(ctx):
            raise RuntimeError("boom")

        running_app.device.hook_manager.register_post_hook(SOCKET_CONNECTED, explode, name="bad")
        outcome = running_app.invoke("login")
        assert outcome.completed
        assert running_app.device.hook_manager.error_count() == 1


class TestMonkey:
    def test_monkey_is_deterministic(self, plain_device, simple_app):
        apk, behavior = simple_app
        plain_device.install(apk, behavior)
        first = MonkeyExerciser(seed=5).run(plain_device.launch("com.test.app"), n_events=300)
        second = MonkeyExerciser(seed=5).run(plain_device.launch("com.test.app"), n_events=300)
        assert first.functionality_triggers == second.functionality_triggers

    def test_monkey_covers_all_functionality_with_enough_events(self, running_app):
        report = MonkeyExerciser(seed=1).run(running_app, n_events=500)
        assert set(report.triggered_functionalities()) == {"login", "upload", "analytics"}
        assert report.events_sent == 500
        assert report.idle_events > 0
        assert report.total_packets_sent() > 0

    def test_trigger_cap_limits_invocations(self, running_app):
        report = MonkeyExerciser(seed=1, max_triggers_per_functionality=1).run(
            running_app, n_events=500
        )
        for outcome in report.outcomes.values():
            assert outcome.requests_attempted == 1

    def test_negative_event_count_rejected(self, running_app):
        with pytest.raises(ValueError):
            MonkeyExerciser().run(running_app, n_events=-1)
