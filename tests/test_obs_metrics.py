"""Observability substrate: metrics, traces, exports, health rules.

Tier-1 coverage for :mod:`repro.obs` that needs no forked workers —
the registry's merge algebra, the exporters' determinism, the trace
log, the health monitor's edge triggering, and the sequential-enforcer
sampling path (the cross-process half lives in
``tests/test_obs_runtime.py``).
"""

from __future__ import annotations

import json

import pytest

from repro.core.policy import Policy
from repro.core.policy_enforcer import PolicyEnforcer
from repro.experiments.benchmeta import bench_metadata, record_bench_metadata
from repro.experiments.gateway_throughput import (
    DEFAULT_DENY_LIBRARIES,
    build_replay,
    build_signature_database,
)
from repro.obs import (
    LATENCY_BUCKETS,
    NULL_REGISTRY,
    BatchTrace,
    EnforcerObservability,
    HealthThresholds,
    MetricsRegistry,
    PoolHealthMonitor,
    PoolHealthSnapshot,
    TraceLog,
    histogram_quantile,
    merge_snapshots,
    record_enforcer_stats,
    record_pool_health,
    to_jsonl,
    to_prometheus,
)
from repro.obs.trace import POOL_STAGES


# -- metric primitives -----------------------------------------------------------------


class TestPrimitives:
    def test_counter_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", "test", ("kind",))
        counter.inc(kind="a")
        counter.labels(kind="a").inc(2)
        counter.inc(kind="b")
        assert counter.value(kind="a") == 3
        assert counter.value(kind="b") == 1
        assert counter.value(kind="missing") == 0

    def test_gauge_holds_last_set(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(5)
        gauge.set(2)
        assert gauge.value() == 2

    def test_label_schema_is_enforced(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", "test", ("kind",))
        with pytest.raises(ValueError):
            counter.inc(wrong="a")
        with pytest.raises(ValueError):
            registry.gauge("events_total")  # name taken by a counter

    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c", "help", ("k",))
        assert registry.counter("c", "help", ("k",)) is first
        assert "c" in registry
        assert registry.get("missing") is None

    def test_histogram_buckets_are_log_scaled_with_overflow(self):
        assert LATENCY_BUCKETS[0] == 1e-6
        ratios = {
            round(b / a) for a, b in zip(LATENCY_BUCKETS, LATENCY_BUCKETS[1:])
        }
        assert ratios == {2}
        registry = MetricsRegistry()
        hist = registry.histogram("latency_seconds")
        hist.observe(0.5e-6)  # below the first bound
        hist.observe(1e-3)
        hist.observe(1e9)  # past the last bound: the +Inf slot
        state = hist.state()
        assert len(state.counts) == len(LATENCY_BUCKETS) + 1
        assert state.counts[-1] == 1
        assert state.count == 3

    def test_quantile_follows_upper_bound_convention(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_seconds")
        for _ in range(99):
            hist.observe(1e-3)
        hist.observe(0.1)
        p50 = hist.quantile(0.5)
        p999 = hist.quantile(0.999)
        assert 1e-3 <= p50 < 3e-3  # the bucket bound containing 1 ms
        assert p999 >= 0.1
        assert histogram_quantile(LATENCY_BUCKETS, [0] * 26, 0, 0.5) == 0.0


# -- snapshot / drain / merge ----------------------------------------------------------


class TestMergeAlgebra:
    def test_drain_returns_delta_exactly_once(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(4)
        first = registry.drain()
        assert first["c"]["series"][0]["value"] == 4
        assert registry.drain()["c"]["series"] == []
        # Registration survived the drain.
        registry.counter("c").inc(1)
        assert registry.get("c").value() == 1

    def test_merge_semantics_counter_add_gauge_max_histogram_add(self):
        a = MetricsRegistry()
        a.counter("c").inc(2)
        a.gauge("g").set(5)
        a.histogram("h").observe(1e-3)
        b = MetricsRegistry()
        b.counter("c").inc(3)
        b.gauge("g").set(3)
        b.histogram("h").observe(1e-3)
        a.merge_snapshot(b.snapshot())
        assert a.get("c").value() == 5
        assert a.get("g").value() == 5  # high-water mark, not last-write
        assert a.get("h").count() == 2

    def test_merge_auto_registers_unknown_families(self):
        registry = MetricsRegistry()
        other = MetricsRegistry()
        other.counter("new_total", "fresh", ("k",)).inc(7, k="x")
        registry.merge_snapshot(other.snapshot())
        assert registry.get("new_total").value(k="x") == 7

    def test_merge_rejects_bucket_layout_mismatch(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(0.1, 1.0))
        b = MetricsRegistry()
        b.histogram("h", buckets=(0.1, 1.0, 10.0)).observe(0.5)
        snapshot = b.snapshot()
        # Same name, different layout: the registration itself refuses.
        with pytest.raises(ValueError):
            a.merge_snapshot(snapshot)

    def test_null_registry_is_inert(self):
        assert NULL_REGISTRY.enabled is False
        child = NULL_REGISTRY.counter("anything", "x", ("k",))
        child.inc(5, k="v")
        child.labels(k="v").observe(1.0)
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.drain() == {}
        assert "anything" not in NULL_REGISTRY


# -- exporters -------------------------------------------------------------------------


class TestExports:
    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "All requests", ("code",)).inc(3, code="200")
        registry.histogram("latency_seconds", buckets=(0.1, 1.0)).observe(0.05)
        text = to_prometheus(registry)
        assert '# TYPE requests_total counter' in text
        assert 'requests_total{code="200"} 3' in text
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="+Inf"} 1' in text
        assert "latency_seconds_count 1" in text

    def test_jsonl_round_trips_through_merge(self):
        registry = MetricsRegistry()
        registry.counter("c", "x", ("k",)).inc(2, k="a")
        lines = to_jsonl(registry).strip().splitlines()
        parsed = {
            row["name"]: {k: v for k, v in row.items() if k != "name"}
            for row in map(json.loads, lines)
        }
        merged = merge_snapshots([parsed, parsed])
        assert merged["c"]["series"][0]["value"] == 4

    def test_record_enforcer_stats_projects_counters_to_gauges(self):
        database = build_signature_database(corpus_apps=2, seed=7)
        policy = Policy.deny_libraries(DEFAULT_DENY_LIBRARIES, name="obs-test")
        enforcer = PolicyEnforcer(database=database, policy=policy, keep_records=False)
        for packet in build_replay(database.entries(), packets=40, flows=8, seed=7):
            enforcer.process(packet)
        registry = MetricsRegistry()
        record_enforcer_stats(
            registry, enforcer.stats, source="gw0", flow_cache_len=3
        )
        assert registry.get("enforcer_packets_seen").value(source="gw0") == 40
        assert registry.get("flow_cache_entries").value(source="gw0") == 3

    def test_record_pool_health_projects_structure_to_gauges(self):
        health = _snapshot(queue_depths=(2, 0), incarnations=(1, 3))
        registry = MetricsRegistry()
        record_pool_health(registry, health)
        assert registry.get("pool_queue_depth").value(pool="p", worker="0") == 2
        assert registry.get("pool_worker_incarnation").value(pool="p", worker="1") == 3


# -- traces ----------------------------------------------------------------------------


class TestTraces:
    def test_batch_trace_breaks_down_stages(self):
        trace = BatchTrace("p:1.0", worker=2)
        for stage in POOL_STAGES:
            trace.add(stage, start_s=0.0, duration_s=0.01)
        assert set(trace.stage_seconds()) == set(POOL_STAGES)
        assert trace.total_s == pytest.approx(0.05)
        assert trace.to_dict()["worker"] == 2

    def test_trace_log_is_bounded_but_counts_everything(self):
        log = TraceLog(capacity=3)
        for index in range(5):
            log.append(BatchTrace(f"p:{index}", worker=0))
        assert len(log) == 3
        assert log.completed == 5
        assert log.last().batch_id == "p:4"


# -- health monitor --------------------------------------------------------------------


def _snapshot(**overrides) -> PoolHealthSnapshot:
    base = dict(
        name="p",
        workers=2,
        queue_depths=(0, 0),
        outstanding_bursts=0,
        incarnations=(1, 1),
        alive=(True, True),
        crashes=0,
        respawns=0,
        batches_replayed=0,
        ring_batches=10,
        pickled_batches=0,
        delta_pushes=0,
        snapshot_syncs=0,
    )
    base.update(overrides)
    return PoolHealthSnapshot(**base)


class TestHealthMonitor:
    def test_crash_alerts_are_edge_triggered_on_new_crashes(self):
        monitor = PoolHealthMonitor()
        assert monitor.check(_snapshot(crashes=1, respawns=1)) != []
        # Same cumulative count: no re-alert.
        assert monitor.check(_snapshot(crashes=1, respawns=1)) == []
        # A further crash fires again.
        assert monitor.check(_snapshot(crashes=2, respawns=2)) != []

    def test_queue_depth_alert_clears_and_rearms(self):
        monitor = PoolHealthMonitor(HealthThresholds(max_queue_depth=4))
        first = monitor.check(_snapshot(queue_depths=(5, 0)))
        assert [a.kind for a in first] == ["pool-queue-depth"]
        assert first[0].device == "p-w0"
        assert monitor.check(_snapshot(queue_depths=(6, 0))) == []  # still active
        monitor.check(_snapshot(queue_depths=(0, 0)))  # clears
        assert monitor.check(_snapshot(queue_depths=(9, 0))) != []  # re-arms

    def test_pickle_fallback_needs_minimum_volume(self):
        monitor = PoolHealthMonitor(
            HealthThresholds(max_pickle_fallback_ratio=0.5, min_batches_for_fallback_rule=8)
        )
        assert monitor.check(_snapshot(ring_batches=1, pickled_batches=3)) == []
        raised = monitor.check(_snapshot(ring_batches=1, pickled_batches=9))
        assert [a.kind for a in raised] == ["pool-ring-fallback"]

    def test_alerts_publish_to_an_attached_bus(self):
        from repro.ops.bus import AlertBus, MemorySink

        bus = AlertBus(clock=None)
        feed = bus.add_sink(MemorySink())
        monitor = PoolHealthMonitor(bus=bus, source="test")
        monitor.check(_snapshot(crashes=1), degraded=True)
        bus.pump()
        kinds = {alert.kind for alert in feed.alerts}
        assert kinds == {"pool-worker-crash", "pool-degraded"}
        assert all(alert.source == "test" for alert in feed.alerts)

    def test_respawn_counts_derive_from_incarnations(self):
        health = _snapshot(incarnations=(1, 4))
        assert health.respawn_counts == (0, 3)
        assert health.to_dict()["incarnations"] == [1, 4]


# -- enforcer sampling (sequential, no fork) -------------------------------------------


class TestEnforcerSampling:
    def test_sampled_stages_record_without_changing_verdicts(self):
        database = build_signature_database(corpus_apps=3, seed=7)
        replay = build_replay(database.entries(), packets=200, flows=16, seed=7)
        policy = Policy.deny_libraries(DEFAULT_DENY_LIBRARIES, name="obs-test")
        plain = PolicyEnforcer(database=database, policy=policy, keep_records=False)
        observed = PolicyEnforcer(database=database, policy=policy, keep_records=False)
        registry = MetricsRegistry()
        observed.attach_observability(EnforcerObservability(registry, sample_every=8))
        baseline = [plain.process(packet)[0] for packet in replay]
        verdicts = [observed.process(packet)[0] for packet in replay]
        assert verdicts == baseline
        hist = registry.get("enforcer_stage_seconds")
        total = sum(state.count for state in hist._series.values())
        # 200 packets at 1/8 sampling: 25 sampled packets, >=1 mark each.
        assert total >= 25

    def test_null_observability_keeps_the_path_silent(self):
        database = build_signature_database(corpus_apps=2, seed=7)
        replay = build_replay(database.entries(), packets=50, flows=8, seed=7)
        policy = Policy.deny_libraries(DEFAULT_DENY_LIBRARIES, name="obs-test")
        enforcer = PolicyEnforcer(database=database, policy=policy, keep_records=False)
        enforcer.attach_observability(
            EnforcerObservability(NULL_REGISTRY, sample_every=4)
        )
        for packet in replay:
            enforcer.process(packet)
        assert NULL_REGISTRY.snapshot() == {}


# -- bench metadata (satellite) --------------------------------------------------------


class TestBenchMetadata:
    def test_metadata_fields(self):
        meta = bench_metadata(smoke=True)
        assert meta["smoke"] is True
        assert meta["cpus"] >= 1
        assert meta["python"].count(".") == 2
        assert isinstance(meta["platform"], str)

    def test_record_stamps_host_block(self):
        extra: dict = {}
        returned = record_bench_metadata(extra, smoke=False)
        assert extra["host"] == returned
        assert extra["host"]["smoke"] is False
