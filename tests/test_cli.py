"""Tests for the command-line front end."""

import json

import pytest

from repro.cli import build_parser, main


class TestAnalyzeCommand:
    def test_analyze_case_study_apps(self, tmp_path, capsys):
        output = tmp_path / "db.json"
        code = main(["analyze", "--output", str(output), "--case-study-apps"])
        assert code == 0
        payload = json.loads(output.read_text())
        packages = {entry["package"] for entry in payload.values()}
        assert "com.cloudbox.android" in packages
        assert "analyzed 3 apps" in capsys.readouterr().out

    def test_analyze_corpus_apps(self, tmp_path):
        output = tmp_path / "db.json"
        assert main(["analyze", "--output", str(output), "--corpus-apps", "3"]) == 0
        assert len(json.loads(output.read_text())) == 3

    def test_analyze_without_inputs_fails(self, tmp_path):
        assert main(["analyze", "--output", str(tmp_path / "db.json")]) == 2


class TestCheckPolicyCommand:
    def test_valid_policy(self, tmp_path, capsys):
        policy_file = tmp_path / "policy.txt"
        policy_file.write_text('// deny flurry\n{[deny][library]["com/flurry"]}\n')
        assert main(["check-policy", str(policy_file)]) == 0
        out = capsys.readouterr().out
        assert "1 rule(s)" in out and "com/flurry" in out

    def test_invalid_policy(self, tmp_path, capsys):
        policy_file = tmp_path / "bad.txt"
        policy_file.write_text("{[deny][library][unquoted]}")
        assert main(["check-policy", str(policy_file)]) == 1
        assert "rejected" in capsys.readouterr().err

    def test_json_store_format(self, tmp_path, capsys):
        from repro.core.policy import Policy
        from repro.core.policy_store import PolicyStore

        store_file = tmp_path / "store.json"
        PolicyStore.from_policy(
            Policy.deny_libraries(["com/flurry"]), name="corp"
        ).save(store_file)
        assert main(["check-policy", str(store_file), "--format", "json"]) == 0
        out = capsys.readouterr().out
        assert "'corp'" in out and "r1" in out and "com/flurry" in out

    def test_compileability_report_against_database(self, tmp_path, capsys):
        database_file = tmp_path / "db.json"
        assert main(["analyze", "--output", str(database_file), "--corpus-apps", "3"]) == 0
        policy_file = tmp_path / "policy.txt"
        policy_file.write_text(
            '{[deny][library]["com/flurry"]}\n{[allow][hash]["da6880ab1f9919747d39e2bd895b95a5"]}\n'
        )
        assert main(["check-policy", str(policy_file), "--database", str(database_file)]) == 0
        out = capsys.readouterr().out
        assert "compiles for" in out and "methods matched" in out
        assert "hash rule: matches 0/3 enrolled apps" in out


class TestPolicyControlPlaneCommands:
    def test_push_creates_store_and_diff_reports_delta(self, tmp_path, capsys):
        policy_file = tmp_path / "corp.txt"
        policy_file.write_text('{[deny][library]["com/flurry"]}\n')
        store_file = tmp_path / "store.json"
        assert main(["policy", "push", str(policy_file), "--store", str(store_file)]) == 0
        out = capsys.readouterr().out
        assert "version 0 -> 1" in out and store_file.exists()

        updated = tmp_path / "corp2.txt"
        updated.write_text(
            '{[deny][library]["com/flurry"]}\n{[deny][library]["com/mixpanel"]}\n'
        )
        assert main(["policy", "diff", str(store_file), str(updated)]) == 0
        out = capsys.readouterr().out
        assert "com/mixpanel" in out and "1 op(s)" in out

        assert main(["policy", "push", str(updated), "--store", str(store_file)]) == 0
        out = capsys.readouterr().out
        assert "version 1 -> 2" in out and "surgical" in out

    def test_diff_prints_rule_id_aware_unified_hunks(self, tmp_path, capsys):
        old = tmp_path / "old.txt"
        old.write_text(
            '{[deny][library]["com/flurry"]}\n{[deny][library]["com/old"]}\n'
        )
        new = tmp_path / "new.txt"
        new.write_text(
            '{[deny][library]["com/flurry"]}\n{[deny][library]["com/mixpanel"]}\n'
        )
        assert main(["policy", "diff", str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert f"--- {old}" in out and f"+++ {new}" in out
        # Kept rule as context, removal/addition as id-tagged hunk lines.
        assert ' r1: {[deny][library]["com/flurry"]}' in out
        assert '-r2: {[deny][library]["com/old"]}' in out
        assert '+r3: {[deny][library]["com/mixpanel"]}' in out

    def test_push_dry_run_leaves_store_untouched(self, tmp_path, capsys):
        policy_file = tmp_path / "corp.txt"
        policy_file.write_text('{[deny][library]["com/flurry"]}\n')
        store_file = tmp_path / "store.json"
        assert main(
            ["policy", "push", str(policy_file), "--store", str(store_file), "--dry-run"]
        ) == 0
        assert "dry run" in capsys.readouterr().out
        assert not store_file.exists()

    def test_push_rejects_bad_policy(self, tmp_path, capsys):
        policy_file = tmp_path / "bad.txt"
        policy_file.write_text("{[deny][library][unquoted]}")
        assert main(
            ["policy", "push", str(policy_file), "--store", str(tmp_path / "s.json")]
        ) == 1
        assert "rejected" in capsys.readouterr().err


class TestPolicyCompactCommand:
    def push(self, tmp_path, store_file, *rules):
        policy_file = tmp_path / "next.txt"
        policy_file.write_text(
            "".join(f'{{[deny][library]["{target}"]}}\n' for target in rules)
        )
        assert main(["policy", "push", str(policy_file), "--store", str(store_file)]) == 0

    def test_compact_leaves_suffix_only_log_on_disk(self, tmp_path, capsys):
        store_file = tmp_path / "store.json"
        self.push(tmp_path, store_file, "com/flurry")
        self.push(tmp_path, store_file, "com/flurry", "com/mixpanel")
        self.push(tmp_path, store_file, "com/mixpanel")
        payload = json.loads(store_file.read_text())
        assert len(payload["delta_log"]["records"]) == 3  # full history so far

        assert main(["policy", "compact", str(store_file)]) == 0
        out = capsys.readouterr().out
        assert "snapshot @v3" in out and "bootstrap in 1 record(s)" in out

        payload = json.loads(store_file.read_text())
        log = payload["delta_log"]
        # Suffix-only on disk: the prefix folded into the base snapshot.
        assert log["records"] == [] and log["base_version"] == 3
        assert log["snapshot"]["version"] == 3
        assert len(log["snapshot"]["rules"]) == 1

        # The compacted store keeps working: a later push appends to the
        # suffix and the file still loads as version 4.
        self.push(tmp_path, store_file, "com/flurry")
        payload = json.loads(store_file.read_text())
        assert payload["version"] == 4
        assert len(payload["delta_log"]["records"]) == 1

    def test_compact_to_intermediate_version(self, tmp_path, capsys):
        store_file = tmp_path / "store.json"
        self.push(tmp_path, store_file, "com/flurry")
        self.push(tmp_path, store_file, "com/mixpanel")
        self.push(tmp_path, store_file, "com/crashlytics")
        assert main(["policy", "compact", str(store_file), "--up-to", "2"]) == 0
        payload = json.loads(store_file.read_text())
        assert payload["delta_log"]["base_version"] == 2
        assert len(payload["delta_log"]["records"]) == 1

    def test_compact_on_fresh_store_is_a_noop(self, tmp_path, capsys):
        store_file = tmp_path / "store.json"
        self.push(tmp_path, store_file, "com/flurry")
        assert main(["policy", "compact", str(store_file)]) == 0
        capsys.readouterr()
        assert main(["policy", "compact", str(store_file)]) == 0
        assert "nothing to compact" in capsys.readouterr().out

    def test_compact_rejects_bad_version(self, tmp_path, capsys):
        store_file = tmp_path / "store.json"
        self.push(tmp_path, store_file, "com/flurry")
        assert main(["policy", "compact", str(store_file), "--up-to", "9"]) == 1
        assert "rejected" in capsys.readouterr().err

    def test_push_persists_retention_policy(self, tmp_path):
        store_file = tmp_path / "store.json"
        policy_file = tmp_path / "corp.txt"
        policy_file.write_text('{[deny][library]["com/flurry"]}\n')
        assert main(
            ["policy", "push", str(policy_file), "--store", str(store_file),
             "--compact-every", "2"]
        ) == 0
        assert json.loads(store_file.read_text())["compact_every"] == 2
        # Two more pushes trip the retention budget: the store compacts
        # itself on commit, no operator involvement.
        for target in ("com/mixpanel", "com/crashlytics"):
            update = tmp_path / "update.txt"
            update.write_text(f'{{[deny][library]["{target}"]}}\n')
            assert main(["policy", "push", str(update), "--store", str(store_file)]) == 0
        payload = json.loads(store_file.read_text())
        assert payload["version"] == 3
        assert payload["delta_log"]["base_version"] >= 2


class TestPolicyChurnCommand:
    def test_policy_churn_reports_delta_vs_flush(self, capsys):
        assert main(
            ["policy-churn", "--packets", "800", "--flows", "32", "--edits", "4",
             "--shards", "2", "--corpus-apps", "3"]
        ) == 0
        out = capsys.readouterr().out
        for configuration in ("delta", "flush", "delta-sharded-2"):
            assert configuration in out
        assert "all paths verdict-identical: True" in out

    def test_policy_churn_surfaces_hottest_apps(self, capsys):
        assert main(
            ["policy-churn", "--packets", "800", "--flows", "32", "--edits", "4",
             "--shards", "2", "--corpus-apps", "3"]
        ) == 0
        out = capsys.readouterr().out
        # The churn rule only touches one app; it must top the ranking
        # with a human-readable package name, not an opaque hash.
        assert "apps churning the cache hardest (delta path): com." in out


class TestCaseStudyCommand:
    def test_facebook_case_study(self, capsys):
        assert main(["case-study", "facebook"]) == 0
        out = capsys.readouterr().out
        assert "login_with_facebook" in out
        assert "selective enforcement achieved with BorderPatrol: True" in out


class TestGatewayBenchCommand:
    def test_gateway_bench_reports_fast_path_table(self, capsys):
        assert main(
            ["gateway-bench", "--packets", "600", "--flows", "32", "--shards", "2",
             "--corpus-apps", "2", "--fig4-iterations", "0"]
        ) == 0
        out = capsys.readouterr().out
        for configuration in ("naive", "compiled", "cached", "sharded-1", "sharded-2"):
            assert configuration in out
        assert "flow-cache churn by app:" in out
        # The all-valid replay surfaces zeroed integrity counters —
        # previously these outcomes were only visible in raw records.
        assert "integrity outcomes: 0 untagged, 0 unknown-app, 0 decode-failure" in out
        assert "all paths verdict-identical: True" in out

    def test_gateway_bench_pool_backend_rows(self, capsys):
        assert main(
            ["gateway-bench", "--packets", "600", "--flows", "32", "--shards", "2",
             "--corpus-apps", "2", "--fig4-iterations", "0", "--backend", "pool"]
        ) == 0
        out = capsys.readouterr().out
        # The sharded rows name the execution engine they actually ran on.
        assert "sharded-2-pool" in out
        # The health tail: crash/respawn/fallback counters plus the
        # ring-vs-pickle transport split for the pool rows.
        assert "pool health:" in out
        assert "via ring" in out
        assert "all paths verdict-identical: True" in out

    def test_gateway_bench_surfaces_fig4_throughput(self, capsys):
        assert main(
            ["gateway-bench", "--packets", "400", "--flows", "16", "--shards", "2",
             "--corpus-apps", "2", "--fig4-iterations", "50"]
        ) == 0
        out = capsys.readouterr().out
        assert "fig4 stress workload through the sharded gateway" in out
        assert "mean per-request latency" in out
        assert "kpps modelled parallel" in out


class TestFleetCommand:
    def test_fleet_pool_backend_summary(self, capsys):
        assert main(
            ["fleet", "--packets", "900", "--devices", "16", "--gateways", "3",
             "--shards", "1", "--edits", "3", "--corpus-apps", "4",
             "--backend", "pool", "--skip-backend", "--skip-late-joiner"]
        ) == 0
        out = capsys.readouterr().out
        assert "fleet verdict-identical to single gateway: True" in out
        assert "replicas converged (fingerprint-verified): True" in out
        # The pool summary line: measured pipelined wall + live delta pushes.
        assert "gateway pool:" in out
        assert "delta pushes to live workers" in out
        assert "pool health:" in out

    def test_fleet_serial_backend_has_no_pool_line(self, capsys):
        assert main(
            ["fleet", "--packets", "900", "--devices", "16", "--gateways", "3",
             "--shards", "1", "--edits", "3", "--corpus-apps", "4",
             "--backend", "serial", "--skip-backend", "--skip-late-joiner"]
        ) == 0
        out = capsys.readouterr().out
        assert "fleet verdict-identical to single gateway: True" in out
        assert "gateway pool:" not in out

    def test_fleet_backend_flag_parses(self):
        args = build_parser().parse_args(["fleet", "--backend", "pool"])
        assert args.backend == "pool"
        args = build_parser().parse_args(["fleet"])
        assert args.backend == "serial"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--backend", "threads"])

    def test_gateway_bench_backend_flag_parses(self):
        args = build_parser().parse_args(["gateway-bench", "--backend", "pool"])
        assert args.backend == "pool"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["gateway-bench", "--backend", "fork"])

    def test_backend_help_notes_fork_requirement(self):
        parser = build_parser()
        for command in ("fleet", "gateway-bench"):
            subparser_help = None
            for action in parser._subparsers._group_actions:
                subparser_help = action.choices[command].format_help()
            # argparse line-wraps the help; compare whitespace-normalized.
            assert "fork start method" in " ".join(subparser_help.split())


class TestObsCommand:
    def test_obs_snapshot_renders_the_worker_table(self, capsys):
        assert main(
            ["obs", "--packets", "400", "--flows", "16", "--shards", "2",
             "--corpus-apps", "2", "--batches", "4", "--snapshot"]
        ) == 0
        out = capsys.readouterr().out
        assert "obs profile" in out
        assert "p50 ms" in out and "p99 ms" in out and "respawns" in out
        assert "stages:" in out
        assert "health events" in out

    def test_obs_live_mode_prints_every_frame(self, capsys):
        assert main(
            ["obs", "--packets", "400", "--flows", "16", "--shards", "2",
             "--corpus-apps", "2", "--batches", "4", "--frames", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert out.count("obs profile [") == 2

    def test_obs_export_writes_prometheus_text(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.prom"
        assert main(
            ["obs", "--packets", "400", "--flows", "16", "--shards", "2",
             "--corpus-apps", "2", "--batches", "4", "--snapshot",
             "--export", "prom", "--output", str(metrics)]
        ) == 0
        assert "wrote prom export" in capsys.readouterr().out
        text = metrics.read_text(encoding="utf-8")
        assert "# TYPE enforcer_packets_seen gauge" in text
        assert "pool_batches_total" in text or "enforcer_stage_seconds" in text

    def test_obs_export_jsonl_round_trips(self, capsys):
        assert main(
            ["obs", "--packets", "400", "--flows", "16", "--shards", "2",
             "--corpus-apps", "2", "--batches", "4", "--snapshot",
             "--export", "jsonl"]
        ) == 0
        out = capsys.readouterr().out
        families = [json.loads(line) for line in out.splitlines() if line.startswith("{")]
        assert any(family.get("name") == "enforcer_packets_seen" for family in families)

    def test_obs_rejects_degenerate_replay(self, capsys):
        assert main(["obs", "--packets", "2", "--batches", "8"]) == 2
        assert "obs rejected" in capsys.readouterr().err

    def test_obs_flag_defaults(self):
        args = build_parser().parse_args(["obs"])
        assert args.packets == 4000 and args.frames == 4 and not args.snapshot
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "--export", "csv"])


class TestAuditCommand:
    def test_audit_reports_detection_and_roundtrip(self, capsys):
        assert main(
            ["audit", "--packets", "400", "--devices", "10", "--gateways", "2",
             "--shards", "1", "--corpus-apps", "4", "--bursts", "4",
             "--attack-packets", "24", "--skip-overhead"]
        ) == 0
        out = capsys.readouterr().out
        for system in ("borderpatrol", "ip-dns", "size-threshold"):
            assert system in out
        assert "lossless round-trip: True" in out
        assert "BorderPatrol strictly dominates on spoof/replay: True" in out

    def test_audit_rejects_degenerate_replay(self, capsys):
        assert main(["audit", "--packets", "2", "--bursts", "4"]) == 2
        assert "audit rejected" in capsys.readouterr().err


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_experiments_defaults(self):
        args = build_parser().parse_args(["experiments"])
        assert args.fig3_apps == 200 and args.fig4_iterations == 500
