"""Tests for the command-line front end."""

import json

import pytest

from repro.cli import build_parser, main


class TestAnalyzeCommand:
    def test_analyze_case_study_apps(self, tmp_path, capsys):
        output = tmp_path / "db.json"
        code = main(["analyze", "--output", str(output), "--case-study-apps"])
        assert code == 0
        payload = json.loads(output.read_text())
        packages = {entry["package"] for entry in payload.values()}
        assert "com.cloudbox.android" in packages
        assert "analyzed 3 apps" in capsys.readouterr().out

    def test_analyze_corpus_apps(self, tmp_path):
        output = tmp_path / "db.json"
        assert main(["analyze", "--output", str(output), "--corpus-apps", "3"]) == 0
        assert len(json.loads(output.read_text())) == 3

    def test_analyze_without_inputs_fails(self, tmp_path):
        assert main(["analyze", "--output", str(tmp_path / "db.json")]) == 2


class TestCheckPolicyCommand:
    def test_valid_policy(self, tmp_path, capsys):
        policy_file = tmp_path / "policy.txt"
        policy_file.write_text('// deny flurry\n{[deny][library]["com/flurry"]}\n')
        assert main(["check-policy", str(policy_file)]) == 0
        out = capsys.readouterr().out
        assert "1 rule(s)" in out and "com/flurry" in out

    def test_invalid_policy(self, tmp_path, capsys):
        policy_file = tmp_path / "bad.txt"
        policy_file.write_text("{[deny][library][unquoted]}")
        assert main(["check-policy", str(policy_file)]) == 1
        assert "rejected" in capsys.readouterr().err


class TestCaseStudyCommand:
    def test_facebook_case_study(self, capsys):
        assert main(["case-study", "facebook"]) == 0
        out = capsys.readouterr().out
        assert "login_with_facebook" in out
        assert "selective enforcement achieved with BorderPatrol: True" in out


class TestGatewayBenchCommand:
    def test_gateway_bench_reports_fast_path_table(self, capsys):
        assert main(
            ["gateway-bench", "--packets", "600", "--flows", "32", "--shards", "2",
             "--corpus-apps", "2"]
        ) == 0
        out = capsys.readouterr().out
        for configuration in ("naive", "compiled", "cached", "sharded-1", "sharded-2"):
            assert configuration in out
        assert "all paths verdict-identical: True" in out


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_experiments_defaults(self):
        args = build_parser().parse_args(["experiments"])
        assert args.fig3_apps == 200 and args.fig4_iterations == 500
