"""Property-based tests (hypothesis) for the metrics merge algebra.

The worker-pool fold depends on one invariant: **folding worker-local
registry deltas into the parent is order-independent**.  Workers drain
and ship deltas whenever a batch completes, so the parent sees them in
whatever order the scheduler produced — and the merged registry must
come out identical regardless.  Counters merge by addition, gauges by
high-water maximum, histograms by elementwise bucket addition; all
three are commutative and associative, and chunking a worker's stream
into multiple drained deltas must change nothing either.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.obs import MetricsRegistry
from repro.obs.export import merge_snapshots, to_prometheus

WORKERS = ("0", "1", "2")
STAGES = ("decode", "eval", "fold")

counter_events = st.tuples(
    st.just("counter"), st.sampled_from(WORKERS), st.integers(1, 1_000)
)
gauge_events = st.tuples(
    st.just("gauge"), st.sampled_from(WORKERS), st.integers(0, 64)
)
histogram_events = st.tuples(
    st.just("histogram"),
    st.sampled_from(STAGES),
    st.floats(min_value=1e-6, max_value=0.5, allow_nan=False),
)
event_streams = st.lists(
    st.one_of(counter_events, gauge_events, histogram_events), max_size=24
)
worker_streams = st.lists(event_streams, min_size=1, max_size=4)


def _apply(registry: MetricsRegistry, events) -> None:
    batches = registry.counter("pool_batches_total", labels=("worker",))
    depth = registry.gauge("queue_depth", labels=("worker",))
    stages = registry.histogram("stage_seconds", labels=("stage",))
    for kind, label, amount in events:
        if kind == "counter":
            batches.inc(amount, worker=label)
        elif kind == "gauge":
            depth.set(amount, worker=label)
        else:
            stages.observe(amount, stage=label)


def _worker_snapshots(streams):
    snapshots = []
    for events in streams:
        registry = MetricsRegistry()
        _apply(registry, events)
        snapshots.append(registry.snapshot())
    return snapshots


def _merged(snapshots):
    parent = MetricsRegistry()
    for snapshot in snapshots:
        parent.merge_snapshot(snapshot)
    return parent


@settings(max_examples=60, deadline=None)
@given(streams=worker_streams, seed=st.integers(0, 2**32 - 1))
def test_merge_order_never_changes_the_parent(streams, seed):
    snapshots = _worker_snapshots(streams)
    shuffled = list(snapshots)
    random.Random(seed).shuffle(shuffled)
    in_order = _merged(snapshots)
    out_of_order = _merged(shuffled)
    assert in_order.snapshot() == out_of_order.snapshot()
    assert to_prometheus(in_order) == to_prometheus(out_of_order)


delta_streams = st.lists(
    st.lists(st.one_of(counter_events, histogram_events), max_size=24),
    min_size=1,
    max_size=4,
)


@settings(max_examples=60, deadline=None)
@given(streams=delta_streams, splits=st.integers(1, 5))
def test_chunked_drains_equal_one_shot_snapshots(streams, splits):
    # A worker that drains after every few events ships several small
    # deltas; folding them must land on the same parent as one snapshot
    # of the whole stream.  Gauges are excluded by construction: they
    # merge as high-water marks, so a chunk boundary between two ``set``
    # calls legitimately preserves the higher reading instead of the
    # last one.
    one_shot = _merged(_worker_snapshots(streams))
    parent = MetricsRegistry()
    for events in streams:
        registry = MetricsRegistry()
        _apply(registry, ())  # register the families, as pool seeding does
        parent.merge_snapshot(registry.drain())
        step = max(1, len(events) // splits) if events else 1
        for start in range(0, len(events), step):
            _apply(registry, events[start : start + step])
            parent.merge_snapshot(registry.drain())
        # A final empty drain must be a no-op, not a reset.
        parent.merge_snapshot(registry.drain())
    assert parent.snapshot() == one_shot.snapshot()


@settings(max_examples=60, deadline=None)
@given(streams=worker_streams)
def test_merge_snapshots_helper_agrees_with_registry_merge(streams):
    snapshots = _worker_snapshots(streams)
    via_registry = _merged(snapshots).snapshot()
    via_helper = merge_snapshots(snapshots)
    assert to_prometheus(via_helper) == to_prometheus(via_registry)


@settings(max_examples=40, deadline=None)
@given(streams=worker_streams)
def test_merged_histogram_matches_a_registry_that_saw_everything(streams):
    # The quantile read on the folded parent must agree with a single
    # registry fed every observation directly — the fold loses nothing.
    union = MetricsRegistry()
    for events in streams:
        _apply(union, events)
    merged = _merged(_worker_snapshots(streams))
    for registry in (union, merged):
        registry.histogram("stage_seconds", labels=("stage",))
    for stage in STAGES:
        u = union.get("stage_seconds")
        m = merged.get("stage_seconds")
        assert u.count(stage=stage) == m.count(stage=stage)
        if u.count(stage=stage):
            assert u.quantile(0.5, stage=stage) == m.quantile(0.5, stage=stage)
            assert u.quantile(0.99, stage=stage) == m.quantile(0.99, stage=stage)
