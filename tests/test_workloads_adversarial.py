"""Tests for the adversarial fleet workloads (evasion trace generation)."""

import pytest

from repro.core.deployment import BorderPatrolDeployment
from repro.core.policy import Policy
from repro.core.policy_enforcer import REASON_UNKNOWN_APP, REASON_UNTAGGED
from repro.experiments.gateway_throughput import DEFAULT_DENY_LIBRARIES
from repro.netstack.netfilter import Verdict
from repro.workloads.adversarial import (
    EVASIVE_SCENARIOS,
    SCENARIOS,
    AdversarialConfig,
    AdversarialWorkload,
)
from repro.workloads.corpus import CorpusConfig, CorpusGenerator
from repro.workloads.fleet import DeviceFleet, DeviceFleetConfig

EXFIL_BUDGET = 65536
SIZE_THRESHOLD = 131072


@pytest.fixture(scope="module")
def fleet():
    apps = CorpusGenerator(CorpusConfig(n_apps=4, seed=5)).generate()
    deployment = BorderPatrolDeployment(
        policy=Policy.deny_libraries(DEFAULT_DENY_LIBRARIES, name="adv-base"),
        keep_records=True,
    )
    return DeviceFleet(
        deployment, apps, DeviceFleetConfig(devices=8, seed=5)
    )


@pytest.fixture(scope="module")
def trace(fleet):
    workload = AdversarialWorkload(fleet, AdversarialConfig(seed=11, packets_per_scenario=20))
    return workload.build(EXFIL_BUDGET, SIZE_THRESHOLD)


class TestTraceShape:
    def test_every_scenario_generated_and_labelled(self, trace):
        assert set(trace.packets_by_scenario) == set(SCENARIOS)
        for scenario, packets in trace.packets_by_scenario.items():
            assert packets, scenario
            assert all(trace.labels[p.packet_id] == scenario for p in packets)
        assert trace.attack_packet_count() == len(trace.labels)

    def test_evasive_scenarios_avoid_the_blocklisted_destination(self, trace):
        known_bad = trace.exfil_ips["drop.exfil-cdn.net"]
        for scenario in EVASIVE_SCENARIOS:
            assert all(p.dst_ip != known_bad for p in trace.packets(scenario))
        assert all(p.dst_ip == known_bad for p in trace.packets("bulk_exfil"))

    def test_stripping_packets_carry_no_tag(self, trace):
        assert all(not p.options.options for p in trace.packets("tag_stripping"))

    def test_spoofed_app_not_enrolled_on_attacker_device(self, fleet, trace):
        provisioning = fleet.provisioning_map()
        assert trace.spoofed_app_id
        assert trace.spoofed_app_id not in provisioning[trace.spoof_attacker_ip]
        assert all(
            p.src_ip == trace.spoof_attacker_ip for p in trace.packets("tag_spoofing")
        )

    def test_low_and_slow_stays_under_the_per_flow_threshold(self, trace):
        per_flow: dict[tuple, int] = {}
        for packet in trace.packets("low_and_slow"):
            key = (packet.src_ip, packet.src_port)
            per_flow[key] = per_flow.get(key, 0) + packet.payload_size
        assert len(per_flow) > 1  # genuinely fragmented
        assert all(total < SIZE_THRESHOLD for total in per_flow.values())
        # ...while the campaign total still blows the telemetry budget.
        assert sum(per_flow.values()) > EXFIL_BUDGET

    def test_bulk_exfil_blows_the_per_flow_threshold(self, trace):
        total = sum(p.payload_size for p in trace.packets("bulk_exfil"))
        assert total >= SIZE_THRESHOLD

    def test_fragments_tripping_the_threshold_are_rejected(self, fleet):
        workload = AdversarialWorkload(
            fleet, AdversarialConfig(seed=11, low_and_slow_flows=1)
        )
        with pytest.raises(ValueError):
            workload.build(EXFIL_BUDGET, size_threshold_bytes=1024)


class TestGatewayView:
    def test_stripping_and_replay_drop_with_integrity_reasons(self, fleet, trace):
        enforcer = fleet.deployment.enforcer
        verdict, _ = enforcer.process(trace.packets("tag_stripping")[0])
        assert verdict is Verdict.DROP
        assert enforcer.records[-1].reason == REASON_UNTAGGED

        # Before revocation the contractor tag is perfectly valid...
        verdict, _ = enforcer.process(trace.packets("tag_replay")[0])
        assert enforcer.records[-1].reason != REASON_UNKNOWN_APP
        # ...after revocation the same bytes read as an unknown hash.
        trace.revoke(fleet.deployment.database)
        verdict, _ = enforcer.process(trace.packets("tag_replay")[1])
        assert verdict is Verdict.DROP
        assert enforcer.records[-1].reason == REASON_UNKNOWN_APP

    def test_spoofed_tag_decodes_as_the_borrowed_app(self, fleet, trace):
        enforcer = fleet.deployment.enforcer
        enforcer.process(trace.packets("tag_spoofing")[0])
        record = enforcer.records[-1]
        # The gateway alone cannot tell mimicry from the real app — that
        # is exactly why the spoof detector needs the provisioning map.
        assert record.package_name == trace.spoofed_package
        assert record.src_ip == trace.spoof_attacker_ip
