"""Property-based tests (hypothesis) for delta-log replication.

The replication invariant the fleet stands on: **a replica that attaches
at any version and replays the delta log converges to the store's exact
state** — same version, same rule-table fingerprint — **and its gateway
enforces packet-for-packet identically to a head-subscribed enforcer**,
no matter what sequence of control-plane edits happened, when the
replica attached, or how its catch-up was staged.

Compaction extends the invariant: folding an arbitrary prefix of an
arbitrary history into a snapshot and converging via
``compact``-then-``catch_up`` must be indistinguishable from replaying
the full history — same fingerprint chain tail, same verdicts — and a
tampered snapshot must raise :class:`ReplicationError` instead of
seeding a forked policy.
"""

import json

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.database import DatabaseEntry, SignatureDatabase
from repro.core.encoding import StackTraceEncoder
from repro.core.policy import Policy, PolicyAction, PolicyLevel, PolicyRule
from repro.core.policy_enforcer import PolicyEnforcer
from repro.core.policy_store import (
    DeltaLog,
    GatewayReplica,
    PolicyStore,
    PolicyUpdate,
    ReplicationError,
)
from repro.netstack.ip import IPPacket

APPS = (
    ("aa" * 16, "com.alpha.app", [
        "Lcom/alpha/app/MainActivity;->onClick(Landroid/view/View;)V",
        "Lcom/alpha/app/net/ApiClient;->upload([B)Z",
        "Lcom/flurry/sdk/FlurryAgent;->logEvent(Ljava/lang/String;)V",
    ]),
    ("bb" * 16, "com.beta.app", [
        "Lcom/beta/app/MainActivity;->onClick(Landroid/view/View;)V",
        "Lcom/beta/app/sync/Engine;->push([B)Z",
        "Lcom/mixpanel/android/Tracker;->track(Ljava/lang/String;)V",
    ]),
)

TARGETS = (
    "com/alpha/app", "com/beta/app", "com/flurry", "com/mixpanel/android",
    "com/flurry/sdk/FlurryAgent", APPS[0][2][1], "aa" * 16, ("bb" * 16)[:16],
    "com/present/nowhere",
)

rule_strategy = st.builds(
    PolicyRule,
    action=st.sampled_from(PolicyAction),
    level=st.sampled_from(PolicyLevel),
    target=st.sampled_from(TARGETS),
)

edit_strategy = st.one_of(
    st.tuples(st.just("add"), rule_strategy),
    st.tuples(st.just("remove"), st.integers(min_value=0, max_value=9)),
    st.tuples(st.just("replace"), st.integers(min_value=0, max_value=9), rule_strategy),
    st.tuples(st.just("default"), st.sampled_from(PolicyAction)),
)


def build_database() -> SignatureDatabase:
    database = SignatureDatabase()
    for md5, package, signatures in APPS:
        database.add(
            DatabaseEntry(
                md5=md5, app_id=md5[:16], package_name=package,
                signatures=list(signatures),
            )
        )
    return database


def build_packets():
    encoder = StackTraceEncoder()
    packets = []
    port = 40000
    for md5, _package, signatures in APPS:
        for indexes in [(0,), tuple(range(len(signatures))), (len(signatures) - 1,)]:
            port += 1
            packets.append(
                IPPacket(
                    src_ip="10.10.0.2",
                    dst_ip="203.0.113.9",
                    src_port=port,
                    dst_port=443,
                    payload_size=128,
                    options=encoder.encode_option(md5[:16], indexes),
                )
            )
    return packets


def apply_edit(store: PolicyStore, edit) -> None:
    kind = edit[0]
    update = PolicyUpdate()
    if kind == "add":
        update.add_rule(edit[1])
    elif kind == "remove":
        ids = store.rule_ids()
        if not ids:
            return
        update.remove_rule(ids[edit[1] % len(ids)])
    elif kind == "replace":
        ids = store.rule_ids()
        if not ids:
            return
        update.replace_rule(ids[edit[1] % len(ids)], edit[2])
    else:
        update.set_default(edit[1])
    store.apply(update)


@settings(max_examples=50, deadline=None)
@given(
    initial=st.lists(rule_strategy, max_size=4),
    edits=st.lists(edit_strategy, min_size=1, max_size=10),
    attach_after=st.integers(min_value=0, max_value=10),
    stage_at=st.integers(min_value=0, max_value=10),
)
def test_replay_from_any_version_converges_and_enforces_identically(
    initial, edits, attach_after, stage_at
):
    database = build_database()
    store = PolicyStore.from_policy(Policy(rules=list(initial), name="head"))
    head = PolicyEnforcer(database=database, policy=store.snapshot())
    store.subscribe(head, push=False)
    packets = build_packets()

    # Commit a prefix of the history, then attach the replica at
    # whatever version the store happens to be at.
    attach_after = min(attach_after, len(edits))
    for edit in edits[:attach_after]:
        apply_edit(store, edit)
    replica = GatewayReplica(PolicyEnforcer(database=database), store, name="gw")
    attach_version = replica.version
    assert attach_version == store.version

    # Commit the rest of the history while the replica lags.
    for edit in edits[attach_after:]:
        apply_edit(store, edit)

    # Staged catch-up: stop at an arbitrary intermediate version first,
    # then converge fully — replay must compose across stages.
    target = min(attach_version + (stage_at % (store.version - attach_version + 1)),
                 store.version) if store.version > attach_version else store.version
    replica.catch_up(store.delta_log, target_version=target)
    assert replica.version == target
    replica.catch_up(store.delta_log)

    # Convergence: version and rule-table fingerprint equal the store's.
    assert replica.version == store.version
    assert replica.fingerprint() == store.fingerprint()
    assert replica.verify_against(store)
    assert replica.snapshot().rules == store.snapshot().rules
    assert replica.snapshot().default_action is store.default_action

    # Enforcement: the replica's gateway matches the head-subscribed
    # enforcer packet for packet, verdicts and reasons.
    for packet in packets:
        head_verdict, _ = head.process(packet)
        replica_verdict, _ = replica.enforcer.process(packet)
        assert replica_verdict is head_verdict
        assert (
            replica.enforcer.records[-1].reason == head.records[-1].reason
        )


@settings(max_examples=40, deadline=None)
@given(
    initial=st.lists(rule_strategy, max_size=4),
    edits=st.lists(edit_strategy, min_size=1, max_size=10),
    compact_at=st.integers(min_value=1, max_value=10),
)
def test_compact_then_catch_up_equals_full_history_replay(
    initial, edits, compact_at
):
    """For any history and any compaction point, snapshot + suffix is
    equivalent to the full log: same fingerprint chain tail, same
    converged state, same verdicts — and tampering is detected."""
    database = build_database()
    store = PolicyStore.from_policy(Policy(rules=list(initial), name="head"))
    head = PolicyEnforcer(database=database, policy=store.snapshot())
    store.subscribe(head, push=False)
    for edit in edits:
        apply_edit(store, edit)
    # remove/replace edits against an empty table commit nothing; the
    # compaction point needs at least one record to fold.
    assume(store.version >= 1)
    full_json = store.delta_log.to_json()
    target = 1 + (compact_at % store.version) if store.version > 1 else 1

    full_log = DeltaLog.from_json(full_json)
    via_history = GatewayReplica.from_log(
        PolicyEnforcer(database=database), full_log, name="full"
    )
    compacted_log = DeltaLog.from_json(full_json)
    snapshot = compacted_log.compact(target)
    via_snapshot = GatewayReplica.from_log(
        PolicyEnforcer(database=database), compacted_log, name="compacted"
    )

    # Same converged state as the store, by both routes.
    for replica in (via_history, via_snapshot):
        assert replica.version == store.version
        assert replica.fingerprint() == store.fingerprint()
        assert replica.snapshot().rules == store.snapshot().rules
    # The surviving suffix is the full log's tail, fingerprint chain
    # intact, and the snapshot carries the chain value at the fold.
    assert [record.fingerprint for record in compacted_log] == [
        record.fingerprint for record in full_log.since(target)
    ]
    assert snapshot.fingerprint == full_log.record(target).fingerprint
    assert via_snapshot.records_applied == 1 + (store.version - target)
    assert via_history.records_applied == store.version + 1

    # Verdict identity across head / full-replay / snapshot-bootstrap.
    for packet in build_packets():
        head_verdict, _ = head.process(packet)
        assert via_history.enforcer.process(packet)[0] is head_verdict
        assert via_snapshot.enforcer.process(packet)[0] is head_verdict

    # A tampered snapshot (content changed, recorded fingerprint kept)
    # must never seed a replica.
    payload = json.loads(compacted_log.to_json())
    payload["snapshot"]["default_action"] = (
        "deny" if payload["snapshot"]["default_action"] == "allow" else "allow"
    )
    tampered = DeltaLog.from_json(json.dumps(payload))
    with pytest.raises(ReplicationError):
        GatewayReplica.from_log(
            PolicyEnforcer(database=database), tampered, name="tampered"
        )


# -- persistent worker-pool parity ------------------------------------------------------
#
# The pool runtime extends the invariant to live workers: for ANY
# interleaving of control-plane edits and packet bursts, a
# ``backend="pool"`` sharded enforcer fed surgical delta records must
# produce the identical verdict sequence to the sequential model, and
# both control stores must converge to the same rule-table fingerprint.

script_strategy = st.lists(
    st.one_of(edit_strategy, st.just("burst")),
    min_size=1,
    max_size=12,
)


@pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="the pool backend needs the fork start method",
)
@settings(max_examples=20, deadline=None)
@given(initial=st.lists(rule_strategy, max_size=4), script=script_strategy)
def test_pool_backend_enforces_identically_under_policy_churn(initial, script):
    from repro.netstack.sharding import ShardedEnforcer

    database = build_database()
    packets = build_packets()

    def run(backend):
        store = PolicyStore.from_policy(
            Policy(rules=list(initial), name="head"), name="prop"
        )
        enforcer = ShardedEnforcer(
            database=database,
            policy=store.snapshot(),
            num_shards=2,
            keep_records=False,
            backend=backend,
        )
        store.subscribe(enforcer, push=False)
        enforcer.attach_control(store)
        verdicts = []
        for step in script:
            if step == "burst":
                batch = enforcer.process_batch_timed(packets)
                verdicts.extend(verdict for verdict, _ in batch.results)
            else:
                apply_edit(store, step)
        # A closing burst proves the workers converged on the final
        # policy no matter where the script's last edit landed.
        batch = enforcer.process_batch_timed(packets)
        verdicts.extend(verdict for verdict, _ in batch.results)
        stats = enforcer.aggregate_stats()
        enforcer.close()
        return verdicts, store.fingerprint(), stats

    serial_verdicts, serial_fingerprint, _ = run("sequential")
    pool_verdicts, pool_fingerprint, pool_stats = run("pool")
    assert pool_verdicts == serial_verdicts
    assert pool_fingerprint == serial_fingerprint
    # Every edit travelled as a delta record, never a pickled snapshot.
    assert pool_stats.pool_snapshot_syncs == 0
