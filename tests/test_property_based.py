"""Property-based tests (hypothesis) on core data structures and invariants.

Four invariant families:

* the context-tag encoder: round-trip identity, RFC 791 size bound,
  truncation keeps a prefix of the innermost frames;
* method signatures and descriptors: round-trip identity, ordering is a
  total deterministic order;
* the Offline Analyzer / canonical ordering: the index mapping derived
  on the enterprise side always agrees with the one derived on the
  device from the same apk bytes;
* the policy engine: deny-∃ / allow-∀ semantics hold for arbitrary stack
  compositions, and the sanitizer always yields option-free packets.
"""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.database import canonical_signature_order
from repro.core.encoding import (
    APP_ID_BYTES,
    EncodingError,
    IndexWidth,
    MAX_OPTION_DATA_BYTES,
    StackTraceEncoder,
)
from repro.core.packet_sanitizer import PacketSanitizer
from repro.core.policy import DecodedContext, Policy, PolicyAction, PolicyLevel, PolicyRule
from repro.dex.builder import DexBuilder
from repro.dex.signature import MethodSignature, format_descriptor, parse_descriptor
from repro.netstack.ip import (
    BORDERPATROL_OPTION_TYPE,
    IPOptions,
    IPPacket,
    MAX_IP_OPTIONS_BYTES,
)
from repro.netstack.netfilter import Verdict


# -- strategies ---------------------------------------------------------------

identifiers = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
class_names = st.builds(
    lambda parts, cls: ".".join(parts + [cls.capitalize()]),
    st.lists(identifiers, min_size=1, max_size=3),
    identifiers,
)
primitive_types = st.sampled_from(["int", "boolean", "long", "void", "byte[]", "java.lang.String"])
app_ids = st.binary(min_size=8, max_size=8).map(bytes.hex)
fixed_indexes = st.lists(st.integers(min_value=0, max_value=0xFFFF), max_size=40)
variable_indexes = st.lists(st.integers(min_value=0, max_value=0x3F_FFFF), max_size=40)

signatures = st.builds(
    MethodSignature.create,
    class_names,
    identifiers,
    st.lists(primitive_types.filter(lambda t: t != "void"), max_size=3).map(tuple),
    primitive_types,
)


# -- encoder properties ----------------------------------------------------------


@given(app_id=app_ids, indexes=fixed_indexes)
def test_fixed_encoding_roundtrip_is_prefix_preserving(app_id, indexes):
    encoder = StackTraceEncoder(IndexWidth.FIXED_2)
    decoded = encoder.decode(encoder.encode(app_id, indexes))
    assert decoded.app_id == app_id
    # Truncation may shorten the stack but never reorders or alters indexes.
    assert list(decoded.indexes) == indexes[: len(decoded.indexes)]
    assert len(decoded.indexes) <= encoder.max_frames()


@given(app_id=app_ids, indexes=variable_indexes)
def test_variable_encoding_roundtrip_is_prefix_preserving(app_id, indexes):
    encoder = StackTraceEncoder(IndexWidth.VARIABLE)
    decoded = encoder.decode(encoder.encode(app_id, indexes))
    assert decoded.app_id == app_id
    assert list(decoded.indexes) == indexes[: len(decoded.indexes)]


@given(app_id=app_ids, indexes=fixed_indexes)
def test_encoded_option_always_respects_rfc791_limit(app_id, indexes):
    options = StackTraceEncoder().encode_option(app_id, indexes)
    assert options.wire_length <= MAX_IP_OPTIONS_BYTES
    assert options.find(BORDERPATROL_OPTION_TYPE) is not None


# -- variable-width encoding properties ------------------------------------------------

#: Bytes left for frame indexes once the 8-byte app hash is in the tag.
INDEX_BUDGET = MAX_OPTION_DATA_BYTES - APP_ID_BYTES


def _variable_width(index: int) -> int:
    """The on-wire width the variable encoding must give ``index``."""
    return 2 if index < 0x8000 else 3


@given(app_id=app_ids, index=st.integers(min_value=0, max_value=0x3F_FFFF))
def test_variable_encoding_width_flips_exactly_at_0x8000(app_id, index):
    encoder = StackTraceEncoder(IndexWidth.VARIABLE)
    body = encoder.encode(app_id, [index])[APP_ID_BYTES:]
    assert len(body) == _variable_width(index)
    if index >= 0x8000:
        assert body[0] & 0x80  # 3-byte form carries the flag bit
    else:
        assert not body[0] & 0x80
    assert encoder.decode(encoder.encode(app_id, [index])).indexes == (index,)


@given(app_id=app_ids)
def test_variable_encoding_boundary_neighbours_roundtrip(app_id):
    encoder = StackTraceEncoder(IndexWidth.VARIABLE)
    boundary = [0x7FFF, 0x8000, 0x8001]
    decoded = encoder.decode(encoder.encode(app_id, boundary))
    assert list(decoded.indexes) == boundary
    assert encoder._width_of(0x7FFF) == 2
    assert encoder._width_of(0x8000) == 3


@given(
    app_id=app_ids,
    index=st.integers(min_value=0x40_0000, max_value=0x7F_FFFF),
)
def test_variable_encoding_rejects_indexes_beyond_3_byte_space(app_id, index):
    encoder = StackTraceEncoder(IndexWidth.VARIABLE)
    with pytest.raises(EncodingError):
        encoder.encode(app_id, [index])


@given(app_id=app_ids, indexes=variable_indexes)
def test_variable_fit_indexes_fills_budget_maximally(app_id, indexes):
    """Truncation stops exactly when the 30-byte index budget would overflow."""
    encoder = StackTraceEncoder(IndexWidth.VARIABLE)
    fitted = encoder.fit_indexes(indexes)
    used = sum(_variable_width(i) for i in fitted)
    assert used <= INDEX_BUDGET
    assert list(fitted) == indexes[: len(fitted)]
    if len(fitted) < len(indexes):
        # The first dropped frame genuinely would not have fit.
        assert used + _variable_width(indexes[len(fitted)]) > INDEX_BUDGET
    assert len(encoder.encode(app_id, indexes)) - APP_ID_BYTES == used


def test_fit_indexes_truncates_exactly_at_the_30_byte_budget():
    encoder = StackTraceEncoder(IndexWidth.VARIABLE)
    assert INDEX_BUDGET == 30
    # Fifteen 2-byte indexes consume the budget exactly...
    exact = [1] * 15
    assert encoder.fit_indexes(exact + [2]) == tuple(exact)
    # ...ten 3-byte frames do too, and an eleventh frame of either width
    # is dropped because the budget is already fully consumed.
    ten_wide = [0x8000] * 10  # 30 bytes
    assert encoder.fit_indexes(ten_wide) == tuple(ten_wide)
    assert encoder.fit_indexes(ten_wide + [0x8000]) == tuple(ten_wide)
    assert encoder.fit_indexes(ten_wide + [7]) == tuple(ten_wide)
    # Nine 3-byte frames (27 bytes) leave room for one more 2-byte frame
    # but not for another 3-byte one.
    nine_wide = [0x8000] * 9
    assert encoder.fit_indexes(nine_wide + [7, 0x8000]) == tuple(nine_wide + [7])


# -- signature / descriptor properties -----------------------------------------------


@given(signature=signatures)
def test_signature_string_parse_roundtrip(signature):
    assert MethodSignature.parse(str(signature)) == signature


@given(type_name=st.one_of(primitive_types, class_names))
def test_descriptor_roundtrip(type_name):
    assert parse_descriptor(format_descriptor(type_name)) == type_name.replace("/", ".")


@given(sigs=st.lists(signatures, max_size=15))
def test_signature_ordering_is_deterministic_total_order(sigs):
    first = sorted(sigs)
    second = sorted(list(reversed(sigs)))
    assert first == second


# -- canonical ordering property --------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    class_specs=st.lists(
        st.tuples(class_names, st.lists(identifiers, min_size=1, max_size=4, unique=True)),
        min_size=1,
        max_size=5,
        unique_by=lambda spec: spec[0],
    )
)
def test_canonical_order_is_stable_across_independent_parses(class_specs):
    builder = DexBuilder()
    for class_name, methods in class_specs:
        handle = builder.add_class(class_name)
        for method in methods:
            handle.add_method(method)
    from repro.apk.manifest import AndroidManifest
    from repro.apk.package import build_apk

    apk = build_apk(AndroidManifest(package_name="com.prop.app"), builder.build())
    enterprise_view = [str(s) for s in canonical_signature_order(apk.parse_dex_files())]
    device_view = [str(s) for s in canonical_signature_order(apk.parse_dex_files())]
    assert enterprise_view == device_view
    assert len(enterprise_view) == len(set(enterprise_view)) == apk.method_count()


# -- policy engine properties ---------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    flagged=st.lists(signatures, min_size=1, max_size=4),
    clean=st.lists(signatures, max_size=4),
)
def test_deny_rule_exists_semantics_hold(flagged, clean):
    target_library = flagged[0].library or flagged[0].slash_class
    rule = PolicyRule(PolicyAction.DENY, PolicyLevel.LIBRARY, target_library)
    policy = Policy(rules=[rule])
    stack_with_flagged = tuple(str(s) for s in clean + flagged)
    context = DecodedContext(app_id="00" * 8, signatures=stack_with_flagged)
    assert policy.evaluate(context).verdict is Verdict.DROP

    clean_only = tuple(
        str(s) for s in clean if not rule.signature_matches(str(s))
    )
    clean_context = DecodedContext(app_id="00" * 8, signatures=clean_only)
    assert policy.evaluate(clean_context).verdict is Verdict.ACCEPT


@settings(max_examples=60, deadline=None)
@given(stack=st.lists(signatures, min_size=1, max_size=6))
def test_allow_rule_forall_semantics_hold(stack):
    # Whitelist the library of the first frame only.
    target = stack[0].library or stack[0].slash_class
    rule = PolicyRule(PolicyAction.ALLOW, PolicyLevel.LIBRARY, target)
    policy = Policy(rules=[rule])
    context = DecodedContext(app_id="00" * 8, signatures=tuple(str(s) for s in stack))
    decision = policy.evaluate(context)
    every_frame_matches = all(rule.signature_matches(str(s)) for s in stack)
    assert decision.allowed == every_frame_matches


@settings(max_examples=40, deadline=None)
@given(app_id=app_ids, indexes=fixed_indexes, payload=st.integers(min_value=0, max_value=5000))
def test_sanitizer_output_never_carries_options(app_id, indexes, payload):
    encoder = StackTraceEncoder()
    packet = IPPacket(
        src_ip="10.10.0.2",
        dst_ip="203.0.113.1",
        src_port=40001,
        dst_port=443,
        payload_size=payload,
        options=encoder.encode_option(app_id, indexes),
    )
    verdict, sanitized = PacketSanitizer().process(packet)
    assert verdict is Verdict.ACCEPT
    assert not sanitized.has_options
    assert sanitized.payload_size == packet.payload_size
    assert sanitized.flow_tuple == packet.flow_tuple


@settings(max_examples=40, deadline=None)
@given(
    stack=st.lists(signatures, min_size=1, max_size=5),
    deny_targets=st.lists(identifiers, max_size=3),
)
def test_policy_evaluation_is_deterministic(stack, deny_targets):
    policy = Policy.deny_libraries([f"com/{t}" for t in deny_targets])
    context = DecodedContext(app_id="11" * 8, signatures=tuple(str(s) for s in stack))
    assert policy.evaluate(context).verdict is policy.evaluate(context).verdict
