"""Property-based tests (hypothesis) for the telemetry subsystem.

Two invariants the audit pipeline stands on:

* **rotation is lossless** — whatever stream of enforcement records is
  appended to an :class:`~repro.telemetry.audit.AuditLog`, and however
  the ring capacity and segment size slice it, the spooled JSON
  segments replay to exactly the original stream (order, verdicts,
  attribution fields — everything), while the in-memory ring holds
  exactly the most recent ``capacity`` records and counts what it
  evicted;
* **detection is deterministic** — detectors are pure functions of the
  record stream (no clocks, no randomness), so replaying an identical
  stream through two fresh pipelines yields identical alerts and
  identical window tables; and the guarded fast path in
  :meth:`~repro.telemetry.pipeline.TelemetryPipeline.publish` is an
  optimisation, never a behaviour change.
"""

import tempfile

from hypothesis import given, settings, strategies as st

from repro.core.policy_enforcer import (
    REASON_DECODE_RANGE,
    REASON_UNKNOWN_APP,
    REASON_UNTAGGED,
    EnforcementRecord,
)
from repro.netstack.netfilter import Verdict
from repro.telemetry.audit import AuditLog
from repro.telemetry.detectors import default_detectors
from repro.telemetry.pipeline import TelemetryPipeline

DEVICES = ("10.10.0.2", "10.10.0.3", "10.10.1.4", "")
DESTS = ("203.0.113.9", "203.0.113.10", "198.51.100.7")

#: (app_id, package_name) pairs: enrolled apps, an unknown hash (no
#: package — the database could not resolve it) and the untagged case.
APPS = (
    ("aaaaaaaa", "com.alpha.app"),
    ("bbbbbbbb", "com.beta.app"),
    ("cccccccc", "com.gamma.app"),
    ("dddddddd", ""),
    ("", ""),
)

REASONS = (
    "",
    "allow",
    "matched deny rule com/flurry",
    REASON_UNTAGGED,
    REASON_UNKNOWN_APP,
    REASON_DECODE_RANGE,
)

#: Only the first two devices enrolled anything; app "cccccccc" is
#: enrolled nowhere, so valid-looking records naming it are mimicry.
PROVISIONED = {
    "10.10.0.2": frozenset({"aaaaaaaa"}),
    "10.10.0.3": frozenset({"aaaaaaaa", "bbbbbbbb"}),
}


@st.composite
def record_strategy(draw):
    app_id, package = draw(st.sampled_from(APPS))
    return EnforcementRecord(
        packet_id=draw(st.integers(min_value=0, max_value=2**31)),
        dst_ip=draw(st.sampled_from(DESTS)),
        verdict=draw(st.sampled_from(Verdict)),
        reason=draw(st.sampled_from(REASONS)),
        app_id=app_id,
        package_name=package,
        signatures=draw(
            st.one_of(
                st.just(()),
                st.just(("Lcom/alpha/app/Main;->run()V", "Lcom/flurry/sdk/Agent;->log()V")),
            )
        ),
        src_ip=draw(st.sampled_from(DEVICES)),
        payload_bytes=draw(st.integers(min_value=0, max_value=2048)),
    )


record_streams = st.lists(record_strategy(), max_size=120)


@settings(max_examples=40, deadline=None)
@given(
    records=record_streams,
    capacity=st.integers(min_value=1, max_value=64),
    segment_records=st.integers(min_value=1, max_value=17),
)
def test_segment_rotation_roundtrips_record_streams_losslessly(
    records, capacity, segment_records
):
    with tempfile.TemporaryDirectory(prefix="audit-prop-") as spool:
        log = AuditLog(capacity=capacity, spool_dir=spool, segment_records=segment_records)
        log.extend(records)
        log.flush()

        # The spool holds the complete stream, bit-for-bit, regardless of
        # how the ring bounded memory or the segment size split files.
        assert AuditLog.load_segments(spool) == records
        assert AuditLog.replay(spool, capacity=len(records) + 1) == records

        # The ring bound is exact and observable.
        assert list(log) == records[max(0, len(records) - capacity) :]
        assert log.total_appended == len(records)
        assert log.evicted == max(0, len(records) - capacity)


def _run_pipeline(records, fast_path: bool = True) -> TelemetryPipeline:
    pipeline = TelemetryPipeline(
        window_packets=32,
        detectors=default_detectors(
            provisioned=PROVISIONED, exfil_window_bytes=4096, burst=3
        ),
    )
    if not fast_path:
        # White-box: force every record through the full detector loop.
        pipeline._guarded = False
    for record in records:
        pipeline.publish(record, "gw0")
    return pipeline


@settings(max_examples=40, deadline=None)
@given(records=record_streams)
def test_detectors_are_deterministic_for_a_fixed_stream(records):
    first = _run_pipeline(records)
    second = _run_pipeline(records)
    assert first.alerts == second.alerts
    assert first.alert_counts() == second.alert_counts()
    assert first.aggregator.snapshot() == second.aggregator.snapshot()


@settings(max_examples=40, deadline=None)
@given(records=record_streams)
def test_publish_fast_path_never_changes_the_alert_stream(records):
    guarded = _run_pipeline(records, fast_path=True)
    full = _run_pipeline(records, fast_path=False)
    assert guarded.alerts == full.alerts


def test_adversarial_trace_is_deterministic_in_the_seed():
    """Two identically-seeded fleets build byte-identical attack scenarios
    (packet ids aside — those come from a global counter), and replaying
    either trace through the detector stack raises the same alerts."""
    from repro.core.deployment import BorderPatrolDeployment
    from repro.core.policy import Policy
    from repro.experiments.gateway_throughput import DEFAULT_DENY_LIBRARIES
    from repro.workloads.adversarial import AdversarialConfig, AdversarialWorkload
    from repro.workloads.corpus import CorpusConfig, CorpusGenerator
    from repro.workloads.fleet import DeviceFleet, DeviceFleetConfig

    def build_trace():
        apps = CorpusGenerator(CorpusConfig(n_apps=3, seed=5)).generate()
        deployment = BorderPatrolDeployment(
            policy=Policy.deny_libraries(DEFAULT_DENY_LIBRARIES, name="prop-base"),
            keep_records=False,
        )
        fleet = DeviceFleet(deployment, apps, DeviceFleetConfig(devices=6, seed=5))
        workload = AdversarialWorkload(fleet, AdversarialConfig(seed=11))
        return workload.build(exfil_budget_bytes=65536, size_threshold_bytes=131072)

    first, second = build_trace(), build_trace()
    assert set(first.packets_by_scenario) == set(second.packets_by_scenario)
    for scenario, packets in first.packets_by_scenario.items():
        shadow = second.packets_by_scenario[scenario]
        assert [
            (p.src_ip, p.dst_ip, p.src_port, p.dst_port, p.payload_size, p.options)
            for p in packets
        ] == [
            (p.src_ip, p.dst_ip, p.src_port, p.dst_port, p.payload_size, p.options)
            for p in shadow
        ]
    assert first.spoofed_package == second.spoofed_package
    assert first.revoked_package == second.revoked_package


# -- operator control-plane invariants (PR 7) ----------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    volumes=st.lists(
        st.tuples(
            st.sampled_from(DEVICES[:3]),
            st.sampled_from(DESTS),
            st.integers(min_value=1, max_value=500_000),
        ),
        min_size=1,
        max_size=60,
    ),
    folds=st.integers(min_value=1, max_value=5),
    shuffle_seed=st.integers(min_value=0, max_value=2**16),
)
def test_online_baselines_ignore_ingestion_order(volumes, folds, shuffle_seed):
    """EWMA + P² calibration is a function of the volume *tables*, not of
    dict insertion order: shuffled ingestion yields identical thresholds,
    caches and counters."""
    import random

    from repro.ops.baselines import OnlineExfilBaselines

    table = {}
    for device, dst, volume in volumes:
        table[(device, dst)] = table.get((device, dst), 0) + volume
    keys = list(table)
    random.Random(shuffle_seed).shuffle(keys)
    shuffled = {key: table[key] for key in keys}

    ordered_model = OnlineExfilBaselines(min_samples=1)
    shuffled_model = OnlineExfilBaselines(min_samples=1)
    for _ in range(folds):
        ordered_model.fold_volumes(table)
        shuffled_model.fold_volumes(shuffled)

    assert ordered_model.snapshot() == shuffled_model.snapshot()
    for device, dst in table:
        assert ordered_model.threshold(device, dst) == shuffled_model.threshold(
            device, dst
        )


@settings(max_examples=40, deadline=None)
@given(
    n_alerts=st.integers(min_value=1, max_value=40),
    fail_on=st.sets(st.integers(min_value=1, max_value=60), max_size=20),
    pump_every=st.integers(min_value=1, max_value=7),
)
def test_alert_bus_replay_covers_every_alert_after_sink_failures(
    n_alerts, fail_on, pump_every
):
    """At-least-once, property-stated: whatever deliveries a sink fails,
    the final flushed stream contains every published alert, in order,
    with no duplicates reaching a sink that confirms deliveries."""
    from repro.ops.bus import AlertBus, AlertSink, MemorySink
    from repro.telemetry.detectors import Alert

    class InjectedFailureSink(AlertSink):
        name = "flaky"

        def __init__(self):
            self.attempts = 0
            self.alerts = []

        def deliver(self, alert):
            self.attempts += 1
            if self.attempts in fail_on:
                raise RuntimeError("injected failure")
            self.alerts.append(alert)

    bus = AlertBus(clock=None)
    flaky = InjectedFailureSink()
    bus.add_sink(flaky)
    witness = bus.add_sink(MemorySink())

    published = []
    for n in range(n_alerts):
        alert = Alert(
            kind="exfil-volume", device=f"10.0.0.{n % 7}", detail=f"a{n}", seq=n
        )
        assert bus.publish(alert)
        published.append(alert)
        if (n + 1) % pump_every == 0:
            bus.pump()
    # One flush stops on no-progress when failures land back-to-back;
    # the injected failure set is finite, so a bounded retry loop (the
    # operator's crontab, morally) always drains the bus completely.
    for _ in range(len(fail_on) + 1):
        bus.flush()
        if not any(bus.lag().values()):
            break

    assert flaky.alerts == published
    assert witness.alerts == published
    assert bus.lag() == {"flaky": 0, "memory": 0}
    assert bus.delivery_failures["flaky"] == sum(
        1 for attempt in fail_on if attempt <= flaky.attempts
    )
