"""Tests for the baseline enforcement mechanisms."""

import pytest

from repro.baselines.ip_dns_filter import OnNetworkFilter
from repro.baselines.ondevice import AppLevelEnforcer
from repro.baselines.size_threshold import FlowSizeThresholdFilter
from repro.netstack.dns import DnsRegistry
from repro.netstack.ip import IPPacket
from repro.netstack.netfilter import Verdict
from repro.netstack.tcp import FlowKey


def make_packet(dst_ip="203.0.113.9", payload=100, src_port=40001, dst_port=443, package=""):
    provenance = {"package": package} if package else {}
    return IPPacket(
        src_ip="10.10.0.2",
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=dst_port,
        payload_size=payload,
        provenance=provenance,
    )


class TestOnNetworkFilter:
    def test_blocks_by_ip(self):
        ip_filter = OnNetworkFilter(blocked_ips={"203.0.113.9"})
        assert ip_filter.process(make_packet())[0] is Verdict.DROP
        assert ip_filter.process(make_packet(dst_ip="203.0.113.10"))[0] is Verdict.ACCEPT
        assert ip_filter.stats.packets_dropped == 1
        assert ip_filter.stats.packets_allowed == 1

    def test_blocks_by_dns_name(self):
        dns = DnsRegistry()
        graph_ip = dns.register("graph.facebook.com")
        ip_filter = OnNetworkFilter(dns=dns, blocked_names={"graph.facebook.com"})
        assert ip_filter.process(make_packet(dst_ip=graph_ip))[0] is Verdict.DROP

    def test_block_name_added_after_construction(self):
        dns = DnsRegistry()
        ip = dns.register("ads.example.com")
        ip_filter = OnNetworkFilter(dns=dns)
        assert ip_filter.process(make_packet(dst_ip=ip))[0] is Verdict.ACCEPT
        ip_filter.block_name("ads.example.com")
        assert ip_filter.process(make_packet(dst_ip=ip))[0] is Verdict.DROP

    def test_blocks_by_port_and_unblock(self):
        ip_filter = OnNetworkFilter(blocked_ports={8443})
        assert ip_filter.process(make_packet(dst_port=8443))[0] is Verdict.DROP
        ip_filter.block_ip("203.0.113.9")
        ip_filter.unblock_ip("203.0.113.9")
        assert ip_filter.process(make_packet())[0] is Verdict.ACCEPT

    def test_cannot_distinguish_contexts_on_shared_endpoint(self):
        """The structural weakness the case studies exploit: one endpoint,
        two purposes — the filter either blocks both or neither."""
        ip_filter = OnNetworkFilter(blocked_ips={"203.0.113.9"})
        login = make_packet()
        upload = make_packet(payload=100_000)
        assert ip_filter.process(login)[0] == ip_filter.process(upload)[0] == Verdict.DROP


class TestFlowSizeThreshold:
    def test_flow_below_threshold_passes(self):
        threshold = FlowSizeThresholdFilter(threshold_bytes=1000)
        assert threshold.process(make_packet(payload=400))[0] is Verdict.ACCEPT
        assert threshold.process(make_packet(payload=400))[0] is Verdict.ACCEPT

    def test_flow_exceeding_threshold_dropped(self):
        threshold = FlowSizeThresholdFilter(threshold_bytes=1000)
        threshold.process(make_packet(payload=800))
        verdict, _ = threshold.process(make_packet(payload=800))
        assert verdict is Verdict.DROP
        assert threshold.stats.flows_flagged == 1

    def test_fragmenting_across_sockets_evades_threshold(self):
        """§VII: splitting the upload across flows defeats volume triggers."""
        threshold = FlowSizeThresholdFilter(threshold_bytes=1000)
        verdicts = [
            threshold.process(make_packet(payload=900, src_port=41000 + i))[0] for i in range(10)
        ]
        # 9000 bytes were exfiltrated without a single drop.
        assert all(v is Verdict.ACCEPT for v in verdicts)
        assert threshold.stats.flows_flagged == 0

    def test_flow_volume_inspection(self):
        threshold = FlowSizeThresholdFilter(threshold_bytes=10_000)
        packet = make_packet(payload=100)
        threshold.process(packet)
        assert threshold.flow_volume(FlowKey.from_packet(packet)) == 100
        assert threshold.flagged_flows() == set()

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            FlowSizeThresholdFilter(threshold_bytes=0)


class TestAppLevelEnforcer:
    def test_blocklist_mode(self):
        enforcer = AppLevelEnforcer(blocked_packages={"com.bad.app"})
        assert enforcer.process(make_packet(package="com.bad.app"))[0] is Verdict.DROP
        assert enforcer.process(make_packet(package="com.good.app"))[0] is Verdict.ACCEPT

    def test_allowlist_mode(self):
        enforcer = AppLevelEnforcer(allowed_packages={"com.good.app"})
        assert enforcer.process(make_packet(package="com.good.app"))[0] is Verdict.ACCEPT
        assert enforcer.process(make_packet(package="com.other.app"))[0] is Verdict.DROP

    def test_cannot_mix_modes(self):
        with pytest.raises(ValueError):
            AppLevelEnforcer(blocked_packages={"a"}, allowed_packages={"b"})
        enforcer = AppLevelEnforcer(allowed_packages={"a"})
        with pytest.raises(ValueError):
            enforcer.block_package("b")

    def test_app_granularity_cannot_separate_library_traffic(self):
        """CRePE/ADM-style enforcement is all-or-nothing per app: blocking the
        app's analytics also blocks its legitimate traffic (contrast with the
        method-level policies exercised in the integration tests)."""
        enforcer = AppLevelEnforcer(blocked_packages={"com.mixed.app"})
        legitimate = make_packet(package="com.mixed.app", payload=100)
        analytics = make_packet(package="com.mixed.app", payload=700)
        assert enforcer.process(legitimate)[0] is Verdict.DROP
        assert enforcer.process(analytics)[0] is Verdict.DROP

    def test_block_package_after_construction(self):
        enforcer = AppLevelEnforcer()
        assert enforcer.process(make_packet(package="com.x"))[0] is Verdict.ACCEPT
        enforcer.block_package("com.x")
        assert enforcer.process(make_packet(package="com.x"))[0] is Verdict.DROP
