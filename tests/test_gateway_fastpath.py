"""Hardening tests for the gateway fast path.

Covers the three tentpole layers — compiled policies, the conntrack-style
flow cache, and the sharded (queue-balanced) enforcer — plus the
iptables chain semantics they plug into.  The common thread: the fast
path must be behaviourally indistinguishable from the paper's naive
decode-and-evaluate pipeline.
"""

import pytest

from repro.core.database import DatabaseEntry, SignatureDatabase
from repro.core.encoding import StackTraceEncoder
from repro.core.packet_sanitizer import PacketSanitizer
from repro.core.policy import (
    DecodedContext,
    Policy,
    PolicyAction,
    PolicyLevel,
    PolicyRule,
)
from repro.core.policy_enforcer import FlowCache, PolicyEnforcer
from repro.netstack.ip import IPOptions, IPPacket
from repro.netstack.netfilter import (
    Iptables,
    IptablesRule,
    RuleTarget,
    Verdict,
    flow_hash,
)
from repro.netstack.sharding import ShardedEnforcer

APP_MD5 = "aabbccdd" * 4
APP_ID = APP_MD5[:16]

SIGNATURES = [
    "Lcom/test/app/MainActivity;->onClick(Landroid/view/View;)V",
    "Lcom/test/app/net/ApiClient;->login(Ljava/lang/String;Ljava/lang/String;)Z",
    "Lcom/test/app/net/ApiClient;->upload([B)Z",
    "Lcom/flurry/sdk/FlurryAgent;->logEvent(Ljava/lang/String;)V",
    "Lcom/squareup/okhttp3/client/HttpClient;->execute(Ljava/lang/String;)V",
]


@pytest.fixture()
def database():
    db = SignatureDatabase()
    db.add(
        DatabaseEntry(
            md5=APP_MD5,
            app_id=APP_ID,
            package_name="com.test.app",
            signatures=list(SIGNATURES),
        )
    )
    return db


def make_packet(indexes, src_port=40001, dst_ip="203.0.113.9", app_id=APP_ID):
    options = StackTraceEncoder().encode_option(app_id, indexes)
    return IPPacket(
        src_ip="10.10.0.2",
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=443,
        payload_size=256,
        options=options,
    )


POLICIES = [
    Policy.allow_all(),
    Policy.deny_libraries(["com/flurry"]),
    Policy(rules=[PolicyRule(PolicyAction.DENY, PolicyLevel.METHOD, SIGNATURES[2])]),
    Policy(rules=[PolicyRule(PolicyAction.DENY, PolicyLevel.HASH, APP_MD5)]),
    Policy(rules=[PolicyRule(PolicyAction.ALLOW, PolicyLevel.LIBRARY, "com/test/app")]),
    Policy(
        rules=[
            PolicyRule(PolicyAction.DENY, PolicyLevel.CLASS, "com/flurry/sdk/FlurryAgent"),
            PolicyRule(PolicyAction.ALLOW, PolicyLevel.HASH, APP_ID),
        ]
    ),
    Policy(default_action=PolicyAction.DENY),
]

STACKS = [(0,), (0, 1), (0, 2), (0, 3), (3,), (0, 1, 4), ()]


class TestCompiledPolicyParity:
    @pytest.mark.parametrize("policy_index", range(len(POLICIES)))
    def test_compiled_evaluation_matches_string_evaluation(self, database, policy_index):
        policy = POLICIES[policy_index]
        compiled_app = policy.compile(database).for_app(APP_ID)
        assert compiled_app is not None
        for indexes in STACKS:
            context = DecodedContext(
                app_id=APP_ID,
                signatures=tuple(SIGNATURES[i] for i in indexes),
                app_md5=APP_MD5,
                package_name="com.test.app",
            )
            slow = policy.evaluate(context)
            fast = compiled_app.evaluate_indexes(indexes)
            assert fast.verdict is slow.verdict
            assert fast.reason == slow.reason
            assert fast.matched_rule == slow.matched_rule

    def test_unknown_app_compiles_to_none(self, database):
        compiled = Policy.allow_all().compile(database)
        assert compiled.for_app("ff" * 8) is None

    def test_late_enrolled_app_compiles_on_first_lookup(self, database):
        compiled = Policy.deny_libraries(["com/flurry"]).compile(database)
        other_id = "11" * 8
        assert compiled.for_app(other_id) is None
        database.add(
            DatabaseEntry(
                md5="11" * 16,
                app_id=other_id,
                package_name="com.other.app",
                signatures=list(SIGNATURES),
            )
        )
        # The database generation moved, so the negative result is dropped.
        recompiled = compiled.for_app(other_id)
        assert recompiled is not None
        assert recompiled.evaluate_indexes((3,)).verdict is Verdict.DROP

    def test_uncompilable_rule_falls_back_to_string_path(self, database):
        class ExplodingRule(PolicyRule):
            # Lowering enumerates the app's whole signature table; this
            # rule chokes on a signature the replayed stacks never carry,
            # so only compilation fails — evaluation stays usable.
            def signature_matches(self, signature):
                if "HttpClient" in signature:
                    raise RuntimeError("cannot lower this rule")
                return super().signature_matches(signature)

        policy = Policy(
            rules=[ExplodingRule(PolicyAction.DENY, PolicyLevel.LIBRARY, "com/flurry")]
        )
        assert policy.compile(database).for_app(APP_ID) is None
        enforcer = PolicyEnforcer(database=database, policy=policy, flow_cache_size=0)
        verdict, _ = enforcer.process(make_packet([0, 3]))
        assert verdict is Verdict.DROP
        assert enforcer.stats.fallback_evals == 1
        assert enforcer.stats.compiled_evals == 0


class TestFlowCache:
    def test_repeat_packets_hit_the_cache(self, database):
        enforcer = PolicyEnforcer(database=database, policy=Policy.deny_libraries(["com/flurry"]))
        for _ in range(5):
            verdict, _ = enforcer.process(make_packet([0, 1]))
            assert verdict is Verdict.ACCEPT
        assert enforcer.stats.cache_misses == 1
        assert enforcer.stats.cache_hits == 4
        assert enforcer.stats.full_decodes == 1

    def test_cached_records_match_uncached_records(self, database):
        cached = PolicyEnforcer(database=database, policy=Policy.deny_libraries(["com/flurry"]))
        naive = PolicyEnforcer(
            database=database,
            policy=Policy.deny_libraries(["com/flurry"]),
            compile_policy=False,
            flow_cache_size=0,
        )
        for _ in range(3):
            packet = make_packet([0, 3])
            cached.process(packet)
            naive.process(packet)
        for fast, slow in zip(cached.records, naive.records):
            assert fast == slow

    def test_different_tag_bytes_on_same_flow_miss(self, database):
        enforcer = PolicyEnforcer(database=database)
        enforcer.process(make_packet([0, 1]))
        enforcer.process(make_packet([0, 2]))
        assert enforcer.stats.cache_misses == 2
        assert enforcer.stats.cache_hits == 0

    def test_lru_eviction_counts(self, database):
        enforcer = PolicyEnforcer(database=database, flow_cache_size=2)
        enforcer.process(make_packet([0], src_port=40001))
        enforcer.process(make_packet([1], src_port=40002))
        enforcer.process(make_packet([2], src_port=40003))  # evicts the first flow
        assert enforcer.stats.cache_evictions == 1
        enforcer.process(make_packet([0], src_port=40001))  # must re-miss
        assert enforcer.stats.cache_misses == 4
        assert len(enforcer.flow_cache) == 2

    def test_set_policy_invalidates_cache_and_changes_verdict(self, database):
        enforcer = PolicyEnforcer(database=database, policy=Policy.allow_all())
        packet = make_packet([0, 3])
        assert enforcer.process(packet)[0] is Verdict.ACCEPT
        assert enforcer.process(packet)[0] is Verdict.ACCEPT
        assert len(enforcer.flow_cache) == 1

        enforcer.set_policy(Policy.deny_libraries(["com/flurry"]))
        assert len(enforcer.flow_cache) == 0
        assert enforcer.stats.cache_invalidations == 1
        # Stale cached ACCEPT must not leak through the policy change.
        assert enforcer.process(packet)[0] is Verdict.DROP

    def test_empty_policy_object_is_kept_by_reference(self, database):
        # Regression: `policy or Policy.allow_all()` silently replaced an
        # *empty* policy (falsy via __len__) with a new object, severing
        # the caller's reference before any rules were added.
        empty = Policy(name="starts-empty")
        enforcer = PolicyEnforcer(database=database, policy=empty)
        assert enforcer.policy is empty

    def test_in_place_add_rule_takes_effect_immediately(self, database):
        # The naive path read the live rule list every packet; the fast
        # path must honour policy.add_rule without an explicit set_policy.
        policy = Policy.allow_all()
        enforcer = PolicyEnforcer(database=database, policy=policy)
        packet = make_packet([0, 3])
        assert enforcer.process(packet)[0] is Verdict.ACCEPT
        assert enforcer.process(packet)[0] is Verdict.ACCEPT  # cached
        policy.add_rule(PolicyRule(PolicyAction.DENY, PolicyLevel.LIBRARY, "com/flurry"))
        assert enforcer.process(packet)[0] is Verdict.DROP
        assert enforcer.stats.cache_invalidations == 1

    def test_in_place_rule_removal_takes_effect_immediately(self, database):
        policy = Policy.deny_libraries(["com/flurry"])
        enforcer = PolicyEnforcer(database=database, policy=policy)
        packet = make_packet([0, 3])
        assert enforcer.process(packet)[0] is Verdict.DROP
        assert enforcer.process(packet)[0] is Verdict.DROP  # cached
        policy.rules.clear()
        # Deleted rules must not keep enforcing out of the caches.
        assert enforcer.process(packet)[0] is Verdict.ACCEPT
        assert enforcer.stats.cache_invalidations == 1

    def test_database_mutation_invalidates_cached_verdicts(self, database):
        enforcer = PolicyEnforcer(database=database)
        packet = make_packet([0])
        assert enforcer.process(packet)[0] is Verdict.ACCEPT
        assert enforcer.process(packet)[0] is Verdict.ACCEPT  # cache hit
        database.remove(APP_MD5)
        # A revoked app must not keep riding its stale cached ACCEPT.
        assert enforcer.process(packet)[0] is Verdict.DROP
        assert enforcer.records[-1].reason == "unknown app hash"
        assert enforcer.stats.cache_invalidations == 1

    def test_clear_records_keeps_stats_and_cache(self, database):
        enforcer = PolicyEnforcer(database=database)
        enforcer.process(make_packet([0]))
        enforcer.clear_records()
        assert enforcer.records == []
        assert enforcer.stats.packets_seen == 1
        assert len(enforcer.flow_cache) == 1

    def test_reset_clears_cache(self, database):
        enforcer = PolicyEnforcer(database=database)
        enforcer.process(make_packet([0]))
        assert len(enforcer.flow_cache) == 1
        enforcer.reset()
        assert len(enforcer.flow_cache) == 0
        assert enforcer.stats.cache_misses == 0

    def test_flow_cache_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FlowCache(capacity=0)

    def test_untagged_and_unknown_packets_bypass_the_cache(self, database):
        enforcer = PolicyEnforcer(
            database=database, drop_untagged=False, drop_unknown_apps=False
        )
        untagged = IPPacket(
            src_ip="10.10.0.2", dst_ip="203.0.113.9", src_port=40001, dst_port=443,
            payload_size=64, options=IPOptions(),
        )
        enforcer.process(untagged)
        enforcer.process(make_packet([0], app_id="ee" * 8))
        assert enforcer.stats.untagged_packets == 1
        assert enforcer.stats.unknown_apps == 1
        assert enforcer.stats.cache_hits == 0
        assert len(enforcer.flow_cache) == 0


class TestDistinctDecodedStacks:
    def test_decoded_stacks_to_returns_distinct_stacks_in_first_seen_order(self, database):
        enforcer = PolicyEnforcer(database=database, flow_cache_size=0)
        enforcer.process(make_packet([0, 1]))
        enforcer.process(make_packet([0, 2]))
        enforcer.process(make_packet([0, 1]))  # duplicate of the first stack
        enforcer.process(make_packet([0, 1], dst_ip="203.0.113.77"))
        stacks = enforcer.decoded_stacks_to("203.0.113.9")
        assert len(stacks) == 2
        assert stacks[0] == (SIGNATURES[0], SIGNATURES[1])
        assert stacks[1] == (SIGNATURES[0], SIGNATURES[2])


class TestShardedEnforcer:
    def test_same_flow_always_lands_on_same_shard(self, database):
        sharded = ShardedEnforcer(database=database, num_shards=4)
        packet = make_packet([0, 1])
        assert len({sharded.shard_index(packet) for _ in range(10)}) == 1

    def test_flows_spread_across_shards(self, database):
        sharded = ShardedEnforcer(database=database, num_shards=4)
        indices = {
            sharded.shard_index(make_packet([0], src_port=40000 + i)) for i in range(64)
        }
        assert len(indices) > 1

    def test_aggregate_stats_equal_sum_of_shard_stats(self, database):
        sharded = ShardedEnforcer(
            database=database, policy=Policy.deny_libraries(["com/flurry"]), num_shards=3
        )
        packets = [make_packet([0, i % 4], src_port=41000 + i) for i in range(40)]
        sharded.process_batch(packets)
        total = sharded.aggregate_stats()
        assert total.packets_seen == 40
        assert total.packets_seen == sum(s.stats.packets_seen for s in sharded.shards)
        assert total.packets_dropped == sum(s.stats.packets_dropped for s in sharded.shards)
        assert total.cache_misses == sum(s.stats.cache_misses for s in sharded.shards)
        assert total.full_decodes == sum(s.stats.full_decodes for s in sharded.shards)

    def test_process_batch_preserves_input_order_and_verdicts(self, database):
        policy = Policy.deny_libraries(["com/flurry"])
        sharded = ShardedEnforcer(database=database, policy=policy, num_shards=4)
        single = PolicyEnforcer(database=database, policy=policy)
        packets = [make_packet([0, i % 4], src_port=42000 + i) for i in range(32)]
        results = sharded.process_batch(packets)
        assert [p.packet_id for _, p in results] == [p.packet_id for p in packets]
        expected = [single.process(p)[0] for p in packets]
        assert [verdict for verdict, _ in results] == expected

    def test_process_batch_shape_matches_single_enforcer(self, database):
        """Either enforcer type can sit behind deployment.enforcer."""
        packets = [make_packet([0], src_port=45000 + i) for i in range(8)]
        single = PolicyEnforcer(database=database).process_batch(packets)
        sharded = ShardedEnforcer(database=database, num_shards=3).process_batch(packets)
        assert type(single) is type(sharded) is list
        assert [v for v, _ in single] == [v for v, _ in sharded]

    def test_process_batch_timed_models_parallel_wall_clock(self, database):
        sharded = ShardedEnforcer(database=database, num_shards=4)
        packets = [make_packet([0, i % 4], src_port=46000 + i) for i in range(32)]
        batch = sharded.process_batch_timed(packets)
        assert batch.packets == 32
        assert sum(batch.shard_packet_counts) == 32
        assert batch.parallel_wall_s <= batch.serial_wall_s

    def test_set_policy_propagates_to_every_shard(self, database):
        sharded = ShardedEnforcer(database=database, policy=Policy.allow_all(), num_shards=3)
        packets = [make_packet([3], src_port=43000 + i) for i in range(12)]
        for packet in packets:
            assert sharded.process(packet)[0] is Verdict.ACCEPT
        sharded.set_policy(Policy.deny_libraries(["com/flurry"]))
        for shard in sharded.shards:
            assert len(shard.flow_cache) == 0
        for packet in packets:
            assert sharded.process(packet)[0] is Verdict.DROP

    def test_needs_at_least_one_shard(self, database):
        with pytest.raises(ValueError):
            ShardedEnforcer(database=database, num_shards=0)


class TestShardedDeployment:
    """BorderPatrolDeployment(enforcer_shards=N) end-to-end."""

    @pytest.fixture()
    def sharded_deployment(self, enterprise_network):
        from repro.core.deployment import BorderPatrolDeployment

        return BorderPatrolDeployment(network=enterprise_network, enforcer_shards=3)

    def test_gateway_installs_queue_balance_range(self, sharded_deployment):
        rules = sharded_deployment.network.gateway.rules()
        balance = [rule.queue_balance for rule in rules if rule.queue_balance]
        assert balance == [(100, 102)]
        for queue_num in range(100, 103):
            assert sharded_deployment.network.gateway.queue(queue_num).is_bound

    def test_sharded_enforcement_matches_single_queue(self, simple_app, enterprise_network):
        from repro.core.deployment import BorderPatrolDeployment
        from repro.network.topology import EnterpriseNetwork

        apk, behavior = simple_app
        outcomes = {}
        for shards in (1, 3):
            network = EnterpriseNetwork()
            for endpoint in sorted(behavior.endpoints()):
                network.add_server(endpoint)
            deployment = BorderPatrolDeployment(network=network, enforcer_shards=shards)
            device = deployment.provision_device(name=f"dev-{shards}")
            process = deployment.install_and_launch(device, apk, behavior)
            deployment.set_policy(Policy.deny_libraries(["com/flurry"]))
            outcomes[shards] = {
                name: process.invoke(name).completed
                for name in ("login", "upload", "analytics")
            }
        assert outcomes[1] == outcomes[3]
        assert outcomes[3]["login"] and not outcomes[3]["analytics"]

    def test_deployment_reset_clears_every_shard(self, sharded_deployment, simple_app):
        apk, behavior = simple_app
        device = sharded_deployment.provision_device()
        process = sharded_deployment.install_and_launch(device, apk, behavior)
        process.invoke("login")
        assert sharded_deployment.enforcer.stats.packets_seen > 0
        sharded_deployment.reset_observations()
        assert sharded_deployment.enforcer.stats.packets_seen == 0


class TestIptablesChainSemantics:
    def test_accept_target_stops_chain_before_later_queue(self, database):
        class NeverCalled:
            def process(self, packet):  # pragma: no cover - must not run
                raise AssertionError("ACCEPT target must end the chain")

        table = Iptables()
        table.append_rule(IptablesRule(target=RuleTarget.ACCEPT, dst_port=443))
        table.append_rule(IptablesRule(target=RuleTarget.QUEUE, queue_num=1))
        table.bind_queue(1, NeverCalled())
        verdict, _, latency = table.process(make_packet([0]))
        assert verdict is Verdict.ACCEPT
        assert latency == 0.0

    def test_chained_enforcer_and_sanitizer_queues(self, database):
        table = Iptables()
        table.append_rule(IptablesRule(target=RuleTarget.QUEUE, queue_num=1))
        table.append_rule(IptablesRule(target=RuleTarget.QUEUE, queue_num=2))
        enforcer = PolicyEnforcer(database=database, policy=Policy.allow_all())
        sanitizer = PacketSanitizer()
        table.bind_queue(1, enforcer, latency_ms=0.5)
        table.bind_queue(2, sanitizer, latency_ms=0.25)
        verdict, out, latency = table.process(make_packet([0, 1]))
        assert verdict is Verdict.ACCEPT
        assert not out.has_options  # sanitizer ran after the enforcer accepted
        assert latency == pytest.approx(0.75)

    def test_enforcer_drop_skips_sanitizer(self, database):
        table = Iptables()
        table.append_rule(IptablesRule(target=RuleTarget.QUEUE, queue_num=1))
        table.append_rule(IptablesRule(target=RuleTarget.QUEUE, queue_num=2))
        enforcer = PolicyEnforcer(database=database, policy=Policy.deny_libraries(["com/flurry"]))
        sanitizer = PacketSanitizer()
        table.bind_queue(1, enforcer)
        table.bind_queue(2, sanitizer)
        verdict, out, _ = table.process(make_packet([0, 3]))
        assert verdict is Verdict.DROP
        assert out.has_options  # never reached the sanitizer
        assert sanitizer.stats.packets_seen == 0

    def test_unbound_queue_fails_open_mid_chain(self, database):
        table = Iptables()
        table.append_rule(IptablesRule(target=RuleTarget.QUEUE, queue_num=1))
        table.append_rule(IptablesRule(target=RuleTarget.QUEUE, queue_num=2))
        sanitizer = PacketSanitizer()
        table.bind_queue(2, sanitizer, latency_ms=0.5)
        verdict, out, latency = table.process(make_packet([0]))
        assert verdict is Verdict.ACCEPT
        assert not out.has_options
        assert latency == pytest.approx(0.5)

    def test_queue_balance_routes_flows_deterministically(self, database):
        table = Iptables()
        table.append_rule(
            IptablesRule(target=RuleTarget.QUEUE, queue_balance=(10, 13))
        )
        sharded = ShardedEnforcer(database=database, num_shards=4)
        table.bind_queue_balance(10, sharded.shards, latency_ms=0.1)
        packets = [make_packet([0], src_port=44000 + i) for i in range(50)]
        for packet in packets:
            expected_queue = 10 + flow_hash(packet) % 4
            verdict, _, latency = table.process(packet)
            assert verdict is Verdict.ACCEPT
            assert latency == pytest.approx(0.1)
            assert table.queue(expected_queue).stats.received >= 1
        received = sum(table.queue(q).stats.received for q in range(10, 14))
        assert received == 50
        # Flow-hash routing and shard routing agree, so every shard's
        # packet count equals its queue's packet count.
        for offset, shard in enumerate(sharded.shards):
            assert shard.stats.packets_seen == table.queue(10 + offset).stats.received

    def test_queue_balance_range_validation(self):
        with pytest.raises(ValueError):
            Iptables().append_rule(
                IptablesRule(target=RuleTarget.QUEUE, queue_balance=(5, 3))
            )
