"""Tests for the workload generators: library catalogue, corpus, case-study apps, stress app."""

import random

import pytest

from repro.android.device import Device
from repro.core.database import canonical_signature_order
from repro.network.topology import EnterpriseNetwork
from repro.workloads.apps import build_box_like_app, build_calendar_app, build_cloud_storage_app
from repro.workloads.corpus import CorpusConfig, CorpusGenerator
from repro.workloads.libraries import (
    LI_LIST_SIZE,
    builtin_catalog,
    li_library_list,
)
from repro.workloads.stress import STRESS_SERVER_NAME, build_stress_app, run_stress_test


class TestLibraryCatalog:
    def test_builtin_catalog_contents(self):
        catalog = builtin_catalog()
        assert catalog.get("com.flurry.sdk") is not None
        assert catalog.get("com.facebook") is not None
        assert catalog.http_clients()
        assert catalog.by_category("advertisement")
        assert len(catalog.exfiltrating()) > 10
        assert len(catalog) > 40

    def test_facebook_profile_has_login_and_analytics(self):
        facebook = builtin_catalog().get("com.facebook")
        names = {b.name for b in facebook.behaviors}
        assert "facebook_login" in names and "facebook_app_events" in names
        endpoints = {b.endpoint for b in facebook.behaviors}
        assert endpoints == {"graph.facebook.com"}
        desirability = {b.name: b.desirable for b in facebook.behaviors}
        assert desirability["facebook_login"] and not desirability["facebook_app_events"]

    def test_http_clients_have_no_behaviors(self):
        catalog = builtin_catalog()
        for profile in catalog.http_clients():
            assert profile.behaviors == ()

    def test_popularity_weighted_sampling(self):
        catalog = builtin_catalog()
        rng = random.Random(1)
        sampled = catalog.sample(rng, 5)
        assert len(sampled) == 5
        assert len({p.package for p in sampled}) == 5

    def test_li_list_size_and_content(self):
        catalog = builtin_catalog()
        li_list = li_library_list(catalog)
        assert len(li_list) == LI_LIST_SIZE
        assert "com/flurry/sdk" in li_list
        assert len(set(li_list)) == LI_LIST_SIZE
        # Identity / HTTP libraries must not be flagged.
        assert "com/facebook" not in li_list
        assert "org/apache/http" not in li_list


class TestCorpusGenerator:
    @pytest.fixture(scope="class")
    def corpus(self):
        return CorpusGenerator(CorpusConfig(n_apps=60, seed=13)).generate()

    def test_corpus_size_and_unique_packages(self, corpus):
        assert len(corpus) == 60
        assert len({app.package_name for app in corpus}) == 60

    def test_generation_is_deterministic(self):
        config = CorpusConfig(n_apps=10, seed=42)
        first = CorpusGenerator(config).generate()
        second = CorpusGenerator(config).generate()
        assert [a.apk.md5 for a in first] == [a.apk.md5 for a in second]
        assert [a.designed_ioi_endpoints for a in first] == [a.designed_ioi_endpoints for a in second]

    def test_every_app_has_core_functionality_and_libraries(self, corpus):
        for app in corpus:
            assert "login" in app.behavior.names()
            assert app.libraries
            assert app.apk.manifest.can_use_network

    def test_call_chains_reference_real_dex_methods(self, corpus):
        for app in corpus[:10]:
            known = {str(s) for s in canonical_signature_order(app.apk.parse_dex_files())}
            for functionality in app.behavior:
                for signature in functionality.call_chain:
                    assert str(signature) in known

    def test_ioi_apps_have_shared_endpoints(self, corpus):
        ioi_apps = [a for a in corpus if a.designed_ioi_count > 0]
        assert ioi_apps, "a 60-app corpus should contain at least one IoI app"
        for app in ioi_apps:
            for endpoint in app.designed_ioi_endpoints:
                users = [f for f in app.behavior if endpoint in f.endpoints()]
                assert len(users) >= 2
                chains = {f.call_chain for f in users}
                assert len(chains) >= 2

    def test_ioi_fraction_tracks_configuration(self):
        generous = CorpusGenerator(CorpusConfig(n_apps=120, seed=5, ioi_probability=0.5)).generate()
        fraction = sum(1 for a in generous if a.designed_ioi_count) / len(generous)
        assert 0.3 <= fraction <= 0.7

    def test_cross_package_apps_include_http_client(self, corpus):
        cross = [a for a in corpus if a.ioi_style == "cross_package"]
        catalog = builtin_catalog()
        for app in cross:
            assert any(
                catalog.get(lib) is not None and catalog.get(lib).category == "http"
                for lib in app.libraries
            )

    def test_register_endpoints(self, corpus):
        network = EnterpriseNetwork()
        count = CorpusGenerator.register_endpoints(network, list(corpus[:10]))
        assert count == len({e for a in corpus[:10] for e in a.endpoints()})
        for app in corpus[:10]:
            for endpoint in app.endpoints():
                assert network.dns.knows_name(endpoint)


class TestCaseStudyApps:
    def test_cloud_storage_app_single_endpoint(self):
        app = build_cloud_storage_app()
        endpoints = app.behavior.endpoints()
        assert endpoints == {app.endpoints["api"]}
        assert not app.behavior.get("upload").desirable
        assert app.behavior.get("download").desirable
        assert "UploadTask" in str(app.signature("upload"))

    def test_box_like_app_shares_upload_and_browse_endpoint(self):
        app = build_box_like_app()
        upload_endpoint = app.behavior.get("upload").requests[0].endpoint
        browse_endpoint = app.behavior.get("browse").requests[0].endpoint
        download_endpoint = app.behavior.get("download").requests[0].endpoint
        assert upload_endpoint == browse_endpoint
        assert download_endpoint != upload_endpoint

    def test_calendar_app_facebook_endpoints(self):
        app = build_calendar_app()
        login = app.behavior.get("login_with_facebook")
        analytics = app.behavior.get("facebook_analytics")
        assert login.requests[0].endpoint == analytics.requests[0].endpoint == "graph.facebook.com"
        assert login.desirable and not analytics.desirable
        assert login.call_chain != analytics.call_chain

    def test_case_study_apks_are_analyzable(self):
        for app in (build_cloud_storage_app(), build_box_like_app(), build_calendar_app()):
            signatures = canonical_signature_order(app.apk.parse_dex_files())
            known = {str(s) for s in signatures}
            for functionality in app.behavior:
                for signature in functionality.call_chain:
                    assert str(signature) in known


class TestStressApp:
    def test_stress_app_shape(self):
        app = build_stress_app()
        assert app.behavior.names() == ["http_get"]
        request = app.behavior.get("http_get").requests[0]
        assert request.endpoint == STRESS_SERVER_NAME
        assert request.download_bytes == 297

    def test_run_stress_test_measures_latency(self):
        app = build_stress_app()
        network = EnterpriseNetwork()
        network.add_server(STRESS_SERVER_NAME, response_size=297)
        device = Device(network=network, xposed_installed=False)
        device.install(app.apk, app.behavior)
        process = device.launch(app.package_name)
        result = run_stress_test(process, iterations=50, configuration="unit-test")
        assert result.iterations == 50
        assert len(result.per_request_ms) == 50
        assert result.mean_ms > 0
        assert result.median_ms > 0
        assert result.total_ms == pytest.approx(sum(result.per_request_ms))

    def test_run_stress_test_rejects_zero_iterations(self):
        app = build_stress_app()
        device = Device(xposed_installed=False)
        device.install(app.apk, app.behavior)
        process = device.launch(app.package_name)
        with pytest.raises(ValueError):
            run_stress_test(process, iterations=0)
