"""Tests for the dex builder, serializer/parser and class hierarchy."""

import pytest

from repro.dex.builder import ClassSpec, DexBuilder, LibraryTemplate, MethodSpec
from repro.dex.hierarchy import ClassHierarchy
from repro.dex.parser import DexFormatError, DexParser, DexSerializer


class TestDexBuilder:
    def test_build_simple_class(self):
        builder = DexBuilder()
        handle = builder.add_class("com.a.Main")
        handle.add_method("run")
        handle.add_constructor()
        dex = builder.build()
        assert dex.class_count == 1
        assert dex.method_count == 2

    def test_line_numbers_do_not_overlap_within_a_source_file(self):
        builder = DexBuilder()
        handle = builder.add_class("com.a.Main")
        first = handle.add_method("one")
        second = handle.add_method("two")
        assert first.debug.line_end < second.debug.line_start

    def test_strip_debug_info(self):
        builder = DexBuilder(strip_debug_info=True)
        handle = builder.add_class("com.a.Main")
        method = handle.add_method("run")
        assert method.debug.stripped

    def test_add_library_template(self):
        template = LibraryTemplate(
            name="Tracker",
            package="com.tracker.sdk",
            category="analytics",
            endpoints=("collect.tracker.io",),
            classes=(
                ClassSpec(
                    class_name="com.tracker.sdk.Collector",
                    methods=(MethodSpec(name="submit", parameter_types=("java.lang.String",)),),
                ),
            ),
        )
        builder = DexBuilder()
        added = builder.add_library(template)
        dex = builder.build()
        assert len(added) == 1
        assert dex.get_class("Lcom/tracker/sdk/Collector;") is not None
        assert template.method_count() == 1
        assert template.class_names() == ["com.tracker.sdk.Collector"]

    def test_multidex_split_keeps_classes_whole(self):
        builder = DexBuilder()
        # Three classes of 30,000 methods each exceed the 65,536 limit.
        for i in range(3):
            handle = builder.add_class(f"com.big.C{i}")
            for j in range(30_000):
                handle.add_method(f"m{j}")
        dex_files = builder.build_multidex()
        assert len(dex_files) == 2
        assert sum(d.method_count for d in dex_files) == 90_000
        for dex in dex_files:
            assert dex.method_count <= 65_536

    def test_build_raises_when_single_dex_overflows(self):
        builder = DexBuilder()
        for i in range(3):
            handle = builder.add_class(f"com.big.C{i}")
            for j in range(30_000):
                handle.add_method(f"m{j}")
        with pytest.raises(Exception):
            builder.build()


class TestSerializerParser:
    def _round_trip(self, dex):
        blob = DexSerializer().serialize(dex)
        return DexParser().parse(blob)

    def test_round_trip_preserves_everything(self, simple_dex_builder):
        original = simple_dex_builder.build()
        parsed = self._round_trip(original)
        assert parsed.class_count == original.class_count
        assert parsed.method_count == original.method_count
        assert [str(s) for s in parsed.sorted_signatures()] == [
            str(s) for s in original.sorted_signatures()
        ]
        # Debug info survives the round trip (needed for overload resolution).
        for descriptor, class_def in original.classes.items():
            parsed_class = parsed.get_class(descriptor)
            for method, parsed_method in zip(class_def.methods, parsed_class.methods):
                assert method.debug == parsed_method.debug

    def test_parser_rejects_bad_magic(self):
        with pytest.raises(DexFormatError):
            DexParser().parse(b"NOTADEX")

    def test_parser_rejects_truncated_blob(self, simple_dex_builder):
        blob = DexSerializer().serialize(simple_dex_builder.build())
        with pytest.raises(DexFormatError):
            DexParser().parse(blob[: len(blob) // 2])

    def test_parse_many(self, simple_dex_builder):
        blob = DexSerializer().serialize(simple_dex_builder.build())
        parsed = DexParser().parse_many([blob, blob])
        assert len(parsed) == 2


class TestClassHierarchy:
    def _hierarchy(self):
        builder = DexBuilder()
        builder.add_class("com.a.Base")
        builder.add_class("com.a.Middle", superclass="com.a.Base")
        builder.add_class("com.a.Leaf", superclass="com.a.Middle")
        builder.add_class("com.b.Other")
        return ClassHierarchy.from_dex_files([builder.build()])

    def test_superclass_chain(self):
        hierarchy = self._hierarchy()
        chain = hierarchy.superclass_chain("Lcom/a/Leaf;")
        assert chain == ["Lcom/a/Middle;", "Lcom/a/Base;", "Ljava/lang/Object;"]

    def test_subclasses_transitive(self):
        hierarchy = self._hierarchy()
        assert hierarchy.subclasses("Lcom/a/Base;") == {"Lcom/a/Middle;", "Lcom/a/Leaf;"}
        assert hierarchy.subclasses("Lcom/a/Base;", transitive=False) == {"Lcom/a/Middle;"}

    def test_is_subclass_of(self):
        hierarchy = self._hierarchy()
        assert hierarchy.is_subclass_of("Lcom/a/Leaf;", "Lcom/a/Base;")
        assert not hierarchy.is_subclass_of("Lcom/b/Other;", "Lcom/a/Base;")

    def test_topological_order_parents_first(self):
        hierarchy = self._hierarchy()
        order = [c.descriptor for c in hierarchy.topological_classes()]
        assert order.index("Lcom/a/Base;") < order.index("Lcom/a/Middle;")
        assert order.index("Lcom/a/Middle;") < order.index("Lcom/a/Leaf;")
        assert len(order) == len(hierarchy)

    def test_topological_order_is_deterministic(self):
        assert [c.descriptor for c in self._hierarchy().topological_classes()] == [
            c.descriptor for c in self._hierarchy().topological_classes()
        ]

    def test_packages_and_package_queries(self):
        hierarchy = self._hierarchy()
        assert hierarchy.packages() == {"com.a", "com.b"}
        assert len(hierarchy.classes_in_package("com.a")) == 3
        assert "Lcom/a/Base;" in hierarchy

    def test_package_tree(self):
        hierarchy = self._hierarchy()
        tree = hierarchy.package_tree()
        assert "com.a" in tree.get("com", set())
