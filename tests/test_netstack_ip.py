"""Tests for IP packets and the RFC 791 options field."""

import pytest

from repro.netstack.ip import (
    BORDERPATROL_OPTION_TYPE,
    IPOption,
    IPOptionError,
    IPOptions,
    IPPacket,
    MAX_IP_OPTIONS_BYTES,
    OPTION_NOP,
    OPTION_TIMESTAMP,
)


class TestIPOption:
    def test_wire_length_includes_type_and_length_bytes(self):
        option = IPOption(option_type=BORDERPATROL_OPTION_TYPE, data=b"\x01\x02\x03")
        assert option.wire_length == 5

    def test_single_byte_options(self):
        nop = IPOption(option_type=OPTION_NOP)
        assert nop.wire_length == 1
        assert nop.to_bytes() == bytes([OPTION_NOP])

    def test_size_limit_enforced(self):
        with pytest.raises(IPOptionError):
            IPOption(option_type=BORDERPATROL_OPTION_TYPE, data=b"x" * 39)

    def test_option_type_range(self):
        with pytest.raises(IPOptionError):
            IPOption(option_type=300)

    def test_parse_round_trip(self):
        original = IPOption(option_type=OPTION_TIMESTAMP, data=b"\xaa\xbb")
        parsed, rest = IPOption.parse(original.to_bytes() + b"tail")
        assert parsed == original
        assert rest == b"tail"

    def test_parse_rejects_bad_length(self):
        with pytest.raises(IPOptionError):
            IPOption.parse(bytes([OPTION_TIMESTAMP, 1]))
        with pytest.raises(IPOptionError):
            IPOption.parse(b"")


class TestIPOptions:
    def test_total_limit_enforced(self):
        big = IPOption(option_type=BORDERPATROL_OPTION_TYPE, data=b"x" * 30)
        with pytest.raises(IPOptionError):
            IPOptions(options=(big, big))

    def test_forty_bytes_exactly_is_allowed(self):
        option = IPOption(option_type=BORDERPATROL_OPTION_TYPE, data=b"x" * (MAX_IP_OPTIONS_BYTES - 2))
        options = IPOptions(options=(option,))
        assert options.wire_length == MAX_IP_OPTIONS_BYTES

    def test_from_bytes_round_trip(self):
        options = IPOptions(
            options=(
                IPOption(option_type=OPTION_NOP),
                IPOption(option_type=BORDERPATROL_OPTION_TYPE, data=b"\x01\x02"),
            )
        )
        assert IPOptions.from_bytes(options.to_bytes()) == options

    def test_find_and_without(self):
        options = IPOptions.single(BORDERPATROL_OPTION_TYPE, b"\x01")
        assert options.find(BORDERPATROL_OPTION_TYPE) is not None
        assert options.find(OPTION_TIMESTAMP) is None
        cleaned = options.without(BORDERPATROL_OPTION_TYPE)
        assert cleaned.is_empty

    def test_iteration_and_len(self):
        options = IPOptions.single(BORDERPATROL_OPTION_TYPE, b"\x01")
        assert len(options) == 1
        assert list(options)[0].option_type == BORDERPATROL_OPTION_TYPE


class TestIPPacket:
    def _packet(self, **overrides):
        defaults = dict(
            src_ip="10.10.0.2",
            dst_ip="203.0.113.5",
            src_port=40001,
            dst_port=443,
            payload_size=1000,
        )
        defaults.update(overrides)
        return IPPacket(**defaults)

    def test_header_length_padding(self):
        packet = self._packet(options=IPOptions.single(BORDERPATROL_OPTION_TYPE, b"\x01\x02\x03"))
        # 20 bytes base + 5 option bytes padded to 8.
        assert packet.header_length == 28
        assert packet.total_length == 1028

    def test_header_length_without_options(self):
        assert self._packet().header_length == 20

    def test_port_validation(self):
        with pytest.raises(ValueError):
            self._packet(dst_port=70_000)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            self._packet(payload_size=-1)

    def test_stripped_removes_options_but_keeps_identity(self):
        packet = self._packet(options=IPOptions.single(BORDERPATROL_OPTION_TYPE, b"\x01"))
        stripped = packet.stripped()
        assert packet.has_options and not stripped.has_options
        assert stripped.packet_id == packet.packet_id
        assert stripped.flow_tuple == packet.flow_tuple

    def test_reply_swaps_direction(self):
        packet = self._packet()
        reply = packet.reply(payload_size=500)
        assert reply.src_ip == packet.dst_ip and reply.dst_ip == packet.src_ip
        assert reply.direction == "inbound"

    def test_packet_ids_are_unique(self):
        assert self._packet().packet_id != self._packet().packet_id

    def test_decremented_ttl(self):
        packet = self._packet(ttl=5)
        assert packet.decremented_ttl().ttl == 4
