"""Tests for call stacks, the app behaviour model and the cost model."""

import pytest

from repro.android.app_model import (
    AppBehavior,
    Functionality,
    FunctionalityOutcome,
    NetworkRequest,
)
from repro.android.callstack import CallStack, StackFrame
from repro.android.costs import CostModel
from repro.dex.signature import MethodSignature


def sig(cls="com.x.app.Api", name="call"):
    return MethodSignature.create(cls, name)


def functionality(name="f", cls="com.x.app.Api", endpoint="api.x.com", **kwargs):
    return Functionality(
        name=name,
        call_chain=(sig(cls=cls),),
        requests=(NetworkRequest(endpoint=endpoint),),
        **kwargs,
    )


class TestStackFrame:
    def test_rendering_matches_java_format(self):
        frame = StackFrame("com.x.Main", "onClick", "Main.java", 42)
        assert str(frame) == "com.x.Main.onClick(Main.java:42)"

    def test_rendering_without_line(self):
        frame = StackFrame("com.x.Main", "onClick")
        assert "Unknown Source" in str(frame)
        assert not frame.has_line_number

    def test_package(self):
        assert StackFrame("com.x.sub.Main", "m").package == "com.x.sub"
        assert StackFrame("Main", "m").package == ""

    def test_validation(self):
        with pytest.raises(ValueError):
            StackFrame("", "m")
        with pytest.raises(ValueError):
            StackFrame("com.x.Main", "")


class TestCallStack:
    def _stack(self):
        return CallStack.of(
            [
                StackFrame("java.net.Socket", "connect", "Socket.java", 586),
                StackFrame("com.flurry.sdk.Agent", "onEvent", "Agent.java", 12),
                StackFrame("com.x.app.Main", "onClick", "Main.java", 30),
                StackFrame("android.app.Activity", "performClick", "Activity.java", 6294),
            ]
        )

    def test_innermost_and_outermost(self):
        stack = self._stack()
        assert stack.innermost.class_name == "java.net.Socket"
        assert stack.outermost.class_name == "android.app.Activity"
        assert stack.depth == 4

    def test_without_framework_frames(self):
        app_only = self._stack().without_framework_frames()
        assert [f.class_name for f in app_only] == ["com.flurry.sdk.Agent", "com.x.app.Main"]

    def test_frames_in_package(self):
        assert len(self._stack().frames_in_package("com.flurry")) == 1
        assert len(self._stack().frames_in_package("com.missing")) == 0

    def test_render(self):
        rendered = self._stack().render()
        assert rendered.count("    at ") == 4
        assert "Socket.java:586" in rendered

    def test_empty_stack_behaviour(self):
        empty = CallStack()
        assert not empty
        assert empty.innermost is None and empty.outermost is None
        assert len(empty) == 0


class TestNetworkRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkRequest(endpoint="")
        with pytest.raises(ValueError):
            NetworkRequest(endpoint="x.com", port=0)
        with pytest.raises(ValueError):
            NetworkRequest(endpoint="x.com", upload_bytes=-1)

    def test_defaults(self):
        request = NetworkRequest(endpoint="x.com")
        assert request.port == 443
        assert not request.via_native and not request.keep_alive


class TestFunctionality:
    def test_validation(self):
        with pytest.raises(ValueError):
            Functionality(name="", call_chain=(sig(),), requests=(NetworkRequest("x.com"),))
        with pytest.raises(ValueError):
            Functionality(name="f", call_chain=(), requests=(NetworkRequest("x.com"),))
        with pytest.raises(ValueError):
            Functionality(name="f", call_chain=(sig(),), requests=())

    def test_accessors(self):
        entry = sig(cls="com.x.app.Main", name="onClick")
        leaf = sig(cls="com.x.app.Api", name="upload")
        f = Functionality(
            name="upload",
            call_chain=(entry, leaf),
            requests=(NetworkRequest("a.com", upload_bytes=10), NetworkRequest("b.com", upload_bytes=5)),
            library="com.flurry",
        )
        assert f.entry_point is entry and f.leaf is leaf
        assert f.endpoints() == {"a.com", "b.com"}
        assert f.total_upload_bytes() == 15
        assert f.is_library_functionality


class TestAppBehavior:
    def test_duplicate_functionality_names_rejected(self):
        with pytest.raises(ValueError):
            AppBehavior(
                package_name="com.x.app",
                functionalities=(functionality("a"), functionality("a")),
            )

    def test_requires_at_least_one_functionality(self):
        with pytest.raises(ValueError):
            AppBehavior(package_name="com.x.app", functionalities=())

    def test_lookups(self):
        behavior = AppBehavior(
            package_name="com.x.app",
            functionalities=(
                functionality("good"),
                functionality("bad", desirable=False, library="com.flurry"),
            ),
        )
        assert behavior.get("good").name == "good"
        with pytest.raises(KeyError):
            behavior.get("missing")
        assert behavior.names() == ["good", "bad"]
        assert [f.name for f in behavior.undesirable_functionalities()] == ["bad"]
        assert [f.name for f in behavior.library_functionalities()] == ["bad"]
        assert len(behavior) == 2


class TestFunctionalityOutcome:
    def test_completed_and_blocked(self):
        outcome = FunctionalityOutcome(functionality=functionality())
        assert not outcome.completed
        outcome.requests_attempted = 2
        outcome.requests_completed = 2
        assert outcome.completed and not outcome.blocked
        outcome.packets_dropped = 1
        assert outcome.blocked

    def test_merge(self):
        f = functionality()
        a = FunctionalityOutcome(functionality=f, requests_attempted=1, requests_completed=1,
                                 packets_sent=2, packets_delivered=2)
        b = FunctionalityOutcome(functionality=f, requests_attempted=1, requests_completed=0,
                                 packets_sent=3, packets_dropped=3)
        merged = a.merge(b)
        assert merged.requests_attempted == 2
        assert merged.packets_sent == 5
        assert not merged.completed and merged.blocked

    def test_merge_rejects_different_functionalities(self):
        a = FunctionalityOutcome(functionality=functionality("a"))
        b = FunctionalityOutcome(functionality=functionality("b"))
        with pytest.raises(ValueError):
            a.merge(b)


class TestCostModel:
    def test_scaling(self):
        model = CostModel()
        doubled = model.scaled(2.0)
        assert doubled.getstacktrace_ms == pytest.approx(model.getstacktrace_ms * 2)
        assert doubled.nfqueue_ms == pytest.approx(model.nfqueue_ms * 2)
        with pytest.raises(ValueError):
            model.scaled(-1)

    def test_paper_calibration(self):
        model = CostModel()
        # getStackTrace dominates the Context Manager cost (paper: ~1.6 ms).
        assert model.getstacktrace_ms == pytest.approx(1.6, abs=0.2)
        # The two-queue chain totals roughly the paper's ~1 ms NFQUEUE delta.
        assert 2 * model.nfqueue_ms == pytest.approx(1.0, abs=0.2)
