"""Tests for the IoI analysis, validation scoring and supporting metrics."""

import pytest

from repro.analysis.ioi import AppIoIReport, IoIAnalysis
from repro.analysis.metrics import (
    flow_size_summary,
    hash_collision_probability,
    monte_carlo_collision_estimate,
    precision_recall,
)
from repro.analysis.validation import score_validation_run
from repro.android.app_model import Functionality, FunctionalityOutcome, NetworkRequest
from repro.core.policy_enforcer import EnforcementRecord
from repro.dex.signature import MethodSignature
from repro.netstack.ip import IPPacket
from repro.netstack.netfilter import Verdict


APP_SIG = "Lcom/acme/docs/net/ApiClient;->login(Ljava/lang/String;Ljava/lang/String;)Z"
APP_SIG_2 = "Lcom/acme/docs/net/ApiClient;->syncDocuments()I"
HTTP_SIG = "Lorg/apache/http/client/HttpClient;->execute(Ljava/lang/Object;)V"
FB_LOGIN = "Lcom/facebook/login/LoginManager;->logInWithReadPermissions(Ljava/lang/Object;Ljava/util/Collection;)V"
FB_EVENTS = "Lcom/facebook/appevents/AppEventsLogger;->logEvent(Ljava/lang/String;)V"


def record(package, dst_ip, signatures, verdict=Verdict.ACCEPT):
    return EnforcementRecord(
        packet_id=0,
        dst_ip=dst_ip,
        verdict=verdict,
        reason="",
        app_id="00" * 8,
        package_name=package,
        signatures=tuple(signatures),
    )


class TestIoIAnalysis:
    def test_single_context_destination_is_not_an_ioi(self):
        analysis = IoIAnalysis.from_enforcement_records(
            [record("com.a", "1.1.1.1", [APP_SIG]), record("com.a", "1.1.1.1", [APP_SIG])],
            total_apps=1,
        )
        assert analysis.total_apps_with_ioi() == 0
        assert analysis.histogram() == {}

    def test_two_contexts_same_destination_is_an_ioi(self):
        analysis = IoIAnalysis.from_enforcement_records(
            [record("com.a", "1.1.1.1", [APP_SIG]), record("com.a", "1.1.1.1", [APP_SIG_2])],
            total_apps=1,
        )
        assert analysis.total_apps_with_ioi() == 1
        assert analysis.histogram() == {1: 1}
        assert analysis.same_package_fraction() == 1.0
        assert analysis.cross_package_ioi_fraction() == 0.0

    def test_cross_package_ioi_detected(self):
        analysis = IoIAnalysis.from_enforcement_records(
            [
                record("com.a", "1.1.1.1", [APP_SIG]),
                record("com.a", "1.1.1.1", [HTTP_SIG, APP_SIG_2]),
            ],
            total_apps=1,
        )
        assert analysis.same_package_fraction() == 0.0
        assert analysis.cross_package_ioi_fraction() == 1.0

    def test_facebook_sdk_counts_as_same_package(self):
        # Both contexts are inside the Facebook SDK (paper counts this as the
        # same Java package even though sub-packages differ).
        analysis = IoIAnalysis.from_enforcement_records(
            [
                record("com.a", "2.2.2.2", [FB_LOGIN]),
                record("com.a", "2.2.2.2", [FB_EVENTS]),
            ],
            total_apps=1,
        )
        assert analysis.same_package_fraction() == 1.0

    def test_histogram_counts_apps_per_ioi_count(self):
        records = [
            # app a: two IoIs.
            record("com.a", "1.1.1.1", [APP_SIG]),
            record("com.a", "1.1.1.1", [APP_SIG_2]),
            record("com.a", "1.1.1.2", [APP_SIG]),
            record("com.a", "1.1.1.2", [HTTP_SIG]),
            # app b: one IoI.
            record("com.b", "1.1.1.3", [APP_SIG]),
            record("com.b", "1.1.1.3", [APP_SIG_2]),
            # app c: none.
            record("com.c", "1.1.1.4", [APP_SIG]),
        ]
        analysis = IoIAnalysis.from_enforcement_records(records, total_apps=3)
        assert analysis.histogram() == {1: 1, 2: 1}
        assert analysis.total_apps_with_ioi() == 2
        summary = analysis.summary()
        assert summary["total_apps"] == 3 and summary["apps_with_ioi"] == 2

    def test_ground_truth_constructor(self):
        packets = [
            IPPacket(
                src_ip="10.10.0.2", dst_ip="1.1.1.1", src_port=1, dst_port=443,
                provenance={"package": "com.a", "call_chain": (APP_SIG,)},
            ),
            IPPacket(
                src_ip="10.10.0.2", dst_ip="1.1.1.1", src_port=2, dst_port=443,
                provenance={"package": "com.a", "call_chain": (APP_SIG_2,)},
            ),
        ]
        analysis = IoIAnalysis.from_ground_truth(packets, total_apps=1)
        assert analysis.total_apps_with_ioi() == 1

    def test_records_without_signatures_ignored(self):
        analysis = IoIAnalysis.from_enforcement_records(
            [record("com.a", "1.1.1.1", []), record("", "1.1.1.1", [APP_SIG])], total_apps=1
        )
        assert analysis.reports == {}

    def test_app_report_queries(self):
        report = AppIoIReport(package_name="com.a")
        report.destinations["1.1.1.1"] = {(APP_SIG,), (APP_SIG_2,)}
        report.destinations["1.1.1.2"] = {(APP_SIG,)}
        assert report.ioi_count() == 1
        assert set(report.ioi_destinations()) == {"1.1.1.1"}
        assert report.is_same_package()
        assert report.cross_package_iois() == 0


class TestValidationScoring:
    def _packets(self):
        flagged = IPPacket(
            src_ip="10.10.0.2", dst_ip="1.1.1.1", src_port=1, dst_port=443, payload_size=100,
            provenance={"library": "com.flurry.sdk", "package": "com.a"},
        )
        clean = IPPacket(
            src_ip="10.10.0.2", dst_ip="1.1.1.2", src_port=2, dst_port=443, payload_size=100,
            provenance={"library": None, "package": "com.a"},
        )
        return flagged, clean

    def test_perfect_run(self):
        flagged, clean = self._packets()
        score = score_validation_run(
            egress_packets=[flagged, clean],
            delivered_packet_ids={clean.packet_id},
            flagged_libraries=["com/flurry"],
        )
        assert score.block_rate == 1.0 and score.preserve_rate == 1.0
        assert score.perfect
        assert score.summary()["leaked"] == 0

    def test_leak_detected(self):
        flagged, clean = self._packets()
        score = score_validation_run(
            egress_packets=[flagged, clean],
            delivered_packet_ids={flagged.packet_id, clean.packet_id},
            flagged_libraries=["com/flurry"],
        )
        assert score.block_rate == 0.0
        assert score.leaked_packet_ids == [flagged.packet_id]
        assert not score.perfect

    def test_collateral_damage_detected(self):
        flagged, clean = self._packets()
        score = score_validation_run(
            egress_packets=[flagged, clean],
            delivered_packet_ids=set(),
            flagged_libraries=["com/flurry"],
        )
        assert score.preserve_rate == 0.0
        assert score.collateral_packet_ids == [clean.packet_id]

    def test_functionality_preservation(self):
        functionality = Functionality(
            name="login",
            call_chain=(MethodSignature.create("com.a.Api", "login"),),
            requests=(NetworkRequest("api.a.com"),),
        )
        outcome = FunctionalityOutcome(
            functionality=functionality, requests_attempted=2, requests_completed=2
        )
        score = score_validation_run(
            egress_packets=[],
            delivered_packet_ids=set(),
            flagged_libraries=["com/flurry"],
            outcomes={"com.a": [outcome]},
        )
        assert score.functionality_preservation == 1.0


class TestMetrics:
    def test_precision_recall(self):
        result = precision_recall(
            dropped_ids={1, 2, 3}, should_drop_ids={2, 3, 4}, all_ids={1, 2, 3, 4, 5}
        )
        assert result.true_positives == 2
        assert result.false_positives == 1
        assert result.false_negatives == 1
        assert result.true_negatives == 1
        assert 0 < result.precision < 1 and 0 < result.recall < 1
        assert 0 < result.f1 < 1

    def test_precision_recall_degenerate_cases(self):
        # No positives anywhere: both metrics default to the vacuous 1.0.
        empty = precision_recall(set(), set(), {1, 2})
        assert empty.precision == 1.0 and empty.recall == 1.0 and empty.f1 == 1.0
        # Everything dropped that should not have been: zero precision and f1.
        wrong = precision_recall({1, 2}, set(), {1, 2})
        assert wrong.precision == 0.0 and wrong.f1 == 0.0

    def test_flow_size_summary(self):
        summary = flow_size_summary([36, 1000, 480_000_000])
        assert summary.min_bytes == 36
        assert summary.max_bytes == 480_000_000
        assert summary.count == 3
        assert summary.spans_orders_of_magnitude() > 6
        assert flow_size_summary([]).count == 0

    def test_monte_carlo_zero_cases(self):
        assert monte_carlo_collision_estimate(1, 16) == 0.0
        assert monte_carlo_collision_estimate(10, 16, trials=0) == 0.0

    def test_collision_probability_reexport(self):
        assert hash_collision_probability(3_300_000, 64) < 1e-6
