"""Cross-layer convergence conformance suite.

Log compaction is exactly the kind of change that silently forks a
fleet's policy when it is wrong: a replica that bootstraps from a
snapshot instead of replaying history must end up *bit-for-bit* where
every other attach path ends up.  This suite is the proof obligation:
one shared control-plane history (incremental updates, removals,
replacements, a default-action flip and a legacy ``reset_to`` full
sync), one shared packet replay trace, and a matrix of every way a
gateway can attach to it —

* **cold replay from v0** — a blank gateway replays the full
  uncompacted log from its genesis snapshot;
* **snapshot bootstrap** — the log is compacted through the head; the
  gateway attaches from the snapshot alone;
* **snapshot + partial suffix** — the log is compacted mid-history; the
  gateway bootstraps then replays the surviving suffix;
* **live subscription** — a replica subscribed during the whole history
  receives every record as it commits;
* **legacy attach-at-head** — the pre-compaction ``reset_to``-style
  full sync straight from the head store's memory.

Every path must converge to the identical version, the identical
chained rule-table fingerprint, and packet-for-packet identical
verdicts (and reasons) on the shared replay trace.
"""

import json

import pytest

from repro.core.database import DatabaseEntry, SignatureDatabase
from repro.core.encoding import StackTraceEncoder
from repro.core.policy import Policy, PolicyAction, PolicyLevel, PolicyRule
from repro.core.policy_enforcer import PolicyEnforcer
from repro.core.policy_store import (
    DeltaLog,
    GatewayReplica,
    PolicyStore,
    PolicyUpdate,
    ReplicationError,
)
from repro.netstack.ip import IPPacket

APPS = (
    ("aa" * 16, "com.alpha.app", [
        "Lcom/alpha/app/MainActivity;->onClick(Landroid/view/View;)V",
        "Lcom/alpha/app/net/ApiClient;->upload([B)Z",
        "Lcom/flurry/sdk/FlurryAgent;->logEvent(Ljava/lang/String;)V",
    ]),
    ("bb" * 16, "com.beta.app", [
        "Lcom/beta/app/MainActivity;->onClick(Landroid/view/View;)V",
        "Lcom/beta/app/sync/Engine;->push([B)Z",
        "Lcom/mixpanel/android/Tracker;->track(Ljava/lang/String;)V",
    ]),
)

ATTACH_PATHS = (
    "cold-replay-from-v0",
    "snapshot-bootstrap",
    "snapshot-plus-suffix",
    "live-subscribe",
    "legacy-attach-at-head",
)


def build_database() -> SignatureDatabase:
    database = SignatureDatabase()
    for md5, package, signatures in APPS:
        database.add(
            DatabaseEntry(
                md5=md5, app_id=md5[:16], package_name=package,
                signatures=list(signatures),
            )
        )
    return database


def build_trace() -> list[IPPacket]:
    """The shared replay: every app, several stack shapes, many flows."""
    encoder = StackTraceEncoder()
    packets = []
    port = 40000
    for md5, _package, signatures in APPS:
        for indexes in [(0,), (0, 1), tuple(range(len(signatures))), (len(signatures) - 1,)]:
            for repeat in range(3):
                port += 1
                packets.append(
                    IPPacket(
                        src_ip="10.10.0.2",
                        dst_ip="203.0.113.9",
                        src_port=port - (repeat % 2),  # some flows repeat
                        dst_port=443,
                        payload_size=128,
                        options=encoder.encode_option(md5[:16], indexes),
                    )
                )
    return packets


def rule(target: str, action: PolicyAction = PolicyAction.DENY) -> PolicyRule:
    return PolicyRule(action=action, level=PolicyLevel.LIBRARY, target=target)


def drive_history(store: PolicyStore) -> None:
    """The shared edit schedule: every operation kind the log can carry.

    Includes a mid-history ``reset_to`` (a sync record), so every attach
    path proves it replays *through* a full sync and keeps applying
    incremental updates afterwards — the exact sequence that used to
    trip the shadow store's log-contiguity check.
    """
    store.apply(PolicyUpdate(reason="block flurry").add_rule(rule("com/flurry"), rule_id="flurry"))
    store.apply(PolicyUpdate(reason="block mixpanel").add_rule(rule("com/mixpanel"), rule_id="mixpanel"))
    store.apply(PolicyUpdate(reason="tighten").set_default(PolicyAction.DENY))
    store.apply(
        PolicyUpdate(reason="allow alpha").add_rule(
            rule("com/alpha/app", PolicyAction.ALLOW), rule_id="alpha"
        )
    )
    store.apply(PolicyUpdate(reason="relax").set_default(PolicyAction.ALLOW))
    store.apply(PolicyUpdate(reason="unblock mixpanel").remove_rule("mixpanel"))
    store.apply(
        PolicyUpdate(reason="narrow flurry").replace_rule(
            "flurry", PolicyRule(PolicyAction.DENY, PolicyLevel.CLASS, "com/flurry/sdk/FlurryAgent")
        )
    )
    # Legacy full sync mid-history: replicated as one sync record.
    store.reset_to(
        Policy(
            rules=[rule("com/flurry"), rule("com/beta/app")],
            default_action=PolicyAction.ALLOW,
            name="resync",
        )
    )
    store.apply(PolicyUpdate(reason="block mixpanel again").add_rule(rule("com/mixpanel"), rule_id="mp2"))
    store.apply(PolicyUpdate(reason="unblock beta").remove_rule("r2"))
    store.apply(PolicyUpdate(reason="block tail").add_rule(rule("com/tail"), rule_id="tail"))


@pytest.fixture(scope="module")
def scenario():
    """One shared history + trace; every attach path converges onto it."""
    database = build_database()
    store = PolicyStore.from_policy(
        Policy.deny_libraries(["com/seeded"], name="conformance-base"), name="head"
    )
    head = PolicyEnforcer(database=database, policy=store.snapshot())
    store.subscribe(head, push=False)

    live = GatewayReplica(PolicyEnforcer(database=database), store, name="live")
    store.subscribe_replica(live)

    drive_history(store)
    return {
        "database": database,
        "store": store,
        "head": head,
        "live": live,
        "log_json": store.delta_log.to_json(),
        "trace": build_trace(),
    }


def attach(path: str, scenario) -> GatewayReplica:
    database = scenario["database"]
    store = scenario["store"]
    if path == "cold-replay-from-v0":
        log = DeltaLog.from_json(scenario["log_json"])
        replica = GatewayReplica.from_log(PolicyEnforcer(database=database), log, name=path)
        # Genesis bootstrap + one record per committed version.
        assert replica.records_applied == store.version + 1
        return replica
    if path == "snapshot-bootstrap":
        log = DeltaLog.from_json(scenario["log_json"])
        log.compact()
        replica = GatewayReplica.from_log(PolicyEnforcer(database=database), log, name=path)
        assert replica.records_applied == 1  # the snapshot alone
        return replica
    if path == "snapshot-plus-suffix":
        log = DeltaLog.from_json(scenario["log_json"])
        compact_at = store.version - 3
        log.compact(compact_at)
        replica = GatewayReplica.from_log(PolicyEnforcer(database=database), log, name=path)
        assert replica.records_applied == 1 + (store.version - compact_at)
        return replica
    if path == "live-subscribe":
        return scenario["live"]
    if path == "legacy-attach-at-head":
        return GatewayReplica(PolicyEnforcer(database=database), store, name=path)
    raise AssertionError(f"unknown attach path: {path}")


@pytest.mark.parametrize("path", ATTACH_PATHS)
def test_attach_path_converges_to_head_state(path, scenario):
    store = scenario["store"]
    replica = attach(path, scenario)
    assert replica.version == store.version
    assert replica.fingerprint() == store.fingerprint()
    assert replica.verify_against(store)
    assert replica.snapshot().rules == store.snapshot().rules
    assert replica.snapshot().default_action is store.default_action


@pytest.mark.parametrize("path", ATTACH_PATHS)
def test_attach_path_is_verdict_identical_on_shared_trace(path, scenario):
    head = scenario["head"]
    replica = attach(path, scenario)
    for packet in scenario["trace"]:
        head_verdict, _ = head.process(packet)
        replica_verdict, _ = replica.enforcer.process(packet)
        assert replica_verdict is head_verdict
        assert replica.enforcer.records[-1].reason == head.records[-1].reason


def test_all_attach_paths_agree_with_each_other(scenario):
    """The matrix closes: every path lands on one fingerprint."""
    fingerprints = {path: attach(path, scenario).fingerprint() for path in ATTACH_PATHS}
    assert len(set(fingerprints.values())) == 1, fingerprints
    versions = {path: attach(path, scenario).version for path in ATTACH_PATHS}
    assert set(versions.values()) == {scenario["store"].version}


class TestCompactionBoundary:
    """The fingerprint chain must hold *across* the compaction seam."""

    def build_store(self) -> PolicyStore:
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        for index in range(6):
            store.apply(
                PolicyUpdate().add_rule(rule(f"com/lib{index}"), rule_id=f"l{index}")
            )
        return store

    def test_record_after_compaction_chains_off_the_snapshot(self):
        store = self.build_store()
        snapshot = store.compact()
        store.apply(PolicyUpdate().add_rule(rule("com/after"), rule_id="after"))
        record = store.delta_log.record(store.version)
        assert record.parent_fingerprint == snapshot.fingerprint
        assert store.delta_log.snapshot.fingerprint == snapshot.fingerprint

    def test_snapshot_keeps_the_folded_chains_tail_fingerprint(self):
        store = self.build_store()
        tail_fingerprint = store.delta_log.record(store.version).fingerprint
        snapshot = store.compact()
        assert snapshot.fingerprint == tail_fingerprint == store.fingerprint()

    def attach_mid_chain(self, database) -> tuple[PolicyStore, GatewayReplica]:
        """A replica attached mid-history, then left behind a compaction."""
        store = self.build_store()
        replica = GatewayReplica(PolicyEnforcer(database=database), store, name="gw")
        mid_version = replica.version
        for index in range(3):
            store.apply(PolicyUpdate().add_rule(rule(f"com/late{index}")))
        store.compact()  # the records the replica is missing fold away
        assert mid_version < store.delta_log.base_version
        return store, replica

    def test_replica_behind_compaction_rebootstraps_cleanly(self):
        store, replica = self.attach_mid_chain(build_database())
        applied = replica.catch_up(store.delta_log)
        assert applied == 1  # one snapshot bootstrap, no replayable suffix
        assert replica.verify_against(store)

    def test_pre_compaction_reader_gets_a_clear_error_without_snapshot(self):
        store, replica = self.attach_mid_chain(build_database())
        # Strip the snapshot (a legacy/pruned log serialization): the
        # replica's history is gone and nothing can stand in for it.
        payload = json.loads(store.delta_log.to_json())
        payload["snapshot"] = None
        pruned = DeltaLog.from_json(json.dumps(payload))
        with pytest.raises(ReplicationError, match="re-attach"):
            replica.catch_up(pruned)

    def test_catch_up_cannot_stage_to_a_compacted_version(self):
        store, replica = self.attach_mid_chain(build_database())
        with pytest.raises(ReplicationError, match="compacted"):
            replica.catch_up(store.delta_log, target_version=store.version - 2)

    def test_tampered_snapshot_is_refused_before_reaching_the_enforcer(self):
        database = build_database()
        store = self.build_store()
        store.compact()
        payload = json.loads(store.delta_log.to_json())
        # Flip one folded rule from deny to allow, leaving the recorded
        # fingerprint untouched — the classic tampered-state shape.
        payload["snapshot"]["rules"][0]["rule"] = (
            payload["snapshot"]["rules"][0]["rule"].replace("[deny]", "[allow]")
        )
        tampered = DeltaLog.from_json(json.dumps(payload))
        # An enforcer that currently holds a deny policy: a failed attach
        # must not reset it to allow-all on the way to the error.
        enforcer = PolicyEnforcer(
            database=database, policy=Policy.deny_libraries(["com/flurry"])
        )
        flurry_packet = IPPacket(
            src_ip="10.10.0.2", dst_ip="203.0.113.9", src_port=40001, dst_port=443,
            payload_size=128,
            options=StackTraceEncoder().encode_option(APPS[0][0][:16], (2,)),
        )
        assert enforcer.process(flurry_packet)[0].value == "drop"
        before = enforcer.policy_version
        with pytest.raises(ReplicationError, match="tampered"):
            GatewayReplica.from_log(enforcer, tampered, name="gw")
        assert enforcer.policy_version == before  # nothing was installed
        # ...and the pre-existing policy still enforces (not fail-open).
        assert enforcer.process(flurry_packet)[0].value == "drop"

    def test_compacting_the_record_for_a_served_version_is_refused(self):
        store = self.build_store()
        store.compact(store.version - 2)
        with pytest.raises(ReplicationError):
            store.delta_log.record(store.version - 3)  # folded away
        with pytest.raises(ReplicationError):
            store.compact(store.version - 4)  # behind the base


class TestRetentionRobustness:
    """Auto-compaction around state the grammar cannot render."""

    def opaque_policy(self) -> Policy:
        return Policy(
            rules=[PolicyRule(PolicyAction.DENY, PolicyLevel.LIBRARY, 'com/"quoted')],
            name="opaque",
        )

    def test_compact_every_rejects_non_positive_values_everywhere(self):
        with pytest.raises(ValueError):
            PolicyStore(compact_every=0)
        with pytest.raises(ValueError):
            PolicyStore(compact_every=-3)
        store = PolicyStore()
        with pytest.raises(ValueError):
            store.compact_every = 0  # attribute path validates too
        from repro.core.fleet import GatewayFleet

        with pytest.raises(ValueError):
            GatewayFleet(database=build_database(), policy=Policy.allow_all(),
                         num_gateways=2, compact_every=0)

    def test_unfoldable_log_keeps_committing_without_replaying_prefix(self):
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        store.compact_every = 3
        store.reset_to(self.opaque_policy())  # opaque sync record
        for index in range(6):
            # Retention is tripped every commit, but the cheap pre-scan
            # sees the opaque sync (and the quoted head state) and skips
            # the doomed full-prefix replay; commits keep working.
            store.apply(PolicyUpdate().add_rule(rule(f"com/x{index}")))
        assert store.delta_log.base_version == 0  # nothing folded
        assert len(store.delta_log) == store.version

    def test_clean_full_sync_rescues_compaction_after_an_opaque_one(self):
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        store.reset_to(self.opaque_policy())
        # An update *inside* the unknown region: it cannot be verified,
        # but the clean sync below supersedes it, so the fold skips it.
        store.apply(PolicyUpdate().add_rule(rule("com/inside")))
        store.reset_to(Policy.deny_libraries(["com/mixpanel"], name="clean"))
        store.apply(PolicyUpdate().add_rule(rule("com/tail")))
        # The opaque record's unknown-state region ends at the clean
        # sync, so folding the whole prefix is well-defined again.
        snapshot = store.compact()
        assert snapshot.version == store.version
        assert snapshot.fingerprint == store.fingerprint()
        replica = GatewayReplica.from_log(
            PolicyEnforcer(database=build_database()), store.delta_log, name="gw"
        )
        assert replica.verify_against(store)

    def test_autocompaction_resumes_once_a_clean_sync_ends_the_region(self):
        # Regression for the pre-scan/_materialize mismatch: an update
        # committed inside an opaque region used to make every later
        # commit attempt (and abort) a full-prefix replay while the log
        # grew forever, even after a clean sync restored the state.
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        store.compact_every = 3
        store.reset_to(self.opaque_policy())
        store.apply(PolicyUpdate().add_rule(rule("com/inside")))
        store.reset_to(Policy.deny_libraries(["com/mixpanel"], name="clean"))
        for index in range(3):
            store.apply(PolicyUpdate().add_rule(rule(f"com/x{index}")))
        # Retention tripped after the clean sync and actually folded.
        assert store.delta_log.base_version > 0
        assert len(store.delta_log) < store.version
        assert store.delta_log.snapshot.fingerprint == (
            store.fingerprint() if len(store.delta_log) == 0
            else store.delta_log.record(store.delta_log.base_version + 1).parent_fingerprint
        )

    def test_compacting_into_an_unknown_state_region_is_refused(self):
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        store.reset_to(self.opaque_policy())  # v1: unknown region starts
        store.apply(PolicyUpdate().add_rule(rule("com/x")))  # v2: inside it
        with pytest.raises(ReplicationError, match="opaque"):
            store.compact(1)
        with pytest.raises(ReplicationError, match="opaque"):
            store.compact(2)
