"""Operator routing: severities, first-match tables, dedup, escalation."""

import pytest

from repro.ops.routing import (
    AlertRouter,
    EscalationPolicy,
    RouteRule,
    RoutingTable,
    severity_for,
)
from repro.telemetry.detectors import Alert


def alert(kind="exfil-volume", device="10.0.0.5", dst="203.0.113.9", source="gw0"):
    return Alert(kind=kind, device=device, dst_ip=dst, source=source, detail="")


def test_fleet_sourced_alerts_get_a_severity_bump():
    assert severity_for(alert(kind="policy-burst", source="gw0")) == "warning"
    assert severity_for(alert(kind="policy-burst", source="fleet")) == "critical"
    # Criticals have nowhere to go and stay critical.
    assert severity_for(alert(kind="exfil-volume", source="fleet")) == "critical"


def test_routing_table_first_match_wins_with_wildcards():
    table = RoutingTable(
        rules=[
            RouteRule(kind="exfil-volume", group="vip", route="page"),
            RouteRule(kind="exfil-volume", route="ticket"),
            RouteRule(route="log"),
        ],
        device_groups={"10.0.0.5": "vip"},
    )
    assert table.route(alert(device="10.0.0.5")) == "page"
    assert table.route(alert(device="10.0.0.6")) == "ticket"
    assert table.route(alert(kind="unknown-tag")) == "log"


def test_route_rule_rejects_unknown_routes_and_severities():
    with pytest.raises(ValueError):
        RouteRule(route="carrier-pigeon")
    with pytest.raises(ValueError):
        RouteRule(severity="apocalyptic")


def test_default_table_pages_criticals_and_tickets_warnings():
    router = AlertRouter()
    router.deliver(alert(kind="spoofed-tag"))
    router.deliver(alert(kind="policy-burst", device="10.0.0.6"))
    counts = router.counts()
    assert counts["pages"] == 1
    assert counts["tickets"] == 1


def test_dedup_suppresses_inside_the_cooldown_across_gateways():
    router = AlertRouter(cooldown=64)
    # Three gateways reporting the same (kind, device, dst) are one
    # incident: the dedup key deliberately excludes the gateway.
    for gateway in ("gw0", "gw1", "gw2"):
        router.deliver(alert(source=gateway))
    counts = router.counts()
    assert counts["pages"] == 1
    assert counts["deduped"] == 2


def test_dedup_rearms_after_the_cooldown():
    router = AlertRouter(cooldown=2)
    router.deliver(alert())
    router.deliver(alert())  # 1 after last routing: suppressed
    router.deliver(alert())  # 2 after: re-armed
    counts = router.counts()
    assert counts["pages"] == 2
    assert counts["deduped"] == 1


def test_refiring_key_escalates_to_a_page():
    router = AlertRouter(
        cooldown=1,  # disable dedup so every firing routes
        escalation=EscalationPolicy(threshold=3, window=256),
    )
    ticket_alert = alert(kind="policy-burst")
    router.deliver(ticket_alert)
    router.deliver(ticket_alert)
    assert router.counts()["pages"] == 0
    router.deliver(ticket_alert)
    counts = router.counts()
    # The third firing inside the window synthesizes a page even though
    # the table routes warnings to tickets.
    assert counts["pages"] == 1
    assert counts["escalated"] == 1
    assert router.pages[0].escalated


def test_escalation_policy_validates_its_shape():
    with pytest.raises(ValueError):
        EscalationPolicy(threshold=1)
    with pytest.raises(ValueError):
        EscalationPolicy(window=0)
    with pytest.raises(ValueError):
        AlertRouter(cooldown=0)
