"""BatchScheduler decisions + adaptive-scheduler verdict parity.

Unit tests drive the scheduler with synthesized batch traces and health
alerts (no workers involved), pinning each decision rule: shrink on
queue-wait domination, grow on serialize/ring_write overhead, p99
equalization, and the floor snap on backpressure alerts.  The
fork-gated integration test then runs a pool-backed replay under the
adaptive scheduler — with mid-run resizes and a worker kill — and holds
it verdict-identical to the sequential backend.
"""

from __future__ import annotations

import pytest

from repro.experiments.gateway_throughput import (
    DEFAULT_DENY_LIBRARIES,
    build_replay,
    build_signature_database,
)
from repro.core.policy import Policy
from repro.netstack.sharding import ShardedEnforcer
from repro.obs import RuntimeObservability
from repro.obs.trace import BatchTrace
from repro.runtime.pool import fork_available
from repro.runtime.scheduler import (
    SCHEDULERS,
    BatchScheduler,
    SchedulerConfig,
    validate_scheduler,
)
from repro.telemetry.detectors import Alert

needs_fork = pytest.mark.skipif(
    not fork_available(),
    reason="the pool backend needs the fork start method",
)


@pytest.fixture(scope="module")
def database():
    return build_signature_database(corpus_apps=4, seed=7)


@pytest.fixture(scope="module")
def replay(database):
    return build_replay(database.entries(), packets=600, flows=48, seed=11)


def make_policy() -> Policy:
    return Policy.deny_libraries(DEFAULT_DENY_LIBRARIES, name="scheduler-test")


class _StubMonitor:
    def __init__(self):
        self.events = []


def _push_traces(
    obs,
    worker: int,
    count: int,
    queue_wait: float = 0.0,
    overhead: float = 0.0,
    enforce: float = 0.01,
    pool: str = "shard-pool",
):
    for seq in range(count):
        trace = BatchTrace(f"{pool}:{obs.traces.completed}.{seq}", worker)
        if queue_wait:
            trace.add("queue_wait", 0.0, queue_wait)
        if overhead:
            trace.add("serialize", 0.0, overhead / 2)
            trace.add("ring_write", 0.0, overhead / 2)
        trace.add("enforce", 0.0, enforce)
        obs.traces.append(trace)


class TestSchedulerDecisions:
    def test_mode_validation(self):
        assert validate_scheduler("adaptive") == "adaptive"
        assert "static" in SCHEDULERS
        with pytest.raises(ValueError, match="unknown scheduler"):
            validate_scheduler("magic")

    def test_without_obs_the_scheduler_is_static(self):
        scheduler = BatchScheduler(num_workers=3)
        assert scheduler.plan() == [256, 256, 256]
        assert scheduler.plan() == [256, 256, 256]
        assert scheduler.decisions == []

    def test_shrink_when_queue_wait_dominates(self):
        obs = RuntimeObservability()
        scheduler = BatchScheduler(num_workers=2, obs=obs)
        # Worker 0 backed up: queue wait far beyond the 4x-enforce bar.
        _push_traces(obs, worker=0, count=4, queue_wait=0.2, enforce=0.01)
        sizes = scheduler.plan()
        assert sizes[0] == 128  # halved from 256
        assert sizes[1] == 256  # untouched: no signal for worker 1
        decision = scheduler.decisions[-1]
        assert (decision.worker, decision.action, decision.reason) == (
            0,
            "shrink",
            "queue_wait",
        )

    def test_grow_when_ipc_overhead_dominates(self):
        obs = RuntimeObservability()
        scheduler = BatchScheduler(num_workers=2, obs=obs)
        _push_traces(obs, worker=1, count=4, overhead=0.02, enforce=0.01)
        sizes = scheduler.plan()
        assert sizes[1] == 512
        decision = scheduler.decisions[-1]
        assert (decision.action, decision.reason) == ("grow", "overhead")

    def test_immature_window_makes_no_decision(self):
        obs = RuntimeObservability()
        scheduler = BatchScheduler(num_workers=2, obs=obs)
        _push_traces(obs, worker=0, count=3, queue_wait=1.0, enforce=0.001)
        assert scheduler.plan() == [256, 256]
        assert scheduler.decisions == []
        # The fourth trace matures the window; the verdict lands.
        _push_traces(obs, worker=0, count=1, queue_wait=1.0, enforce=0.001)
        assert scheduler.plan()[0] == 128

    def test_other_pools_traces_are_ignored(self):
        obs = RuntimeObservability()
        scheduler = BatchScheduler(num_workers=2, obs=obs, pool="shard-pool")
        _push_traces(
            obs, worker=0, count=8, queue_wait=1.0, enforce=0.001, pool="gateway-pool"
        )
        assert scheduler.plan() == [256, 256]
        assert scheduler.decisions == []

    def test_queue_depth_alert_floors_the_named_worker(self):
        monitor = _StubMonitor()
        scheduler = BatchScheduler(num_workers=3, monitor=monitor)
        monitor.events.append(
            Alert(kind="pool-queue-depth", device="shard-pool-w1", detail="deep")
        )
        sizes = scheduler.plan()
        assert sizes == [256, 16, 256]
        decision = scheduler.decisions[-1]
        assert (decision.worker, decision.action, decision.reason) == (
            1,
            "floor",
            "pool-queue-depth",
        )

    def test_backlog_alert_floors_every_worker(self):
        monitor = _StubMonitor()
        scheduler = BatchScheduler(num_workers=3, monitor=monitor)
        monitor.events.append(
            Alert(kind="pool-burst-backlog", device="shard-pool", detail="backlog")
        )
        assert scheduler.plan() == [16, 16, 16]

    def test_alerts_for_other_pools_or_kinds_are_ignored(self):
        monitor = _StubMonitor()
        scheduler = BatchScheduler(num_workers=2, monitor=monitor)
        monitor.events.append(
            Alert(kind="pool-burst-backlog", device="gateway-pool", detail="")
        )
        monitor.events.append(
            Alert(kind="pool-worker-crash", device="shard-pool", detail="")
        )
        assert scheduler.plan() == [256, 256]
        assert scheduler.decisions == []

    def test_alerts_are_consumed_once(self):
        monitor = _StubMonitor()
        scheduler = BatchScheduler(num_workers=1, monitor=monitor)
        monitor.events.append(
            Alert(kind="pool-burst-backlog", device="shard-pool", detail="")
        )
        assert scheduler.plan() == [16]
        scheduler.force_size(0, 256)
        # Same (already-seen) event must not re-floor the new size.
        assert scheduler.plan() == [256]

    def test_p99_equalization_shrinks_the_outlier(self):
        obs = RuntimeObservability()
        scheduler = BatchScheduler(num_workers=3, obs=obs)
        hist = obs.batch_seconds
        for worker, p99 in ((0, 0.010), (1, 0.012), (2, 0.100)):
            for _ in range(8):
                hist.observe(p99, pool="shard-pool", worker=str(worker))
        # Balanced stage mix so neither shrink nor grow preempts the
        # equalizer for worker 2.
        _push_traces(obs, worker=2, count=4, enforce=0.01)
        sizes = scheduler.plan()
        assert sizes[2] == 128
        decision = scheduler.decisions[-1]
        assert (decision.worker, decision.reason) == (2, "p99-above")

    def test_force_size_clamps_to_config_bounds(self):
        scheduler = BatchScheduler(
            num_workers=1, config=SchedulerConfig(min_batch=8, max_batch=64)
        )
        scheduler.force_size(0, 10**6)
        assert scheduler.sizes() == [64]
        scheduler.force_size(0, 1)
        assert scheduler.sizes() == [8]

    def test_bound_obs_publishes_the_batch_size_gauge(self):
        obs = RuntimeObservability()
        scheduler = BatchScheduler(num_workers=2, obs=obs)
        gauge = obs.registry.get("pool_batch_size")
        assert gauge is not None
        assert gauge.value(pool="shard-pool", worker="0") == 256
        scheduler.force_size(0, 64)
        assert gauge.value(pool="shard-pool", worker="0") == 64


class TestSchedulerWiring:
    def test_adaptive_requires_the_pool_backend(self, database):
        with pytest.raises(ValueError, match="needs backend='pool'"):
            ShardedEnforcer(
                database=database,
                policy=make_policy(),
                num_shards=2,
                backend="sequential",
                scheduler="adaptive",
            )

    def test_unknown_scheduler_is_rejected(self, database):
        with pytest.raises(ValueError, match="unknown scheduler"):
            ShardedEnforcer(
                database=database,
                policy=make_policy(),
                num_shards=2,
                backend="pool",
                scheduler="fancy",
            )


@needs_fork
class TestAdaptiveParity:
    def test_adaptive_replay_matches_sequential_with_chaos(self, database, replay):
        # Resizes (including degenerate caps) and a mid-run worker kill
        # must never change a verdict: batch boundaries move, routing
        # and intra-flow order do not.
        adaptive = ShardedEnforcer(
            database=database, policy=make_policy(), num_shards=2,
            keep_records=False, backend="pool", scheduler="adaptive",
            flow_cache_size=0,
        )
        control = ShardedEnforcer(
            database=database, policy=make_policy(), num_shards=2,
            keep_records=False, backend="sequential", flow_cache_size=0,
        )
        assert adaptive.scheduler is not None
        bursts = [replay[i : i + 150] for i in range(0, len(replay), 150)]
        forced = [1, 7, 64, 4096]
        pool_verdicts, control_verdicts = [], []
        for index, burst in enumerate(bursts):
            adaptive.scheduler.force_size(0, forced[index % len(forced)])
            token = adaptive.submit_batch(burst)
            if index == 2:
                adaptive._pool.kill_worker(1)
            result = adaptive.collect_batch(token)
            pool_verdicts.extend(verdict for verdict, _ in result.results)
            control_verdicts.extend(
                verdict
                for verdict, _ in control.process_batch_timed(burst).results
            )
        assert pool_verdicts == control_verdicts
        stats = adaptive.aggregate_stats()
        assert stats.pool_worker_crashes == 1
        adaptive.close()
