"""Integration tests: the full BorderPatrol pipeline end to end.

These cover the deployment wiring plus the operational properties the
paper argues for: complete mediation at the border, sanitisation before
packets leave the perimeter, enforcement from the very first packet,
and the documented limitations (socket reuse, native code, stripped
debug info).
"""

import pytest

from repro.android.app_model import AppBehavior, Functionality, NetworkRequest
from repro.apk.manifest import AndroidManifest
from repro.apk.package import build_apk
from repro.core.deployment import BorderPatrolDeployment
from repro.core.policy import Policy, PolicyAction, PolicyLevel, PolicyRule, parse_policy
from repro.dex.builder import DexBuilder
from repro.network.capture import CapturePoint
from repro.network.topology import EnterpriseNetwork


class TestDeploymentWiring:
    def test_provisioned_device_has_patch_and_hooks(self, deployment):
        provisioned = deployment.provision_device()
        assert provisioned.device.kernel.config.allow_unprivileged_ip_options
        assert provisioned.device.hook_manager.enabled
        assert provisioned.context_manager.is_installed
        assert provisioned in deployment.devices

    def test_enroll_app_populates_database(self, deployment, simple_app):
        apk, _ = simple_app
        deployment.enroll_app(apk)
        assert deployment.database.lookup_app_id(apk.app_id) is not None

    def test_policy_updates_are_centrally_managed(self, deployment):
        policy = Policy.deny_libraries(["com/flurry"])
        deployment.set_policy(policy)
        assert deployment.policy is policy
        assert deployment.enforcer.policy is policy

    def test_queue_chain_installed_on_gateway(self, deployment):
        queues = [rule.queue_num for rule in deployment.network.gateway.rules()]
        assert queues == [1, 2]


class TestEndToEndEnforcement:
    def test_selective_blocking_same_endpoint(self, launched_app):
        deployment, _, process = launched_app
        deployment.set_policy(
            parse_policy('{[deny][method]["Lcom/test/app/net/ApiClient;->upload([B)Z"]}')
        )
        login = process.invoke("login")
        upload = process.invoke("upload")
        assert login.completed
        assert not upload.completed and upload.blocked
        # Both functionalities target the same endpoint, so only the
        # execution context can have made the difference.
        assert login.functionality.requests[0].endpoint == upload.functionality.requests[0].endpoint

    def test_library_blacklist_blocks_analytics_only(self, launched_app):
        deployment, _, process = launched_app
        deployment.set_policy(Policy.deny_libraries(["com/flurry"]))
        assert process.invoke("login").completed
        assert not process.invoke("analytics").completed

    def test_whitelist_mode_blocks_unvetted_functionality(self, launched_app):
        deployment, _, process = launched_app
        policy = Policy(name="whitelist")
        policy.add_rule(PolicyRule(PolicyAction.ALLOW, PolicyLevel.LIBRARY, "com/test/app"))
        deployment.set_policy(policy)
        # App-package functionality is vetted; the analytics stack contains a
        # non-whitelisted library frame, so it is dropped.
        assert process.invoke("login").completed
        assert not process.invoke("analytics").completed

    def test_enforcement_applies_from_the_first_packet(self, launched_app):
        deployment, _, process = launched_app
        deployment.set_policy(Policy.deny_libraries(["com/flurry"]))
        outcome = process.invoke("analytics")
        assert outcome.packets_sent == outcome.packets_dropped
        flurry = deployment.network.server_for("data.flurry.com")
        assert flurry.packets_received == 0

    def test_delivered_packets_are_sanitized(self, launched_app):
        deployment, _, process = launched_app
        process.invoke("login")
        process.invoke("upload")
        delivered = deployment.network.capture.at(CapturePoint.DELIVERED)
        assert delivered
        assert all(not p.has_options for p in delivered)
        # ... but the same packets were tagged when they left the device.
        egress = deployment.network.capture.at(CapturePoint.DEVICE_EGRESS)
        assert all(p.has_options for p in egress)

    def test_unprovisioned_device_traffic_is_dropped(self, deployment, simple_app):
        from repro.android.device import Device

        apk, behavior = simple_app
        deployment.enroll_app(apk)
        rogue = Device(name="rogue", network=deployment.network, xposed_installed=False)
        rogue.install(apk, behavior)
        process = rogue.launch("com.test.app")
        outcome = process.invoke("login")
        # No Context Manager -> untagged packets -> dropped at the border
        # (complete-mediation property, paper §VII).
        assert outcome.blocked

    def test_unknown_app_is_dropped_even_when_tagged(self, enterprise_network, simple_app):
        apk, behavior = simple_app
        deployment = BorderPatrolDeployment(network=enterprise_network)
        provisioned = deployment.provision_device()
        # Install WITHOUT enrolling the apk in the signature database.
        provisioned.device.install(apk, behavior)
        process = provisioned.device.launch("com.test.app")
        outcome = process.invoke("login")
        assert outcome.blocked
        assert deployment.enforcer.stats.unknown_apps > 0

    def test_reset_observations_clears_state(self, launched_app):
        deployment, _, process = launched_app
        process.invoke("login")
        deployment.reset_observations()
        assert len(deployment.network.capture) == 0
        assert not deployment.enforcer.records


class TestDocumentedLimitations:
    def test_native_code_bypasses_tagging_but_not_the_border(self, deployment):
        """§VII: Xposed cannot hook native sockets — those packets stay untagged
        and are consequently dropped by the drop-untagged border policy."""
        builder = DexBuilder()
        handle = builder.add_class("com.native.app.Main")
        method = handle.add_method("exfiltrate")
        apk = build_apk(AndroidManifest(package_name="com.native.app"), builder.build())
        behavior = AppBehavior(
            package_name="com.native.app",
            functionalities=(
                Functionality(
                    name="native_exfiltration",
                    call_chain=(method.signature,),
                    requests=(NetworkRequest("api.test.com", via_native=True),),
                ),
            ),
        )
        provisioned = deployment.provision_device()
        process = deployment.install_and_launch(provisioned, apk, behavior)
        outcome = process.invoke("native_exfiltration")
        assert provisioned.context_manager.stats.sockets_tagged == 0
        assert outcome.blocked

    def test_socket_reuse_keeps_the_original_context(self, deployment):
        """§VII: a reused socket keeps the tag of the context that created it."""
        builder = DexBuilder()
        main = builder.add_class("com.reuse.app.Main")
        fetch = main.add_method("fetch")
        leak = main.add_method("leak")
        apk = build_apk(AndroidManifest(package_name="com.reuse.app"), builder.build())
        behavior = AppBehavior(
            package_name="com.reuse.app",
            functionalities=(
                Functionality(
                    name="fetch",
                    call_chain=(fetch.signature,),
                    requests=(NetworkRequest("api.test.com", keep_alive=True),),
                ),
                Functionality(
                    name="leak",
                    call_chain=(leak.signature,),
                    requests=(NetworkRequest("api.test.com", keep_alive=True),),
                ),
            ),
        )
        deployment.set_policy(
            Policy(rules=[PolicyRule(PolicyAction.DENY, PolicyLevel.METHOD, str(leak.signature))])
        )
        provisioned = deployment.provision_device()
        process = deployment.install_and_launch(provisioned, apk, behavior)
        assert process.invoke("fetch").completed
        # The second functionality reuses the still-open socket, so its packets
        # carry the "fetch" context and slip past the method-level deny rule —
        # exactly the socket-reuse limitation the paper documents.
        leak_outcome = process.invoke("leak")
        assert leak_outcome.completed
        assert provisioned.context_manager.stats.sockets_tagged == 1

    def test_stripped_debug_info_over_approximates_overloads(self, deployment):
        """§VII: without line numbers, overloaded methods collapse to one identifier."""
        builder = DexBuilder(strip_debug_info=True)
        handle = builder.add_class("com.stripped.app.Api")
        first = handle.add_method("send", ("int",))
        handle.add_method("send", ("java.lang.String",))
        apk = build_apk(AndroidManifest(package_name="com.stripped.app"), builder.build())
        behavior = AppBehavior(
            package_name="com.stripped.app",
            functionalities=(
                Functionality(
                    name="send_string",
                    call_chain=(handle.class_def.methods[1].signature,),
                    requests=(NetworkRequest("api.test.com"),),
                ),
            ),
        )
        provisioned = deployment.provision_device()
        process = deployment.install_and_launch(provisioned, apk, behavior)
        process.invoke("send_string")
        record = deployment.enforcer.records[-1]
        # The decoded stack contains *an* overload of send() — precision reduces
        # to the method name, but the method-name context is preserved.
        assert any("->send(" in s for s in record.signatures)
        assert str(first.signature) in record.signatures
