"""Tests for the Context Manager, Policy Enforcer, Packet Sanitizer and Policy Extractor."""

import pytest

from repro.core.context_manager import ContextManager, ContextManagerMode
from repro.core.database import SignatureDatabase
from repro.core.encoding import StackTraceEncoder
from repro.core.offline_analyzer import OfflineAnalyzer
from repro.core.packet_sanitizer import PacketSanitizer
from repro.core.policy import Policy, PolicyAction, PolicyLevel, PolicyRule
from repro.core.policy_enforcer import PolicyEnforcer
from repro.core.policy_extractor import PolicyExtractor, ProfileRun
from repro.android.callstack import StackFrame
from repro.netstack.ip import BORDERPATROL_OPTION_TYPE, IPOptions, IPPacket, OPTION_TIMESTAMP
from repro.netstack.netfilter import Verdict
from repro.network.capture import CapturePoint


APP_ID = "00112233aabbccdd"


def make_packet(options=None, dst_ip="203.0.113.9"):
    return IPPacket(
        src_ip="10.10.0.2",
        dst_ip=dst_ip,
        src_port=40001,
        dst_port=443,
        payload_size=256,
        options=options or IPOptions(),
    )


class TestContextManager:
    def test_tags_every_managed_socket(self, launched_app):
        deployment, device, process = launched_app
        process.invoke("login")
        process.invoke("analytics")
        assert device.context_manager.stats.sockets_tagged == 2
        tagged = deployment.network.capture.tagged(CapturePoint.DEVICE_EGRESS)
        assert len(tagged) >= 2

    def test_decoded_stack_matches_executed_call_chain(self, launched_app, simple_app):
        deployment, _, process = launched_app
        _, behavior = simple_app
        process.invoke("analytics")
        record = deployment.enforcer.records[-1]
        expected_leaf = str(behavior.get("analytics").call_chain[-1])
        # The innermost decoded app frame is the library method that opened
        # the connection; the outer app frame follows it.
        assert record.signatures[0] == expected_leaf
        assert any("MainActivity" in s for s in record.signatures)

    def test_frame_resolution_uses_line_numbers_for_overloads(self, launched_app):
        _, device, process = launched_app
        manager = device.context_manager
        state = manager._state_for(process)
        merged = process.apk.merged_dex()
        login = merged.get_class("Lcom/test/app/net/ApiClient;").find_methods("login")[0]
        frame = StackFrame(
            class_name="com.test.app.net.ApiClient",
            method_name="login",
            source_file=login.debug.source_file,
            line_number=login.debug.line_start + 1,
        )
        assert state.resolve_frame(frame) == login.signature

    def test_unknown_frames_are_skipped(self, launched_app):
        _, device, process = launched_app
        manager = device.context_manager
        indexes = manager.resolve_stack(
            process,
            process.current_stack().__class__(
                frames=(StackFrame("java.net.Socket", "connect"),)
            ),
        )
        assert indexes == []
        assert manager.stats.frames_unmapped >= 1

    def test_install_is_idempotent_and_uninstall_works(self, launched_app):
        _, device, process = launched_app
        manager = device.context_manager
        manager.install()  # second install must not register a duplicate hook
        process.invoke("login")
        assert manager.stats.sockets_tagged == 1
        manager.uninstall()
        assert not manager.is_installed
        process.invoke("login")
        assert manager.stats.sockets_tagged == 1

    def test_static_modes_do_not_resolve_stacks(self, enterprise_network, simple_app):
        from repro.android.device import Device
        from repro.netstack.sockets import KernelConfig

        apk, behavior = simple_app
        device = Device(
            network=enterprise_network,
            kernel_config=KernelConfig(allow_unprivileged_ip_options=True),
        )
        manager = ContextManager(device, mode=ContextManagerMode.STATIC_INJECT)
        manager.install()
        device.install(apk, behavior)
        process = device.launch("com.test.app")
        process.invoke("login")
        assert manager.stats.sockets_tagged == 1
        assert manager.stats.frames_seen == 0


class TestPolicyEnforcer:
    def _enforcer(self, policy=None, **kwargs):
        return PolicyEnforcer(database=SignatureDatabase(), policy=policy, **kwargs)

    def test_untagged_packets_dropped_by_default(self):
        enforcer = self._enforcer()
        verdict, _ = enforcer.process(make_packet())
        assert verdict is Verdict.DROP
        assert enforcer.stats.untagged_packets == 1

    def test_untagged_packets_can_be_allowed(self):
        enforcer = self._enforcer(drop_untagged=False)
        assert enforcer.process(make_packet())[0] is Verdict.ACCEPT

    def test_unknown_app_hash_dropped_by_default(self):
        enforcer = self._enforcer()
        options = StackTraceEncoder().encode_option(APP_ID, [0, 1])
        assert enforcer.process(make_packet(options))[0] is Verdict.DROP
        assert enforcer.stats.unknown_apps == 1

    def test_out_of_range_index_is_a_decode_error(self, simple_app):
        apk, _ = simple_app
        database = SignatureDatabase()
        entry = OfflineAnalyzer(database).analyze(apk)
        enforcer = PolicyEnforcer(database=database)
        options = StackTraceEncoder().encode_option(entry.app_id, [60_000])
        verdict, _ = enforcer.process(make_packet(options))
        assert verdict is Verdict.DROP
        assert enforcer.stats.decode_errors == 1

    def test_known_app_with_allow_all_policy_accepted(self, simple_app):
        apk, _ = simple_app
        database = SignatureDatabase()
        entry = OfflineAnalyzer(database).analyze(apk)
        enforcer = PolicyEnforcer(database=database)
        options = StackTraceEncoder().encode_option(entry.app_id, [0, 1])
        verdict, _ = enforcer.process(make_packet(options))
        assert verdict is Verdict.ACCEPT
        record = enforcer.records[-1]
        assert record.package_name == "com.test.app"
        assert len(record.signatures) == 2

    def test_policy_swap_takes_effect_immediately(self, simple_app):
        apk, _ = simple_app
        database = SignatureDatabase()
        entry = OfflineAnalyzer(database).analyze(apk)
        enforcer = PolicyEnforcer(database=database)
        flurry_index = entry.index_of("Lcom/flurry/sdk/FlurryAgent;->logEvent(Ljava/lang/String;)V")
        options = StackTraceEncoder().encode_option(entry.app_id, [flurry_index])
        assert enforcer.process(make_packet(options))[0] is Verdict.ACCEPT
        enforcer.set_policy(Policy.deny_libraries(["com/flurry"]))
        assert enforcer.process(make_packet(options))[0] is Verdict.DROP
        assert len(enforcer.dropped_records()) == 1
        assert len(enforcer.allowed_records()) == 1

    def test_decoded_stacks_to_destination(self, simple_app):
        apk, _ = simple_app
        database = SignatureDatabase()
        entry = OfflineAnalyzer(database).analyze(apk)
        enforcer = PolicyEnforcer(database=database)
        options = StackTraceEncoder().encode_option(entry.app_id, [0])
        enforcer.process(make_packet(options, dst_ip="203.0.113.1"))
        enforcer.process(make_packet(options, dst_ip="203.0.113.2"))
        assert len(enforcer.decoded_stacks_to("203.0.113.1")) == 1
        enforcer.reset()
        assert not enforcer.records and enforcer.stats.packets_seen == 0


class TestPacketSanitizer:
    def test_strips_borderpatrol_option(self):
        sanitizer = PacketSanitizer()
        tagged = make_packet(IPOptions.single(BORDERPATROL_OPTION_TYPE, b"\x01\x02"))
        verdict, sanitized = sanitizer.process(tagged)
        assert verdict is Verdict.ACCEPT
        assert not sanitized.has_options
        assert sanitizer.stats.packets_sanitized == 1

    def test_untagged_packets_untouched(self):
        sanitizer = PacketSanitizer()
        packet = make_packet()
        verdict, out = sanitizer.process(packet)
        assert out is packet
        assert sanitizer.stats.packets_untouched == 1

    def test_selective_strip_keeps_other_options(self):
        sanitizer = PacketSanitizer(strip_all_options=False)
        options = IPOptions(
            options=(
                IPOptions.single(OPTION_TIMESTAMP, b"\x00\x00").options[0],
                IPOptions.single(BORDERPATROL_OPTION_TYPE, b"\x01").options[0],
            )
        )
        _, sanitized = sanitizer.process(make_packet(options))
        assert sanitized.options.find(OPTION_TIMESTAMP) is not None
        assert sanitized.options.find(BORDERPATROL_OPTION_TYPE) is None


class TestPolicyExtractor:
    def _runs(self):
        baseline = ProfileRun(label="baseline")
        baseline.add_stack(["Lcom/app/Auth;->login()Z", "Lcom/app/Main;->onClick()V"])
        baseline.add_stack(["Lcom/app/Files;->list()V"])
        undesired = ProfileRun(label="undesired")
        undesired.add_stack(["Lcom/app/Upload;->send([B)Z", "Lcom/app/Main;->onClick()V"])
        return baseline, undesired

    def test_unique_signatures_diff(self):
        baseline, undesired = self._runs()
        extractor = PolicyExtractor()
        unique = extractor.unique_signatures(baseline, undesired)
        assert unique == ["Lcom/app/Upload;->send([B)Z"]

    def test_extract_method_level_policy(self):
        baseline, undesired = self._runs()
        result = PolicyExtractor(PolicyLevel.METHOD).extract(baseline, undesired)
        assert result.rule_count == 1
        rule = result.policy.rules[0]
        assert rule.action is PolicyAction.DENY
        assert rule.level is PolicyLevel.METHOD
        assert rule.target == "Lcom/app/Upload;->send([B)Z"

    def test_extract_library_level_policy_deduplicates_targets(self):
        baseline = ProfileRun(label="baseline")
        undesired = ProfileRun(label="undesired")
        undesired.add_stack(["Lcom/flurry/sdk/A;->a()V", "Lcom/flurry/sdk/B;->b()V"])
        result = PolicyExtractor(PolicyLevel.LIBRARY).extract(baseline, undesired)
        assert result.rule_count == 1
        assert result.policy.rules[0].target == "com/flurry/sdk"

    def test_hash_level_not_supported(self):
        with pytest.raises(ValueError):
            PolicyExtractor(PolicyLevel.HASH)

    def test_profile_run_counters(self):
        baseline, undesired = self._runs()
        assert baseline.stack_count == 2
        assert len(undesired.signature_set()) == 2
