"""Property-based tests (hypothesis): adaptive batch resizing is inert.

The scheduler's hard bar — a resize decision moves batch *boundaries*
only — restated as a property: for ANY sequence of per-worker batch-cap
changes (forced to arbitrary values, including degenerate 1-packet caps
and the 4096 ceiling, resized mid-burst while batches are in flight),
interleaved with policy churn and worker kills, a pool-backed enforcer
under the adaptive scheduler produces the packet-for-packet identical
verdict sequence to the sequential model, and both control stores
converge to the same rule-table fingerprint.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.policy import PolicyAction, PolicyLevel, PolicyRule
from repro.core.policy_store import PolicyStore, PolicyUpdate
from repro.experiments.gateway_throughput import (
    DEFAULT_DENY_LIBRARIES,
    build_replay,
    build_signature_database,
)
from repro.core.policy import Policy
from repro.netstack.sharding import ShardedEnforcer
from repro.runtime.pool import fork_available

needs_fork = pytest.mark.skipif(
    not fork_available(),
    reason="the pool backend needs the fork start method",
)

DATABASE = build_signature_database(corpus_apps=3, seed=7)
REPLAY = build_replay(DATABASE.entries(), packets=240, flows=24, seed=11)
TARGETS = tuple(
    entry.package_name.replace(".", "/") for entry in DATABASE.entries()
)

SHARDS = 2

#: One step of a run script.  ``burst`` optionally resizes one worker
#: *mid-flight* (between pipelined submit and collect); ``size`` forces
#: a cap (clamping covers the degenerate ends); ``kill`` crashes a live
#: worker; ``edit`` toggles a deny rule through the control store.
step_strategy = st.one_of(
    st.tuples(
        st.just("burst"),
        st.booleans(),
        st.integers(min_value=0, max_value=SHARDS - 1),
        st.integers(min_value=1, max_value=5000),
    ),
    st.tuples(
        st.just("size"),
        st.integers(min_value=0, max_value=SHARDS - 1),
        st.integers(min_value=1, max_value=5000),
    ),
    st.tuples(st.just("kill"), st.integers(min_value=0, max_value=SHARDS - 1)),
    st.tuples(st.just("edit"), st.integers(min_value=0, max_value=len(TARGETS) - 1)),
)


def _toggle(store: PolicyStore, toggled: dict, target: str) -> None:
    rule_id = f"prop-{target}"
    if toggled.get(target):
        store.apply(PolicyUpdate(reason="untoggle").remove_rule(rule_id))
        toggled[target] = False
    else:
        store.apply(
            PolicyUpdate(reason="toggle").add_rule(
                PolicyRule(
                    action=PolicyAction.DENY,
                    level=PolicyLevel.LIBRARY,
                    target=target,
                ),
                rule_id=rule_id,
            )
        )
        toggled[target] = True


@needs_fork
@settings(max_examples=20, deadline=None)
@given(script=st.lists(step_strategy, min_size=1, max_size=10))
def test_random_resize_schedules_never_change_verdicts(script):
    def run(backend):
        store = PolicyStore.from_policy(
            Policy.deny_libraries(DEFAULT_DENY_LIBRARIES, name="prop"),
            name="prop-store",
        )
        enforcer = ShardedEnforcer(
            database=DATABASE,
            policy=store.snapshot(),
            num_shards=SHARDS,
            keep_records=False,
            backend=backend,
            scheduler="adaptive" if backend == "pool" else "static",
        )
        store.subscribe(enforcer, push=False)
        enforcer.attach_control(store)
        scheduler = enforcer.scheduler
        toggled: dict = {}
        verdicts = []
        for step in script:
            kind = step[0]
            if kind == "burst":
                _, mid_resize, worker, size = step
                if scheduler is not None:
                    token = enforcer.submit_batch(REPLAY)
                    if mid_resize:
                        # Mid-burst: batches of this burst are in flight.
                        scheduler.force_size(worker, size)
                    batch = enforcer.collect_batch(token)
                else:
                    batch = enforcer.process_batch_timed(REPLAY)
                verdicts.extend(verdict for verdict, _ in batch.results)
            elif kind == "size":
                if scheduler is not None:
                    scheduler.force_size(step[1], step[2])
            elif kind == "kill":
                if getattr(enforcer, "_pool", None) is not None:
                    enforcer._pool.kill_worker(step[1])
            else:
                _toggle(store, toggled, TARGETS[step[1]])
        # A closing burst proves convergence wherever the script ended.
        batch = enforcer.process_batch_timed(REPLAY)
        verdicts.extend(verdict for verdict, _ in batch.results)
        fingerprint = store.fingerprint()
        enforcer.close()
        return verdicts, fingerprint

    serial_verdicts, serial_fingerprint = run("sequential")
    pool_verdicts, pool_fingerprint = run("pool")
    assert pool_verdicts == serial_verdicts
    assert pool_fingerprint == serial_fingerprint
