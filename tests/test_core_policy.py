"""Tests for the policy model, grammar parser and evaluation semantics."""

import pytest

from repro.core.policy import (
    DecodedContext,
    Policy,
    PolicyAction,
    PolicyLevel,
    PolicyParseError,
    PolicyRule,
    match_level,
    parse_policy,
)
from repro.netstack.netfilter import Verdict

FLURRY_SIG = "Lcom/flurry/sdk/FlurryAgent;->onEvent(Ljava/lang/String;)V"
APP_SIG = "Lcom/example/app/MainActivity;->onClick(Landroid/view/View;)V"
UPLOAD_SIG = (
    "Lcom/dropbox/android/taskqueue/UploadTask;->c()Lcom/dropbox/hairball/taskqueue/TaskResult;"
)


def context(*signatures, app_id="00112233aabbccdd", md5="f" * 32):
    return DecodedContext(app_id=app_id, signatures=tuple(signatures), app_md5=md5)


class TestMatchLevel:
    def test_library_prefix_match(self):
        assert match_level("com/flurry", FLURRY_SIG) is PolicyLevel.LIBRARY
        assert match_level("com.flurry", FLURRY_SIG) is PolicyLevel.LIBRARY

    def test_class_match(self):
        assert match_level("com/flurry/sdk/FlurryAgent", FLURRY_SIG) is PolicyLevel.CLASS

    def test_method_match_with_and_without_trailing_semicolon(self):
        assert match_level(UPLOAD_SIG, UPLOAD_SIG) is PolicyLevel.METHOD
        # The paper's Example 3 omits the trailing ';' of the return type.
        assert match_level(UPLOAD_SIG.rstrip(";"), UPLOAD_SIG) is PolicyLevel.METHOD

    def test_no_match(self):
        assert match_level("com/facebook", FLURRY_SIG) is None
        assert match_level("com/flur", FLURRY_SIG) is None
        assert match_level(UPLOAD_SIG, FLURRY_SIG) is None

    def test_unparseable_signature(self):
        assert match_level("com/flurry", "garbage") is None

    def test_levels_are_ordered(self):
        assert PolicyLevel.HASH < PolicyLevel.LIBRARY < PolicyLevel.CLASS < PolicyLevel.METHOD


class TestPolicyRuleSemantics:
    def test_deny_exists_semantics(self):
        rule = PolicyRule(PolicyAction.DENY, PolicyLevel.LIBRARY, "com/flurry")
        assert rule.triggers_deny(context(APP_SIG, FLURRY_SIG))
        assert not rule.triggers_deny(context(APP_SIG))

    def test_deny_requires_level_at_least_rule_level(self):
        # A library-granularity match does not satisfy a class-level rule.
        rule = PolicyRule(PolicyAction.DENY, PolicyLevel.CLASS, "com/flurry")
        assert not rule.triggers_deny(context(FLURRY_SIG))
        class_rule = PolicyRule(PolicyAction.DENY, PolicyLevel.CLASS, "com/flurry/sdk/FlurryAgent")
        assert class_rule.triggers_deny(context(FLURRY_SIG))

    def test_allow_forall_semantics(self):
        rule = PolicyRule(PolicyAction.ALLOW, PolicyLevel.LIBRARY, "com/flurry")
        assert rule.satisfies_allow(context(FLURRY_SIG))
        assert not rule.satisfies_allow(context(FLURRY_SIG, APP_SIG))
        assert not rule.satisfies_allow(context())

    def test_hash_level_rules(self):
        deny = PolicyRule(PolicyAction.DENY, PolicyLevel.HASH, "00112233aabbccdd")
        assert deny.triggers_deny(context(APP_SIG))
        assert not deny.triggers_deny(context(APP_SIG, app_id="ffffffffffffffff", md5="e" * 32))
        allow = PolicyRule(PolicyAction.ALLOW, PolicyLevel.HASH, "f" * 32)
        assert allow.satisfies_allow(context(APP_SIG))

    def test_empty_target_rejected(self):
        with pytest.raises(PolicyParseError):
            PolicyRule(PolicyAction.DENY, PolicyLevel.LIBRARY, "")

    def test_render_round_trips_through_parser(self):
        rule = PolicyRule(PolicyAction.DENY, PolicyLevel.LIBRARY, "com/flurry")
        parsed = parse_policy(rule.render())
        assert parsed.rules[0] == rule


class TestPolicyEvaluation:
    def test_default_allow(self):
        assert Policy.allow_all().evaluate(context(APP_SIG)).allowed

    def test_default_deny(self):
        policy = Policy(default_action=PolicyAction.DENY)
        assert not policy.evaluate(context(APP_SIG)).allowed

    def test_deny_rule_wins(self):
        policy = Policy.deny_libraries(["com/flurry"])
        decision = policy.evaluate(context(APP_SIG, FLURRY_SIG))
        assert decision.verdict is Verdict.DROP
        assert decision.matched_rule is not None
        assert "com/flurry" in decision.reason

    def test_whitelist_mode_requires_an_allow_match(self):
        policy = Policy()
        policy.add_rule(PolicyRule(PolicyAction.ALLOW, PolicyLevel.LIBRARY, "com/example/app"))
        assert policy.evaluate(context(APP_SIG)).allowed
        assert not policy.evaluate(context(FLURRY_SIG)).allowed
        assert not policy.evaluate(context(APP_SIG, FLURRY_SIG)).allowed

    def test_deny_beats_allow(self):
        policy = Policy()
        policy.add_rule(PolicyRule(PolicyAction.ALLOW, PolicyLevel.LIBRARY, "com/example/app"))
        policy.add_rule(PolicyRule(PolicyAction.DENY, PolicyLevel.METHOD, APP_SIG))
        assert not policy.evaluate(context(APP_SIG)).allowed

    def test_method_level_blocks_only_that_method(self):
        policy = Policy()
        policy.add_rule(PolicyRule(PolicyAction.DENY, PolicyLevel.METHOD, UPLOAD_SIG))
        assert not policy.evaluate(context(APP_SIG, UPLOAD_SIG)).allowed
        download = UPLOAD_SIG.replace("UploadTask", "DownloadTask")
        assert policy.evaluate(context(APP_SIG, download)).allowed

    def test_deny_libraries_constructor(self):
        policy = Policy.deny_libraries(["com/flurry", "com/facebook"])
        assert len(policy) == 2
        assert all(r.action is PolicyAction.DENY for r in policy)

    def test_iteration_and_render(self):
        policy = Policy.deny_libraries(["com/flurry"])
        assert "[deny][library]" in policy.render()
        assert list(policy)[0].level is PolicyLevel.LIBRARY


class TestPolicyGrammar:
    def test_paper_snippet_examples(self):
        text = """
        // Example 1: prevent ad library connections
        {[deny][library]["com/flurry"]}
        // Example 2: prevent functions of an entire class
        {[deny][class]["com/google/gms"]}
        // Example 3: prevent uploads for Dropbox
        {[deny][method]["Lcom/dropbox/android/taskqueue/UploadTask;
        ->c()Lcom/dropbox/hairball/taskqueue/TaskResult"]}
        // Example 4: whitelist company app connections by hash
        {[allow][hash]["da6880ab1f9919747d39e2bd895b95a5"]}
        """
        # The multi-line Example 3 target wraps exactly as in the paper;
        # normalise it onto one line the way an admin would actually write it.
        text = text.replace("UploadTask;\n        ->c()", "UploadTask;->c()")
        policy = parse_policy(text)
        assert len(policy) == 4
        actions = [rule.action for rule in policy]
        assert actions == [PolicyAction.DENY] * 3 + [PolicyAction.ALLOW]
        levels = [rule.level for rule in policy]
        assert levels == [PolicyLevel.LIBRARY, PolicyLevel.CLASS, PolicyLevel.METHOD, PolicyLevel.HASH]

    def test_comments_and_blank_lines_ignored(self):
        policy = parse_policy("// nothing but comments\n\n{[deny][library][\"com/flurry\"]}\n")
        assert len(policy) == 1

    def test_garbage_rejected(self):
        with pytest.raises(PolicyParseError):
            parse_policy("{[deny][library][com/flurry]}")
        with pytest.raises(PolicyParseError):
            parse_policy("this is not a policy at all")

    def test_unparseable_fragment_next_to_valid_rule_rejected(self):
        with pytest.raises(PolicyParseError):
            parse_policy('{[deny][library]["com/flurry"]} {[deny][bogus]["x"]}')

    def test_case_insensitive_action_and_level(self):
        policy = parse_policy('{[DENY][Library]["com/flurry"]}')
        assert policy.rules[0].action is PolicyAction.DENY
        assert policy.rules[0].level is PolicyLevel.LIBRARY

    def test_unknown_level_rejected(self):
        with pytest.raises(PolicyParseError):
            PolicyLevel.parse("package")


class TestDecodedContext:
    def test_parsed_signatures_skips_garbage(self):
        ctx = DecodedContext(app_id="00" * 8, signatures=(APP_SIG, "garbage"))
        assert len(ctx.parsed_signatures) == 1
