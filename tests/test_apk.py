"""Tests for the apk model: hashing, manifest, packaging."""

import pytest

from repro.apk.hashing import (
    TRUNCATED_HASH_BYTES,
    collision_probability,
    expected_collisions,
    md5_hex,
    truncated_hash,
    truncated_hash_hex,
)
from repro.apk.manifest import AndroidManifest, Permission
from repro.apk.package import ApkFile, Certificate, StoreCategory, build_apk
from repro.dex.builder import DexBuilder


class TestHashing:
    def test_md5_is_stable(self):
        assert md5_hex(b"borderpatrol") == md5_hex(b"borderpatrol")
        assert md5_hex(b"a") != md5_hex(b"b")

    def test_truncated_hash_is_prefix_of_md5(self):
        data = b"some apk bytes"
        assert truncated_hash_hex(data) == md5_hex(data)[: TRUNCATED_HASH_BYTES * 2]
        assert len(truncated_hash(data)) == TRUNCATED_HASH_BYTES

    def test_truncated_hash_length_bounds(self):
        with pytest.raises(ValueError):
            truncated_hash(b"x", length_bytes=0)
        with pytest.raises(ValueError):
            truncated_hash(b"x", length_bytes=17)

    def test_collision_probability_monotonic_in_apps(self):
        assert collision_probability(10, 64) < collision_probability(1000, 64)
        assert collision_probability(1, 64) == 0.0
        assert collision_probability(1000, 0) == 1.0

    def test_paper_collision_claim(self):
        # §VII: 3.3M apps, 8-byte hash -> probability below 1e-6.
        assert collision_probability(3_300_000, 64) < 1e-6

    def test_expected_collisions(self):
        assert expected_collisions(1, 64) == 0.0
        assert expected_collisions(3_300_000, 64) < 0.001
        assert expected_collisions(100_000, 16) > 1.0


class TestManifest:
    def test_defaults(self):
        manifest = AndroidManifest(package_name="com.x.app")
        assert manifest.can_use_network
        assert manifest.label == "app"
        assert manifest.has_permission(Permission.INTERNET)

    def test_invalid_package_name(self):
        with pytest.raises(ValueError):
            AndroidManifest(package_name="bad name")
        with pytest.raises(ValueError):
            AndroidManifest(package_name="")

    def test_to_dict(self):
        manifest = AndroidManifest(package_name="com.x.app", version_code=3)
        payload = manifest.to_dict()
        assert payload["package"] == "com.x.app"
        assert payload["versionCode"] == 3
        assert Permission.INTERNET.value in payload["permissions"]

    def test_no_network_permission(self):
        manifest = AndroidManifest(package_name="com.x.app", permissions=())
        assert not manifest.can_use_network


class TestApkFile:
    def _dex(self, extra_method: bool = False):
        builder = DexBuilder()
        handle = builder.add_class("com.x.app.Main")
        handle.add_method("run")
        if extra_method:
            handle.add_method("other")
        return builder.build()

    def test_build_apk_and_hashes(self):
        apk = build_apk(AndroidManifest(package_name="com.x.app"), self._dex())
        assert len(apk.md5) == 32
        assert len(apk.app_id) == TRUNCATED_HASH_BYTES * 2
        assert apk.md5.startswith(apk.app_id)
        assert apk.package_name == "com.x.app"
        assert not apk.is_multidex

    def test_identical_content_gives_identical_hash(self):
        one = build_apk(AndroidManifest(package_name="com.x.app"), self._dex())
        two = build_apk(AndroidManifest(package_name="com.x.app"), self._dex())
        assert one.md5 == two.md5

    def test_code_change_changes_hash(self):
        base = build_apk(AndroidManifest(package_name="com.x.app"), self._dex())
        changed = build_apk(AndroidManifest(package_name="com.x.app"), self._dex(extra_method=True))
        assert base.md5 != changed.md5

    def test_resource_change_changes_hash(self):
        base = build_apk(AndroidManifest(package_name="com.x.app"), self._dex())
        changed = build_apk(
            AndroidManifest(package_name="com.x.app"), self._dex(), resources={"res/a": b"1"}
        )
        assert base.md5 != changed.md5

    def test_version_change_changes_hash(self):
        v1 = build_apk(AndroidManifest(package_name="com.x.app", version_code=1), self._dex())
        v2 = build_apk(AndroidManifest(package_name="com.x.app", version_code=2), self._dex())
        assert v1.md5 != v2.md5

    def test_parse_dex_files_round_trip(self):
        apk = build_apk(AndroidManifest(package_name="com.x.app"), self._dex())
        parsed = apk.parse_dex_files()
        assert len(parsed) == 1
        assert parsed[0].method_count == apk.method_count() == 1

    def test_apk_requires_dex(self):
        with pytest.raises(ValueError):
            ApkFile(manifest=AndroidManifest(package_name="com.x.app"), dex_blobs=())

    def test_certificate_fingerprint_derived_from_subject(self):
        cert = Certificate(subject="CN=acme")
        assert cert.fingerprint
        assert Certificate(subject="CN=acme").fingerprint == cert.fingerprint
        assert Certificate(subject="CN=other").fingerprint != cert.fingerprint

    def test_store_category(self):
        apk = build_apk(
            AndroidManifest(package_name="com.x.app"), self._dex(), category=StoreCategory.BUSINESS
        )
        assert apk.category is StoreCategory.BUSINESS

    def test_merged_dex_for_multidex(self):
        builder = DexBuilder()
        a = builder.add_class("com.x.A")
        a.add_method("m")
        b = builder.add_class("com.x.B")
        b.add_method("m")
        dex_files = builder.build_multidex()
        apk = build_apk(AndroidManifest(package_name="com.x.app"), dex_files)
        assert apk.merged_dex().method_count == 2
