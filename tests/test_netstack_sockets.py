"""Tests for the kernel socket layer: system calls, capabilities, packetisation."""

import pytest

from repro.netstack.clock import SimulatedClock
from repro.netstack.ip import IPOptions, BORDERPATROL_OPTION_TYPE
from repro.netstack.sockets import (
    Capability,
    IP_OPTIONS,
    IPPROTO_IP,
    Kernel,
    KernelConfig,
    PermissionDenied,
    SocketError,
    SocketState,
)


@pytest.fixture()
def kernel():
    return Kernel(host_ip="10.10.0.2", clock=SimulatedClock())


@pytest.fixture()
def patched_kernel():
    return Kernel(
        host_ip="10.10.0.2",
        clock=SimulatedClock(),
        config=KernelConfig(allow_unprivileged_ip_options=True),
    )


def _options():
    return IPOptions.single(BORDERPATROL_OPTION_TYPE, b"\x01\x02\x03\x04")


class TestSocketLifecycle:
    def test_socket_returns_increasing_fds(self, kernel):
        assert kernel.socket(owner_pid=1) == 3
        assert kernel.socket(owner_pid=1) == 4

    def test_connect_allocates_ephemeral_port(self, kernel):
        fd = kernel.socket(owner_pid=1)
        sock = kernel.connect(fd, "203.0.113.1", 443)
        assert sock.state is SocketState.CONNECTED
        assert sock.src_port >= 40_000
        assert sock.dst_ip == "203.0.113.1"
        assert sock.connection_id is not None

    def test_connect_on_closed_socket_fails(self, kernel):
        fd = kernel.socket(owner_pid=1)
        kernel.close(fd)
        with pytest.raises(SocketError):
            kernel.connect(fd, "203.0.113.1", 443)

    def test_bad_fd_raises(self, kernel):
        with pytest.raises(SocketError):
            kernel.send(99, 10)

    def test_listeners_fire(self, kernel):
        created, connected = [], []
        kernel.socket_created_listeners.append(created.append)
        kernel.socket_connected_listeners.append(connected.append)
        fd = kernel.socket(owner_pid=1)
        kernel.connect(fd, "203.0.113.1", 443)
        assert len(created) == 1 and len(connected) == 1
        assert created[0].fd == fd

    def test_open_sockets_excludes_closed(self, kernel):
        fd = kernel.socket(owner_pid=1)
        kernel.socket(owner_pid=1)
        kernel.close(fd)
        assert len(kernel.open_sockets()) == 1
        assert len(kernel.all_sockets()) == 2


class TestSetsockopt:
    def test_unprivileged_caller_denied_by_default(self, kernel):
        fd = kernel.socket(owner_pid=1)
        with pytest.raises(PermissionDenied):
            kernel.setsockopt(fd, IPPROTO_IP, IP_OPTIONS, _options())

    def test_cap_net_raw_allows_ip_options(self, kernel):
        fd = kernel.socket(owner_pid=1)
        kernel.setsockopt(fd, IPPROTO_IP, IP_OPTIONS, _options(), capabilities=Capability.NET_RAW)
        assert not kernel.get_socket(fd).ip_options.is_empty

    def test_kernel_patch_allows_unprivileged_ip_options(self, patched_kernel):
        fd = patched_kernel.socket(owner_pid=1)
        patched_kernel.setsockopt(fd, IPPROTO_IP, IP_OPTIONS, _options())
        assert not patched_kernel.get_socket(fd).ip_options.is_empty

    def test_setsockopt_accepts_raw_bytes(self, patched_kernel):
        fd = patched_kernel.socket(owner_pid=1)
        patched_kernel.setsockopt(fd, IPPROTO_IP, IP_OPTIONS, _options().to_bytes())
        assert patched_kernel.get_socket(fd).ip_options.find(BORDERPATROL_OPTION_TYPE)

    def test_unsupported_option_rejected(self, patched_kernel):
        fd = patched_kernel.socket(owner_pid=1)
        with pytest.raises(SocketError):
            patched_kernel.setsockopt(fd, 6, 1, _options())

    def test_setsockopt_once_hardening(self):
        kernel = Kernel(
            host_ip="10.10.0.2",
            config=KernelConfig(allow_unprivileged_ip_options=True, enforce_setsockopt_once=True),
        )
        fd = kernel.socket(owner_pid=1)
        kernel.setsockopt(fd, IPPROTO_IP, IP_OPTIONS, _options())
        with pytest.raises(PermissionDenied):
            kernel.setsockopt(fd, IPPROTO_IP, IP_OPTIONS, _options())


class TestSend:
    def test_send_requires_connection(self, kernel):
        fd = kernel.socket(owner_pid=1)
        with pytest.raises(SocketError):
            kernel.send(fd, 100)

    def test_send_fragments_at_mss(self, kernel):
        fd = kernel.socket(owner_pid=1)
        kernel.connect(fd, "203.0.113.1", 443)
        packets = kernel.send(fd, 4000)
        assert len(packets) == 3
        assert sum(p.payload_size for p in packets) == 4000
        assert all(p.payload_size <= kernel.config.mss for p in packets)

    def test_zero_byte_send_emits_one_packet(self, kernel):
        fd = kernel.socket(owner_pid=1)
        kernel.connect(fd, "203.0.113.1", 443)
        assert len(kernel.send(fd, 0)) == 1

    def test_every_packet_carries_socket_options(self, patched_kernel):
        fd = patched_kernel.socket(owner_pid=1)
        patched_kernel.connect(fd, "203.0.113.1", 443)
        patched_kernel.setsockopt(fd, IPPROTO_IP, IP_OPTIONS, _options())
        packets = patched_kernel.send(fd, 5000)
        assert len(packets) > 1
        assert all(p.options.find(BORDERPATROL_OPTION_TYPE) for p in packets)

    def test_provenance_merged_into_packets(self, kernel):
        fd = kernel.socket(owner_pid=1)
        kernel.connect(fd, "203.0.113.1", 443)
        kernel.get_socket(fd).provenance["package"] = "com.x"
        packets = kernel.send(fd, 10, provenance={"functionality": "upload"})
        assert packets[0].provenance == {"package": "com.x", "functionality": "upload"}

    def test_accounting(self, kernel):
        fd = kernel.socket(owner_pid=1)
        kernel.connect(fd, "203.0.113.1", 443)
        kernel.send(fd, 3000)
        kernel.receive(fd, 500)
        sock = kernel.get_socket(fd)
        assert sock.bytes_sent == 3000
        assert sock.bytes_received == 500
        assert sock.packets_sent == 3

    def test_negative_send_rejected(self, kernel):
        fd = kernel.socket(owner_pid=1)
        kernel.connect(fd, "203.0.113.1", 443)
        with pytest.raises(ValueError):
            kernel.send(fd, -1)


class TestClock:
    def test_clock_advances_monotonically(self):
        clock = SimulatedClock()
        assert clock.now() == 0.0
        clock.advance(5.0)
        assert clock.now() == 5.0
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        with pytest.raises(ValueError):
            SimulatedClock(start_ms=-1)

    def test_stopwatch(self):
        clock = SimulatedClock()
        watch = clock.measure()
        clock.advance(3.0)
        assert watch.elapsed_ms() == 3.0
        watch.restart()
        assert watch.elapsed_ms() == 0.0
