"""Tests for the native-hooking extension (paper §VII "Native functions").

The prototype's Xposed module cannot observe sockets opened from native
code; the paper suggests a hooking system with native support (Frida) or
a native re-implementation as the fix.  The reproduction implements that
extension behind the ``native_hooking`` provisioning flag: when enabled,
native socket connections also dispatch a post-hook (without a managed
``JavaSocket``) and the Context Manager writes the tag through the raw
descriptor instead.
"""

import pytest

from repro.android.app_model import AppBehavior, Functionality, NetworkRequest
from repro.apk.manifest import AndroidManifest
from repro.apk.package import build_apk
from repro.core.deployment import BorderPatrolDeployment
from repro.core.policy import Policy
from repro.dex.builder import DexBuilder
from repro.network.topology import EnterpriseNetwork


@pytest.fixture()
def native_app():
    builder = DexBuilder()
    handle = builder.add_class("com.nativeapp.Main")
    sync = handle.add_method("sync")
    exfil = handle.add_method("exfiltrate")
    flurry = builder.add_class("com.flurry.sdk.FlurryAgent")
    report = flurry.add_method("report", ("java.lang.String",))
    apk = build_apk(AndroidManifest(package_name="com.nativeapp"), builder.build())
    behavior = AppBehavior(
        package_name="com.nativeapp",
        functionalities=(
            Functionality(
                name="native_sync",
                call_chain=(sync.signature,),
                requests=(NetworkRequest("api.nativeapp.com", via_native=True),),
            ),
            Functionality(
                name="native_analytics",
                call_chain=(exfil.signature, report.signature),
                requests=(NetworkRequest("data.flurry.com", via_native=True, upload_bytes=900),),
                desirable=False,
                library="com.flurry",
            ),
        ),
    )
    return apk, behavior


@pytest.fixture()
def network(native_app):
    _, behavior = native_app
    net = EnterpriseNetwork()
    for endpoint in behavior.endpoints():
        net.add_server(endpoint)
    return net


def _deploy(network, native_app, native_hooking: bool):
    apk, behavior = native_app
    deployment = BorderPatrolDeployment(network=network)
    provisioned = deployment.provision_device(native_hooking=native_hooking)
    process = deployment.install_and_launch(provisioned, apk, behavior)
    return deployment, provisioned, process


class TestWithoutNativeHooking:
    def test_native_traffic_is_untagged_and_dropped(self, network, native_app):
        deployment, provisioned, process = _deploy(network, native_app, native_hooking=False)
        outcome = process.invoke("native_sync")
        assert outcome.blocked
        assert provisioned.context_manager.stats.sockets_tagged == 0
        assert deployment.enforcer.stats.untagged_packets > 0


class TestWithNativeHooking:
    def test_native_traffic_is_tagged_and_mediated(self, network, native_app):
        deployment, provisioned, process = _deploy(network, native_app, native_hooking=True)
        outcome = process.invoke("native_sync")
        assert outcome.completed
        assert provisioned.context_manager.stats.sockets_tagged == 1
        record = deployment.enforcer.records[-1]
        assert record.package_name == "com.nativeapp"
        assert any("Main;->sync" in s for s in record.signatures)

    def test_policies_apply_to_native_library_traffic(self, network, native_app):
        deployment, _, process = _deploy(network, native_app, native_hooking=True)
        deployment.set_policy(Policy.deny_libraries(["com/flurry"]))
        assert process.invoke("native_sync").completed
        analytics = process.invoke("native_analytics")
        assert analytics.blocked
        flurry = deployment.network.server_for("data.flurry.com")
        assert flurry.packets_received == 0

    def test_delivered_native_packets_are_sanitized(self, network, native_app):
        deployment, _, process = _deploy(network, native_app, native_hooking=True)
        process.invoke("native_sync")
        server = deployment.network.server_for("api.nativeapp.com")
        assert server.packets_received == 1
        assert server.received_options() == []
