"""Persistent worker-pool runtime: parity, robustness, degradation.

The pool's conformance bar is verdict identity: a ``backend="pool"``
enforcer (or fleet) must produce the identical verdict sequence to the
sequential model packet for packet, across policy churn, worker
crashes, and shared-memory-ring fallbacks.  These tests are tier-1 —
they run in the default ``pytest tests`` sweep, so the parity bar is
enforced on every change, not only in the benchmark suite.
"""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.core.fleet import GatewayFleet
from repro.core.policy import Policy, PolicyAction, PolicyLevel, PolicyRule
from repro.core.policy_enforcer import PolicyEnforcer
from repro.core.policy_store import PolicyStore, PolicyUpdate
from repro.experiments.gateway_throughput import (
    DEFAULT_DENY_LIBRARIES,
    build_replay,
    build_signature_database,
)
from repro.netstack.ip import (
    BORDERPATROL_OPTION_TYPE,
    OPTION_END_OF_LIST,
    IPOption,
    IPOptions,
    IPPacket,
)
from repro.netstack.sharding import ShardedEnforcer
from repro.runtime.pool import WorkerPoolError, fork_available
from repro.runtime.ring import (
    PacketRing,
    RingCodecError,
    decode_batch,
    encode_batch,
    encode_packet,
)

needs_fork = pytest.mark.skipif(
    not fork_available(),
    reason="the pool backend needs the fork start method",
)


@pytest.fixture(scope="module")
def database():
    return build_signature_database(corpus_apps=4, seed=7)


@pytest.fixture(scope="module")
def replay(database):
    return build_replay(database.entries(), packets=400, flows=32, seed=11)


def make_policy() -> Policy:
    return Policy.deny_libraries(DEFAULT_DENY_LIBRARIES, name="pool-test")


@pytest.fixture()
def policy():
    return make_policy()


def _deny(app_id: str) -> PolicyRule:
    return PolicyRule(action=PolicyAction.DENY, level=PolicyLevel.HASH, target=app_id)


def _verdicts(batch):
    return [verdict for verdict, _ in batch.results]


# -- shared-memory ring codec ----------------------------------------------------------


class TestRingCodec:
    def test_round_trip_preserves_enforcement_fields(self):
        packet = IPPacket(
            src_ip="10.0.0.1",
            dst_ip="203.0.113.9",
            src_port=40001,
            dst_port=443,
            protocol=17,
            payload_size=900,
            options=IPOptions.single(BORDERPATROL_OPTION_TYPE, b"abcd"),
            ttl=17,
            direction="inbound",
            socket_id=12345,
            connection_id=67890,
        )
        [decoded] = decode_batch(encode_batch([packet]))
        for attribute in (
            "src_ip",
            "dst_ip",
            "src_port",
            "dst_port",
            "protocol",
            "payload_size",
            "options",
            "ttl",
            "direction",
            "socket_id",
            "connection_id",
            "packet_id",
            "created_at_ms",
        ):
            assert getattr(decoded, attribute) == getattr(packet, attribute)

    def test_none_ids_survive(self):
        packet = IPPacket(src_ip="10.0.0.1", dst_ip="10.0.0.2", src_port=1, dst_port=2)
        [decoded] = decode_batch(encode_batch([packet]))
        assert decoded.socket_id is None and decoded.connection_id is None

    def test_eol_option_byte_is_rejected(self):
        # IPPacket.from_bytes truncates options at EOL, so shipping an
        # EOL through the ring would change what the worker enforces —
        # the codec refuses and the pool falls back to pickling.
        packet = IPPacket(
            src_ip="10.0.0.1", dst_ip="10.0.0.2", src_port=1, dst_port=2,
            options=IPOptions(
                options=(
                    IPOption(option_type=OPTION_END_OF_LIST),
                    IPOption(option_type=BORDERPATROL_OPTION_TYPE, data=b"tag"),
                )
            ),
        )
        with pytest.raises(RingCodecError):
            encode_packet(packet)

    def test_oversize_fields_are_rejected(self):
        oversize = IPPacket(
            src_ip="1" * 300, dst_ip="10.0.0.2", src_port=1, dst_port=2
        )
        with pytest.raises(RingCodecError):
            encode_packet(oversize)

    def test_out_of_range_fixed_fields_are_rejected(self):
        # IPPacket does not validate these fields, and struct.error is
        # NOT RingCodecError — it would bypass the pool's pickle
        # fallback and crash submit instead.
        base = dict(src_ip="10.0.0.1", dst_ip="10.0.0.2", src_port=1, dst_port=2)
        for overrides in (
            {"protocol": 300},
            {"protocol": -1},
            {"packet_id": -5},
            {"packet_id": 1 << 64},
            {"socket_id": 1 << 70},
        ):
            with pytest.raises(RingCodecError):
                encode_packet(IPPacket(**base, **overrides))

    def test_ring_reclaims_released_regions(self):
        ring = PacketRing(size=256)
        blob = b"x" * 100
        first = ring.try_write(blob)
        second = ring.try_write(blob)
        assert first is not None and second is not None
        # Both inflight regions pin the buffer: no room for a third.
        assert ring.try_write(blob) is None
        assert ring.read(first) == blob
        ring.release(first)
        # FIFO reclaim + wraparound: the freed head region is writable
        # again once the oldest inflight region is released.
        assert ring.try_write(blob) is not None
        ring.release(second)
        ring.close()


# -- graceful degradation --------------------------------------------------------------


class TestDegradation:
    @pytest.fixture()
    def no_fork(self, monkeypatch):
        monkeypatch.setattr("multiprocessing.get_all_start_methods", lambda: ["spawn"])

    @pytest.mark.parametrize("backend", ["process", "pool"])
    def test_sharded_enforcer_falls_back_to_sequential(
        self, no_fork, caplog, database, replay, policy, backend
    ):
        with caplog.at_level("WARNING", logger="repro.netstack.sharding"):
            enforcer = ShardedEnforcer(
                database=database, policy=policy, num_shards=2,
                keep_records=False, backend=backend,
            )
        # Construction must not raise: the gateway comes up and enforces
        # sequentially instead.
        assert enforcer.degraded
        assert enforcer.requested_backend == backend
        assert enforcer.backend == "sequential"
        assert enforcer.stats.backend_fallbacks == 1
        assert any("degrading to sequential" in message for message in caplog.messages)
        batch = enforcer.process_batch_timed(replay[:50])
        assert batch.backend == "sequential"
        assert len(batch.results) == 50

    def test_degradation_survives_reset(self, no_fork, database, policy):
        enforcer = ShardedEnforcer(
            database=database, policy=policy, num_shards=2,
            keep_records=False, backend="pool",
        )
        enforcer.reset()
        # Fork support is a platform property, not per-run state.
        assert enforcer.degraded
        assert enforcer.backend == "sequential"
        assert enforcer.stats.backend_fallbacks == 1

    def test_fleet_falls_back_to_sequential(self, no_fork, caplog, database, policy):
        with caplog.at_level("WARNING", logger="repro.core.fleet"):
            fleet = GatewayFleet(
                database=database, policy=policy, num_gateways=2,
                live=True, backend="pool", keep_records=False,
            )
        assert fleet.degraded
        assert fleet.requested_backend == "pool"
        assert fleet.backend == "sequential"
        assert fleet.aggregate_stats().backend_fallbacks == 1
        assert any("degrading to sequential" in message for message in caplog.messages)

    def test_degraded_pipelined_bursts_run_synchronously(
        self, no_fork, database, replay, policy
    ):
        # The pipelined API must not resurrect pool workers on a
        # degraded enforcer: bursts run in-process at submit time and
        # collect by token, out of order included.
        enforcer = ShardedEnforcer(
            database=database, policy=policy, num_shards=2,
            keep_records=False, backend="pool",
        )
        control = ShardedEnforcer(
            database=database, policy=make_policy(), num_shards=2,
            keep_records=False, backend="sequential",
        )
        first, second = replay[:50], replay[50:100]
        token_first = enforcer.submit_batch(first)
        token_second = enforcer.submit_batch(second)
        assert enforcer._pool is None  # no workers were spawned
        batch_second = enforcer.collect_batch(token_second)
        batch_first = enforcer.collect_batch(token_first)
        assert batch_first.backend == "sequential"
        assert _verdicts(batch_first) == _verdicts(control.process_batch_timed(first))
        assert _verdicts(batch_second) == _verdicts(control.process_batch_timed(second))
        with pytest.raises(WorkerPoolError):
            enforcer.collect_batch()
        with pytest.raises(WorkerPoolError):
            enforcer.collect_batch(token_first)

    def test_degraded_fleet_pipelined_bursts_run_synchronously(
        self, no_fork, database, replay, policy
    ):
        fleet = GatewayFleet(
            database=database, policy=policy, num_gateways=2,
            live=True, backend="pool", keep_records=False,
        )
        control = GatewayFleet(
            database=database, policy=make_policy(), num_gateways=2,
            live=True, backend="sequential", keep_records=False,
        )
        burst = replay[:60]
        token = fleet.submit_burst(burst)
        assert fleet._pool is None
        result = fleet.collect_burst(token)
        control_result = control.process_batch_timed(burst)
        assert [v for v, _ in result.results] == [v for v, _ in control_result.results]
        with pytest.raises(WorkerPoolError):
            fleet.collect_burst()

    def test_sequential_backend_rejects_pipelined_bursts(self, database, replay, policy):
        # An explicitly sequential enforcer/fleet never asked for
        # pipelining; silently spawning pool workers for it would betray
        # the backend choice.
        enforcer = ShardedEnforcer(
            database=database, policy=policy, num_shards=2,
            keep_records=False, backend="sequential",
        )
        with pytest.raises(ValueError, match="backend='pool'"):
            enforcer.submit_batch(replay[:10])
        with pytest.raises(ValueError, match="backend='pool'"):
            enforcer.collect_batch()
        assert enforcer._pool is None
        fleet = GatewayFleet(
            database=database, policy=make_policy(), num_gateways=2,
            live=True, backend="sequential", keep_records=False,
        )
        with pytest.raises(ValueError, match="backend='pool'"):
            fleet.submit_burst(replay[:10])
        assert fleet._pool is None


# -- pool parity across policy churn ---------------------------------------------------


@needs_fork
class TestShardPoolParity:
    def test_verdict_identity_across_delta_pushes(self, database, replay, policy):
        apps = [entry.app_id for entry in database.entries()]
        updates = [
            PolicyUpdate(reason="deny 0").add_rule(_deny(apps[0]), rule_id="t0"),
            PolicyUpdate(reason="deny 1").add_rule(_deny(apps[1]), rule_id="t1"),
            PolicyUpdate(reason="undo 0").remove_rule("t0"),
        ]

        def run(backend):
            enforcer = ShardedEnforcer(
                database=database, policy=make_policy(), num_shards=2,
                keep_records=False, backend=backend,
            )
            store = PolicyStore.from_policy(make_policy(), name="parity")
            store.subscribe(enforcer, push=False)
            enforcer.attach_control(store)
            verdicts = []
            bursts = [replay[i : i + 100] for i in range(0, len(replay), 100)]
            for index, burst in enumerate(bursts):
                if index < len(updates):
                    store.apply(updates[index])
                verdicts.extend(_verdicts(enforcer.process_batch_timed(burst)))
            stats = enforcer.aggregate_stats()
            enforcer.close()
            return verdicts, stats

        sequential_verdicts, _ = run("sequential")
        pool_verdicts, pool_stats = run("pool")
        assert pool_verdicts == sequential_verdicts
        # The control store gives the surgical record-push path: every
        # version committed while the pool is live reaches each worker
        # as one delta record, never as a pickled snapshot.  The first
        # update lands before the lazily-spawned workers fork (they
        # inherit it at fork), so only the later two are pushed.
        assert pool_stats.pool_delta_pushes == 2 * 2  # live versions x workers
        assert pool_stats.pool_snapshot_syncs == 0
        assert pool_stats.pool_ring_batches > 0

    def test_set_policy_without_control_syncs_snapshots(self, database, replay, policy):
        enforcer = ShardedEnforcer(
            database=database, policy=make_policy(), num_shards=2,
            keep_records=False, backend="pool",
        )
        control = ShardedEnforcer(
            database=database, policy=make_policy(), num_shards=2,
            keep_records=False, backend="sequential",
        )
        first = replay[:100]
        second = replay[100:200]
        verdicts = _verdicts(enforcer.process_batch_timed(first))
        assert verdicts == _verdicts(control.process_batch_timed(first))
        replacement = Policy.allow_all(name="swap")
        enforcer.set_policy(replacement)
        control.set_policy(replacement)
        assert _verdicts(enforcer.process_batch_timed(second)) == _verdicts(
            control.process_batch_timed(second)
        )
        # No attached store, so the replacement shipped as a full sync.
        assert enforcer.aggregate_stats().pool_snapshot_syncs > 0
        enforcer.close()

    def test_tiny_ring_falls_back_to_pickling(self, database, replay, policy):
        enforcer = ShardedEnforcer(
            database=database, policy=make_policy(), num_shards=2,
            keep_records=False, backend="pool", ring_bytes=8,
        )
        control = ShardedEnforcer(
            database=database, policy=make_policy(), num_shards=2,
            keep_records=False, backend="sequential",
        )
        burst = replay[:120]
        assert _verdicts(enforcer.process_batch_timed(burst)) == _verdicts(
            control.process_batch_timed(burst)
        )
        stats = enforcer.aggregate_stats()
        assert stats.pool_pickled_batches > 0
        assert stats.pool_ring_batches == 0
        enforcer.close()

    def test_results_carry_original_packet_objects(self, database, replay, policy):
        # The ring codec drops provenance (enforcement never reads it);
        # the parent must stitch verdicts onto its own packet objects so
        # callers keep full-fidelity packets.
        enforcer = ShardedEnforcer(
            database=database, policy=policy, num_shards=2,
            keep_records=False, backend="pool",
        )
        burst = replay[:40]
        batch = enforcer.process_batch_timed(burst)
        assert [packet for _, packet in batch.results] == burst
        assert all(
            returned is original
            for (_, returned), original in zip(batch.results, burst)
        )
        enforcer.close()

    def test_pool_records_match_sequential(self, database, replay, policy):
        def run(backend):
            enforcer = ShardedEnforcer(
                database=database, policy=make_policy(), num_shards=2,
                keep_records=True, backend=backend,
            )
            enforcer.process_batch_timed(replay[:80])
            records = [
                (record.packet_id, record.verdict, record.reason, record.app_id)
                for record in enforcer.records
            ]
            enforcer.close()
            return records

        assert run("pool") == run("sequential")


# -- worker-crash robustness -----------------------------------------------------------


@needs_fork
class TestCrashRecovery:
    def test_killed_worker_respawns_and_replays(self, database, policy):
        # A batch big enough that the worker is still enforcing when the
        # kill lands, so the pending batch must be replayed from the
        # parent's spec on the respawned worker.
        big_replay = build_replay(
            database.entries(), packets=4000, flows=64, seed=13
        )
        enforcer = ShardedEnforcer(
            database=database, policy=make_policy(), num_shards=2,
            keep_records=False, backend="pool", flow_cache_size=0,
        )
        control = ShardedEnforcer(
            database=database, policy=make_policy(), num_shards=2,
            keep_records=False, backend="sequential", flow_cache_size=0,
        )
        warm = big_replay[:100]
        assert _verdicts(enforcer.process_batch_timed(warm)) == _verdicts(
            control.process_batch_timed(warm)
        )
        token = enforcer.submit_batch(big_replay)
        enforcer._pool.kill_worker(0)
        batch = enforcer.collect_batch(token)
        assert _verdicts(batch) == _verdicts(control.process_batch_timed(big_replay))
        stats = enforcer.aggregate_stats()
        assert stats.pool_worker_crashes == 1
        assert stats.pool_worker_respawns == 1
        assert stats.pool_batches_replayed >= 1
        # The pool keeps enforcing normally after the respawn.
        tail = big_replay[:60]
        assert _verdicts(enforcer.process_batch_timed(tail)) == _verdicts(
            control.process_batch_timed(tail)
        )
        enforcer.close()

    def test_crash_detected_during_submit_replays_once(self, database, policy):
        # The first-detection point here is the non-blocking pump inside
        # the *second* submit's dispatch, not a collect: the revive
        # replays the just-queued batch, and the dispatch must then skip
        # its own trailing send — a double send would enforce the batch
        # twice and abort the burst on the duplicate (out-of-order)
        # result.
        big_replay = build_replay(
            database.entries(), packets=3000, flows=64, seed=19
        )
        enforcer = ShardedEnforcer(
            database=database, policy=make_policy(), num_shards=2,
            keep_records=False, backend="pool", flow_cache_size=0,
        )
        control = ShardedEnforcer(
            database=database, policy=make_policy(), num_shards=2,
            keep_records=False, backend="sequential", flow_cache_size=0,
        )
        first, second = big_replay[:2000], big_replay[2000:]
        token_first = enforcer.submit_batch(first)
        enforcer._pool.kill_worker(0)
        token_second = enforcer.submit_batch(second)
        batch_first = enforcer.collect_batch(token_first)
        batch_second = enforcer.collect_batch(token_second)
        assert _verdicts(batch_first) == _verdicts(control.process_batch_timed(first))
        assert _verdicts(batch_second) == _verdicts(control.process_batch_timed(second))
        # A tail batch pumps any stray duplicate result out of the pipe:
        # a double-sent replay would surface here as WorkerPoolError.
        tail = big_replay[:80]
        assert _verdicts(enforcer.process_batch_timed(tail)) == _verdicts(
            control.process_batch_timed(tail)
        )
        stats = enforcer.aggregate_stats()
        assert stats.pool_worker_crashes == 1
        assert stats.pool_worker_respawns == 1
        assert stats.pool_batches_replayed >= 1
        enforcer.close()

    def test_reconfigure_refuses_while_bursts_outstanding(self, database, replay, policy):
        # Tearing the pool down with submitted-but-uncollected bursts
        # would silently discard their verdicts; reset/attach must
        # refuse until they are collected.  close() is the explicit
        # discard path and stays allowed.
        enforcer = ShardedEnforcer(
            database=database, policy=make_policy(), num_shards=2,
            keep_records=False, backend="pool",
        )
        token = enforcer.submit_batch(replay[:40])
        with pytest.raises(WorkerPoolError, match="outstanding"):
            enforcer.reset()
        with pytest.raises(WorkerPoolError, match="outstanding"):
            enforcer.attach_control(
                PolicyStore.from_policy(make_policy(), name="late")
            )
        batch = enforcer.collect_batch(token)
        assert len(batch.results) == 40
        enforcer.reset()  # collected: reconfiguration is fine again
        enforcer.close()

    def test_fleet_reconfigure_refuses_while_bursts_outstanding(
        self, database, replay, policy
    ):
        fleet = GatewayFleet(
            database=database, policy=make_policy(), num_gateways=2,
            live=True, backend="pool", keep_records=False,
        )
        token = fleet.submit_burst(replay[:40])
        with pytest.raises(WorkerPoolError, match="outstanding"):
            fleet.reset()
        with pytest.raises(WorkerPoolError, match="outstanding"):
            fleet.add_gateway()
        assert fleet.num_gateways == 2  # the refused join left no stub
        result = fleet.collect_burst(token)
        assert len(result.results) == 40
        fleet.add_gateway()  # collected: reconfiguration is fine again
        fleet.close()

    def test_fleet_pool_survives_worker_crash(self, database, replay, policy):
        def build(backend):
            return GatewayFleet(
                database=database, policy=make_policy(), num_gateways=2,
                live=True, backend=backend, keep_records=False,
            )

        pool_fleet = build("pool")
        control = build("sequential")
        bursts = [replay[i : i + 100] for i in range(0, len(replay), 100)]
        pool_verdicts, control_verdicts = [], []
        for index, burst in enumerate(bursts):
            token = pool_fleet.submit_burst(burst)
            if index == 1:
                pool_fleet._pool.kill_worker(0)
            result = pool_fleet.collect_burst(token)
            pool_verdicts.extend(verdict for verdict, _ in result.results)
            control_verdicts.extend(
                verdict
                for verdict, _ in control.process_batch_timed(burst).results
            )
        assert pool_verdicts == control_verdicts
        stats = pool_fleet.aggregate_stats()
        assert stats.pool_worker_crashes == 1
        assert stats.pool_worker_respawns == 1
        pool_fleet.close()


# -- deterministic batch failure (poison) and silent-loss guards -----------------------


#: TEST-NET-3 source no replay generator emits; the poisoned enforcer
#: raises on exactly this packet.
_POISON_SRC = "203.0.113.254"


@needs_fork
class TestPoisonAndLossGuards:
    def test_poison_batch_fails_fast_instead_of_replay_looping(
        self, database, replay, policy, monkeypatch
    ):
        # A deterministic enforcement error (as opposed to a worker
        # crash) must NOT leave the failing batch at the head of
        # worker.pending: the revive would replay it into the respawned
        # worker, which dies on it again — an unbounded crash loop.
        # The regression: fail the burst once, keep the pool alive.
        assert all(packet.src_ip != _POISON_SRC for packet in replay)
        original = PolicyEnforcer.process

        def poisoned_process(self, packet):
            if packet.src_ip == _POISON_SRC:
                raise RuntimeError("crafted poison packet")
            return original(self, packet)

        # Patched in the parent BEFORE the workers fork, so every forked
        # enforcer inherits the poisoned method.
        monkeypatch.setattr(PolicyEnforcer, "process", poisoned_process)
        enforcer = ShardedEnforcer(
            database=database, policy=make_policy(), num_shards=2,
            keep_records=False, backend="pool", flow_cache_size=0,
        )
        control = ShardedEnforcer(
            database=database, policy=make_policy(), num_shards=2,
            keep_records=False, backend="sequential", flow_cache_size=0,
        )
        poison = dataclasses.replace(replay[0], src_ip=_POISON_SRC)
        burst = replay[:120] + [poison] + replay[120:240]
        token = enforcer.submit_batch(burst)
        with pytest.raises(WorkerPoolError, match="failed enforcing batch"):
            enforcer.collect_batch(token)
        assert enforcer.aggregate_stats().pool_poisoned_batches == 1
        # The pool keeps enforcing healthy bursts, verdict-identical
        # (the dead worker's EOF is noticed on this pump and respawned).
        tail = replay[240:]
        assert _verdicts(enforcer.process_batch_timed(tail)) == _verdicts(
            control.process_batch_timed(tail)
        )
        # The worker died exactly once on the poison; the respawn never
        # saw the batch again, so the crash count stays at one.
        stats = enforcer.aggregate_stats()
        assert stats.pool_worker_crashes == 1
        assert stats.pool_worker_respawns == 1
        enforcer.close()

    def test_control_plane_worker_error_still_raises_directly(
        self, database, replay, policy, monkeypatch
    ):
        # Non-batch failures (a policy push the worker cannot apply)
        # have no batch to pop; they surface as a plain WorkerPoolError.
        parent_pid = os.getpid()
        original = PolicyEnforcer.set_policy

        def broken_set_policy(self, policy):
            if os.getpid() != parent_pid:  # only the forked workers fail
                raise RuntimeError("worker rejected the policy swap")
            return original(self, policy)

        monkeypatch.setattr(PolicyEnforcer, "set_policy", broken_set_policy)
        enforcer = ShardedEnforcer(
            database=database, policy=make_policy(), num_shards=2,
            keep_records=False, backend="pool",
        )
        enforcer.process_batch_timed(replay[:40])  # fork the workers
        with pytest.raises(WorkerPoolError, match="failed"):
            enforcer.set_policy(make_policy())
            enforcer.process_batch_timed(replay[:40])
        enforcer.close()

    def test_unfilled_positions_raise_instead_of_silent_loss(
        self, database, replay, policy
    ):
        # collect() used to filter None positions out of the stitched
        # results: a dropped batch shrank the output silently.  Simulate
        # the loss by erasing the burst's outstanding-batch accounting
        # right after submit, so collect sees "complete" with holes.
        enforcer = ShardedEnforcer(
            database=database, policy=make_policy(), num_shards=2,
            keep_records=False, backend="pool",
        )
        token = enforcer.submit_batch(replay[:50])
        pool_burst = enforcer._pool._bursts[token]
        pool_burst.remaining = {}
        with pytest.raises(WorkerPoolError, match="lost") as excinfo:
            enforcer.collect_batch(token)
        message = str(excinfo.value)
        assert f"burst {token} " in message
        assert "positions" in message
        enforcer.close()


# -- stats plumbing --------------------------------------------------------------------


def test_pool_counters_are_merge_safe():
    from repro.core.policy_enforcer import EnforcerStats

    left, right = EnforcerStats(), EnforcerStats()
    left.pool_worker_crashes = 1
    left.pool_ring_batches = 5
    right.pool_worker_crashes = 2
    right.pool_delta_pushes = 3
    right.backend_fallbacks = 1
    left.merge(right)
    assert left.pool_worker_crashes == 3
    assert left.pool_ring_batches == 5
    assert left.pool_delta_pushes == 3
    assert left.backend_fallbacks == 1
