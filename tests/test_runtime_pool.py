"""Persistent worker-pool runtime: parity, robustness, degradation.

The pool's conformance bar is verdict identity: a ``backend="pool"``
enforcer (or fleet) must produce the identical verdict sequence to the
sequential model packet for packet, across policy churn, worker
crashes, and shared-memory-ring fallbacks.  These tests are tier-1 —
they run in the default ``pytest tests`` sweep, so the parity bar is
enforced on every change, not only in the benchmark suite.
"""

from __future__ import annotations

import pytest

from repro.core.fleet import GatewayFleet
from repro.core.policy import Policy, PolicyAction, PolicyLevel, PolicyRule
from repro.core.policy_store import PolicyStore, PolicyUpdate
from repro.experiments.gateway_throughput import (
    DEFAULT_DENY_LIBRARIES,
    build_replay,
    build_signature_database,
)
from repro.netstack.ip import (
    BORDERPATROL_OPTION_TYPE,
    OPTION_END_OF_LIST,
    IPOption,
    IPOptions,
    IPPacket,
)
from repro.netstack.sharding import ShardedEnforcer
from repro.runtime.pool import fork_available
from repro.runtime.ring import (
    PacketRing,
    RingCodecError,
    decode_batch,
    encode_batch,
    encode_packet,
)

needs_fork = pytest.mark.skipif(
    not fork_available(),
    reason="the pool backend needs the fork start method",
)


@pytest.fixture(scope="module")
def database():
    return build_signature_database(corpus_apps=4, seed=7)


@pytest.fixture(scope="module")
def replay(database):
    return build_replay(database.entries(), packets=400, flows=32, seed=11)


def make_policy() -> Policy:
    return Policy.deny_libraries(DEFAULT_DENY_LIBRARIES, name="pool-test")


@pytest.fixture()
def policy():
    return make_policy()


def _deny(app_id: str) -> PolicyRule:
    return PolicyRule(action=PolicyAction.DENY, level=PolicyLevel.HASH, target=app_id)


def _verdicts(batch):
    return [verdict for verdict, _ in batch.results]


# -- shared-memory ring codec ----------------------------------------------------------


class TestRingCodec:
    def test_round_trip_preserves_enforcement_fields(self):
        packet = IPPacket(
            src_ip="10.0.0.1",
            dst_ip="203.0.113.9",
            src_port=40001,
            dst_port=443,
            protocol=17,
            payload_size=900,
            options=IPOptions.single(BORDERPATROL_OPTION_TYPE, b"abcd"),
            ttl=17,
            direction="inbound",
            socket_id=12345,
            connection_id=67890,
        )
        [decoded] = decode_batch(encode_batch([packet]))
        for attribute in (
            "src_ip",
            "dst_ip",
            "src_port",
            "dst_port",
            "protocol",
            "payload_size",
            "options",
            "ttl",
            "direction",
            "socket_id",
            "connection_id",
            "packet_id",
            "created_at_ms",
        ):
            assert getattr(decoded, attribute) == getattr(packet, attribute)

    def test_none_ids_survive(self):
        packet = IPPacket(src_ip="10.0.0.1", dst_ip="10.0.0.2", src_port=1, dst_port=2)
        [decoded] = decode_batch(encode_batch([packet]))
        assert decoded.socket_id is None and decoded.connection_id is None

    def test_eol_option_byte_is_rejected(self):
        # IPPacket.from_bytes truncates options at EOL, so shipping an
        # EOL through the ring would change what the worker enforces —
        # the codec refuses and the pool falls back to pickling.
        packet = IPPacket(
            src_ip="10.0.0.1", dst_ip="10.0.0.2", src_port=1, dst_port=2,
            options=IPOptions(
                options=(
                    IPOption(option_type=OPTION_END_OF_LIST),
                    IPOption(option_type=BORDERPATROL_OPTION_TYPE, data=b"tag"),
                )
            ),
        )
        with pytest.raises(RingCodecError):
            encode_packet(packet)

    def test_oversize_fields_are_rejected(self):
        oversize = IPPacket(
            src_ip="1" * 300, dst_ip="10.0.0.2", src_port=1, dst_port=2
        )
        with pytest.raises(RingCodecError):
            encode_packet(oversize)

    def test_ring_reclaims_released_regions(self):
        ring = PacketRing(size=256)
        blob = b"x" * 100
        first = ring.try_write(blob)
        second = ring.try_write(blob)
        assert first is not None and second is not None
        # Both inflight regions pin the buffer: no room for a third.
        assert ring.try_write(blob) is None
        assert ring.read(first) == blob
        ring.release(first)
        # FIFO reclaim + wraparound: the freed head region is writable
        # again once the oldest inflight region is released.
        assert ring.try_write(blob) is not None
        ring.release(second)
        ring.close()


# -- graceful degradation --------------------------------------------------------------


class TestDegradation:
    @pytest.fixture()
    def no_fork(self, monkeypatch):
        monkeypatch.setattr("multiprocessing.get_all_start_methods", lambda: ["spawn"])

    @pytest.mark.parametrize("backend", ["process", "pool"])
    def test_sharded_enforcer_falls_back_to_sequential(
        self, no_fork, caplog, database, replay, policy, backend
    ):
        with caplog.at_level("WARNING", logger="repro.netstack.sharding"):
            enforcer = ShardedEnforcer(
                database=database, policy=policy, num_shards=2,
                keep_records=False, backend=backend,
            )
        # Construction must not raise: the gateway comes up and enforces
        # sequentially instead.
        assert enforcer.degraded
        assert enforcer.requested_backend == backend
        assert enforcer.backend == "sequential"
        assert enforcer.stats.backend_fallbacks == 1
        assert any("degrading to sequential" in message for message in caplog.messages)
        batch = enforcer.process_batch_timed(replay[:50])
        assert batch.backend == "sequential"
        assert len(batch.results) == 50

    def test_degradation_survives_reset(self, no_fork, database, policy):
        enforcer = ShardedEnforcer(
            database=database, policy=policy, num_shards=2,
            keep_records=False, backend="pool",
        )
        enforcer.reset()
        # Fork support is a platform property, not per-run state.
        assert enforcer.degraded
        assert enforcer.backend == "sequential"
        assert enforcer.stats.backend_fallbacks == 1

    def test_fleet_falls_back_to_sequential(self, no_fork, caplog, database, policy):
        with caplog.at_level("WARNING", logger="repro.core.fleet"):
            fleet = GatewayFleet(
                database=database, policy=policy, num_gateways=2,
                live=True, backend="pool", keep_records=False,
            )
        assert fleet.degraded
        assert fleet.requested_backend == "pool"
        assert fleet.backend == "sequential"
        assert fleet.aggregate_stats().backend_fallbacks == 1
        assert any("degrading to sequential" in message for message in caplog.messages)


# -- pool parity across policy churn ---------------------------------------------------


@needs_fork
class TestShardPoolParity:
    def test_verdict_identity_across_delta_pushes(self, database, replay, policy):
        apps = [entry.app_id for entry in database.entries()]
        updates = [
            PolicyUpdate(reason="deny 0").add_rule(_deny(apps[0]), rule_id="t0"),
            PolicyUpdate(reason="deny 1").add_rule(_deny(apps[1]), rule_id="t1"),
            PolicyUpdate(reason="undo 0").remove_rule("t0"),
        ]

        def run(backend):
            enforcer = ShardedEnforcer(
                database=database, policy=make_policy(), num_shards=2,
                keep_records=False, backend=backend,
            )
            store = PolicyStore.from_policy(make_policy(), name="parity")
            store.subscribe(enforcer, push=False)
            enforcer.attach_control(store)
            verdicts = []
            bursts = [replay[i : i + 100] for i in range(0, len(replay), 100)]
            for index, burst in enumerate(bursts):
                if index < len(updates):
                    store.apply(updates[index])
                verdicts.extend(_verdicts(enforcer.process_batch_timed(burst)))
            stats = enforcer.aggregate_stats()
            enforcer.close()
            return verdicts, stats

        sequential_verdicts, _ = run("sequential")
        pool_verdicts, pool_stats = run("pool")
        assert pool_verdicts == sequential_verdicts
        # The control store gives the surgical record-push path: every
        # version committed while the pool is live reaches each worker
        # as one delta record, never as a pickled snapshot.  The first
        # update lands before the lazily-spawned workers fork (they
        # inherit it at fork), so only the later two are pushed.
        assert pool_stats.pool_delta_pushes == 2 * 2  # live versions x workers
        assert pool_stats.pool_snapshot_syncs == 0
        assert pool_stats.pool_ring_batches > 0

    def test_set_policy_without_control_syncs_snapshots(self, database, replay, policy):
        enforcer = ShardedEnforcer(
            database=database, policy=make_policy(), num_shards=2,
            keep_records=False, backend="pool",
        )
        control = ShardedEnforcer(
            database=database, policy=make_policy(), num_shards=2,
            keep_records=False, backend="sequential",
        )
        first = replay[:100]
        second = replay[100:200]
        verdicts = _verdicts(enforcer.process_batch_timed(first))
        assert verdicts == _verdicts(control.process_batch_timed(first))
        replacement = Policy.allow_all(name="swap")
        enforcer.set_policy(replacement)
        control.set_policy(replacement)
        assert _verdicts(enforcer.process_batch_timed(second)) == _verdicts(
            control.process_batch_timed(second)
        )
        # No attached store, so the replacement shipped as a full sync.
        assert enforcer.aggregate_stats().pool_snapshot_syncs > 0
        enforcer.close()

    def test_tiny_ring_falls_back_to_pickling(self, database, replay, policy):
        enforcer = ShardedEnforcer(
            database=database, policy=make_policy(), num_shards=2,
            keep_records=False, backend="pool", ring_bytes=8,
        )
        control = ShardedEnforcer(
            database=database, policy=make_policy(), num_shards=2,
            keep_records=False, backend="sequential",
        )
        burst = replay[:120]
        assert _verdicts(enforcer.process_batch_timed(burst)) == _verdicts(
            control.process_batch_timed(burst)
        )
        stats = enforcer.aggregate_stats()
        assert stats.pool_pickled_batches > 0
        assert stats.pool_ring_batches == 0
        enforcer.close()

    def test_results_carry_original_packet_objects(self, database, replay, policy):
        # The ring codec drops provenance (enforcement never reads it);
        # the parent must stitch verdicts onto its own packet objects so
        # callers keep full-fidelity packets.
        enforcer = ShardedEnforcer(
            database=database, policy=policy, num_shards=2,
            keep_records=False, backend="pool",
        )
        burst = replay[:40]
        batch = enforcer.process_batch_timed(burst)
        assert [packet for _, packet in batch.results] == burst
        assert all(
            returned is original
            for (_, returned), original in zip(batch.results, burst)
        )
        enforcer.close()

    def test_pool_records_match_sequential(self, database, replay, policy):
        def run(backend):
            enforcer = ShardedEnforcer(
                database=database, policy=make_policy(), num_shards=2,
                keep_records=True, backend=backend,
            )
            enforcer.process_batch_timed(replay[:80])
            records = [
                (record.packet_id, record.verdict, record.reason, record.app_id)
                for record in enforcer.records
            ]
            enforcer.close()
            return records

        assert run("pool") == run("sequential")


# -- worker-crash robustness -----------------------------------------------------------


@needs_fork
class TestCrashRecovery:
    def test_killed_worker_respawns_and_replays(self, database, policy):
        # A batch big enough that the worker is still enforcing when the
        # kill lands, so the pending batch must be replayed from the
        # parent's spec on the respawned worker.
        big_replay = build_replay(
            database.entries(), packets=4000, flows=64, seed=13
        )
        enforcer = ShardedEnforcer(
            database=database, policy=make_policy(), num_shards=2,
            keep_records=False, backend="pool", flow_cache_size=0,
        )
        control = ShardedEnforcer(
            database=database, policy=make_policy(), num_shards=2,
            keep_records=False, backend="sequential", flow_cache_size=0,
        )
        warm = big_replay[:100]
        assert _verdicts(enforcer.process_batch_timed(warm)) == _verdicts(
            control.process_batch_timed(warm)
        )
        token = enforcer.submit_batch(big_replay)
        enforcer._pool.kill_worker(0)
        batch = enforcer.collect_batch(token)
        assert _verdicts(batch) == _verdicts(control.process_batch_timed(big_replay))
        stats = enforcer.aggregate_stats()
        assert stats.pool_worker_crashes == 1
        assert stats.pool_worker_respawns == 1
        assert stats.pool_batches_replayed >= 1
        # The pool keeps enforcing normally after the respawn.
        tail = big_replay[:60]
        assert _verdicts(enforcer.process_batch_timed(tail)) == _verdicts(
            control.process_batch_timed(tail)
        )
        enforcer.close()

    def test_fleet_pool_survives_worker_crash(self, database, replay, policy):
        def build(backend):
            return GatewayFleet(
                database=database, policy=make_policy(), num_gateways=2,
                live=True, backend=backend, keep_records=False,
            )

        pool_fleet = build("pool")
        control = build("sequential")
        bursts = [replay[i : i + 100] for i in range(0, len(replay), 100)]
        pool_verdicts, control_verdicts = [], []
        for index, burst in enumerate(bursts):
            token = pool_fleet.submit_burst(burst)
            if index == 1:
                pool_fleet._pool.kill_worker(0)
            result = pool_fleet.collect_burst(token)
            pool_verdicts.extend(verdict for verdict, _ in result.results)
            control_verdicts.extend(
                verdict
                for verdict, _ in control.process_batch_timed(burst).results
            )
        assert pool_verdicts == control_verdicts
        stats = pool_fleet.aggregate_stats()
        assert stats.pool_worker_crashes == 1
        assert stats.pool_worker_respawns == 1
        pool_fleet.close()


# -- stats plumbing --------------------------------------------------------------------


def test_pool_counters_are_merge_safe():
    from repro.core.policy_enforcer import EnforcerStats

    left, right = EnforcerStats(), EnforcerStats()
    left.pool_worker_crashes = 1
    left.pool_ring_batches = 5
    right.pool_worker_crashes = 2
    right.pool_delta_pushes = 3
    right.backend_fallbacks = 1
    left.merge(right)
    assert left.pool_worker_crashes == 3
    assert left.pool_ring_batches == 5
    assert left.pool_delta_pushes == 3
    assert left.backend_fallbacks == 1
