"""Property-based tests for the networking substrate.

Invariants exercised:

* IP options serialisation is a lossless round trip and never exceeds
  the RFC 791 budget it was constructed under;
* kernel packetisation conserves bytes, never exceeds the MSS, and
  stamps every fragment with the socket's options;
* the flow table conserves packet and byte counts irrespective of
  arrival order;
* enforcement chains are deterministic: the same packet stream yields
  the same verdicts on every run.
"""

from hypothesis import given, settings, strategies as st

from repro.core.encoding import StackTraceEncoder
from repro.netstack.ip import (
    BORDERPATROL_OPTION_TYPE,
    IPOption,
    IPOptions,
    IPPacket,
    MAX_IP_OPTIONS_BYTES,
)
from repro.netstack.netfilter import Iptables, IptablesRule, RuleTarget, Verdict
from repro.netstack.sockets import Kernel, KernelConfig
from repro.netstack.tcp import FlowTable


option_data = st.binary(min_size=0, max_size=20)
option_types = st.integers(min_value=2, max_value=0xFF)


@given(option_type=option_types, data=option_data)
def test_single_option_round_trip(option_type, data):
    option = IPOption(option_type=option_type, data=data)
    parsed, rest = IPOption.parse(option.to_bytes())
    assert parsed == option
    assert rest == b""


@given(
    payloads=st.lists(st.binary(min_size=0, max_size=8), min_size=0, max_size=3),
)
def test_options_round_trip_and_budget(payloads):
    options_list = [
        IPOption(option_type=BORDERPATROL_OPTION_TYPE, data=data) for data in payloads
    ]
    total = sum(o.wire_length for o in options_list)
    if total > MAX_IP_OPTIONS_BYTES:
        return  # construction would legitimately fail; covered by unit tests
    options = IPOptions(options=tuple(options_list))
    assert IPOptions.from_bytes(options.to_bytes()).wire_length == options.wire_length
    assert options.wire_length <= MAX_IP_OPTIONS_BYTES


@settings(max_examples=50, deadline=None)
@given(
    payload=st.integers(min_value=0, max_value=100_000),
    mss=st.integers(min_value=100, max_value=9000),
    app_id=st.binary(min_size=8, max_size=8).map(bytes.hex),
    indexes=st.lists(st.integers(min_value=0, max_value=0xFFFF), max_size=10),
)
def test_kernel_packetisation_conserves_bytes_and_tags(payload, mss, app_id, indexes):
    kernel = Kernel(
        host_ip="10.10.0.2",
        config=KernelConfig(allow_unprivileged_ip_options=True, mss=mss),
    )
    fd = kernel.socket(owner_pid=1)
    kernel.connect(fd, "203.0.113.1", 443)
    options = StackTraceEncoder().encode_option(app_id, indexes)
    kernel.setsockopt(fd, 0, 4, options)
    packets = kernel.send(fd, payload)
    assert sum(p.payload_size for p in packets) == payload
    assert all(p.payload_size <= mss for p in packets)
    assert all(p.options.find(BORDERPATROL_OPTION_TYPE) is not None for p in packets)
    # One packet minimum (a bare request line), never more than ceil(payload/mss)+1.
    assert 1 <= len(packets) <= payload // mss + 1


@settings(max_examples=50, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=0, max_value=5000), min_size=1, max_size=30),
    n_destinations=st.integers(min_value=1, max_value=4),
)
def test_flow_table_conserves_counts(sizes, n_destinations):
    packets = [
        IPPacket(
            src_ip="10.10.0.2",
            dst_ip=f"203.0.113.{(i % n_destinations) + 1}",
            src_port=40001,
            dst_port=443,
            payload_size=size,
        )
        for i, size in enumerate(sizes)
    ]
    table = FlowTable()
    table.observe_all(packets)
    assert sum(f.packets for f in table) == len(packets)
    assert table.total_bytes() == sum(sizes)
    assert len(table) <= n_destinations


@settings(max_examples=50, deadline=None)
@given(
    dst_last_octets=st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=20),
    blocked_octet=st.integers(min_value=1, max_value=6),
)
def test_iptables_verdicts_are_deterministic_and_complete(dst_last_octets, blocked_octet):
    def build_table():
        table = Iptables()
        table.append_rule(
            IptablesRule(target=RuleTarget.DROP, dst_prefix=f"203.0.113.{blocked_octet}")
        )
        table.append_rule(IptablesRule(target=RuleTarget.ACCEPT))
        return table

    packets = [
        IPPacket(
            src_ip="10.10.0.2",
            dst_ip=f"203.0.113.{octet}",
            src_port=40001,
            dst_port=443,
            payload_size=10,
        )
        for octet in dst_last_octets
    ]
    first = [build_table().process(p)[0] for p in packets]
    second = [build_table().process(p)[0] for p in packets]
    assert first == second
    for packet, verdict in zip(packets, first):
        expected = Verdict.DROP if packet.dst_ip.startswith(f"203.0.113.{blocked_octet}") else Verdict.ACCEPT
        assert verdict is expected
