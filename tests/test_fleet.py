"""Tests for the fleet runtime: delta-log replication, gateway replicas,
the multiprocessing shard backend, device fleets and multi-gateway
deployments.

The common thread mirrors the fast-path suites: no matter how the
deployment is scaled out — replicated gateways, forked shard workers,
staged catch-up — enforcement must stay verdict-identical to one
gateway applying the same policy versions.
"""

import pytest

from repro.core.database import DatabaseEntry, SignatureDatabase
from repro.core.deployment import BorderPatrolDeployment
from repro.core.encoding import StackTraceEncoder
from repro.core.fleet import GatewayFleet
from repro.core.policy import Policy, PolicyAction, PolicyLevel, PolicyRule
from repro.core.policy_enforcer import EnforcerStats, FlowCache, PolicyEnforcer
from repro.core.policy_store import (
    DeltaLog,
    DeltaLogRecord,
    GatewayReplica,
    PolicyStore,
    PolicyUpdate,
    ReplicationError,
)
from repro.netstack.ip import IPPacket
from repro.netstack.netfilter import Verdict
from repro.netstack.sharding import ShardedEnforcer
from repro.network.topology import EnterpriseNetwork, NetworkConfig
from repro.workloads.corpus import CorpusConfig, CorpusGenerator
from repro.workloads.fleet import DeviceFleet, DeviceFleetConfig

APP_A_MD5 = "aa" * 16
APP_A_ID = APP_A_MD5[:16]
APP_B_MD5 = "bb" * 16
APP_B_ID = APP_B_MD5[:16]

SIGNATURES_A = [
    "Lcom/alpha/app/MainActivity;->onClick(Landroid/view/View;)V",
    "Lcom/alpha/app/net/ApiClient;->upload([B)Z",
    "Lcom/flurry/sdk/FlurryAgent;->logEvent(Ljava/lang/String;)V",
]
SIGNATURES_B = [
    "Lcom/beta/app/MainActivity;->onClick(Landroid/view/View;)V",
    "Lcom/beta/app/net/Sync;->push([B)Z",
    "Lcom/mixpanel/android/Tracker;->track(Ljava/lang/String;)V",
]

DENY_FLURRY = PolicyRule(PolicyAction.DENY, PolicyLevel.LIBRARY, "com/flurry")
DENY_MIXPANEL = PolicyRule(PolicyAction.DENY, PolicyLevel.LIBRARY, "com/mixpanel")


@pytest.fixture()
def database():
    db = SignatureDatabase()
    db.add(DatabaseEntry(md5=APP_A_MD5, app_id=APP_A_ID, package_name="com.alpha.app",
                         signatures=list(SIGNATURES_A)))
    db.add(DatabaseEntry(md5=APP_B_MD5, app_id=APP_B_ID, package_name="com.beta.app",
                         signatures=list(SIGNATURES_B)))
    return db


def make_packet(app_id, indexes, src_port=40001):
    return IPPacket(
        src_ip="10.10.0.2",
        dst_ip="203.0.113.9",
        src_port=src_port,
        dst_port=443,
        payload_size=256,
        options=StackTraceEncoder().encode_option(app_id, indexes),
    )


def replay_packets(count=24):
    packets = []
    for index in range(count):
        app_id = APP_A_ID if index % 2 == 0 else APP_B_ID
        packets.append(make_packet(app_id, [0, index % 3], src_port=41000 + index % 7))
    return packets


class TestDeltaLog:
    def test_every_commit_appends_one_contiguous_record(self):
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        store.apply(PolicyUpdate().add_rule(DENY_MIXPANEL))
        store.apply(PolicyUpdate().remove_rule("r1"))
        log = store.delta_log
        assert log.head_version == store.version == 2
        assert [record.version for record in log] == [1, 2]
        assert log.record(2).ops[0]["op"] == "remove"

    def test_records_carry_resolved_ids_and_rendered_rules(self):
        store = PolicyStore()
        store.apply(PolicyUpdate().add_rule(DENY_FLURRY))
        record = store.delta_log.record(1)
        assert record.ops[0] == {
            "op": "add",
            "id": "r1",
            "rule": '{[deny][library]["com/flurry"]}',
        }
        assert record.fingerprint == store.fingerprint()

    def test_log_json_round_trip(self):
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        store.apply(PolicyUpdate().add_rule(DENY_MIXPANEL))
        store.apply(PolicyUpdate().replace_rule("r1", DENY_MIXPANEL))
        restored = DeltaLog.from_json(store.delta_log.to_json())
        assert restored.head_version == store.delta_log.head_version
        assert [record.fingerprint for record in restored] == [
            record.fingerprint for record in store.delta_log
        ]

    def test_non_contiguous_append_rejected(self):
        log = DeltaLog(base_version=3)
        record = DeltaLogRecord(
            version=7, kind="update", reason="", full=False,
            parent_fingerprint="x", fingerprint="y",
        )
        with pytest.raises(ReplicationError):
            log.append(record)

    def test_since_rejects_replicas_older_than_the_log(self):
        store = PolicyStore()
        store.version = 5
        store.delta_log = DeltaLog(base_version=5)
        with pytest.raises(ReplicationError):
            store.delta_log.since(2)

    def test_failed_transaction_appends_nothing(self):
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        with pytest.raises(Exception):
            store.apply(PolicyUpdate().remove_rule("r99"))
        assert len(store.delta_log) == 0


class TestGatewayReplica:
    def test_replica_converges_from_any_intermediate_version(self, database):
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        replica = GatewayReplica(PolicyEnforcer(database=database), store, name="gw")
        store.apply(PolicyUpdate().add_rule(DENY_MIXPANEL, rule_id="m"))
        replica.catch_up(store.delta_log)  # converge at v1
        store.apply(PolicyUpdate().remove_rule("m"))
        store.apply(PolicyUpdate().add_rule(DENY_MIXPANEL, rule_id="m2"))
        assert replica.lag(store.delta_log) == 2
        assert replica.catch_up(store.delta_log) == 2
        assert replica.verify_against(store)

    def test_partial_catch_up_stops_at_target_version(self, database):
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        replica = GatewayReplica(PolicyEnforcer(database=database), store, name="gw")
        for _ in range(3):
            store.apply(PolicyUpdate().add_rule(DENY_MIXPANEL))
        assert replica.catch_up(store.delta_log, target_version=2) == 2
        assert replica.version == 2
        assert not replica.verify_against(store)

    def test_replica_verdicts_match_head_after_catch_up(self, database):
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        head = PolicyEnforcer(database=database, policy=store.snapshot())
        store.subscribe(head, push=False)
        replica = GatewayReplica(PolicyEnforcer(database=database), store, name="gw")
        store.apply(PolicyUpdate().add_rule(DENY_MIXPANEL))
        replica.catch_up(store.delta_log)
        for packet in replay_packets():
            assert head.process(packet)[0] is replica.enforcer.process(packet)[0]

    def test_live_subscription_applies_records_synchronously(self, database):
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        replica = GatewayReplica(PolicyEnforcer(database=database), store, name="gw")
        store.subscribe_replica(replica)
        store.apply(PolicyUpdate().add_rule(DENY_MIXPANEL))
        assert replica.version == store.version == 1
        verdict, _ = replica.enforcer.process(make_packet(APP_B_ID, [0, 2]))
        assert verdict is Verdict.DROP

    def test_catch_up_interns_identical_rule_strings(self, database):
        from repro.core.policy_store import RULE_INTERN_CACHE

        store = PolicyStore.from_policy(Policy.allow_all())
        replicas = [
            GatewayReplica(PolicyEnforcer(database=database), store, name=f"gw{i}")
            for i in range(3)
        ]
        store.apply(PolicyUpdate().add_rule(DENY_MIXPANEL))
        RULE_INTERN_CACHE.clear()
        for replica in replicas:
            replica.catch_up(store.delta_log)
        # One cold parse for the logged rule string; the other two
        # replicas reuse the shared frozen PolicyRule.
        assert RULE_INTERN_CACHE.misses == 1
        assert RULE_INTERN_CACHE.hits == 2
        rules = {replica.snapshot().rules[-1] for replica in replicas}
        assert len(rules) == 1  # value-equal (and in fact the same object)
        assert all(replica.verify_against(store) for replica in replicas)

    def test_replica_uses_surgical_invalidation_not_whole_flush(self, database):
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        replica = GatewayReplica(PolicyEnforcer(database=database), store, name="gw")
        flushes_after_attach = replica.enforcer.stats.cache_invalidations
        # Warm a flow of app A, then edit a rule that touches only app B.
        replica.enforcer.process(make_packet(APP_A_ID, [0, 1]))
        store.apply(PolicyUpdate().add_rule(DENY_MIXPANEL))
        replica.catch_up(store.delta_log)
        stats = replica.enforcer.stats
        assert stats.cache_invalidations == flushes_after_attach  # no new flush
        assert stats.cache_surgical_invalidations == 1
        replica.enforcer.process(make_packet(APP_A_ID, [0, 1]))
        assert stats.cache_hits == 1  # app A's flow stayed warm

    def test_gapped_record_rejected(self, database):
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        replica = GatewayReplica(PolicyEnforcer(database=database), store, name="gw")
        store.apply(PolicyUpdate().add_rule(DENY_MIXPANEL))
        store.apply(PolicyUpdate().add_rule(DENY_MIXPANEL))
        with pytest.raises(ReplicationError):
            replica.apply_delta(store.delta_log.record(2))

    def test_already_applied_record_is_idempotent(self, database):
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        replica = GatewayReplica(PolicyEnforcer(database=database), store, name="gw")
        store.apply(PolicyUpdate().add_rule(DENY_MIXPANEL))
        record = store.delta_log.record(1)
        assert replica.apply_delta(record) is True
        assert replica.apply_delta(record) is False
        assert replica.version == 1

    def test_diverged_replica_refuses_records(self, database):
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        replica = GatewayReplica(PolicyEnforcer(database=database), store, name="gw")
        # Out-of-band mutation of the replica's shadow table.
        replica._shadow._rules["r1"] = DENY_MIXPANEL
        store.apply(PolicyUpdate().add_rule(DENY_MIXPANEL))
        with pytest.raises(ReplicationError):
            replica.apply_delta(store.delta_log.record(1))

    def test_update_record_after_sync_record_replays(self, database):
        # Regression: replaying an update that was committed *after* a
        # reset_to used to trip the shadow store's own log-contiguity
        # check (the shadow's log was never re-based at the adopted
        # sync state), killing any catch-up that crossed a full sync.
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        replica = GatewayReplica(PolicyEnforcer(database=database), store, name="gw")
        store.reset_to(Policy.deny_libraries(["com/mixpanel"], name="resync"))
        store.apply(PolicyUpdate().add_rule(DENY_FLURRY, rule_id="again"))
        assert replica.catch_up(store.delta_log) == 2
        assert replica.verify_against(store)

    def test_reset_to_replicates_as_sync_record(self, database):
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        replica = GatewayReplica(PolicyEnforcer(database=database), store, name="gw")
        store.subscribe_replica(replica)
        store.reset_to(Policy.deny_libraries(["com/mixpanel"], name="new"))
        assert replica.version == store.version
        assert replica.verify_against(store)
        verdict, _ = replica.enforcer.process(make_packet(APP_B_ID, [0, 2]))
        assert verdict is Verdict.DROP

    def test_opaque_sync_forces_reattach(self, database):
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        replica = GatewayReplica(PolicyEnforcer(database=database), store, name="gw")
        unserializable = Policy(
            rules=[PolicyRule(PolicyAction.DENY, PolicyLevel.LIBRARY, 'com/"quoted')]
        )
        store.reset_to(unserializable)
        with pytest.raises(ReplicationError):
            replica.catch_up(store.delta_log)


class TestProcessBackend:
    def test_unknown_backend_rejected(self, database):
        with pytest.raises(ValueError):
            ShardedEnforcer(database=database, num_shards=2, backend="threads")

    def test_forked_verdicts_match_sequential(self, database):
        policy = Policy.deny_libraries(["com/flurry"])
        sequential = ShardedEnforcer(database=database, policy=policy, num_shards=3)
        forked = ShardedEnforcer(
            database=database, policy=policy, num_shards=3, backend="process"
        )
        packets = replay_packets(40)
        expected = [v for v, _ in sequential.process_batch(packets)]
        batch = forked.process_batch_timed(packets)
        assert [v for v, _ in batch.results] == expected
        assert batch.backend == "process"
        assert batch.measured_wall_s > 0

    def test_forked_stats_and_records_fold_back_into_parent(self, database):
        forked = ShardedEnforcer(
            database=database,
            policy=Policy.deny_libraries(["com/flurry"]),
            num_shards=2,
            backend="process",
        )
        packets = replay_packets(30)
        forked.process_batch_timed(packets)
        stats = forked.aggregate_stats()
        assert stats.packets_seen == len(packets)
        assert stats.packets_allowed + stats.packets_dropped == len(packets)
        assert len(forked.records) == len(packets)
        assert [r.packet_id for r in forked.records] == sorted(
            r.packet_id for r in forked.records
        )

    def test_forked_batches_publish_to_audit_sink_without_keep_records(self, database):
        from repro.telemetry.pipeline import TelemetryPipeline

        forked = ShardedEnforcer(
            database=database,
            policy=Policy.deny_libraries(["com/flurry"]),
            num_shards=2,
            backend="process",
            keep_records=False,
        )
        pipeline = TelemetryPipeline(window_packets=256)
        forked.attach_audit_sink(pipeline, "gw0")
        packets = replay_packets(30)
        forked.process_batch_timed(packets)
        # The data plane's publish contract holds across the fork even
        # though nothing is stored: the workers capture their batches
        # and the parent republishes them.
        assert pipeline.records_seen == len(packets)
        assert len(forked.records) == 0
        # ...and capturing must not flip keep_records in the worker:
        # that would steer the decision path into decoding signatures,
        # publishing different records (and stats) than the sequential
        # backend does under the identical configuration.
        sequential = ShardedEnforcer(
            database=database,
            policy=Policy.deny_libraries(["com/flurry"]),
            num_shards=2,
            keep_records=False,
        )
        twin = TelemetryPipeline(window_packets=256)
        sequential.attach_audit_sink(twin, "gw0")
        sequential.process_batch_timed(packets)
        assert forked.aggregate_stats().full_decodes == (
            sequential.aggregate_stats().full_decodes
        )
        assert pipeline.aggregator.snapshot() == twin.aggregator.snapshot()

    def test_forked_workers_never_publish_into_their_sink_copies(self, database, tmp_path):
        from repro.telemetry.audit import AuditLog
        from repro.telemetry.pipeline import TelemetryPipeline

        # Regression: with keep_records=True the fork used to run its
        # inherited sink copy too — a spooling AuditLog behind the sink
        # then wrote segment files from inside the workers that collided
        # with the parent's, corrupting the round-trip.
        forked = ShardedEnforcer(
            database=database,
            policy=Policy.deny_libraries(["com/flurry"]),
            num_shards=2,
            backend="process",
            keep_records=True,
        )
        pipeline = TelemetryPipeline(
            window_packets=256,
            audit_log=AuditLog(spool_dir=tmp_path, segment_records=4),
        )
        forked.attach_audit_sink(pipeline, "gw0")
        packets = replay_packets(30)
        forked.process_batch_timed(packets)
        pipeline.flush()
        assert pipeline.records_seen == len(packets)
        spooled = AuditLog.load_segments(tmp_path)
        assert sorted(r.packet_id for r in spooled) == sorted(
            p.packet_id for p in packets
        )

    def test_forked_batches_publish_past_a_full_record_ring(self, database):
        from repro.telemetry.pipeline import TelemetryPipeline

        forked = ShardedEnforcer(
            database=database,
            policy=Policy.deny_libraries(["com/flurry"]),
            num_shards=2,
            backend="process",
            record_capacity=8,  # far smaller than the replay
        )
        pipeline = TelemetryPipeline(window_packets=256)
        forked.attach_audit_sink(pipeline, "gw0")
        packets = replay_packets(30)
        forked.process_batch_timed(packets)
        forked.process_batch_timed(packets)
        # Regression: a full bounded ring keeps a constant length, so a
        # length-based slice in the worker read as "no new records" and
        # telemetry silently went blind after the ring wrapped.
        assert pipeline.records_seen == 2 * len(packets)
        # The parent ring still holds (only) the most recent records.
        assert len(forked.records) == 8 * forked.num_shards

    def test_policy_churn_between_forked_batches_takes_effect(self, database):
        # Fork-per-batch workers must always see the parent's current
        # policy: an edit between batches changes child verdicts too.
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        forked = ShardedEnforcer(
            database=database, policy=store.snapshot(), num_shards=2, backend="process"
        )
        store.subscribe(forked, push=False)
        packet = make_packet(APP_B_ID, [0, 2])
        assert forked.process_batch_timed([packet]).results[0][0] is Verdict.ACCEPT
        store.apply(PolicyUpdate().add_rule(DENY_MIXPANEL))
        assert forked.process_batch_timed([packet]).results[0][0] is Verdict.DROP

    def test_empty_batch_is_fine(self, database):
        forked = ShardedEnforcer(database=database, num_shards=2, backend="process")
        batch = forked.process_batch_timed([])
        assert batch.results == [] and batch.packets == 0


class TestChurnStats:
    def test_invalidate_apps_reports_per_app_counts(self):
        cache = FlowCache(capacity=8)
        from repro.core.policy_enforcer import _CachedDecision

        for index, app in enumerate(["a", "a", "b"]):
            cache.put(
                (("flow", index),),
                _CachedDecision(
                    verdict=Verdict.ACCEPT, reason="", app_id=app,
                    package_name=f"com.{app}", signatures=(),
                ),
            )
        removed = cache.invalidate_apps({"a"})
        assert removed == {"com.a": 2}
        assert len(cache) == 1

    def test_eviction_churn_counts_by_package(self, database):
        enforcer = PolicyEnforcer(database=database, flow_cache_size=2)
        for port in (40001, 40002, 40003):
            enforcer.process(make_packet(APP_A_ID, [0], src_port=port))
        assert enforcer.stats.cache_evictions == 1
        assert enforcer.stats.cache_churn_by_app == {"com.alpha.app": 1}

    def test_stats_merge_and_delta(self):
        first = EnforcerStats(packets_seen=3, cache_churn_by_app={"a": 2})
        second = EnforcerStats(packets_seen=4, cache_churn_by_app={"a": 1, "b": 5})
        first.merge(second)
        assert first.packets_seen == 7
        assert first.cache_churn_by_app == {"a": 3, "b": 5}
        delta = first.delta_since(EnforcerStats(packets_seen=3, cache_churn_by_app={"a": 2}))
        assert delta.packets_seen == 4
        assert delta.cache_churn_by_app == {"a": 1, "b": 5}
        assert first.top_churn_apps(limit=1) == [("b", 5)]


class TestGatewayFleet:
    def test_flow_routing_is_stable_and_spreads(self, database):
        fleet = GatewayFleet(database=database, policy=Policy.allow_all(), num_gateways=3)
        packet = make_packet(APP_A_ID, [0])
        assert len({fleet.gateway_index(packet) for _ in range(10)}) == 1
        indices = {
            fleet.gateway_index(make_packet(APP_A_ID, [0], src_port=42000 + i))
            for i in range(64)
        }
        assert len(indices) > 1

    def test_fleet_verdicts_match_single_enforcer(self, database):
        policy = Policy.deny_libraries(["com/flurry"])
        fleet = GatewayFleet(database=database, policy=policy, num_gateways=3,
                             shards_per_gateway=2)
        single = PolicyEnforcer(database=database, policy=policy)
        packets = replay_packets(48)
        batch = fleet.process_batch_timed(packets)
        expected = [single.process(p)[0] for p in packets]
        assert [v for v, _ in batch.results] == expected
        assert sum(batch.gateway_packet_counts) == len(packets)

    def test_live_fleet_converges_on_every_commit(self, database):
        fleet = GatewayFleet(
            database=database, policy=Policy.deny_libraries(["com/flurry"]), num_gateways=2
        )
        fleet.apply_update(PolicyUpdate().add_rule(DENY_MIXPANEL))
        assert fleet.policy_versions() == {"gw0": 1, "gw1": 1}
        assert fleet.converged
        assert fleet.lags() == {"gw0": 0, "gw1": 0}

    def test_staged_rollout_lags_then_converges(self, database):
        fleet = GatewayFleet(
            database=database,
            policy=Policy.deny_libraries(["com/flurry"]),
            num_gateways=3,
            live=False,
        )
        fleet.apply_update(PolicyUpdate().add_rule(DENY_MIXPANEL))
        fleet.apply_update(PolicyUpdate().remove_rule("r1"))
        assert fleet.lags() == {"gw0": 2, "gw1": 2, "gw2": 2}
        assert not fleet.converged
        canary = fleet.replicas[0]
        canary.catch_up(fleet.delta_log)
        assert canary.verify_against(fleet.store)
        assert fleet.lags()["gw1"] == 2
        applied = fleet.catch_up()
        assert applied == {"gw0": 0, "gw1": 2, "gw2": 2}
        assert fleet.converged

    def test_set_live_resubscribes_and_converges(self, database):
        fleet = GatewayFleet(
            database=database, policy=Policy.allow_all(), num_gateways=2, live=False
        )
        fleet.apply_update(PolicyUpdate().add_rule(DENY_FLURRY))
        assert not fleet.converged
        fleet.set_live(True)
        assert fleet.converged
        fleet.apply_update(PolicyUpdate().add_rule(DENY_MIXPANEL))
        assert fleet.converged

    def test_rejects_both_policy_and_store(self, database):
        with pytest.raises(ValueError):
            GatewayFleet(
                database=database,
                policy=Policy.allow_all(),
                store=PolicyStore(),
                num_gateways=2,
            )


class TestLateJoiningGateway:
    def churn(self, fleet, edits):
        for index in range(edits):
            fleet.apply_update(
                PolicyUpdate().add_rule(
                    PolicyRule(PolicyAction.DENY, PolicyLevel.LIBRARY, f"com/churn{index}"),
                    rule_id=f"c{index}",
                )
            )

    def test_add_gateway_bootstraps_in_suffix_records(self, database):
        fleet = GatewayFleet(
            database=database,
            policy=Policy.deny_libraries(["com/flurry"]),
            num_gateways=2,
            compact_every=5,
        )
        self.churn(fleet, 23)
        suffix = len(fleet.delta_log)
        late = fleet.add_gateway()
        assert late.name == "gw2"
        # One snapshot bootstrap + the surviving suffix, not 23 records.
        assert late.records_applied == suffix + 1 <= 6
        assert late.verify_against(fleet.store)
        assert fleet.num_gateways == 3 and fleet.converged

    def test_late_joiner_participates_in_routing_and_live_push(self, database):
        fleet = GatewayFleet(
            database=database, policy=Policy.allow_all(), num_gateways=2,
            compact_every=4,
        )
        self.churn(fleet, 9)
        late = fleet.add_gateway()
        # Live fleet: the next commit converges the late joiner too.
        fleet.apply_update(PolicyUpdate().add_rule(DENY_MIXPANEL, rule_id="post-join"))
        assert fleet.converged
        verdict, _ = late.enforcer.process(make_packet(APP_B_ID, [0, 2]))
        assert verdict is Verdict.DROP
        # Flow hashing now spreads across three gateways.
        indices = {
            fleet.gateway_index(make_packet(APP_A_ID, [0], src_port=42000 + i))
            for i in range(128)
        }
        assert indices == {0, 1, 2}

    def test_late_joiner_publishes_into_attached_telemetry(self, database):
        from repro.telemetry.pipeline import FleetAuditor

        fleet = GatewayFleet(
            database=database, policy=Policy.allow_all(), num_gateways=2
        )
        auditor = FleetAuditor(window_packets=256, buffered=False)
        fleet.attach_telemetry(auditor)
        self.churn(fleet, 3)
        late = fleet.add_gateway()
        # Flows hashed to the new gateway must show up in its pipeline —
        # a late joiner outside the audit stream would blind the
        # fleet-level detectors to a third of the traffic.
        packets = [
            make_packet(APP_A_ID, [0], src_port=42000 + i) for i in range(96)
        ]
        fleet.process_batch(packets)
        assert late.enforcer.stats.packets_seen > 0
        assert auditor.pipelines[late.name].records_seen == (
            late.enforcer.stats.packets_seen
        )

    def test_staged_fleet_leaves_late_joiner_unsubscribed(self, database):
        fleet = GatewayFleet(
            database=database, policy=Policy.allow_all(), num_gateways=2, live=False
        )
        self.churn(fleet, 3)
        late = fleet.add_gateway()
        assert late.verify_against(fleet.store)  # converged at attach...
        fleet.apply_update(PolicyUpdate().add_rule(DENY_MIXPANEL))
        assert late.lag(fleet.delta_log) == 1  # ...but staged afterwards
        fleet.catch_up()
        assert fleet.converged


class TestDeviceFleet:
    @pytest.fixture()
    def corpus_apps(self):
        return CorpusGenerator(CorpusConfig(n_apps=4, seed=7)).generate()

    def test_provisions_devices_with_app_mixes(self, corpus_apps):
        deployment = BorderPatrolDeployment()
        fleet = DeviceFleet(
            deployment, corpus_apps, DeviceFleetConfig(devices=12, seed=7)
        )
        devices = fleet.provision()
        assert len(devices) == 12
        assert deployment.devices == devices
        for provisioned in devices:
            installed = provisioned.device.installed_apps()
            assert 1 <= len(installed) <= 3
        # Every corpus app was enrolled with the offline analyzer once.
        assert len(deployment.database) == len(corpus_apps)

    def test_trace_is_deterministic_and_decodable(self, corpus_apps):
        def build():
            deployment = BorderPatrolDeployment()
            fleet = DeviceFleet(
                deployment, corpus_apps, DeviceFleetConfig(devices=8, seed=11)
            )
            return deployment, fleet.build_trace(200)

        deployment, trace = build()
        _, trace_again = build()
        assert [p.options.to_bytes() for p in trace] == [
            p.options.to_bytes() for p in trace_again
        ]
        encoder = StackTraceEncoder()
        decoded = 0
        for packet in trace:
            tag_bytes = encoder.extract_tag_bytes(packet.options)
            assert tag_bytes is not None
            tag = encoder.decode(tag_bytes)
            entry = deployment.database.lookup_app_id(tag.app_id)
            assert entry is not None
            entry.decode_indexes(tag.indexes)  # raises if out of range
            decoded += 1
        assert decoded == 200

    def test_flows_point_at_registered_servers(self, corpus_apps):
        deployment = BorderPatrolDeployment()
        fleet = DeviceFleet(deployment, corpus_apps, DeviceFleetConfig(devices=6, seed=7))
        for flow in fleet.build_flows():
            assert deployment.network.servers.get(flow.dst_ip) is not None

    def test_rejects_empty_fleet(self, corpus_apps):
        with pytest.raises(ValueError):
            DeviceFleet(BorderPatrolDeployment(), [], DeviceFleetConfig(devices=4))
        with pytest.raises(ValueError):
            DeviceFleet(
                BorderPatrolDeployment(), corpus_apps, DeviceFleetConfig(devices=0)
            )


class TestMultiGatewayDeployment:
    def test_deployment_builds_matching_network_and_fleet(self):
        deployment = BorderPatrolDeployment(num_gateways=3, enforcer_shards=2)
        assert len(deployment.network.gateways) == 3
        assert deployment.fleet is not None
        assert len(deployment.fleet.replicas) == 3
        assert deployment.enforcer is deployment.fleet.replicas[0].enforcer
        # Every gateway got its own enforcement chain.
        for gateway in deployment.network.gateways:
            assert len(gateway.rules()) == 2

    def test_network_gateway_count_mismatch_rejected(self):
        network = EnterpriseNetwork(config=NetworkConfig(num_gateways=2))
        with pytest.raises(ValueError):
            BorderPatrolDeployment(network=network, num_gateways=3)

    def test_apply_update_converges_every_gateway(self):
        deployment = BorderPatrolDeployment(num_gateways=2)
        deployment.apply_update(PolicyUpdate().add_rule(DENY_FLURRY, rule_id="f"))
        assert deployment.policy_version == 1
        assert deployment.fleet.converged

    def test_add_gateway_grows_network_fleet_and_chains(self):
        deployment = BorderPatrolDeployment(
            policy=Policy.deny_libraries(["com/flurry"]),
            num_gateways=2,
            compact_every=4,
        )
        for index in range(10):
            deployment.apply_update(
                PolicyUpdate().add_rule(
                    PolicyRule(PolicyAction.DENY, PolicyLevel.LIBRARY, f"com/g{index}"),
                    rule_id=f"g{index}",
                )
            )
        suffix = len(deployment.policy_store.delta_log)
        replica = deployment.add_gateway()
        assert replica.records_applied == suffix + 1  # snapshot + suffix
        assert replica.verify_against(deployment.policy_store)
        assert deployment.num_gateways == 3
        assert len(deployment.network.gateways) == 3
        # The new border gateway got its own enforcement chain.
        assert len(deployment.network.gateways[2].rules()) == 2
        # And traffic actually reaches it end to end.
        apps = CorpusGenerator(CorpusConfig(n_apps=3, seed=7)).generate()
        fleet = DeviceFleet(deployment, apps, DeviceFleetConfig(devices=10, seed=7))
        deployment.network.transmit(fleet.build_trace(300))
        assert replica.enforcer.stats.packets_seen > 0

    def test_add_gateway_requires_a_fleet_deployment(self):
        with pytest.raises(ValueError):
            BorderPatrolDeployment().add_gateway()

    def test_end_to_end_transmit_enforces_at_every_gateway(self):
        apps = CorpusGenerator(CorpusConfig(n_apps=3, seed=7)).generate()
        deployment = BorderPatrolDeployment(
            policy=Policy.deny_libraries(["com/flurry", "com/mixpanel/android"]),
            num_gateways=2,
        )
        fleet = DeviceFleet(deployment, apps, DeviceFleetConfig(devices=10, seed=7))
        trace = fleet.build_trace(300)
        report = deployment.network.transmit(trace)
        assert len(report.delivered) + len(report.dropped) == len(trace)
        # Both gateways saw traffic (flow-hash spread), and drops match
        # what the fleet's own enforcers decided.
        for gateway in deployment.network.gateways:
            queue_numbers = [rule.queue_num or 100 for rule in gateway.rules()]
            assert queue_numbers  # chains installed
        stats = deployment.fleet.aggregate_stats()
        assert stats.packets_seen == len(trace)
        per_replica = [
            replica.enforcer.stats.packets_seen for replica in deployment.fleet.replicas
        ]
        assert all(count > 0 for count in per_replica)


class TestFleetCli:
    def test_fleet_command_reports_convergence_and_verdicts(self, capsys):
        from repro.cli import main

        assert main(
            ["fleet", "--packets", "400", "--devices", "8", "--gateways", "2",
             "--shards", "1", "--edits", "3", "--corpus-apps", "3", "--skip-backend",
             "--skip-late-joiner"]
        ) == 0
        out = capsys.readouterr().out
        assert "single-gateway" in out
        assert "gw0" in out and "gw1" in out
        assert "replicas converged (fingerprint-verified): True" in out
        assert "fleet verdict-identical to single gateway: True" in out
        assert "apps churning the flow cache hardest" in out

    def test_fleet_command_reports_late_joiner_bootstrap_cost(self, capsys):
        from repro.cli import main

        assert main(
            ["fleet", "--packets", "400", "--devices", "8", "--gateways", "2",
             "--shards", "1", "--edits", "3", "--corpus-apps", "3", "--skip-backend",
             "--late-joiner-versions", "60", "--compact-every", "20"]
        ) == 0
        out = capsys.readouterr().out
        assert "late joiner after 60 committed versions (compact_every=20):" in out
        assert "bootstrap cost:" in out and "snapshot @v" in out
        assert "uncompacted control: 61 record(s)" in out
        assert "log size on the wire:" in out
        assert "O(suffix) bound held: True" in out
        assert "converged to head fingerprint: True" in out
