"""Fleet federation: reassembling campaigns flow hashing split apart."""

import pytest

from repro.experiments.ops import run_ops_bench
from repro.ops.baselines import OnlineExfilBaselines, OnlineExfiltrationDetector
from repro.ops.federation import FleetFederation
from repro.telemetry.detectors import Alert


class FakeView:
    """One gateway's aggregator window, reduced to what the scans read."""

    def __init__(self, volumes=None, policy_drops=None, seq=1000, window_packets=100):
        self.volumes = dict(volumes or {})
        self.policy_drops = dict(policy_drops or {})
        self.seq = seq
        self.window_packets = window_packets


class FakePipeline:
    def __init__(self, view, alerts=None):
        self.aggregator = view
        self.alerts = list(alerts or [])


def calibrated_baselines(level=1000, folds=10):
    baselines = OnlineExfilBaselines(min_samples=2, floor=0.0)
    for _ in range(folds):
        baselines.fold_volumes({("10.0.0.5", "203.0.113.9"): level})
    return baselines


def split_pipelines(per_gateway_volume, gateways=4):
    key = ("10.0.0.5", "203.0.113.9")
    return {
        f"gw{i}": FakePipeline(FakeView(volumes={key: per_gateway_volume}))
        for i in range(gateways)
    }


def test_split_exfil_fires_only_when_merged_volume_crosses():
    baselines = calibrated_baselines(level=1000)
    fleet_budget = baselines.threshold("10.0.0.5", "203.0.113.9")
    federation = FleetFederation(baselines=baselines)
    # Each gateway holds a quarter of the campaign: under budget alone,
    # over it merged.
    share = int(fleet_budget / 4) + 200
    assert share < fleet_budget < 4 * share
    alerts = federation.scan(split_pipelines(share))
    exfil = [a for a in alerts if a.kind == "exfil-volume"]
    assert len(exfil) == 1
    assert exfil[0].source == "fleet"
    assert exfil[0].device == "10.0.0.5"
    # Fired-once: the same merged view does not re-alert.
    assert federation.scan(split_pipelines(share)) == []


def test_unprimed_windows_neither_judge_nor_fold():
    baselines = calibrated_baselines(level=1000)
    federation = FleetFederation(baselines=baselines)
    folds_before = baselines.folds
    pipelines = {
        "gw0": FakePipeline(
            FakeView(volumes={("10.0.0.5", "203.0.113.9"): 10**9},
                     seq=50, window_packets=100)
        )
    }
    # A still-filling window is a growing prefix: no alert, no fold.
    assert federation.scan(pipelines) == []
    assert baselines.folds == folds_before


def test_split_burst_fires_at_the_fleet_wide_count():
    federation = FleetFederation(baselines=calibrated_baselines(), burst=8)
    key = ("10.0.0.7", "com.evil.app")
    # 3 denials per gateway: under every per-gateway burst bar of 8,
    # 12 fleet-wide.
    pipelines = {
        f"gw{i}": FakePipeline(FakeView(policy_drops={key: 3})) for i in range(4)
    }
    alerts = federation.scan(pipelines)
    bursts = [a for a in alerts if a.kind == "policy-burst"]
    assert len(bursts) == 1
    assert bursts[0].device == "10.0.0.7"
    assert bursts[0].source == "fleet"


def test_spoof_campaign_needs_distinct_devices_across_gateways():
    federation = FleetFederation(baselines=calibrated_baselines(), campaign_devices=3)
    spoof = lambda device, gw: Alert(
        kind="spoofed-tag", device=device, app="com.good.app", source=gw, detail=""
    )
    pipelines = {
        "gw0": FakePipeline(FakeView(), alerts=[spoof("10.0.0.1", "gw0")]),
        "gw1": FakePipeline(FakeView(), alerts=[spoof("10.0.0.2", "gw1")]),
    }
    assert federation.scan(pipelines) == []
    # A third distinct device crosses the campaign bar.
    pipelines["gw1"].alerts.append(spoof("10.0.0.3", "gw1"))
    alerts = federation.scan(pipelines)
    campaigns = [a for a in alerts if a.kind == "spoof-campaign"]
    assert len(campaigns) == 1
    assert campaigns[0].device == "10.0.0.1,10.0.0.2,10.0.0.3"
    assert campaigns[0].source == "fleet"
    # Cursors consumed the per-gateway alerts: no re-fire.
    assert federation.scan(pipelines) == []
    assert federation.counts()["spoof_campaigns"] == 1


def test_detector_cooldowns_are_keyed_per_gateway():
    # Regression: a detector instance shared across gateway pipelines
    # must keep one cooldown per gateway — a campaign observed on two
    # gateways must not half-suppress itself.
    detector = OnlineExfiltrationDetector(baselines=OnlineExfilBaselines())
    key = ("10.0.0.5", "203.0.113.9")
    assert detector._ready(key, seq=100, source="gw0")
    assert detector._ready(key, seq=100, source="gw1")
    # Within one gateway the cooldown still holds.
    assert not detector._ready(key, seq=101, source="gw0")


@pytest.fixture(scope="module")
def small_ops_result():
    return run_ops_bench(
        packets=3000,
        devices=24,
        gateways=4,
        shards_per_gateway=2,
        seed=7,
        bursts=12,
        measure_overhead=False,
    )


def test_split_campaigns_missed_per_gateway_caught_federated(small_ops_result):
    # The end-to-end version of the claim, at test scale: flow-hash
    # splitting hides the campaigns from every per-gateway detector and
    # the federation reassembles them without losing precision.
    per_gateway = small_ops_result.scores["per-gateway"]
    federated = small_ops_result.scores["federated"]
    assert per_gateway.recall("split_exfil") < 1.0
    assert per_gateway.recall("split_burst") < 1.0
    assert federated.recall("split_exfil") == 1.0
    assert federated.recall("split_burst") == 1.0
    assert federated.recall("spoof_campaign") == 1.0
    assert federated.precision > 0.9


def test_streaming_budgets_calibrate_during_warmup(small_ops_result):
    assert 0 < small_ops_result.per_gateway_budget_bytes
    assert small_ops_result.per_gateway_budget_bytes < small_ops_result.fleet_budget_bytes
    assert small_ops_result.baseline_snapshot["folds"] > 0


def test_alert_spool_survives_the_run(small_ops_result):
    assert small_ops_result.spool_replay_ok
    assert small_ops_result.spool_alerts > 0
