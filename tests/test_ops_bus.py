"""The durable alert bus: bounded publish, at-least-once sinks, spool."""

import pytest

from repro.ops.bus import (
    AlertBus,
    AlertSink,
    JsonlSpoolSink,
    MemorySink,
    WebhookSink,
    replay_spool,
)
from repro.telemetry.detectors import Alert


def make_alert(n: int, kind: str = "exfil-volume") -> Alert:
    return Alert(
        kind=kind,
        device=f"10.0.0.{n}",
        dst_ip="203.0.113.9",
        source="gw0",
        seq=n,
        detail=f"alert {n}",
    )


class FlakySink(AlertSink):
    """Fails on a chosen delivery, then recovers — the redelivery probe."""

    def __init__(self, fail_at: int) -> None:
        self.name = "flaky"
        self.fail_at = fail_at
        self.attempts = 0
        self.alerts: list[Alert] = []

    def deliver(self, alert: Alert) -> None:
        self.attempts += 1
        if self.attempts == self.fail_at:
            raise RuntimeError("injected delivery failure")
        self.alerts.append(alert)


def test_publish_and_pump_preserves_order():
    bus = AlertBus(clock=None)
    feed = bus.add_sink(MemorySink())
    alerts = [make_alert(n) for n in range(5)]
    for alert in alerts:
        assert bus.publish(alert)
    assert bus.pending == 5
    delivered = bus.pump()
    assert delivered == {"memory": 5}
    assert feed.alerts == alerts
    assert bus.pending == 0
    assert bus.lag() == {"memory": 0}


def test_backpressure_drops_the_new_alert_and_counts_it():
    bus = AlertBus(capacity=2, clock=None)
    bus.add_sink(MemorySink())
    assert bus.publish(make_alert(0))
    assert bus.publish(make_alert(1))
    assert not bus.publish(make_alert(2))
    assert bus.dropped_backpressure == 1
    # The accepted alerts are intact — backpressure never evicts.
    assert bus.published == 2


def test_clock_stamps_publish_time_once():
    ticks = iter([100.0, 200.0])
    bus = AlertBus(clock=lambda: next(ticks))
    feed = bus.add_sink(MemorySink())
    bus.publish(make_alert(0))
    prestamped = Alert(kind="policy-burst", device="10.0.0.2", detail="", ts=7.5)
    bus.publish(prestamped)
    bus.pump()
    assert feed.alerts[0].ts == 100.0
    # An alert that already carries a timestamp keeps it.
    assert feed.alerts[1].ts == 7.5


def test_failing_sink_keeps_cursor_and_replays_without_loss():
    bus = AlertBus(clock=None)
    flaky = FlakySink(fail_at=2)
    bus.add_sink(flaky)
    healthy = bus.add_sink(MemorySink())
    alerts = [make_alert(n) for n in range(4)]
    for alert in alerts:
        bus.publish(alert)
    delivered = bus.pump()
    # The flaky sink stopped at its failure; the healthy one got it all.
    assert delivered == {"flaky": 1, "memory": 4}
    assert bus.delivery_failures["flaky"] == 1
    assert bus.lag()["flaky"] == 3
    assert healthy.alerts == alerts
    # Next pump retries from the failed alert — nothing skipped.
    bus.pump()
    assert flaky.alerts == alerts
    assert bus.lag()["flaky"] == 0
    assert bus.pending == 0


def test_duplicate_sink_names_are_rejected():
    bus = AlertBus(clock=None)
    bus.add_sink(MemorySink(name="feed"))
    with pytest.raises(ValueError):
        bus.add_sink(MemorySink(name="feed"))


def test_webhook_sink_posts_serialized_alerts():
    posts: list[dict] = []
    bus = AlertBus(clock=None)
    hook = bus.add_sink(WebhookSink(posts.append))
    bus.publish(make_alert(3))
    bus.pump()
    assert hook.delivered == 1
    assert posts == [make_alert(3).to_dict()]


def test_spool_rotates_segments_and_replays_losslessly(tmp_path):
    bus = AlertBus(clock=None)
    spool = bus.add_sink(JsonlSpoolSink(tmp_path / "alerts", segment_alerts=3))
    alerts = [make_alert(n, kind="spoofed-tag") for n in range(8)]
    for alert in alerts:
        bus.publish(alert)
    bus.flush()
    # 8 alerts at 3 per segment: two full segments plus a flushed tail.
    assert spool.segments_written == 3
    assert spool.total_spooled == 8
    replayed = replay_spool(tmp_path / "alerts")
    assert [alert.to_dict() for alert in replayed] == [
        alert.to_dict() for alert in alerts
    ]


def test_spool_recovers_from_a_truncated_final_segment(tmp_path):
    # Crash signature: the last record of the last segment was cut off
    # mid-write.  Replay must return every complete record and warn,
    # not raise.
    bus = AlertBus(clock=None)
    bus.add_sink(JsonlSpoolSink(tmp_path / "alerts", segment_alerts=3))
    alerts = [make_alert(n) for n in range(7)]
    for alert in alerts:
        bus.publish(alert)
    bus.flush()
    segments = sorted((tmp_path / "alerts").glob("alerts-*.jsonl"))
    final = segments[-1]
    torn = final.read_text(encoding="utf-8").rstrip("\n")
    final.write_text(torn[: len(torn) - 9], encoding="utf-8")
    with pytest.warns(RuntimeWarning, match="truncated final record"):
        replayed = replay_spool(tmp_path / "alerts")
    assert [alert.to_dict() for alert in replayed] == [
        alert.to_dict() for alert in alerts[:-1]
    ]


def test_spool_corruption_elsewhere_still_raises(tmp_path):
    bus = AlertBus(clock=None)
    bus.add_sink(JsonlSpoolSink(tmp_path / "alerts", segment_alerts=2))
    for n in range(6):
        bus.publish(make_alert(n))
    bus.flush()
    segments = sorted((tmp_path / "alerts").glob("alerts-*.jsonl"))
    # A torn line in a non-final segment is not a crash-mid-write
    # signature — that data was fsynced whole and is genuinely corrupt.
    text = segments[0].read_text(encoding="utf-8")
    segments[0].write_text(text[:-9] + "\n", encoding="utf-8")
    with pytest.raises(ValueError):
        replay_spool(tmp_path / "alerts")


def test_bus_observability_mirrors_counters():
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    bus = AlertBus(capacity=3, clock=None)
    bus.attach_observability(registry)
    flaky = FlakySink(fail_at=2)
    bus.add_sink(flaky)
    for n in range(4):
        bus.publish(make_alert(n))
    assert registry.get("alert_bus_published_total").value() == 3
    assert registry.get("alert_bus_dropped_total").value() == 1
    assert registry.get("alert_bus_pending").value() == 3
    bus.pump()
    assert registry.get("alert_bus_delivered_total").value(sink="flaky") == 1
    assert registry.get("alert_bus_delivery_failures_total").value(sink="flaky") == 1
    bus.pump()
    assert registry.get("alert_bus_delivered_total").value(sink="flaky") == 3
    assert registry.get("alert_bus_pending").value() == 0


def test_flush_leaves_residual_lag_for_a_dead_sink():
    class DeadSink(AlertSink):
        name = "dead"

        def deliver(self, alert):
            raise RuntimeError("permanently down")

    bus = AlertBus(clock=None)
    bus.add_sink(DeadSink())
    feed = bus.add_sink(MemorySink())
    for n in range(3):
        bus.publish(make_alert(n))
    bus.flush()
    # flush terminates instead of spinning, and the healthy sink drained.
    assert bus.lag()["dead"] == 3
    assert len(feed.alerts) == 3
