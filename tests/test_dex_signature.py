"""Tests for Dalvik method signatures and type descriptors."""

import pytest

from repro.dex.signature import (
    MethodSignature,
    format_descriptor,
    parse_descriptor,
    split_parameter_descriptors,
)

DROPBOX_SIG = (
    "Lcom/dropbox/android/taskqueue/UploadTask;->c()Lcom/dropbox/hairball/taskqueue/TaskResult;"
)


class TestDescriptors:
    def test_primitive_round_trip(self):
        for name, code in [("int", "I"), ("boolean", "Z"), ("void", "V"), ("long", "J")]:
            assert format_descriptor(name) == code
            assert parse_descriptor(code) == name

    def test_class_descriptor(self):
        assert format_descriptor("com.flurry.sdk.Agent") == "Lcom/flurry/sdk/Agent;"
        assert parse_descriptor("Lcom/flurry/sdk/Agent;") == "com.flurry.sdk.Agent"

    def test_array_descriptor(self):
        assert format_descriptor("byte[]") == "[B"
        assert format_descriptor("java.lang.String[][]") == "[[Ljava/lang/String;"
        assert parse_descriptor("[[Ljava/lang/String;") == "java.lang.String[][]"

    def test_already_formatted_descriptor_passthrough(self):
        assert format_descriptor("Lcom/x/Y;") == "Lcom/x/Y;"

    def test_empty_type_rejected(self):
        with pytest.raises(ValueError):
            format_descriptor("")
        with pytest.raises(ValueError):
            parse_descriptor("")

    def test_malformed_descriptor_rejected(self):
        with pytest.raises(ValueError):
            parse_descriptor("Qcom/x/Y;")

    def test_split_parameter_descriptors(self):
        assert split_parameter_descriptors("ILjava/lang/String;[B") == [
            "I",
            "Ljava/lang/String;",
            "[B",
        ]

    def test_split_rejects_unterminated_class(self):
        with pytest.raises(ValueError):
            split_parameter_descriptors("Ljava/lang/String")

    def test_split_rejects_dangling_array(self):
        with pytest.raises(ValueError):
            split_parameter_descriptors("I[")


class TestMethodSignature:
    def test_create_from_java_names(self):
        signature = MethodSignature.create(
            "com.example.Foo", "bar", ("int", "java.lang.String"), "boolean"
        )
        assert str(signature) == "Lcom/example/Foo;->bar(ILjava/lang/String;)Z"

    def test_parse_round_trip(self):
        signature = MethodSignature.parse(DROPBOX_SIG)
        assert signature.class_name == "com.dropbox.android.taskqueue.UploadTask"
        assert signature.method_name == "c"
        assert signature.return_descriptor == "Lcom/dropbox/hairball/taskqueue/TaskResult;"
        assert str(signature) == DROPBOX_SIG

    def test_parse_constructor(self):
        signature = MethodSignature.parse("Lcom/x/Y;-><init>(I)V")
        assert signature.method_name == "<init>"
        assert signature.arity == 1

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            MethodSignature.parse("not a signature")

    def test_component_accessors(self):
        signature = MethodSignature.parse(DROPBOX_SIG)
        assert signature.package == "com.dropbox.android.taskqueue"
        assert signature.library == "com/dropbox/android/taskqueue"
        assert signature.slash_class == "com/dropbox/android/taskqueue/UploadTask"

    def test_overloads_have_distinct_signatures(self):
        one = MethodSignature.create("com.x.Y", "m", ("int",))
        two = MethodSignature.create("com.x.Y", "m", ("java.lang.String",))
        assert one != two
        assert one.method_name == two.method_name

    def test_sort_key_is_deterministic_and_total(self):
        signatures = [
            MethodSignature.create("com.b.C", "z"),
            MethodSignature.create("com.a.C", "a"),
            MethodSignature.create("com.a.C", "a", ("int",)),
        ]
        ordered = sorted(signatures)
        assert ordered == sorted(reversed(signatures))
        assert ordered[0].class_name == "com.a.C"

    def test_matches_library_prefix(self):
        signature = MethodSignature.create("com.flurry.sdk.Agent", "onEvent")
        assert signature.matches_library("com/flurry")
        assert signature.matches_library("com.flurry.sdk")
        assert not signature.matches_library("com/flurr")
        assert not signature.matches_library("com/facebook")

    def test_matches_class_in_all_forms(self):
        signature = MethodSignature.create("com.flurry.sdk.Agent", "onEvent")
        assert signature.matches_class("com/flurry/sdk/Agent")
        assert signature.matches_class("com.flurry.sdk.Agent")
        assert signature.matches_class("Lcom/flurry/sdk/Agent;")
        assert not signature.matches_class("com/flurry/sdk")

    def test_invalid_class_descriptor_rejected(self):
        with pytest.raises(ValueError):
            MethodSignature(class_descriptor="com.x.Y", method_name="m")

    def test_empty_method_name_rejected(self):
        with pytest.raises(ValueError):
            MethodSignature(class_descriptor="Lcom/x/Y;", method_name="")

    def test_default_package_is_empty(self):
        signature = MethodSignature(class_descriptor="LStandalone;", method_name="run")
        assert signature.package == ""
        assert signature.library == ""

    def test_hashable_and_usable_in_sets(self):
        a = MethodSignature.parse(DROPBOX_SIG)
        b = MethodSignature.parse(DROPBOX_SIG)
        assert len({a, b}) == 1
