"""Smoke tests for the experiment drivers at miniature scale.

The benchmarks exercise the drivers at reproduction scale; here we only
verify that each driver runs, returns a well-formed result object and
renders its comparison table.
"""

import pytest

from repro.experiments.audit import run_audit_bench
from repro.experiments.common import format_table, run_corpus
from repro.experiments.case_studies import run_flow_size_study
from repro.experiments.fig3_ioi import run_fig3
from repro.experiments.fig4_latency import (
    CONFIGURATIONS,
    run_fig4,
    run_fig4_gateway_throughput,
)
from repro.experiments.policy_churn import run_policy_churn
from repro.experiments.table_validation import run_validation, select_validation_apps
from repro.core.policy import Policy
from repro.workloads.corpus import CorpusConfig, CorpusGenerator
from repro.workloads.libraries import li_library_list


class TestCommon:
    def test_format_table(self):
        text = format_table(("a", "b"), [(1, "xx"), (222, "y")])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_table_empty_rows(self):
        assert "a" in format_table(("a",), [])

    def test_run_corpus_produces_reports_and_capture(self):
        apps = CorpusGenerator(CorpusConfig(n_apps=5, seed=3)).generate()
        result = run_corpus(apps, policy=Policy.allow_all(), events_per_app=60)
        assert set(result.monkey_reports) == {a.package_name for a in apps}
        assert result.total_packets() > 0
        assert result.enforcement_records()
        assert result.delivered_packet_ids()
        assert set(result.outcomes_by_app()) == set(result.monkey_reports)


class TestFig3Driver:
    def test_small_run(self):
        result = run_fig3(n_apps=40, events_per_app=80)
        assert result.total_apps == 40
        assert 0 <= result.apps_with_ioi <= 40
        table = result.table()
        assert "apps with >=1 IoI" in table
        scaled = result.scaled_paper_histogram()
        assert scaled[1] == pytest.approx(152 * 40 / 2000)


class TestFig4Driver:
    def test_all_configurations_present(self):
        result = run_fig4(iterations=20)
        assert set(result.results) == set(CONFIGURATIONS)
        assert "configuration" in result.table()
        assert result.mean_ms("dynamic-tap-nfqueue") > result.mean_ms("default-tap")

    def test_sharded_gateway_throughput_alongside_latency(self):
        result = run_fig4_gateway_throughput(iterations=30, shards=2)
        assert result.mean_latency_ms > 0
        # Every tagged stress packet is replayed through the shards.
        assert result.packets > 0
        assert sum(result.shard_packet_counts) == result.packets
        assert result.parallel_wall_s <= result.serial_wall_s
        assert "kpps" in result.summary() and "latency" in result.summary()

    def test_sharded_gateway_throughput_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            run_fig4_gateway_throughput(iterations=10, shards=0)


class TestPolicyChurnDriver:
    def test_small_run_shapes_and_invariants(self):
        result = run_policy_churn(packets=600, flows=24, edits=3, corpus_apps=3, shards=2)
        assert set(result.results) == {"delta", "flush", "delta-sharded-2"}
        assert result.verdicts_match
        delta = result.results["delta"]
        assert delta.whole_flushes == 0
        assert delta.surgical_invalidations == result.edits
        assert result.results["flush"].whole_flushes == result.edits
        assert 0 < result.churn_app_packets < result.packets
        assert "verdict-identical: True" in result.table()

    def test_rejects_degenerate_configurations(self):
        with pytest.raises(ValueError):
            run_policy_churn(packets=10, edits=0)
        with pytest.raises(ValueError):
            run_policy_churn(packets=5, edits=10)
        with pytest.raises(ValueError):
            run_policy_churn(corpus_apps=1)


class TestValidationDriver:
    def test_small_run_is_perfect(self):
        result = run_validation(corpus_size=40, apps_to_test=10, events_per_app=80)
        assert result.apps_tested == 10
        assert result.score.block_rate == 1.0
        assert result.score.preserve_rate == 1.0
        assert "block rate" in result.table()

    def test_select_validation_apps_prefers_flagged_libraries(self):
        apps = CorpusGenerator(CorpusConfig(n_apps=50, seed=17)).generate()
        flagged = {p.replace("/", ".") for p in li_library_list()}
        selected = select_validation_apps(apps, target_count=15, flagged_prefixes=flagged)
        assert 0 < len(selected) <= 15
        assert all(any(lib in flagged for lib in app.libraries) for app in selected)
        assert len({a.package_name for a in selected}) == len(selected)


class TestFlowSizeDriver:
    def test_result_shape(self):
        result = run_flow_size_study(n_legitimate_flows=100, seed=2)
        assert len(result.legitimate_flows) == 100
        assert len(result.threshold_rows) == 5
        assert "threshold" in result.table()


class TestAuditDriver:
    def test_small_run_scores_all_three_systems(self):
        result = run_audit_bench(
            packets=400,
            devices=10,
            gateways=2,
            shards_per_gateway=1,
            corpus_apps=4,
            bursts=4,
            attack_packets_per_scenario=24,
            measure_overhead=False,
        )
        assert set(result.scores) == {"borderpatrol", "ip-dns", "size-threshold"}
        for score in result.scores.values():
            assert 0.0 <= score.precision <= 1.0
            for scenario in result.scenario_counts:
                assert 0.0 <= score.recall(scenario) <= 1.0
        # The attribution scenarios are invisible to both baselines even
        # at miniature scale, and BorderPatrol sees them all.
        assert result.borderpatrol_dominates_spoof_replay
        assert result.audit_roundtrip_ok
        assert result.records_published == result.packets
        assert "precision" in result.table()

    def test_rejects_degenerate_configurations(self):
        with pytest.raises(ValueError):
            run_audit_bench(packets=2, bursts=4)
        with pytest.raises(ValueError):
            run_audit_bench(packets=100, gateways=0)
        with pytest.raises(ValueError):
            run_audit_bench(packets=100, bursts=0)
        with pytest.raises(ValueError):
            run_audit_bench(packets=100, bursts=-1)
        with pytest.raises(ValueError):
            run_audit_bench(packets=100, attack_packets_per_scenario=0)
