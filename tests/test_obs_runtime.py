"""Cross-process observability: pool spans, worker deltas, live health.

The integration half of the obs suite: a ``backend="pool"`` enforcer
with a :class:`RuntimeObservability` attached must

* capture every pipeline stage (serialize / ring_write / queue_wait /
  enforce / fold) for each harvested batch,
* fold worker-local registries (sampled enforcer stages) back into the
  parent with batch results,
* keep verdicts identical to uninstrumented and null-registry runs,
* surface crashes through the pool counters, the health snapshot, and
  the monitor's alerts — and keep a respawned worker instrumented,
* render profiler frames carrying per-worker p50/p99 and respawns.
"""

from __future__ import annotations

import pytest

from repro.core.fleet import GatewayFleet
from repro.experiments.gateway_throughput import (
    DEFAULT_DENY_LIBRARIES,
    build_replay,
    build_signature_database,
)
from repro.core.policy import Policy
from repro.netstack.sharding import ShardedEnforcer
from repro.obs import (
    NULL_REGISTRY,
    HealthThresholds,
    PoolHealthMonitor,
    RuntimeObservability,
    render_top,
)
from repro.obs.trace import POOL_STAGES
from repro.runtime.pool import fork_available

needs_fork = pytest.mark.skipif(
    not fork_available(),
    reason="the pool backend needs the fork start method",
)


@pytest.fixture(scope="module")
def database():
    return build_signature_database(corpus_apps=4, seed=7)


@pytest.fixture(scope="module")
def replay(database):
    return build_replay(database.entries(), packets=600, flows=32, seed=11)


def make_policy() -> Policy:
    return Policy.deny_libraries(DEFAULT_DENY_LIBRARIES, name="obs-runtime")


def _verdicts(batch):
    return [verdict for verdict, _ in batch.results]


def _pooled(database, obs=None, shards=2):
    enforcer = ShardedEnforcer(
        database=database,
        policy=make_policy(),
        num_shards=shards,
        keep_records=False,
        backend="pool",
        flow_cache_size=0,
    )
    if obs is not None:
        enforcer.attach_obs(obs)
    return enforcer


@needs_fork
class TestPoolSpans:
    def test_every_stage_is_captured_per_batch(self, database, replay):
        obs = RuntimeObservability(sample_every=16)
        enforcer = _pooled(database, obs)
        for start in range(0, len(replay), 200):
            enforcer.collect_batch(enforcer.submit_batch(replay[start : start + 200]))
        enforcer.close()
        assert obs.traces.completed == 3 * 2  # 3 bursts x 2 shard batches
        for trace in obs.traces:
            assert set(trace.stage_seconds()) == set(POOL_STAGES)
            assert trace.total_s > 0
        breakdown = obs.stage_breakdown("shard-pool")
        assert set(breakdown) == set(POOL_STAGES)
        assert breakdown["enforce"] > 0

    def test_worker_registry_deltas_fold_into_parent(self, database, replay):
        obs = RuntimeObservability(sample_every=8)
        enforcer = _pooled(database, obs)
        enforcer.collect_batch(enforcer.submit_batch(replay))
        enforcer.close()
        hist = obs.registry.get("enforcer_stage_seconds")
        assert hist is not None
        samples = sum(state.count for state in hist._series.values())
        # 600 packets at 1/8 sampling across the workers' shared tick.
        assert samples > 0
        # Per-worker batch latency series exist for both workers.
        batch_hist = obs.registry.get("pool_worker_batch_seconds")
        workers = {key[1] for key in batch_hist._series}
        assert workers == {"0", "1"}

    def test_verdict_parity_across_instrumentation_tiers(self, database, replay):
        plain = _pooled(database)
        nulled = _pooled(database, RuntimeObservability(NULL_REGISTRY))
        live = _pooled(database, RuntimeObservability())
        try:
            expected = _verdicts(plain.process_batch_timed(replay))
            assert _verdicts(nulled.process_batch_timed(replay)) == expected
            assert _verdicts(live.process_batch_timed(replay)) == expected
        finally:
            for enforcer in (plain, nulled, live):
                enforcer.close()

    def test_null_obs_skips_span_capture(self, database, replay):
        obs = RuntimeObservability(NULL_REGISTRY)
        assert not obs.enabled
        enforcer = _pooled(database, obs)
        enforcer.collect_batch(enforcer.submit_batch(replay[:200]))
        enforcer.close()
        assert obs.traces.completed == 0
        assert obs.registry.snapshot() == {}


@needs_fork
class TestPoolHealth:
    def test_health_snapshot_reflects_live_structure(self, database, replay):
        enforcer = _pooled(database)
        assert enforcer.pool_health() is None  # pool starts lazily
        enforcer.process_batch_timed(replay[:100])
        health = enforcer.pool_health()
        assert health.name == "shard-pool"
        assert health.workers == 2
        assert health.alive == (True, True)
        assert health.incarnations == (1, 1)
        assert health.outstanding_bursts == 0
        assert health.ring_batches + health.pickled_batches >= 2
        enforcer.close()

    def test_crash_surfaces_in_counters_health_and_monitor(self, database):
        big = build_replay(database.entries(), packets=4000, flows=64, seed=13)
        obs = RuntimeObservability(sample_every=16)
        enforcer = _pooled(database, obs)
        enforcer.process_batch_timed(big[:100])
        monitor = PoolHealthMonitor(HealthThresholds(), source="obs-test")
        assert monitor.check(enforcer.pool_health()) == []
        token = enforcer.submit_batch(big)
        enforcer._pool.kill_worker(0)
        enforcer.collect_batch(token)
        health = enforcer.pool_health()
        assert health.crashes == 1
        assert health.respawn_counts[0] == 1
        crashes = obs.registry.get("pool_worker_crashes_total")
        assert crashes.value(pool="shard-pool") == 1
        respawns = obs.registry.get("pool_worker_respawns_total")
        assert respawns.value(pool="shard-pool") == 1
        raised = monitor.check(health)
        assert "pool-worker-crash" in {alert.kind for alert in raised}
        # The respawned worker came back instrumented: spans keep
        # flowing after the crash.
        before = obs.traces.completed
        enforcer.process_batch_timed(big[:80])
        assert obs.traces.completed > before
        enforcer.close()

    def test_render_top_reports_workers_and_respawns(self, database, replay):
        obs = RuntimeObservability()
        enforcer = _pooled(database, obs)
        enforcer.process_batch_timed(replay[:200])
        frame = render_top(
            obs, "shard-pool", health=enforcer.pool_health(), title="test obs"
        )
        enforcer.close()
        assert "test obs — shard-pool" in frame
        assert "w0" in frame and "w1" in frame
        assert "p50 ms" in frame and "p99 ms" in frame
        assert "respawns" in frame
        assert "stages:" in frame
        assert "health events: none" in frame


@needs_fork
class TestFleetObs:
    def test_gateway_pool_traces_and_parity(self, database, replay):
        policy = make_policy()
        obs = RuntimeObservability(sample_every=16)
        fleet = GatewayFleet(
            database=database,
            policy=policy,
            num_gateways=2,
            keep_records=False,
            backend="pool",
        )
        fleet.attach_obs(obs)
        control = GatewayFleet(
            database=database,
            policy=policy,
            num_gateways=2,
            keep_records=False,
        )
        try:
            batch = fleet.collect_burst(fleet.submit_burst(replay))
            expected = _verdicts(control.process_batch_timed(replay))
            assert _verdicts(batch) == expected
            assert obs.traces.completed >= 2
            breakdown = obs.stage_breakdown("gateway-pool")
            assert set(breakdown) == set(POOL_STAGES)
            health = fleet.pool_health()
            assert health.name == "gateway-pool"
            assert health.workers == 2
        finally:
            fleet.close()
            control.close()


class TestSequentialDegradation:
    def test_obs_attach_is_harmless_without_a_pool(self, database, replay):
        # Sequential backend: no pool, no spans — but enforcer-level
        # sampling still flows through the shared observability.
        obs = RuntimeObservability(sample_every=8)
        enforcer = ShardedEnforcer(
            database=database,
            policy=make_policy(),
            num_shards=2,
            keep_records=False,
            backend="sequential",
        )
        enforcer.attach_obs(obs)
        control = ShardedEnforcer(
            database=database,
            policy=make_policy(),
            num_shards=2,
            keep_records=False,
            backend="sequential",
        )
        expected = _verdicts(control.process_batch_timed(replay[:200]))
        assert _verdicts(enforcer.process_batch_timed(replay[:200])) == expected
        assert enforcer.pool_health() is None
        hist = obs.registry.get("enforcer_stage_seconds")
        assert sum(state.count for state in hist._series.values()) > 0
        assert obs.traces.completed == 0
