"""Unit tests for the telemetry subsystem (audit log, windows,
detectors, pipeline, fleet auditor, enforcer wiring)."""

import pytest

from repro.core.database import DatabaseEntry, SignatureDatabase
from repro.core.encoding import StackTraceEncoder
from repro.core.policy import Policy
from repro.core.policy_enforcer import (
    REASON_UNKNOWN_APP,
    REASON_UNTAGGED,
    EnforcementRecord,
    PolicyEnforcer,
)
from repro.netstack.ip import IPOptions, IPPacket
from repro.netstack.netfilter import Verdict
from repro.telemetry.audit import AuditLog, record_from_payload, record_to_payload
from repro.telemetry.aggregate import SlidingWindowAggregator
from repro.telemetry.detectors import (
    Detector,
    ExfiltrationVolumeDetector,
    PolicyViolationBurstDetector,
    SpoofedTagDetector,
    UnknownTagDetector,
    default_detectors,
)
from repro.telemetry.pipeline import FleetAuditor, TelemetryBuffer, TelemetryPipeline


def make_record(
    packet_id=1,
    verdict=Verdict.ACCEPT,
    reason="",
    src_ip="10.10.0.2",
    dst_ip="203.0.113.9",
    app_id="aaaaaaaa",
    package_name="com.alpha.app",
    payload_bytes=512,
):
    return EnforcementRecord(
        packet_id=packet_id,
        dst_ip=dst_ip,
        verdict=verdict,
        reason=reason,
        app_id=app_id,
        package_name=package_name,
        src_ip=src_ip,
        payload_bytes=payload_bytes,
    )


class TestAuditLog:
    def test_ring_bounds_memory_and_counts_evictions(self):
        log = AuditLog(capacity=3)
        records = [make_record(packet_id=i) for i in range(5)]
        log.extend(records)
        assert list(log) == records[2:]
        assert len(log) == 3
        assert log.total_appended == 5
        assert log.evicted == 2

    def test_list_surface(self):
        log = AuditLog(capacity=8)
        records = [make_record(packet_id=i) for i in range(4)]
        log.extend(records)
        assert log == records
        assert log[0] is records[0]
        assert log[-1] is records[-1]
        assert log[1:3] == records[1:3]
        assert bool(log)
        log.clear()
        assert not log and len(log) == 0

    def test_rejects_degenerate_configuration(self):
        with pytest.raises(ValueError):
            AuditLog(capacity=0)
        with pytest.raises(ValueError):
            AuditLog(segment_records=0)

    def test_payload_roundtrip_preserves_every_field(self):
        record = make_record(verdict=Verdict.DROP, reason=REASON_UNTAGGED)
        assert record_from_payload(record_to_payload(record)) == record

    def test_rotation_spools_segments_and_flush_persists_tail(self, tmp_path):
        log = AuditLog(capacity=4, spool_dir=tmp_path, segment_records=4)
        records = [make_record(packet_id=i) for i in range(10)]
        log.extend(records)
        assert log.segments_written == 2  # 8 records rotated, 2 buffered
        log.flush()
        assert log.segments_written == 3
        assert AuditLog.load_segments(tmp_path) == records
        # The ring only remembers the most recent four.
        assert list(log) == records[6:]


class TestSlidingWindowAggregator:
    def test_volumes_slide_out_of_the_window(self):
        aggregator = SlidingWindowAggregator(window_packets=2)
        aggregator.observe(make_record(payload_bytes=100))
        aggregator.observe(make_record(payload_bytes=200))
        assert aggregator.window_volume("10.10.0.2", "203.0.113.9") == 300
        aggregator.observe(make_record(payload_bytes=400))
        # The first record slid out with its 100 bytes.
        assert aggregator.window_volume("10.10.0.2", "203.0.113.9") == 600

    def test_window_stats_split_by_device_app_and_gateway(self):
        aggregator = SlidingWindowAggregator(window_packets=16)
        aggregator.observe(make_record(), "gw0")
        aggregator.observe(make_record(src_ip="10.10.0.3", verdict=Verdict.DROP), "gw1")
        tables = aggregator.window_stats()
        assert tables["devices"]["10.10.0.2"].packets == 1
        assert tables["devices"]["10.10.0.3"].dropped == 1
        assert tables["devices"]["10.10.0.3"].drop_rate == 1.0
        assert tables["apps"]["com.alpha.app"].packets == 2
        assert set(tables["sources"]) == {"gw0", "gw1"}

    def test_dropped_payloads_never_count_as_bytes_out(self):
        # Regression: blocked traffic must not accumulate exfiltration
        # volume — those bytes never left the network, and counting them
        # let already-blocked uploads raise false exfil-volume alerts.
        aggregator = SlidingWindowAggregator(window_packets=16)
        aggregator.observe(
            make_record(verdict=Verdict.DROP, reason="matched deny rule",
                        payload_bytes=100000)
        )
        aggregator.observe(make_record(packet_id=2, payload_bytes=300))
        assert aggregator.window_volume("10.10.0.2", "203.0.113.9") == 300
        assert aggregator.device("10.10.0.2").bytes_out == 300

    def test_zero_payload_events_evict_cleanly(self):
        # Regression: a zero-byte record stays in the event window after
        # its pair's volume entry hit zero and was dropped by an earlier
        # eviction; evicting it later must not KeyError.
        aggregator = SlidingWindowAggregator(window_packets=2)
        aggregator.observe(make_record(payload_bytes=5))
        aggregator.observe(make_record(payload_bytes=0))
        aggregator.observe(make_record(src_ip="10.10.9.9", payload_bytes=1))
        aggregator.observe(make_record(src_ip="10.10.9.9", payload_bytes=1))
        assert aggregator.window_volume("10.10.0.2", "203.0.113.9") == 0

    def test_integrity_state_stays_bounded_without_queries(self):
        # Regression: expiry used to run only inside device_integrity(),
        # which only UnknownTagDetector calls — a pipeline configured
        # without it leaked one deque entry per integrity event forever.
        aggregator = SlidingWindowAggregator(window_packets=4)
        for index in range(100):
            aggregator.observe(
                make_record(packet_id=index, verdict=Verdict.DROP,
                            reason=REASON_UNTAGGED, app_id="")
            )
        assert len(aggregator._integrity) <= aggregator.window_packets

    def test_device_integrity_counts_expire(self):
        aggregator = SlidingWindowAggregator(window_packets=2)
        aggregator.observe(
            make_record(verdict=Verdict.DROP, reason=REASON_UNTAGGED, app_id="")
        )
        assert aggregator.device_integrity("10.10.0.2") == (1, 0, 0)
        aggregator.observe(make_record(packet_id=2))
        aggregator.observe(make_record(packet_id=3))
        assert aggregator.device_integrity("10.10.0.2") == (0, 0, 0)


class TestDetectors:
    def test_unknown_tag_fires_and_cools_down(self):
        window = SlidingWindowAggregator(window_packets=64)
        detector = UnknownTagDetector(rearm_packets=4)
        bad = make_record(verdict=Verdict.DROP, reason=REASON_UNKNOWN_APP)
        window.observe(bad)
        assert detector.observe(bad, "gw0", window).kind == "unknown-tag"
        window.observe(bad)
        assert detector.observe(bad, "gw0", window) is None  # cooling down
        for _ in range(4):
            window.observe(make_record())
        window.observe(bad)
        assert detector.observe(bad, "gw0", window) is not None  # re-armed

    def test_spoofed_tag_needs_the_provisioning_map(self):
        window = SlidingWindowAggregator(window_packets=64)
        detector = SpoofedTagDetector({"10.10.0.2": frozenset({"aaaaaaaa"})})
        own = make_record()
        window.observe(own)
        assert detector.observe(own, "gw0", window) is None  # enrolled app
        borrowed = make_record(app_id="bbbbbbbb", package_name="com.beta.app")
        window.observe(borrowed)
        alert = detector.observe(borrowed, "gw0", window)
        assert alert.kind == "spoofed-tag" and alert.app == "com.beta.app"
        # Unknown devices cannot be judged: no ground truth for them.
        roamer = make_record(src_ip="10.10.9.9", app_id="bbbbbbbb")
        window.observe(roamer)
        assert detector.observe(roamer, "gw0", window) is None

    def test_exfiltration_volume_reassembles_fragments(self):
        window = SlidingWindowAggregator(window_packets=64)
        detector = ExfiltrationVolumeDetector(window_bytes=1000)
        alerts = []
        for index in range(4):
            # Different flows (source ports would differ); same pair.
            record = make_record(packet_id=index, payload_bytes=400)
            window.observe(record)
            alert = detector.observe(record, "gw0", window)
            if alert is not None:
                alerts.append(alert)
        assert [alert.kind for alert in alerts] == ["exfil-volume"]
        assert alerts[0].dst_ip == "203.0.113.9"

    def test_policy_burst_counts_only_real_denials(self):
        window = SlidingWindowAggregator(window_packets=64)
        detector = PolicyViolationBurstDetector(burst=3)
        denial = make_record(verdict=Verdict.DROP, reason="matched deny rule")
        integrity = make_record(verdict=Verdict.DROP, reason=REASON_UNTAGGED)
        assert detector.observe(integrity, "gw0", window) is None
        fired = [
            detector.observe(denial, "gw0", window) for _ in range(3)
        ]
        assert fired[0] is None and fired[1] is None
        assert fired[2].kind == "policy-burst"


class TestPipelineAndBuffer:
    def test_pipeline_appends_log_runs_detectors_and_counts(self):
        log = AuditLog(capacity=16)
        pipeline = TelemetryPipeline(
            window_packets=32,
            detectors=default_detectors(burst=2),
            audit_log=log,
        )
        denial = make_record(verdict=Verdict.DROP, reason="matched deny rule")
        for _ in range(2):
            pipeline.publish(denial, "gw0")
        assert pipeline.records_seen == 2
        assert len(log) == 2
        assert pipeline.alert_counts() == {"policy-burst": 1}
        assert pipeline.alerts[0].source == "gw0"

    def test_detector_stack_is_immutable_and_reassignment_refreshes_guards(self):
        class RecordingDetector(Detector):
            def __init__(self):
                super().__init__()
                self.seen = 0

            def observe(self, record, source, window):
                self.seen += 1
                return None

        pipeline = TelemetryPipeline(window_packets=32)
        # In-place mutation must fail loudly: appending to a list would
        # leave the fast-path guard stale and silently skip the new
        # detector on benign traffic.
        with pytest.raises(AttributeError):
            pipeline.detectors.append(RecordingDetector())
        custom = RecordingDetector()
        pipeline.detectors = list(pipeline.detectors) + [custom]
        pipeline.publish(make_record(), "gw0")  # benign accept
        assert custom.seen == 1  # the guard was recomputed

    def test_buffer_defers_pipeline_work_until_drain(self):
        pipeline = TelemetryPipeline(window_packets=32)
        buffer = TelemetryBuffer(pipeline)
        buffer.publish(make_record())
        buffer.publish(make_record())
        assert len(buffer) == 2
        assert pipeline.records_seen == 0
        elapsed = buffer.drain()
        assert elapsed >= 0.0
        assert len(buffer) == 0
        assert pipeline.records_seen == 2


class TestFleetAuditor:
    def test_pipeline_per_gateway_and_merged_alerts(self):
        auditor = FleetAuditor(window_packets=32, buffered=False)
        auditor.pipeline_for("gw0").publish(
            make_record(verdict=Verdict.DROP, reason=REASON_UNTAGGED, app_id="")
        )
        auditor.pipeline_for("gw1").publish(make_record(packet_id=2))
        assert set(auditor.pipelines) == {"gw0", "gw1"}
        assert auditor.records_seen == 2
        assert auditor.alert_counts() == {"unknown-tag": 1}

    def test_exfiltration_scan_sees_across_gateways(self):
        # Each gateway stays under the fleet budget; the sum does not.
        auditor = FleetAuditor(
            window_packets=64, exfil_window_bytes=1000, buffered=False
        )
        for gateway, start in (("gw0", 0), ("gw1", 10)):
            sink = auditor.pipeline_for(gateway)
            for index in range(2):
                sink.publish(make_record(packet_id=start + index, payload_bytes=300))
        assert not auditor.alert_counts()  # no single gateway over budget
        alerts = auditor.scan_exfiltration()
        assert [alert.kind for alert in alerts] == ["exfil-volume"]
        assert alerts[0].source == "fleet"
        # The scan alerts once per (device, destination) pair.
        assert auditor.scan_exfiltration() == []

    def test_spool_round_trip_across_gateways(self, tmp_path):
        auditor = FleetAuditor(
            window_packets=32,
            spool_dir=tmp_path,
            segment_records=2,
            buffered=False,
        )
        records = [make_record(packet_id=index) for index in range(6)]
        for index, record in enumerate(records):
            auditor.pipeline_for(f"gw{index % 2}").publish(record)
        auditor.flush()
        assert auditor.spooled_records() == records

    def test_flush_drains_pending_buffers_first(self, tmp_path):
        # Regression: in buffered mode, flush() without a prior drain()
        # used to persist a short spool — the backlog never reached the
        # pipelines, contradicting "the spool holds the full stream".
        auditor = FleetAuditor(
            window_packets=32, spool_dir=tmp_path, segment_records=2
        )
        records = [make_record(packet_id=index) for index in range(5)]
        sink = auditor.pipeline_for("gw0")
        for record in records:
            sink.publish(record)
        assert auditor.records_seen == 0  # still buffered
        auditor.flush()
        assert auditor.records_seen == len(records)
        assert auditor.spooled_records() == records


def build_enforcer(**kwargs) -> PolicyEnforcer:
    database = SignatureDatabase()
    database.add(
        DatabaseEntry(
            md5="aa" * 16,
            app_id=("aa" * 16)[:16],
            package_name="com.alpha.app",
            signatures=["Lcom/alpha/app/Main;->run()V"],
        )
    )
    return PolicyEnforcer(database=database, policy=Policy.allow_all(), **kwargs)


def tagged_packet(src_port=40000, payload_size=256) -> IPPacket:
    return IPPacket(
        src_ip="10.10.0.2",
        dst_ip="203.0.113.9",
        src_port=src_port,
        dst_port=443,
        payload_size=payload_size,
        options=StackTraceEncoder().encode_option(("aa" * 16)[:16], [0]),
    )


class TestEnforcerWiring:
    def test_keep_records_is_bounded_now(self):
        enforcer = build_enforcer(record_capacity=4)
        for port in range(40000, 40010):
            enforcer.process(tagged_packet(src_port=port))
        assert isinstance(enforcer.records, AuditLog)
        assert len(enforcer.records) == 4
        assert enforcer.records.total_appended == 10
        assert enforcer.records.evicted == 6

    def test_attach_audit_sink_publishes_every_decision(self):
        enforcer = build_enforcer(keep_records=False)
        pipeline = TelemetryPipeline(window_packets=32)
        enforcer.attach_audit_sink(pipeline, "gw7")
        enforcer.process(tagged_packet())
        untagged = IPPacket(
            src_ip="10.10.0.2",
            dst_ip="203.0.113.9",
            src_port=41000,
            dst_port=443,
            payload_size=64,
            options=IPOptions(),
        )
        enforcer.process(untagged)
        assert pipeline.records_seen == 2
        assert pipeline.aggregator.source("gw7").packets == 2
        # Attribution fields flow through the records; the dropped
        # untagged packet's 64 bytes never egressed, so they do not
        # count as bytes out.
        assert pipeline.aggregator.device("10.10.0.2").bytes_out == 256
        assert pipeline.aggregator.device("10.10.0.2").untagged == 1
