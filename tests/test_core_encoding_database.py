"""Tests for the context-tag encoding, the signature database and the Offline Analyzer."""

import pytest

from repro.apk.manifest import AndroidManifest
from repro.apk.package import build_apk
from repro.core.database import DatabaseEntry, SignatureDatabase, canonical_signature_order
from repro.core.encoding import (
    APP_ID_BYTES,
    ContextTag,
    EncodingError,
    IndexWidth,
    MAX_OPTION_DATA_BYTES,
    StackTraceEncoder,
)
from repro.core.offline_analyzer import OfflineAnalyzer
from repro.dex.builder import DexBuilder
from repro.netstack.ip import BORDERPATROL_OPTION_TYPE, MAX_IP_OPTIONS_BYTES

APP_ID = "0011223344556677"


class TestStackTraceEncoder:
    def test_round_trip_fixed_width(self):
        encoder = StackTraceEncoder()
        payload = encoder.encode(APP_ID, [0, 1, 65535, 42])
        tag = encoder.decode(payload)
        assert tag.app_id == APP_ID
        assert tag.indexes == (0, 1, 65535, 42)

    def test_round_trip_variable_width(self):
        encoder = StackTraceEncoder(IndexWidth.VARIABLE)
        indexes = (5, 32767, 32768, 4_000_000 // 2)
        assert encoder.decode(encoder.encode(APP_ID, indexes)).indexes == indexes

    def test_empty_stack_is_valid(self):
        encoder = StackTraceEncoder()
        tag = encoder.decode(encoder.encode(APP_ID, []))
        assert tag.indexes == ()
        assert tag.frame_count == 0

    def test_option_never_exceeds_rfc791_limit(self):
        encoder = StackTraceEncoder()
        options = encoder.encode_option(APP_ID, list(range(200)))
        assert options.wire_length <= MAX_IP_OPTIONS_BYTES
        assert options.find(BORDERPATROL_OPTION_TYPE) is not None

    def test_max_frames_fixed(self):
        encoder = StackTraceEncoder()
        assert encoder.max_frames() == (MAX_OPTION_DATA_BYTES - APP_ID_BYTES) // 2 == 15

    def test_truncation_keeps_innermost_frames(self):
        encoder = StackTraceEncoder()
        indexes = list(range(100, 100 + 30))
        fitted = encoder.fit_indexes(indexes)
        assert len(fitted) == encoder.max_frames()
        assert fitted == tuple(indexes[: encoder.max_frames()])

    def test_fixed_width_rejects_multidex_indexes(self):
        with pytest.raises(EncodingError):
            StackTraceEncoder().encode(APP_ID, [0x1_0000])

    def test_variable_width_upper_bound(self):
        with pytest.raises(EncodingError):
            StackTraceEncoder(IndexWidth.VARIABLE).encode(APP_ID, [0x40_0000])

    def test_bad_app_id_rejected(self):
        with pytest.raises(EncodingError):
            StackTraceEncoder().encode("abcd", [1])
        with pytest.raises(EncodingError):
            ContextTag(app_id="abcd", indexes=(1,))

    def test_decode_rejects_truncated_payloads(self):
        encoder = StackTraceEncoder()
        with pytest.raises(EncodingError):
            encoder.decode(b"\x00" * 4)
        with pytest.raises(EncodingError):
            encoder.decode(bytes.fromhex(APP_ID) + b"\x01")

    def test_decode_options_returns_none_without_tag(self):
        from repro.netstack.ip import IPOptions

        assert StackTraceEncoder().decode_options(IPOptions()) is None

    def test_negative_index_rejected(self):
        with pytest.raises(EncodingError):
            ContextTag(app_id=APP_ID, indexes=(-1,))


class TestCanonicalOrder:
    def _build(self):
        builder = DexBuilder()
        base = builder.add_class("com.app.Base")
        base.add_method("zeta")
        base.add_method("alpha")
        child = builder.add_class("com.app.Child", superclass="com.app.Base")
        child.add_method("beta")
        return builder.build()

    def test_order_is_deterministic_across_parses(self):
        dex = self._build()
        apk = build_apk(AndroidManifest(package_name="com.app"), dex)
        first = canonical_signature_order(apk.parse_dex_files())
        second = canonical_signature_order(apk.parse_dex_files())
        assert [str(s) for s in first] == [str(s) for s in second]

    def test_parent_methods_come_before_child_methods(self):
        order = [str(s) for s in canonical_signature_order([self._build()])]
        base_positions = [i for i, s in enumerate(order) if "/Base;" in s]
        child_positions = [i for i, s in enumerate(order) if "/Child;" in s]
        assert max(base_positions) < min(child_positions)

    def test_methods_sorted_within_class(self):
        order = [s.method_name for s in canonical_signature_order([self._build()])]
        assert order.index("alpha") < order.index("zeta")


class TestSignatureDatabase:
    def _entry(self, md5="a" * 32, app_id="b" * 16, package="com.x"):
        return DatabaseEntry(
            md5=md5,
            app_id=app_id,
            package_name=package,
            signatures=["Lcom/x/A;->m()V", "Lcom/x/A;->n()V"],
        )

    def test_add_and_lookup(self):
        database = SignatureDatabase()
        entry = self._entry()
        database.add(entry)
        assert database.lookup_md5("a" * 32) is entry
        assert database.lookup_app_id("b" * 16) is entry
        assert database.lookup_md5("missing") is None
        assert "a" * 32 in database and "b" * 16 in database
        assert len(database) == 1

    def test_entry_index_mapping(self):
        entry = self._entry()
        assert entry.signature_at(1) == "Lcom/x/A;->n()V"
        assert entry.index_of("Lcom/x/A;->m()V") == 0
        assert entry.contains("Lcom/x/A;->n()V")
        assert entry.decode_indexes([1, 0]) == ["Lcom/x/A;->n()V", "Lcom/x/A;->m()V"]
        with pytest.raises(IndexError):
            entry.signature_at(5)
        with pytest.raises(KeyError):
            entry.index_of("Lcom/x/A;->missing()V")

    def test_json_round_trip(self, tmp_path):
        database = SignatureDatabase()
        database.add(self._entry())
        database.add(self._entry(md5="c" * 32, app_id="d" * 16, package="com.y"))
        restored = SignatureDatabase.from_json(database.to_json())
        assert len(restored) == 2
        assert restored.lookup_app_id("d" * 16).package_name == "com.y"
        path = tmp_path / "db.json"
        database.save(path)
        assert len(SignatureDatabase.load(path)) == 2

    def test_remove(self):
        database = SignatureDatabase()
        database.add(self._entry())
        database.remove("a" * 32)
        assert len(database) == 0
        assert database.lookup_app_id("b" * 16) is None

    def test_packages(self):
        database = SignatureDatabase()
        database.add(self._entry(package="com.b"))
        database.add(self._entry(md5="c" * 32, app_id="d" * 16, package="com.a"))
        assert database.packages() == ["com.a", "com.b"]


class TestOfflineAnalyzer:
    def _apk(self, package="com.analyzed.app", extra=False):
        builder = DexBuilder()
        handle = builder.add_class(f"{package}.Main")
        handle.add_method("run")
        if extra:
            handle.add_method("more")
        return build_apk(AndroidManifest(package_name=package), builder.build())

    def test_analyze_produces_complete_entry(self):
        analyzer = OfflineAnalyzer()
        apk = self._apk()
        entry = analyzer.analyze(apk)
        assert entry.md5 == apk.md5
        assert entry.app_id == apk.app_id
        assert entry.method_count == apk.method_count()
        assert analyzer.database.lookup_app_id(apk.app_id) is entry

    def test_analyze_is_idempotent(self):
        analyzer = OfflineAnalyzer()
        apk = self._apk()
        assert analyzer.analyze(apk) is analyzer.analyze(apk)
        assert len(analyzer.database) == 1

    def test_two_versions_of_an_app_coexist(self):
        analyzer = OfflineAnalyzer()
        analyzer.analyze(self._apk())
        analyzer.analyze(self._apk(extra=True))
        assert len(analyzer.database) == 2

    def test_batch_report(self):
        analyzer = OfflineAnalyzer()
        apks = [self._apk(), self._apk(extra=True), self._apk()]
        report = analyzer.analyze_batch(apks)
        assert report.apps_processed == 2
        assert report.apps_skipped == 1
        assert report.total_methods == 3

    def test_shares_database_with_caller(self):
        database = SignatureDatabase()
        analyzer = OfflineAnalyzer(database)
        analyzer.analyze(self._apk())
        assert len(database) == 1
