"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.android.app_model import AppBehavior, Functionality, NetworkRequest
from repro.apk.manifest import AndroidManifest
from repro.apk.package import build_apk
from repro.core.deployment import BorderPatrolDeployment
from repro.dex.builder import DexBuilder
from repro.network.topology import EnterpriseNetwork


@pytest.fixture()
def simple_dex_builder() -> DexBuilder:
    """A builder pre-populated with a tiny app plus an analytics library."""
    builder = DexBuilder()
    main = builder.add_class("com.test.app.MainActivity", superclass="android.app.Activity")
    main.add_constructor()
    main.add_method("onClick", ("android.view.View",))
    main.add_method("onResume")
    api = builder.add_class("com.test.app.net.ApiClient")
    api.add_method("login", ("java.lang.String", "java.lang.String"), "boolean")
    api.add_method("upload", ("byte[]",), "boolean")
    api.add_method("download", ("java.lang.String",), "byte[]")
    tracker = builder.add_class("com.flurry.sdk.FlurryAgent")
    tracker.add_method("logEvent", ("java.lang.String",))
    return builder


@pytest.fixture()
def simple_app(simple_dex_builder):
    """(apk, behavior) for a three-functionality test app."""
    dex = simple_dex_builder.build()

    def sig(class_name, method_name):
        descriptor = "L" + class_name.replace(".", "/") + ";"
        return min(
            dex.get_class(descriptor).find_methods(method_name),
            key=lambda m: m.signature.sort_key(),
        ).signature

    apk = build_apk(AndroidManifest(package_name="com.test.app"), dex)
    behavior = AppBehavior(
        package_name="com.test.app",
        functionalities=(
            Functionality(
                name="login",
                call_chain=(sig("com.test.app.MainActivity", "onClick"),
                            sig("com.test.app.net.ApiClient", "login")),
                requests=(NetworkRequest("api.test.com", upload_bytes=600, download_bytes=800),),
            ),
            Functionality(
                name="upload",
                call_chain=(sig("com.test.app.MainActivity", "onClick"),
                            sig("com.test.app.net.ApiClient", "upload")),
                requests=(NetworkRequest("api.test.com", upload_bytes=9000, download_bytes=200),),
                desirable=False,
            ),
            Functionality(
                name="analytics",
                call_chain=(sig("com.test.app.MainActivity", "onResume"),
                            sig("com.flurry.sdk.FlurryAgent", "logEvent")),
                requests=(NetworkRequest("data.flurry.com", upload_bytes=700, download_bytes=100),),
                desirable=False,
                library="com.flurry",
            ),
        ),
    )
    return apk, behavior


@pytest.fixture()
def enterprise_network(simple_app) -> EnterpriseNetwork:
    """A network with servers for every endpoint of the simple app."""
    _, behavior = simple_app
    network = EnterpriseNetwork()
    for endpoint in sorted(behavior.endpoints()):
        network.add_server(endpoint)
    return network


@pytest.fixture()
def deployment(enterprise_network) -> BorderPatrolDeployment:
    return BorderPatrolDeployment(network=enterprise_network)


@pytest.fixture()
def launched_app(deployment, simple_app):
    """(deployment, device, process) with the simple app installed and launched."""
    apk, behavior = simple_app
    device = deployment.provision_device(name="test-device")
    process = deployment.install_and_launch(device, apk, behavior)
    return deployment, device, process
