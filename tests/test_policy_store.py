"""Tests for the versioned policy control plane.

Covers the store itself (addressable rules, atomic transactions,
versioning, serialization, diffing), the surgical data-plane path
(delta compilation, per-app flow-cache invalidation, the fallbacks that
must stay whole-cache), the sharded versioned broadcast, and the
deployment-level ``apply_update`` / ``set_policy``-shim contract.
"""

import pytest

from repro.core.database import DatabaseEntry, SignatureDatabase
from repro.core.encoding import StackTraceEncoder
from repro.core.policy import (
    FrozenPolicyError,
    Policy,
    PolicyAction,
    PolicyLevel,
    PolicyParseError,
    PolicyRule,
)
from repro.core.policy_enforcer import PolicyEnforcer
from repro.core.policy_store import (
    PolicyStore,
    PolicyUpdate,
    PolicyUpdateError,
)
from repro.netstack.ip import IPPacket
from repro.netstack.netfilter import Verdict
from repro.netstack.sharding import ShardedEnforcer

APP_A_MD5 = "aa" * 16
APP_A_ID = APP_A_MD5[:16]
APP_B_MD5 = "bb" * 16
APP_B_ID = APP_B_MD5[:16]

SIGNATURES_A = [
    "Lcom/alpha/app/MainActivity;->onClick(Landroid/view/View;)V",
    "Lcom/alpha/app/net/ApiClient;->upload([B)Z",
    "Lcom/flurry/sdk/FlurryAgent;->logEvent(Ljava/lang/String;)V",
]
SIGNATURES_B = [
    "Lcom/beta/app/MainActivity;->onClick(Landroid/view/View;)V",
    "Lcom/beta/app/net/Sync;->push([B)Z",
    "Lcom/mixpanel/android/Tracker;->track(Ljava/lang/String;)V",
]

DENY_FLURRY = PolicyRule(PolicyAction.DENY, PolicyLevel.LIBRARY, "com/flurry")
DENY_MIXPANEL = PolicyRule(PolicyAction.DENY, PolicyLevel.LIBRARY, "com/mixpanel")


@pytest.fixture()
def database():
    db = SignatureDatabase()
    db.add(DatabaseEntry(md5=APP_A_MD5, app_id=APP_A_ID, package_name="com.alpha.app",
                         signatures=list(SIGNATURES_A)))
    db.add(DatabaseEntry(md5=APP_B_MD5, app_id=APP_B_ID, package_name="com.beta.app",
                         signatures=list(SIGNATURES_B)))
    return db


def make_packet(app_id, indexes, src_port=40001):
    return IPPacket(
        src_ip="10.10.0.2",
        dst_ip="203.0.113.9",
        src_port=src_port,
        dst_port=443,
        payload_size=256,
        options=StackTraceEncoder().encode_option(app_id, indexes),
    )


def subscribed_enforcer(database, store, **kwargs):
    enforcer = PolicyEnforcer(database=database, policy=store.snapshot(), **kwargs)
    store.subscribe(enforcer, push=False)
    return enforcer


class TestPolicyStoreBasics:
    def test_rules_get_stable_sequential_ids(self):
        store = PolicyStore()
        store.apply(PolicyUpdate().add_rule(DENY_FLURRY).add_rule(DENY_MIXPANEL))
        assert store.rule_ids() == ["r1", "r2"]
        assert store.get("r1") == DENY_FLURRY
        assert store.version == 1

    def test_every_transaction_bumps_the_version_once(self):
        store = PolicyStore()
        store.apply(PolicyUpdate().add_rule(DENY_FLURRY).add_rule(DENY_MIXPANEL))
        store.apply(PolicyUpdate().remove_rule("r1"))
        assert store.version == 2
        assert store.rule_ids() == ["r2"]

    def test_replace_preserves_rule_position(self):
        store = PolicyStore()
        store.apply(PolicyUpdate().add_rule(DENY_FLURRY).add_rule(DENY_MIXPANEL))
        replacement = PolicyRule(PolicyAction.DENY, PolicyLevel.CLASS, "com/flurry/sdk/FlurryAgent")
        store.apply(PolicyUpdate().replace_rule("r1", replacement))
        assert store.snapshot().rules == [replacement, DENY_MIXPANEL]

    def test_failed_transaction_leaves_store_untouched(self):
        store = PolicyStore()
        store.apply(PolicyUpdate().add_rule(DENY_FLURRY))
        with pytest.raises(PolicyUpdateError):
            store.apply(PolicyUpdate().add_rule(DENY_MIXPANEL).remove_rule("r99"))
        assert store.version == 1
        assert store.rule_ids() == ["r1"]

    def test_duplicate_explicit_id_rejected(self):
        store = PolicyStore()
        store.apply(PolicyUpdate().add_rule(DENY_FLURRY, rule_id="block"))
        with pytest.raises(PolicyUpdateError):
            store.apply(PolicyUpdate().add_rule(DENY_MIXPANEL, rule_id="block"))

    def test_snapshot_is_frozen(self):
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        with pytest.raises(FrozenPolicyError):
            store.snapshot().add_rule(DENY_MIXPANEL)

    def test_snapshot_cached_per_version(self):
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        assert store.snapshot() is store.snapshot()
        first = store.snapshot()
        store.apply(PolicyUpdate().add_rule(DENY_MIXPANEL))
        assert store.snapshot() is not first

    def test_set_policy_is_one_replace_all_transaction(self):
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry", "com/old"]))
        delta = store.set_policy(Policy.deny_libraries(["com/mixpanel"]))
        assert store.version == 1
        assert [rule.target for rule in store] == ["com/mixpanel"]
        assert len(delta.changed_rules) == 3  # two removed + one added


class TestDeltaClassification:
    def test_deny_rule_edit_is_surgical(self):
        store = PolicyStore()
        delta = store.apply(PolicyUpdate().add_rule(DENY_FLURRY))
        assert not delta.full
        assert delta.changed_rules == (DENY_FLURRY,)

    def test_default_action_change_is_full(self):
        store = PolicyStore()
        delta = store.apply(PolicyUpdate().set_default(PolicyAction.DENY))
        assert delta.full

    def test_whitelist_transition_is_full_both_ways(self):
        store = PolicyStore()
        allow = PolicyRule(PolicyAction.ALLOW, PolicyLevel.LIBRARY, "com/alpha")
        entering = store.apply(PolicyUpdate().add_rule(allow, rule_id="wl"))
        assert entering.full
        leaving = store.apply(PolicyUpdate().remove_rule("wl"))
        assert leaving.full

    def test_additional_allow_rule_is_surgical(self):
        store = PolicyStore()
        store.apply(PolicyUpdate().add_rule(
            PolicyRule(PolicyAction.ALLOW, PolicyLevel.LIBRARY, "com/alpha")))
        delta = store.apply(PolicyUpdate().add_rule(
            PolicyRule(PolicyAction.ALLOW, PolicyLevel.LIBRARY, "com/beta")))
        assert not delta.full


class TestSerialization:
    def test_json_round_trip_preserves_ids_rules_version(self):
        store = PolicyStore(name="corp")
        store.apply(
            PolicyUpdate()
            .add_rule(DENY_FLURRY)
            .add_rule(PolicyRule(PolicyAction.ALLOW, PolicyLevel.HASH, APP_A_MD5,
                                 comment="pilot app"))
            .set_default(PolicyAction.DENY)
        )
        loaded = PolicyStore.from_json(store.to_json())
        assert loaded.name == "corp"
        assert loaded.version == store.version
        assert loaded.items() == store.items()
        assert loaded.default_action is PolicyAction.DENY

    def test_rules_serialize_as_snippet1_grammar(self):
        import json as json_module

        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        payload = json_module.loads(store.to_json())
        assert payload["rules"][0]["rule"] == '{[deny][library]["com/flurry"]}'

    def test_loaded_store_allocates_fresh_ids_past_loaded_ones(self):
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry", "com/mixpanel"]))
        loaded = PolicyStore.from_json(store.to_json())
        loaded.apply(PolicyUpdate().add_rule(PolicyRule(
            PolicyAction.DENY, PolicyLevel.LIBRARY, "com/crashlytics")))
        assert loaded.rule_ids() == ["r1", "r2", "r3"]

    def test_bad_json_rejected(self):
        with pytest.raises(PolicyParseError):
            PolicyStore.from_json("not json at all {")
        with pytest.raises(PolicyParseError):
            PolicyStore.from_json('{"no_rules": true}')

    def test_apply_rejects_state_from_json_could_not_restore(self):
        """Round-trip totality: anything apply() commits, from_json can load."""
        store = PolicyStore()
        with pytest.raises(PolicyUpdateError):  # non-string explicit id
            store.apply(PolicyUpdate().add_rule(DENY_FLURRY, rule_id=5))
        with pytest.raises(PolicyUpdateError):  # quote breaks the grammar
            store.apply(PolicyUpdate().add_rule(
                PolicyRule(PolicyAction.DENY, PolicyLevel.LIBRARY, 'com/"x')))
        assert store.version == 0 and len(store) == 0

    def test_to_json_rejects_unserializable_seeded_target(self):
        store = PolicyStore.from_policy(
            Policy(rules=[PolicyRule(PolicyAction.DENY, PolicyLevel.LIBRARY, 'com/"x')])
        )
        with pytest.raises(PolicyParseError):
            store.to_json()

    def test_malformed_fields_raise_parse_errors_not_tracebacks(self):
        with pytest.raises(PolicyParseError):  # non-integer version
            PolicyStore.from_json(
                '{"version": "abc", "rules": [{"id": "r1", "rule": "{[deny][library][\\"x\\"]}"}]}'
            )
        with pytest.raises(PolicyParseError):  # non-string rule id
            PolicyStore.from_json(
                '{"rules": [{"id": 5, "rule": "{[deny][library][\\"x\\"]}"}]}'
            )
        with pytest.raises(PolicyParseError):  # entry without a rule
            PolicyStore.from_json('{"rules": [{"id": "r1"}]}')

    def test_save_load_round_trip(self, tmp_path):
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]), name="disk")
        path = tmp_path / "store.json"
        store.save(path)
        assert PolicyStore.load(path).items() == store.items()

    def test_round_trip_preserves_delta_log_and_retention(self):
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        store.compact_every = 50
        store.apply(PolicyUpdate().add_rule(DENY_MIXPANEL))
        store.apply(PolicyUpdate().remove_rule("r1"))
        loaded = PolicyStore.from_json(store.to_json())
        assert loaded.compact_every == 50
        assert loaded.delta_log.head_version == store.version
        assert [r.fingerprint for r in loaded.delta_log] == [
            r.fingerprint for r in store.delta_log
        ]
        # The restored history still serves replication: a replica can
        # attach from the loaded store's log alone.
        from repro.core.policy_store import GatewayReplica

        class _Sink:
            def sync_policy(self, policy, version): ...
            def apply_policy_delta(self, delta): ...

        replica = GatewayReplica.from_log(_Sink(), loaded.delta_log, name="gw")
        assert replica.fingerprint() == store.fingerprint()

    def test_round_trip_preserves_compacted_log(self):
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        for _ in range(4):
            store.apply(PolicyUpdate().add_rule(DENY_MIXPANEL))
        store.compact(store.version - 1)
        loaded = PolicyStore.from_json(store.to_json())
        assert loaded.delta_log.base_version == store.version - 1
        assert loaded.delta_log.snapshot.fingerprint == store.delta_log.snapshot.fingerprint
        assert len(loaded.delta_log) == 1

    def test_inconsistent_embedded_log_rejected(self):
        import json as json_module

        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        store.apply(PolicyUpdate().add_rule(DENY_MIXPANEL))
        payload = json_module.loads(store.to_json())
        payload["version"] = 7  # does not match the log head
        with pytest.raises(PolicyParseError):
            PolicyStore.from_json(json_module.dumps(payload))

    def test_corrupt_snapshot_base_mismatch_is_a_parse_error(self):
        import json as json_module

        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        store.apply(PolicyUpdate().add_rule(DENY_MIXPANEL))
        store.compact()
        payload = json_module.loads(store.to_json())
        payload["delta_log"]["snapshot"]["version"] = 9  # != base_version
        payload["version"] = 9
        # A corrupted file is a parse error callers already handle, not
        # a bare ValueError traceback.
        with pytest.raises(PolicyParseError):
            PolicyStore.from_json(json_module.dumps(payload))

    def test_edited_rule_table_no_longer_hashing_to_log_head_rejected(self):
        import json as json_module

        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        store.apply(PolicyUpdate().add_rule(DENY_MIXPANEL))
        payload = json_module.loads(store.to_json())
        # Hand-edit the rule table while version and log stay intact:
        # the head would enforce this table while a replica bootstrapping
        # from the same file's log installs the original one.
        payload["rules"][0]["rule"] = '{[allow][library]["com/flurry"]}'
        with pytest.raises(PolicyParseError, match="fingerprint"):
            PolicyStore.from_json(json_module.dumps(payload))

    def test_legacy_json_without_log_still_loads_and_serves_bootstraps(self):
        import json as json_module

        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        store.apply(PolicyUpdate().add_rule(DENY_MIXPANEL))
        payload = json_module.loads(store.to_json())
        del payload["delta_log"]
        loaded = PolicyStore.from_json(json_module.dumps(payload))
        # Older history is gone, but the loaded state is the log's
        # genesis snapshot, so late joiners can still bootstrap.
        assert loaded.delta_log.base_version == loaded.version
        assert loaded.delta_log.snapshot is not None
        assert loaded.delta_log.snapshot.fingerprint == loaded.fingerprint()


class TestDiffUpdate:
    def test_minimal_diff_keeps_surviving_ids(self):
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry", "com/old"]))
        target = Policy.deny_libraries(["com/flurry", "com/new"])
        update = store.diff_update(target)
        store.apply(update)
        assert store.get("r1") == DENY_FLURRY  # survived with its id
        assert [rule.target for rule in store] == ["com/flurry", "com/new"]

    def test_reordering_falls_back_to_replace_all(self):
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/a", "com/b"]))
        target = Policy.deny_libraries(["com/b", "com/a"])
        update = store.diff_update(target)
        store.apply(update)
        assert [rule.target for rule in store] == ["com/b", "com/a"]

    def test_identical_policies_diff_to_no_ops(self):
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/a"]))
        assert len(store.diff_update(Policy.deny_libraries(["com/a"]))) == 0


class TestSurgicalEnforcement:
    def test_delta_keeps_unaffected_apps_cached(self, database):
        store = PolicyStore.from_policy(Policy.allow_all())
        enforcer = subscribed_enforcer(database, store)
        packet_a = make_packet(APP_A_ID, (0, 2), src_port=40001)
        packet_b = make_packet(APP_B_ID, (0, 1), src_port=40002)
        assert enforcer.process(packet_a)[0] is Verdict.ACCEPT
        assert enforcer.process(packet_b)[0] is Verdict.ACCEPT
        assert len(enforcer.flow_cache) == 2

        store.apply(PolicyUpdate().add_rule(DENY_FLURRY))
        # Only app A's entry dropped; app B's flow stays warm.
        assert len(enforcer.flow_cache) == 1
        assert enforcer.stats.cache_invalidations == 0
        assert enforcer.stats.cache_surgical_invalidations == 1
        assert enforcer.stats.cache_entries_invalidated == 1
        assert enforcer.stats.apps_recompiled == 1
        hits = enforcer.stats.cache_hits
        assert enforcer.process(packet_b)[0] is Verdict.ACCEPT
        assert enforcer.stats.cache_hits == hits + 1
        # The new rule is enforced on app A immediately.
        assert enforcer.process(packet_a)[0] is Verdict.DROP

    def test_delta_to_rule_touching_no_cached_app_invalidates_nothing(self, database):
        store = PolicyStore.from_policy(Policy.allow_all())
        enforcer = subscribed_enforcer(database, store)
        enforcer.process(make_packet(APP_A_ID, (0,)))
        store.apply(PolicyUpdate().add_rule(
            PolicyRule(PolicyAction.DENY, PolicyLevel.LIBRARY, "com/unrelated")))
        assert len(enforcer.flow_cache) == 1
        assert enforcer.stats.cache_entries_invalidated == 0
        assert enforcer.stats.apps_recompiled == 0

    def test_hash_rule_delta_touches_only_named_app(self, database):
        store = PolicyStore.from_policy(Policy.allow_all())
        enforcer = subscribed_enforcer(database, store)
        packet_a = make_packet(APP_A_ID, (0,), src_port=41001)
        packet_b = make_packet(APP_B_ID, (0,), src_port=41002)
        enforcer.process(packet_a)
        enforcer.process(packet_b)
        store.apply(PolicyUpdate().add_rule(
            PolicyRule(PolicyAction.DENY, PolicyLevel.HASH, APP_B_MD5)))
        assert enforcer.stats.cache_entries_invalidated == 1
        assert enforcer.process(packet_b)[0] is Verdict.DROP
        assert enforcer.process(packet_a)[0] is Verdict.ACCEPT

    def test_full_delta_flushes_whole_cache(self, database):
        store = PolicyStore.from_policy(Policy.allow_all())
        enforcer = subscribed_enforcer(database, store)
        enforcer.process(make_packet(APP_A_ID, (0,)))
        store.apply(PolicyUpdate().set_default(PolicyAction.DENY))
        assert len(enforcer.flow_cache) == 0
        assert enforcer.stats.cache_invalidations == 1

    def test_delta_verdicts_match_full_recompilation(self, database):
        """After every delta, the subscriber equals a fresh full compile."""
        store = PolicyStore.from_policy(Policy.allow_all())
        enforcer = subscribed_enforcer(database, store)
        packets = [
            make_packet(APP_A_ID, (0, 2), src_port=42001),
            make_packet(APP_A_ID, (0, 1), src_port=42002),
            make_packet(APP_B_ID, (0, 2), src_port=42003),
            make_packet(APP_B_ID, (1,), src_port=42004),
        ]
        edits = [
            PolicyUpdate().add_rule(DENY_FLURRY, rule_id="f"),
            PolicyUpdate().add_rule(DENY_MIXPANEL, rule_id="m"),
            PolicyUpdate().replace_rule(
                "f", PolicyRule(PolicyAction.DENY, PolicyLevel.METHOD, SIGNATURES_A[1])),
            PolicyUpdate().remove_rule("m"),
        ]
        for update in edits:
            store.apply(update)
            fresh = PolicyEnforcer(database=database, policy=store.snapshot(),
                                   flow_cache_size=0)
            expected = [fresh.process(packet)[0] for packet in packets]
            actual = [enforcer.process(packet)[0] for packet in packets]
            assert actual == expected

    def test_database_generation_change_falls_back_to_full(self, database):
        store = PolicyStore.from_policy(Policy.allow_all())
        enforcer = subscribed_enforcer(database, store)
        enforcer.process(make_packet(APP_A_ID, (0,)))
        database.add(DatabaseEntry(md5="cc" * 16, app_id="cc" * 8,
                                   package_name="com.gamma.app",
                                   signatures=list(SIGNATURES_A)))
        store.apply(PolicyUpdate().add_rule(DENY_FLURRY))
        # The compiled state predates the enrolment: whole-cache fallback.
        assert enforcer.stats.cache_invalidations == 1
        assert enforcer.stats.cache_surgical_invalidations == 0

    def test_absorbed_out_of_band_mutation_still_falls_back_to_full(self, database):
        """In-place edits absorbed by the packet path must not poison deltas.

        Once a packet is processed after an in-place ``add_rule``, the
        enforcer's revision bookkeeping matches the mutated policy again
        — only the delta's base_rules comparison can tell that the
        compiled state was not built from the store's rule table.  The
        delta must then fully resync to the store snapshot: no stale
        compiled entry may keep enforcing the out-of-band rule.
        """
        store = PolicyStore.from_policy(Policy.allow_all())
        mutable = Policy.allow_all()
        enforcer = PolicyEnforcer(database=database, policy=mutable)
        store.subscribe(enforcer, push=False)
        packet = make_packet(APP_A_ID, (0, 2))
        mutable.add_rule(DENY_FLURRY)  # behind the control plane's back
        # Processing absorbs the revision bump into _active_* bookkeeping
        # (and whole-flushes once for the in-place mutation itself).
        assert enforcer.process(packet)[0] is Verdict.DROP
        flushes = enforcer.stats.cache_invalidations
        store.apply(PolicyUpdate().add_rule(
            PolicyRule(PolicyAction.DENY, PolicyLevel.LIBRARY, "com/unrelated")))
        # Store is authoritative: its snapshot (no flurry rule) wins and
        # enforcement is consistent with the reported policy.
        assert enforcer.stats.cache_invalidations == flushes + 1
        assert enforcer.stats.cache_surgical_invalidations == 0
        assert enforcer.policy is store.snapshot()
        assert enforcer.process(packet)[0] is Verdict.ACCEPT

    def test_out_of_band_mutation_falls_back_to_full(self, database):
        store = PolicyStore.from_policy(Policy.allow_all())
        mutable = Policy.allow_all()
        enforcer = PolicyEnforcer(database=database, policy=mutable)
        store.subscribe(enforcer, push=False)
        enforcer.process(make_packet(APP_A_ID, (0,)))
        mutable.add_rule(DENY_MIXPANEL)  # behind the control plane's back
        store.apply(PolicyUpdate().add_rule(DENY_FLURRY))
        assert enforcer.stats.cache_invalidations == 1
        # And the store's snapshot won: the delta's policy is active.
        assert enforcer.policy is store.snapshot()

    def test_uncompiled_enforcer_still_tracks_versions(self, database):
        store = PolicyStore.from_policy(Policy.allow_all())
        enforcer = subscribed_enforcer(database, store, compile_policy=False)
        packet = make_packet(APP_A_ID, (0, 2))
        assert enforcer.process(packet)[0] is Verdict.ACCEPT
        store.apply(PolicyUpdate().add_rule(DENY_FLURRY))
        assert enforcer.policy_version == 1
        assert enforcer.process(packet)[0] is Verdict.DROP

    def test_subscribe_with_push_fully_syncs(self, database):
        store = PolicyStore.from_policy(Policy.deny_libraries(["com/flurry"]))
        store.apply(PolicyUpdate().add_rule(DENY_MIXPANEL))
        enforcer = PolicyEnforcer(database=database, policy=Policy.allow_all())
        store.subscribe(enforcer)
        assert enforcer.policy_version == store.version
        assert enforcer.process(make_packet(APP_B_ID, (2,)))[0] is Verdict.DROP

    def test_unsubscribed_enforcer_stops_receiving_deltas(self, database):
        store = PolicyStore.from_policy(Policy.allow_all())
        enforcer = subscribed_enforcer(database, store)
        store.unsubscribe(enforcer)
        store.apply(PolicyUpdate().add_rule(DENY_FLURRY))
        assert enforcer.policy_version == 0


class TestShardedBroadcast:
    def test_delta_broadcast_converges_all_shards(self, database):
        store = PolicyStore.from_policy(Policy.allow_all())
        sharded = ShardedEnforcer(database=database, policy=store.snapshot(), num_shards=3)
        store.subscribe(sharded, push=False)
        packets = [make_packet(APP_A_ID, (2,), src_port=43000 + i) for i in range(24)]
        for packet in packets:
            assert sharded.process(packet)[0] is Verdict.ACCEPT
        store.apply(PolicyUpdate().add_rule(DENY_FLURRY))
        assert sharded.policy_version == 1
        for packet in packets:
            assert sharded.process(packet)[0] is Verdict.DROP
        total = sharded.aggregate_stats()
        assert total.cache_invalidations == 0
        assert total.cache_surgical_invalidations == 3  # one per shard

    def test_diverged_shards_detected(self, database):
        sharded = ShardedEnforcer(database=database, num_shards=2)
        sharded.shards[0].policy_version = 7
        with pytest.raises(RuntimeError):
            sharded.policy_version


class TestDeploymentControlPlane:
    def test_apply_update_live_at_the_gateway(self, deployment, simple_app):
        apk, behavior = simple_app
        device = deployment.provision_device()
        process = deployment.install_and_launch(device, apk, behavior)
        assert process.invoke("analytics").completed
        deployment.apply_update(PolicyUpdate(reason="block flurry").add_rule(DENY_FLURRY))
        assert deployment.policy_version == 1
        assert not process.invoke("analytics").completed
        assert process.invoke("login").completed

    def test_set_policy_shim_keeps_reference_and_bumps_version(self, deployment):
        policy = Policy.deny_libraries(["com/flurry"])
        deployment.set_policy(policy)
        assert deployment.policy is policy
        assert deployment.policy_version == 1
        # Legacy in-place mutation after the shim still takes effect.
        policy.add_rule(DENY_MIXPANEL)
        assert len(deployment.enforcer.policy.rules) == 2

    def test_store_seeded_from_initial_policy(self, enterprise_network):
        from repro.core.deployment import BorderPatrolDeployment

        initial = Policy.deny_libraries(["com/flurry"])
        deployment = BorderPatrolDeployment(network=enterprise_network, policy=initial)
        assert deployment.policy_version == 0
        assert [rule.target for rule in deployment.policy_store] == ["com/flurry"]

    def test_sharded_deployment_applies_updates_to_every_shard(
        self, simple_app, enterprise_network
    ):
        from repro.core.deployment import BorderPatrolDeployment

        apk, behavior = simple_app
        deployment = BorderPatrolDeployment(network=enterprise_network, enforcer_shards=3)
        device = deployment.provision_device()
        process = deployment.install_and_launch(device, apk, behavior)
        assert process.invoke("analytics").completed
        deployment.apply_update(PolicyUpdate().add_rule(DENY_FLURRY))
        assert deployment.enforcer.policy_version == 1
        assert not process.invoke("analytics").completed
