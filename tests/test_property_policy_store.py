"""Property-based tests (hypothesis) for the policy control plane.

Three invariant families:

* **serialization round-trip** — ``PolicyStore.from_json(to_json(s))``
  preserves rule ids, and the reloaded snapshot evaluates every context
  identically (verdict, matched rule, reason) to the original;
* **diff reachability** — applying ``diff_update(target)`` always lands
  the store exactly on ``target``'s rules and default action;
* **delta-vs-full equivalence** — after an arbitrary sequence of
  control-plane edits, a store subscriber that only ever received
  incremental deltas (patched compiled policies, surgically invalidated
  flow cache) produces the same verdicts and reasons as a freshly
  built enforcer that full-compiles the final policy.
"""

from hypothesis import given, settings, strategies as st

from repro.core.database import DatabaseEntry, SignatureDatabase
from repro.core.encoding import StackTraceEncoder
from repro.core.policy import (
    DecodedContext,
    Policy,
    PolicyAction,
    PolicyLevel,
    PolicyRule,
)
from repro.core.policy_enforcer import PolicyEnforcer
from repro.core.policy_store import PolicyStore, PolicyUpdate
from repro.netstack.ip import IPPacket

APPS = (
    ("aa" * 16, "com.alpha.app", [
        "Lcom/alpha/app/MainActivity;->onClick(Landroid/view/View;)V",
        "Lcom/alpha/app/net/ApiClient;->upload([B)Z",
        "Lcom/flurry/sdk/FlurryAgent;->logEvent(Ljava/lang/String;)V",
        "Lcom/squareup/okhttp3/HttpClient;->execute(Ljava/lang/String;)V",
    ]),
    ("bb" * 16, "com.beta.app", [
        "Lcom/beta/app/MainActivity;->onClick(Landroid/view/View;)V",
        "Lcom/beta/app/sync/Engine;->push([B)Z",
        "Lcom/mixpanel/android/Tracker;->track(Ljava/lang/String;)V",
    ]),
    ("cc" * 16, "com.gamma.app", [
        "Lcom/gamma/app/Main;->run()V",
        "Lcom/flurry/sdk/FlurryAgent;->onEvent(Ljava/lang/String;)V",
    ]),
)

#: Interesting rule targets: real library/class/method fragments of the
#: apps above, app hashes, and strings that match nothing.
TARGETS = tuple(
    {
        "com/alpha/app", "com/beta/app", "com/flurry", "com/mixpanel/android",
        "com/squareup", "com/flurry/sdk/FlurryAgent", "com/alpha/app/net/ApiClient",
        APPS[0][2][1], APPS[1][2][1], APPS[2][2][1],
        "aa" * 16, "bb" * 16, ("aa" * 16)[:16],
        "com/present/nowhere", "org/unknown",
    }
)

rule_strategy = st.builds(
    PolicyRule,
    action=st.sampled_from(PolicyAction),
    level=st.sampled_from(PolicyLevel),
    target=st.sampled_from(sorted(TARGETS)),
)


def build_database() -> SignatureDatabase:
    database = SignatureDatabase()
    for md5, package, signatures in APPS:
        database.add(
            DatabaseEntry(
                md5=md5, app_id=md5[:16], package_name=package,
                signatures=list(signatures),
            )
        )
    return database


def evaluation_contexts():
    """Deterministic contexts across every app and stack shape."""
    contexts = []
    for md5, package, signatures in APPS:
        subsets = [(), (0,), tuple(range(len(signatures))), (len(signatures) - 1,)]
        for subset in subsets:
            contexts.append(
                DecodedContext(
                    app_id=md5[:16],
                    signatures=tuple(signatures[i] for i in subset),
                    app_md5=md5,
                    package_name=package,
                )
            )
    return contexts


CONTEXTS = evaluation_contexts()


@settings(max_examples=60, deadline=None)
@given(
    rules=st.lists(rule_strategy, max_size=6),
    default=st.sampled_from(PolicyAction),
)
def test_json_round_trip_evaluates_identically(rules, default):
    store = PolicyStore.from_policy(Policy(rules=list(rules), default_action=default))
    loaded = PolicyStore.from_json(store.to_json())
    assert loaded.items() == store.items()
    assert loaded.default_action is store.default_action
    original, reloaded = store.snapshot(), loaded.snapshot()
    for context in CONTEXTS:
        left = original.evaluate(context)
        right = reloaded.evaluate(context)
        assert left.verdict is right.verdict
        assert left.reason == right.reason
        assert left.matched_rule == right.matched_rule


@settings(max_examples=60, deadline=None)
@given(
    initial=st.lists(rule_strategy, max_size=5),
    target=st.lists(rule_strategy, max_size=5),
    target_default=st.sampled_from(PolicyAction),
)
def test_diff_update_always_reaches_target(initial, target, target_default):
    store = PolicyStore.from_policy(Policy(rules=list(initial)))
    store.apply(store.diff_update(Policy(rules=list(target), default_action=target_default)))
    assert store.snapshot().rules == list(target)
    assert store.default_action is target_default


edit_strategy = st.one_of(
    st.tuples(st.just("add"), rule_strategy),
    st.tuples(st.just("remove"), st.integers(min_value=0, max_value=9)),
    st.tuples(st.just("replace"), st.integers(min_value=0, max_value=9), rule_strategy),
    st.tuples(st.just("default"), st.sampled_from(PolicyAction)),
)


def build_packets():
    encoder = StackTraceEncoder()
    packets = []
    port = 40000
    for md5, _package, signatures in APPS:
        for indexes in [(0,), tuple(range(len(signatures))), (len(signatures) - 1,)]:
            port += 1
            packets.append(
                IPPacket(
                    src_ip="10.10.0.2",
                    dst_ip="203.0.113.9",
                    src_port=port,
                    dst_port=443,
                    payload_size=128,
                    options=encoder.encode_option(md5[:16], indexes),
                )
            )
    return packets


@settings(max_examples=50, deadline=None)
@given(edits=st.lists(edit_strategy, min_size=1, max_size=8))
def test_delta_path_equals_full_recompilation_on_random_edits(edits):
    database = build_database()
    store = PolicyStore.from_policy(Policy.allow_all())
    enforcer = PolicyEnforcer(database=database, policy=store.snapshot())
    store.subscribe(enforcer, push=False)
    packets = build_packets()

    for edit in edits:
        kind = edit[0]
        update = PolicyUpdate()
        if kind == "add":
            update.add_rule(edit[1])
        elif kind == "remove":
            ids = store.rule_ids()
            if not ids:
                continue
            update.remove_rule(ids[edit[1] % len(ids)])
        elif kind == "replace":
            ids = store.rule_ids()
            if not ids:
                continue
            update.replace_rule(ids[edit[1] % len(ids)], edit[2])
        else:
            update.set_default(edit[1])
        store.apply(update)

        reference = PolicyEnforcer(
            database=database, policy=store.snapshot(), flow_cache_size=0
        )
        for packet in packets:
            expected_verdict, _ = reference.process(packet)
            actual_verdict, _ = enforcer.process(packet)
            assert actual_verdict is expected_verdict
            assert enforcer.records[-1].reason == reference.records[-1].reason
