"""Tests for the enterprise network topology, capture, servers and VPN."""

import pytest

from repro.netstack.ip import BORDERPATROL_OPTION_TYPE, IPOptions, IPPacket
from repro.netstack.netfilter import Verdict
from repro.network.capture import CapturePoint, DeliveryReport, TrafficCapture, summarize
from repro.network.server import Server, stress_test_server, STRESS_PAGE_BYTES
from repro.network.topology import EnterpriseNetwork, NetworkConfig
from repro.network.vpn import VpnTunnel


def make_packet(dst_ip, src_ip="10.10.0.2", payload=100, options=None):
    return IPPacket(
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=40001,
        dst_port=443,
        payload_size=payload,
        options=options or IPOptions(),
    )


class TestTrafficCapture:
    def test_record_and_query(self):
        capture = TrafficCapture()
        packet = make_packet("203.0.113.1")
        capture.record(CapturePoint.DEVICE_EGRESS, packet)
        capture.record(CapturePoint.DELIVERED, packet)
        assert capture.count(CapturePoint.DEVICE_EGRESS) == 1
        assert capture.at(CapturePoint.DELIVERED) == [packet]
        assert len(capture) == 2
        capture.clear()
        assert len(capture) == 0

    def test_tagged_filter(self):
        capture = TrafficCapture()
        tagged = make_packet("203.0.113.1", options=IPOptions.single(BORDERPATROL_OPTION_TYPE, b"\x01"))
        capture.record(CapturePoint.DEVICE_EGRESS, tagged)
        capture.record(CapturePoint.DEVICE_EGRESS, make_packet("203.0.113.1"))
        assert capture.tagged(CapturePoint.DEVICE_EGRESS) == [tagged]

    def test_to_destination(self):
        capture = TrafficCapture()
        capture.record(CapturePoint.DELIVERED, make_packet("203.0.113.1"))
        capture.record(CapturePoint.DELIVERED, make_packet("203.0.113.2"))
        assert len(capture.to_destination("203.0.113.1", CapturePoint.DELIVERED)) == 1


class TestDeliveryReport:
    def test_merge_and_summarize(self):
        a = DeliveryReport(delivered=[make_packet("203.0.113.1")], latency_ms=1.0)
        dropped_packet = make_packet("203.0.113.2")
        b = DeliveryReport(dropped=[dropped_packet], latency_ms=0.5,
                           dropped_by={dropped_packet.packet_id: "policy"})
        merged = summarize([a, b])
        assert merged.total == 2
        assert not merged.all_delivered
        assert merged.drop_reasons() == {"policy"}
        assert merged.latency_ms == pytest.approx(1.5)


class TestServer:
    def test_handle_accounts_traffic(self):
        server = Server(ip="203.0.113.1", names=("api.x.com",), response_size=1234)
        packet = make_packet("203.0.113.1", payload=500)
        assert server.handle(packet) == 1234
        assert server.bytes_received == 500
        assert server.packets_received == 1
        assert server.received_from("10.10.0.2") == [packet]
        server.reset()
        assert server.packets_received == 0

    def test_callable_response_size(self):
        server = Server(ip="203.0.113.1", response_size=lambda p: p.payload_size * 2)
        assert server.handle(make_packet("203.0.113.1", payload=100)) == 200

    def test_received_options_detects_leaks(self):
        server = Server(ip="203.0.113.1")
        server.handle(make_packet("203.0.113.1",
                                  options=IPOptions.single(BORDERPATROL_OPTION_TYPE, b"\x01")))
        assert len(server.received_options()) == 1

    def test_stress_server(self):
        server = stress_test_server("203.0.113.50")
        assert server.handle(make_packet("203.0.113.50")) == STRESS_PAGE_BYTES


class TestEnterpriseNetwork:
    def test_add_server_registers_dns(self):
        network = EnterpriseNetwork()
        server = network.add_server("api.x.com")
        assert network.dns.resolve("api.x.com") == server.ip
        assert network.server_for("api.x.com") is network.server_for(server.ip)

    def test_add_server_same_ip_multiple_names(self):
        network = EnterpriseNetwork()
        first = network.add_server("a.x.com", ip="203.0.113.7")
        second = network.add_server("b.x.com", ip="203.0.113.7")
        assert second.ip == first.ip
        assert set(second.names) == {"a.x.com", "b.x.com"}

    def test_transmit_delivers_untagged_packet(self):
        network = EnterpriseNetwork()
        server = network.add_server("api.x.com")
        report = network.transmit([make_packet(server.ip)])
        assert report.all_delivered
        assert report.latency_ms > 0
        assert server.packets_received == 1
        assert network.capture.count(CapturePoint.DELIVERED) == 1

    def test_transmit_to_unknown_destination_drops(self):
        network = EnterpriseNetwork()
        report = network.transmit([make_packet("198.51.100.99")])
        assert not report.all_delivered
        assert report.dropped_by[report.dropped[0].packet_id] == "no-route"

    def test_tagged_packet_without_sanitizer_is_dropped_on_the_internet(self):
        # RFC 7126: Internet routers drop packets that still carry IP options.
        network = EnterpriseNetwork()
        server = network.add_server("api.x.com")
        tagged = make_packet(server.ip, options=IPOptions.single(BORDERPATROL_OPTION_TYPE, b"\x01"))
        report = network.transmit([tagged])
        assert not report.all_delivered
        assert report.dropped_by[tagged.packet_id] == "rfc7126"
        assert network.capture.count(CapturePoint.DROPPED_WAN) == 1

    def test_tagged_packet_survives_when_internet_filtering_disabled(self):
        network = EnterpriseNetwork(config=NetworkConfig(internet_drops_ip_options=False))
        server = network.add_server("api.x.com")
        tagged = make_packet(server.ip, options=IPOptions.single(BORDERPATROL_OPTION_TYPE, b"\x01"))
        assert network.transmit([tagged]).all_delivered

    def test_queue_chain_drop_is_recorded_as_policy_drop(self):
        class DropAll:
            def process(self, packet):
                return Verdict.DROP, packet

        network = EnterpriseNetwork()
        server = network.add_server("api.x.com")
        network.install_queue_chain(enforcer=DropAll(), sanitizer=None, queue_latency_ms=0.5)
        report = network.transmit([make_packet(server.ip)])
        assert not report.all_delivered
        assert network.dropped_by_policy()
        assert server.packets_received == 0

    def test_reset_observations(self):
        network = EnterpriseNetwork()
        server = network.add_server("api.x.com")
        network.transmit([make_packet(server.ip)])
        network.reset_observations()
        assert len(network.capture) == 0
        assert server.packets_received == 0

    def test_device_ip_allocation_is_unique(self):
        network = EnterpriseNetwork()
        assert network.allocate_device_ip() != network.allocate_device_ip()


class TestVpn:
    def test_work_traffic_goes_through_enterprise(self):
        network = EnterpriseNetwork()
        server = network.add_server("api.x.com")
        tunnel = VpnTunnel(network=network)
        report = tunnel.send_work_traffic([make_packet(server.ip, src_ip="192.168.1.23")])
        assert report.all_delivered
        # The packet was re-sourced from the tunnel address inside the
        # corporate subnet, so gateway rules keep applying.
        assert server.received_packets[0].src_ip == tunnel.tunnel_ip
        assert tunnel.packets_tunnelled == 1

    def test_disconnected_tunnel_drops_work_traffic(self):
        network = EnterpriseNetwork()
        server = network.add_server("api.x.com")
        tunnel = VpnTunnel(network=network)
        tunnel.disconnect()
        report = tunnel.send_work_traffic([make_packet(server.ip)])
        assert not report.all_delivered
        tunnel.reconnect()
        assert tunnel.send_work_traffic([make_packet(server.ip)]).all_delivered

    def test_personal_traffic_bypasses_enterprise(self):
        network = EnterpriseNetwork()
        network.add_server("api.x.com")
        tunnel = VpnTunnel(network=network)
        report = tunnel.send_personal_traffic([make_packet("8.8.8.8")])
        assert report.all_delivered
        assert len(network.capture) == 0
        assert tunnel.packets_bypassed == 1
