"""Tests for the dex data model: classes, methods, debug info, limits."""

import pytest

from repro.dex.model import (
    AccessFlags,
    ClassDef,
    DebugInfo,
    DexFile,
    DEX_METHOD_LIMIT,
    MethodDef,
    MultiDexError,
)
from repro.dex.signature import MethodSignature


def make_method(class_name="com.x.Y", name="m", params=(), line_start=10, line_end=20):
    return MethodDef(
        signature=MethodSignature.create(class_name, name, params),
        debug=DebugInfo(source_file="Y.java", line_start=line_start, line_end=line_end),
    )


class TestDebugInfo:
    def test_covers_inside_range(self):
        debug = DebugInfo(source_file="A.java", line_start=5, line_end=9)
        assert debug.covers(5) and debug.covers(7) and debug.covers(9)
        assert not debug.covers(4) and not debug.covers(10)

    def test_stripped_debug_info_covers_nothing(self):
        debug = DebugInfo()
        assert debug.stripped
        assert not debug.covers(1)


class TestClassDef:
    def test_requires_descriptor_form(self):
        with pytest.raises(ValueError):
            ClassDef(descriptor="com.x.Y")

    def test_class_name_and_package(self):
        class_def = ClassDef(descriptor="Lcom/x/sub/Y;")
        assert class_def.class_name == "com.x.sub.Y"
        assert class_def.package == "com.x.sub"

    def test_add_method_checks_declaring_class(self):
        class_def = ClassDef(descriptor="Lcom/x/Y;")
        with pytest.raises(ValueError):
            class_def.add_method(make_method(class_name="com.other.Z"))

    def test_add_method_rejects_duplicates(self):
        class_def = ClassDef(descriptor="Lcom/x/Y;")
        class_def.add_method(make_method())
        with pytest.raises(ValueError):
            class_def.add_method(make_method())

    def test_find_methods_returns_all_overloads(self):
        class_def = ClassDef(descriptor="Lcom/x/Y;")
        class_def.add_method(make_method(params=()))
        class_def.add_method(make_method(params=("int",), line_start=30, line_end=40))
        class_def.add_method(make_method(name="other", line_start=50, line_end=55))
        assert len(class_def.find_methods("m")) == 2
        assert len(class_def.find_methods("other")) == 1
        assert class_def.find_methods("missing") == []

    def test_method_for_line_disambiguates_overloads(self):
        class_def = ClassDef(descriptor="Lcom/x/Y;")
        first = make_method(params=(), line_start=10, line_end=20)
        second = make_method(params=("int",), line_start=30, line_end=40)
        class_def.add_method(first)
        class_def.add_method(second)
        assert class_def.method_for_line(15) is first
        assert class_def.method_for_line(35) is second
        assert class_def.method_for_line(25) is None


class TestDexFile:
    def test_add_and_lookup_class(self):
        dex = DexFile()
        class_def = ClassDef(descriptor="Lcom/x/Y;")
        dex.add_class(class_def)
        assert dex.get_class("Lcom/x/Y;") is class_def
        assert dex.get_class("Lmissing;") is None
        assert dex.class_count == 1

    def test_duplicate_class_rejected(self):
        dex = DexFile()
        dex.add_class(ClassDef(descriptor="Lcom/x/Y;"))
        with pytest.raises(ValueError):
            dex.add_class(ClassDef(descriptor="Lcom/x/Y;"))

    def test_method_limit_enforced(self):
        dex = DexFile()
        big = ClassDef(descriptor="Lcom/x/Big;")
        # Bypass per-method construction cost by injecting a fake method list.
        big.methods = [make_method(name=f"m{i}") for i in range(3)]
        dex.add_class(big)
        huge = ClassDef(descriptor="Lcom/x/Huge;")
        huge.methods = [None] * DEX_METHOD_LIMIT  # type: ignore[list-item]
        with pytest.raises(MultiDexError):
            dex.add_class(huge)

    def test_sorted_signatures_are_deterministic(self):
        dex = DexFile()
        cls = ClassDef(descriptor="Lcom/x/Y;")
        cls.add_method(make_method(name="b"))
        cls.add_method(make_method(name="a", line_start=30, line_end=35))
        dex.add_class(cls)
        ordered = dex.sorted_signatures()
        assert [s.method_name for s in ordered] == ["a", "b"]
        assert dex.sorted_signatures() == ordered

    def test_merge_unions_classes(self):
        first = DexFile(name="classes.dex")
        first.add_class(ClassDef(descriptor="Lcom/x/A;"))
        second = DexFile(name="classes2.dex")
        second.add_class(ClassDef(descriptor="Lcom/x/B;"))
        merged = first.merge([second])
        assert set(merged.classes) == {"Lcom/x/A;", "Lcom/x/B;"}
        # Merging is non-destructive.
        assert set(first.classes) == {"Lcom/x/A;"}

    def test_packages(self):
        dex = DexFile()
        dex.add_class(ClassDef(descriptor="Lcom/x/A;"))
        dex.add_class(ClassDef(descriptor="Lorg/y/B;"))
        assert dex.packages() == {"com.x", "org.y"}


class TestAccessFlags:
    def test_native_flag(self):
        method = MethodDef(
            signature=MethodSignature.create("com.x.Y", "n"),
            access_flags=AccessFlags.PUBLIC | AccessFlags.NATIVE,
        )
        assert method.is_native

    def test_constructor_detection(self):
        ctor = MethodDef(signature=MethodSignature.create("com.x.Y", "<init>"))
        assert ctor.is_constructor
        assert not make_method().is_constructor
