"""Streaming exfil baselines: estimators, hierarchy, pollution guard."""

import math
import random

from repro.ops.baselines import (
    EwmaStat,
    OnlineExfilBaselines,
    P2Quantile,
)


def test_ewma_tracks_a_constant_stream_exactly():
    stat = EwmaStat(alpha=0.3)
    for _ in range(50):
        stat.update(1000.0)
    assert stat.mean == 1000.0
    assert stat.std == 0.0


def test_ewma_mean_converges_toward_a_level_shift():
    stat = EwmaStat(alpha=0.3)
    for _ in range(20):
        stat.update(100.0)
    for _ in range(40):
        stat.update(500.0)
    assert 480.0 < stat.mean <= 500.0


def test_p2_quantile_approximates_the_true_quantile():
    rng = random.Random(11)
    samples = [rng.uniform(0.0, 1000.0) for _ in range(5000)]
    estimator = P2Quantile(p=0.9)
    for sample in samples:
        estimator.update(sample)
    exact = sorted(samples)[int(0.9 * len(samples))]
    assert abs(estimator.value() - exact) / exact < 0.05


def test_p2_quantile_is_exact_below_six_samples():
    estimator = P2Quantile(p=0.5)
    for sample in (5.0, 1.0, 3.0):
        estimator.update(sample)
    assert estimator.value() == 3.0


def test_threshold_is_infinite_until_min_samples():
    baselines = OnlineExfilBaselines(min_samples=3)
    for _ in range(2):
        baselines.fold_volumes({("dev", "dst"): 1000})
    assert baselines.threshold("dev", "dst") == math.inf
    baselines.fold_volumes({("dev", "dst"): 1000})
    assert baselines.threshold("dev", "dst") < math.inf


def test_threshold_falls_back_pair_to_device_to_global():
    baselines = OnlineExfilBaselines(min_samples=2, floor=0.0)
    # Two folds calibrate ("dev", "a") and the device; one fold of the
    # second pair leaves it below min_samples.
    baselines.fold_volumes({("dev", "a"): 1000})
    baselines.fold_volumes({("dev", "a"): 1000, ("dev", "b"): 2000})
    pair_threshold = baselines.threshold("dev", "a")
    assert pair_threshold < math.inf
    # ("dev", "b") has one sample: falls back to the device estimator.
    device_threshold = baselines.threshold("dev", "b")
    assert device_threshold < math.inf
    assert device_threshold != math.inf
    # An unseen device falls back to the global estimator.
    assert baselines.threshold("ghost", "x") < math.inf


def test_floor_dominates_small_volume_thresholds():
    baselines = OnlineExfilBaselines(min_samples=2, floor=12288.0)
    for _ in range(10):
        baselines.fold_volumes({("dev", "dst"): 100})
    assert baselines.threshold("dev", "dst") == 12288.0


def test_winsorization_clamps_over_threshold_samples():
    baselines = OnlineExfilBaselines(min_samples=2, floor=0.0, margin=2.0)
    for _ in range(10):
        baselines.fold_volumes({("dev", "dst"): 1000})
    calibrated = baselines.threshold("dev", "dst")
    assert baselines.clamped == 0
    # A sudden 100x spike folds as the threshold value, not its own.
    baselines.fold_volumes({("dev", "dst"): 100_000})
    assert baselines.clamped == 1
    after = baselines.threshold("dev", "dst")
    # The guard bounds how far one polluted fold can drag the model: the
    # clamped sample moves the mean/variance by at most the old
    # threshold, nowhere near the raw spike.
    assert after < 4 * calibrated
    assert after < 100_000


def test_attacker_cannot_ramp_the_threshold_past_the_margin_rate():
    baselines = OnlineExfilBaselines(min_samples=2, floor=0.0)
    for _ in range(10):
        baselines.fold_volumes({("dev", "dst"): 1000})
    previous = baselines.threshold("dev", "dst")
    for _ in range(5):
        spike = previous * 100
        baselines.fold_volumes({("dev", "dst"): spike})
        current = baselines.threshold("dev", "dst")
        # Growth per fold is a small bounded factor — the threshold
        # chases the clamped value geometrically, never jumping to the
        # spike the attacker actually sent.
        assert current < 4 * previous
        assert current < spike
        previous = current


def test_fold_order_independence():
    volumes = {(f"dev{i}", "dst"): 1000 + 137 * i for i in range(20)}
    shuffled_keys = list(volumes)
    random.Random(3).shuffle(shuffled_keys)
    shuffled = {key: volumes[key] for key in shuffled_keys}
    a, b = OnlineExfilBaselines(min_samples=1), OnlineExfilBaselines(min_samples=1)
    for _ in range(4):
        a.fold_volumes(volumes)
        b.fold_volumes(shuffled)
    for key in volumes:
        assert a.threshold(*key) == b.threshold(*key)
    assert a.snapshot() == b.snapshot()
