"""Tests for DNS, flow tracking, netfilter/NFQUEUE and routing."""

import pytest

from repro.netstack.dns import DnsError, DnsRegistry
from repro.netstack.ip import BORDERPATROL_OPTION_TYPE, IPOptions, IPPacket
from repro.netstack.netfilter import (
    Iptables,
    IptablesRule,
    NetfilterQueue,
    RuleTarget,
    Verdict,
    ip_prefix_matches,
)
from repro.netstack.routing import Link, Router, RouterPolicy, traverse
from repro.netstack.tcp import FlowKey, FlowTable


def make_packet(dst_ip="203.0.113.9", payload=100, options=None, src_ip="10.10.0.2",
                dst_port=443, direction="outbound"):
    return IPPacket(
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=40001,
        dst_port=dst_port,
        payload_size=payload,
        options=options or IPOptions(),
        direction=direction,
    )


class TestDns:
    def test_register_and_resolve(self):
        dns = DnsRegistry()
        ip = dns.register("api.example.com")
        assert dns.resolve("api.example.com") == ip
        assert dns.resolve("API.EXAMPLE.COM.") == ip
        assert dns.reverse(ip) == {"api.example.com"}

    def test_register_is_idempotent(self):
        dns = DnsRegistry()
        assert dns.register("a.com") == dns.register("a.com")
        assert len(dns) == 1

    def test_conflicting_registration_rejected(self):
        dns = DnsRegistry()
        dns.register("a.com", "1.2.3.4")
        with pytest.raises(ValueError):
            dns.register("a.com", "5.6.7.8")

    def test_multiple_names_one_ip(self):
        dns = DnsRegistry()
        dns.register("a.com", "1.2.3.4")
        dns.register("b.com", "1.2.3.4")
        assert dns.reverse("1.2.3.4") == {"a.com", "b.com"}

    def test_unknown_lookups_raise(self):
        dns = DnsRegistry()
        with pytest.raises(DnsError):
            dns.resolve("missing.com")
        with pytest.raises(DnsError):
            dns.reverse("9.9.9.9")

    def test_allocated_addresses_are_unique(self):
        dns = DnsRegistry()
        addresses = {dns.register(f"host{i}.com") for i in range(300)}
        assert len(addresses) == 300

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            DnsRegistry().register("")


class TestFlowTable:
    def test_flows_aggregate_by_five_tuple(self):
        table = FlowTable()
        table.observe(make_packet(payload=100))
        table.observe(make_packet(payload=200))
        table.observe(make_packet(dst_ip="203.0.113.10", payload=50))
        assert len(table) == 2
        assert table.total_bytes() == 350
        assert table.flow_sizes() == [50, 300]

    def test_flow_key_from_packet(self):
        packet = make_packet()
        key = FlowKey.from_packet(packet)
        assert key.dst_ip == packet.dst_ip
        table = FlowTable()
        table.observe(packet)
        assert table.get(key).packets == 1
        assert table.get(FlowKey.from_packet(make_packet(dst_ip="203.0.113.99"))) is None

    def test_tagged_packet_counting(self):
        table = FlowTable()
        table.observe(make_packet(options=IPOptions.single(BORDERPATROL_OPTION_TYPE, b"\x01")))
        table.observe(make_packet())
        flow = table.flows()[0]
        assert flow.tagged_packets == 1
        assert flow.packets == 2

    def test_flows_to_destination(self):
        table = FlowTable()
        table.observe_all([make_packet(), make_packet(dst_ip="203.0.113.10")])
        assert len(table.flows_to("203.0.113.10")) == 1


class TestNetfilterQueue:
    def test_unbound_queue_fails_open(self):
        queue = NetfilterQueue(queue_num=1)
        packet = make_packet()
        verdict, out = queue.handle(packet)
        assert verdict is Verdict.ACCEPT and out is packet
        assert queue.stats.accepted == 1

    def test_consumer_verdicts_and_mangling_tracked(self):
        class Dropper:
            def process(self, packet):
                return Verdict.DROP, packet

        class Mangler:
            def process(self, packet):
                return Verdict.ACCEPT, packet.stripped()

        dropper_queue = NetfilterQueue(queue_num=1)
        dropper_queue.bind(Dropper())
        verdict, _ = dropper_queue.handle(make_packet())
        assert verdict is Verdict.DROP
        assert dropper_queue.stats.dropped == 1

        mangler_queue = NetfilterQueue(queue_num=2)
        mangler_queue.bind(Mangler())
        tagged = make_packet(options=IPOptions.single(BORDERPATROL_OPTION_TYPE, b"\x01"))
        _, out = mangler_queue.handle(tagged)
        assert not out.has_options
        assert mangler_queue.stats.mangled == 1

    def test_double_bind_rejected(self):
        queue = NetfilterQueue(queue_num=1)
        queue.bind(lambda: None)  # type: ignore[arg-type]
        with pytest.raises(RuntimeError):
            queue.bind(lambda: None)  # type: ignore[arg-type]


class TestIptables:
    def test_first_matching_rule_wins(self):
        table = Iptables()
        table.append_rule(IptablesRule(target=RuleTarget.DROP, dst_prefix="203.0.113."))
        table.append_rule(IptablesRule(target=RuleTarget.ACCEPT))
        verdict, _, _ = table.process(make_packet())
        assert verdict is Verdict.DROP

    def test_rule_matching_fields(self):
        rule = IptablesRule(target=RuleTarget.DROP, dst_port=443, direction="outbound")
        assert rule.matches(make_packet())
        assert not rule.matches(make_packet(dst_port=80))
        assert not rule.matches(make_packet(direction="inbound"))

    def test_prefix_match_respects_octet_boundaries(self):
        # Regression: "10.1" used to startswith-match "10.100.0.1".
        rule = IptablesRule(target=RuleTarget.DROP, src_prefix="10.1")
        assert rule.matches(make_packet(src_ip="10.1.0.5"))
        assert rule.matches(make_packet(src_ip="10.1.200.9"))
        assert not rule.matches(make_packet(src_ip="10.100.0.1"))
        assert not rule.matches(make_packet(src_ip="10.10.0.2"))
        assert not rule.matches(make_packet(src_ip="110.1.0.5"))

    def test_prefix_match_exact_address_and_trailing_dot(self):
        rule = IptablesRule(target=RuleTarget.DROP, dst_prefix="203.0.113.9")
        assert rule.matches(make_packet(dst_ip="203.0.113.9"))
        assert not rule.matches(make_packet(dst_ip="203.0.113.90"))
        dotted = IptablesRule(target=RuleTarget.DROP, src_prefix="10.10.")
        assert dotted.matches(make_packet(src_ip="10.10.0.2"))
        assert not dotted.matches(make_packet(src_ip="10.100.0.2"))

    def test_prefix_match_cidr_notation(self):
        rule = IptablesRule(target=RuleTarget.DROP, src_prefix="10.1.0.0/16")
        assert rule.matches(make_packet(src_ip="10.1.255.4"))
        assert not rule.matches(make_packet(src_ip="10.2.0.1"))
        assert ip_prefix_matches("203.0.113.8/30", "203.0.113.9")
        assert not ip_prefix_matches("203.0.113.8/30", "203.0.113.12")

    def test_malformed_cidr_prefix_rejected_at_rule_creation(self):
        with pytest.raises(ValueError):
            IptablesRule(target=RuleTarget.DROP, src_prefix="10.1.0.0/33")
        with pytest.raises(ValueError):
            IptablesRule(target=RuleTarget.DROP, dst_prefix="not-an-ip/8")

    def test_queue_chaining_continues_after_accept(self):
        class Recorder:
            def __init__(self):
                self.seen = 0

            def process(self, packet):
                self.seen += 1
                return Verdict.ACCEPT, packet

        table = Iptables()
        table.append_rule(IptablesRule(target=RuleTarget.QUEUE, queue_num=1))
        table.append_rule(IptablesRule(target=RuleTarget.QUEUE, queue_num=2))
        first, second = Recorder(), Recorder()
        table.bind_queue(1, first, latency_ms=0.5)
        table.bind_queue(2, second, latency_ms=0.5)
        verdict, _, latency = table.process(make_packet())
        assert verdict is Verdict.ACCEPT
        assert first.seen == 1 and second.seen == 1
        assert latency == pytest.approx(1.0)

    def test_queue_drop_short_circuits(self):
        class Dropper:
            def process(self, packet):
                return Verdict.DROP, packet

        class NeverCalled:
            def process(self, packet):  # pragma: no cover - must not run
                raise AssertionError("second queue should not see dropped packets")

        table = Iptables()
        table.append_rule(IptablesRule(target=RuleTarget.QUEUE, queue_num=1))
        table.append_rule(IptablesRule(target=RuleTarget.QUEUE, queue_num=2))
        table.bind_queue(1, Dropper())
        table.bind_queue(2, NeverCalled())
        verdict, _, _ = table.process(make_packet())
        assert verdict is Verdict.DROP

    def test_default_policy(self):
        assert Iptables(default_target=RuleTarget.DROP).process(make_packet())[0] is Verdict.DROP
        assert Iptables().process(make_packet())[0] is Verdict.ACCEPT
        with pytest.raises(ValueError):
            Iptables(default_target=RuleTarget.QUEUE)

    def test_queue_rule_requires_queue_number(self):
        with pytest.raises(ValueError):
            Iptables().append_rule(IptablesRule(target=RuleTarget.QUEUE))


class TestRouting:
    def test_rfc7126_router_drops_packets_with_options(self):
        router = Router(name="internet", policy=RouterPolicy(drop_packets_with_options=True))
        tagged = make_packet(options=IPOptions.single(BORDERPATROL_OPTION_TYPE, b"\x01"))
        assert router.forward(tagged) is None
        assert router.stats.dropped_options == 1
        assert router.forward(make_packet()) is not None

    def test_ttl_expiry(self):
        from dataclasses import replace

        router = Router(name="r")
        packet = replace(make_packet(), ttl=1)
        assert router.forward(packet) is None
        assert router.stats.dropped_ttl == 1

    def test_traverse_accumulates_latency(self):
        hops = [Router(name=f"r{i}", latency_ms=0.1) for i in range(3)]
        survivor, latency = traverse(make_packet(), hops)
        assert survivor is not None
        assert latency == pytest.approx(0.3)

    def test_traverse_stops_at_drop(self):
        hops = [
            Router(name="ok", latency_ms=0.1),
            Router(name="strict", policy=RouterPolicy(drop_packets_with_options=True), latency_ms=0.1),
            Router(name="after", latency_ms=5.0),
        ]
        tagged = make_packet(options=IPOptions.single(BORDERPATROL_OPTION_TYPE, b"\x01"))
        survivor, latency = traverse(tagged, hops)
        assert survivor is None
        assert latency == pytest.approx(0.2)

    def test_link_validation(self):
        with pytest.raises(ValueError):
            Link(name="bad", latency_ms=-1)
