#!/usr/bin/env python3
"""A shift at the operator console: bus, routing, federation, spool.

The audit example (``audit_pipeline.py``) ends where the detectors
fire; this one starts there.  Alerts land on the durable
:class:`AlertBus` and the on-call surface takes over:

1. three gateways report the *same* spoofed-tag incident — the
   fleet-level dedup collapses them into one page (the per-detector
   cooldowns are per gateway and cannot see the duplication);
2. the same key keeps re-firing past the cooldown — the router
   escalates it: a re-firing incident is itself a signal;
3. streaming baselines calibrate from benign window volumes (EWMA +
   P² quantiles, no offline replay), and the :class:`FleetFederation`
   merges per-gateway windows that each look innocent into one
   fleet-wide exfiltration alert — the campaign flow-hash routing
   split across the fleet;
4. everything the bus delivered is also in the JSON-lines spool, and
   replaying it reproduces the shift's alert stream exactly.

Run with:  python examples/ops_oncall.py
"""

import tempfile

from repro.ops import (
    AlertBus,
    AlertRouter,
    EscalationPolicy,
    FleetFederation,
    OnlineExfilBaselines,
    RouteRule,
    RoutingTable,
    replay_spool,
)
from repro.ops.bus import JsonlSpoolSink, MemorySink
from repro.telemetry.detectors import Alert

ATTACKER = "10.10.0.23"
EXFIL_HOST = "203.0.113.50"


class Window:
    """One gateway's (already primed) sliding-window view."""

    def __init__(self, volumes):
        self.volumes = volumes
        self.policy_drops = {}
        self.seq = 2048
        self.window_packets = 1024


class Pipeline:
    def __init__(self, volumes, alerts=()):
        self.aggregator = Window(volumes)
        self.alerts = list(alerts)


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="ops-oncall-") as spool_dir:
        # -- the console: a bus with a durable spool and a routing table
        # that pages exfiltration against the VIP group immediately.
        bus = AlertBus(clock=iter(range(10_000)).__next__)
        spool = bus.add_sink(JsonlSpoolSink(spool_dir))
        router = AlertRouter(
            table=RoutingTable(
                rules=[
                    RouteRule(kind="exfil-volume", group="vip", route="page"),
                    RouteRule(severity="critical", route="page"),
                    RouteRule(severity="warning", route="ticket"),
                    RouteRule(route="log"),
                ],
                device_groups={ATTACKER: "vip"},
            ),
            escalation=EscalationPolicy(threshold=3, window=64),
            cooldown=4,
        )
        bus.add_sink(router)
        feed = bus.add_sink(MemorySink(name="feed"))

        # -- 1. one incident, three reporters: dedup collapses it.
        for gateway in ("gw0", "gw1", "gw2"):
            bus.publish(
                Alert(
                    kind="spoofed-tag",
                    device="10.10.0.7",
                    app="com.cloudbox.android",
                    source=gateway,
                    detail="valid tag, wrong device",
                )
            )
        bus.pump()
        print(f"3 gateways reported one incident -> {router.counts()}")

        # -- 2. the key keeps re-firing past the cooldown: escalation.
        for burst in range(2):
            for _ in range(router.cooldown):
                bus.publish(
                    Alert(
                        kind="spoofed-tag",
                        device="10.10.0.7",
                        app="com.cloudbox.android",
                        source="gw0",
                        detail="still firing",
                    )
                )
            bus.pump()
        print(f"after sustained re-firing        -> {router.counts()}")

        # -- 3. streaming calibration, then a split exfil campaign.
        baselines = OnlineExfilBaselines(min_samples=4)
        for _ in range(8):  # eight benign windows stream past
            baselines.fold_volumes({(ATTACKER, EXFIL_HOST): 9_000})
        budget = baselines.threshold(ATTACKER, EXFIL_HOST)
        print(
            f"\nstreaming budget for {ATTACKER}->{EXFIL_HOST}: {budget:.0f} B "
            f"(folded live, no calibration replay)"
        )

        federation = FleetFederation(baselines=baselines)
        share = int(budget * 0.6)  # each gateway sees 60%: under budget
        pipelines = {
            f"gw{i}": Pipeline({(ATTACKER, EXFIL_HOST): share}) for i in range(4)
        }
        for alert in federation.scan(pipelines):
            bus.publish(alert)
        bus.flush()
        fleet_pages = [
            routed for routed in router.pages if routed.alert.source == "fleet"
        ]
        print(
            f"4 gateways each saw {share} B (under budget); merged "
            f"{4 * share} B -> {len(fleet_pages)} fleet page(s):"
        )
        for routed in fleet_pages:
            print(f"  PAGE [{routed.severity}] {routed.alert.summary()}")

        # -- 4. the spool replays the whole shift, losslessly.
        replayed = replay_spool(spool_dir)
        lossless = [alert.to_dict() for alert in replayed] == [
            alert.to_dict() for alert in feed.alerts
        ]
        print(
            f"\nspool: {spool.total_spooled} alert(s) across "
            f"{spool.segments_written} segment(s); replay matches the "
            f"delivered feed: {lossless}"
        )


if __name__ == "__main__":
    main()
