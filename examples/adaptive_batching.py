#!/usr/bin/env python3
"""Watching the adaptive batch scheduler react to backpressure.

The experiments tuned pool throughput by hand — a static 16-burst split
of every replay.  PR 10's :class:`BatchScheduler` replaces the hand
tuning: it sits between the caller and ``WorkerPool.submit``, choosing a
per-worker batch-size cap for each burst from the signals the PR 9
observability layer already measures.  This walkthrough drives each
decision rule with a real pool:

1. **steady state** — collect-each-burst replay, queue wait stays a
   small multiple of enforce, the scheduler makes *zero* decisions:
   adaptive behaves exactly like the static split until a signal says
   otherwise;
2. **queue-wait spike** — a deep pipelined flood (many bursts submitted
   before any collect) backs the workers up; the next plan sees
   ``queue_wait`` dominate the stage window and *shrinks* the caps;
3. **backpressure alert** — a :class:`PoolHealthMonitor` watching the
   same flood raises ``pool-burst-backlog``; the scheduler snaps every
   cap to the safe floor — alerts outrank every other signal;
4. **the hard bar** — whatever the caps did, the verdict sequence is
   packet-for-packet identical to the sequential model: resizing moves
   batch boundaries only, never routing or intra-flow order.

On platforms without the fork start method the pool degrades to
sequential and this walkthrough has nothing to show.

Run with:  python examples/adaptive_batching.py
"""

from repro.experiments.gateway_throughput import (
    DEFAULT_DENY_LIBRARIES,
    build_replay,
    build_signature_database,
)
from repro.core.policy import Policy
from repro.experiments.fleet import split_into_bursts
from repro.netstack.sharding import ShardedEnforcer
from repro.obs import HealthThresholds, PoolHealthMonitor, RuntimeObservability
from repro.runtime.pool import fork_available


def show(title: str, scheduler) -> None:
    print(f"\n-- {title}")
    print(f"   per-worker caps: {scheduler.sizes()}")
    if scheduler.decisions:
        for decision in scheduler.decisions:
            print(
                f"   decision: worker {decision.worker} {decision.action} "
                f"({decision.reason}) -> {decision.size}"
            )
    else:
        print("   decisions: none — adaptive is behaving exactly like static")


def main() -> None:
    if not fork_available():
        print("no fork start method on this platform; the pool (and the "
              "scheduler riding it) degrades to sequential — nothing to show")
        return

    database = build_signature_database(corpus_apps=4, seed=7)
    replay = build_replay(database.entries(), packets=3_000, flows=64, seed=11)
    policy = Policy.deny_libraries(DEFAULT_DENY_LIBRARIES, name="adaptive-example")

    obs = RuntimeObservability()
    enforcer = ShardedEnforcer(
        database=database,
        policy=policy,
        num_shards=2,
        keep_records=False,
        backend="pool",
        flow_cache_size=0,
        scheduler="adaptive",
    )
    enforcer.attach_obs(obs)
    scheduler = enforcer.scheduler
    verdicts = []

    # -- 1. steady state: collect each burst before submitting the next.
    bursts = [burst for burst in split_into_bursts(replay, 12) if burst]
    for burst in bursts[:6]:
        result = enforcer.collect_batch(enforcer.submit_batch(burst))
        verdicts.extend(verdict for verdict, _ in result.results)
    show("steady state (collect each burst)", scheduler)

    # -- 2. queue-wait spike: flood the pool, then let the next plan see
    #       the queue-wait-dominated windows the flood left behind.
    flood = [enforcer.submit_batch(burst) for burst in bursts[6:]]
    for token in flood:
        result = enforcer.collect_batch(token)
        verdicts.extend(verdict for verdict, _ in result.results)
    result = enforcer.collect_batch(enforcer.submit_batch(bursts[0]))
    verdicts.extend(verdict for verdict, _ in result.results)
    show("after a pipelined flood (queue wait dominates)", scheduler)
    gauge = obs.registry.get("pool_batch_size")
    print(f"   pool_batch_size gauge, worker 0: "
          f"{gauge.value(pool='shard-pool', worker='0'):.0f}")

    # -- 3. backpressure alert: a health monitor with a tight burst
    #       budget watches another flood; its backlog alert snaps every
    #       cap to the scheduler's safe floor.
    monitor = PoolHealthMonitor(
        HealthThresholds(max_outstanding_bursts=4), source="adaptive-example"
    )
    scheduler.attach_monitor(monitor)
    flood = [enforcer.submit_batch(burst) for burst in bursts[:6]]
    monitor.check(enforcer.pool_health())
    for token in flood:
        result = enforcer.collect_batch(token)
        verdicts.extend(verdict for verdict, _ in result.results)
    result = enforcer.collect_batch(enforcer.submit_batch(bursts[1]))
    verdicts.extend(verdict for verdict, _ in result.results)
    alert = monitor.events[-1]
    print(f"\n   health alert: {alert.kind} ({alert.detail})")
    show("after the backlog alert (floor snap)", scheduler)
    enforcer.close()

    # -- 4. the hard bar: none of that moved a single verdict.
    control = ShardedEnforcer(
        database=database,
        policy=policy,
        num_shards=2,
        keep_records=False,
        backend="sequential",
        flow_cache_size=0,
    )
    expected = []
    for burst in (
        bursts[:6] + bursts[6:] + [bursts[0]] + bursts[:6] + [bursts[1]]
    ):
        expected.extend(
            verdict for verdict, _ in control.process_batch_timed(burst).results
        )
    control.close()
    assert verdicts == expected
    print(f"\nverdict parity: {len(verdicts)} pool verdicts == sequential "
          f"replay, through every resize and the floor snap")


if __name__ == "__main__":
    main()
