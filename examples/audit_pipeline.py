#!/usr/bin/env python3
"""Telemetry alerts firing during a canary policy rollout.

The fleet example (``fleet_rollout.py``) shows *how* a rule reaches
every gateway; this one shows what the new telemetry subsystem makes of
the traffic while that happens.  A :class:`FleetAuditor` attaches one
pipeline per gateway, folds every enforcement record into sliding
windows, and runs the detector stack:

1. two gateways serve two devices' benign traffic — no alerts;
2. the administrator commits an upload-deny rule and only the canary
   gateway catches up; the file-sync app on the canary's device keeps
   trying to upload, so its denials arrive in a burst and the
   ``policy-burst`` detector pages — exactly the signal an operator
   watches during a canary before converging the rest of the fleet;
3. meanwhile a personal device borrows the whitelisted sync app's tag
   (mimicry): valid tag, wrong device — ``spoofed-tag``;
4. and a compromised process sends with the tag stripped —
   ``unknown-tag``.

Run with:  python examples/audit_pipeline.py
"""

from repro.core.database import DatabaseEntry, SignatureDatabase
from repro.core.encoding import StackTraceEncoder
from repro.core.fleet import GatewayFleet
from repro.core.policy import Policy, PolicyAction, PolicyLevel, PolicyRule
from repro.core.policy_store import PolicyUpdate
from repro.netstack.ip import IPOptions, IPPacket
from repro.telemetry.pipeline import FleetAuditor

UPLOAD_SIGNATURE = "Lcom/cloudbox/android/net/ApiClient;->upload([B)Z"
BROWSE_SIGNATURE = "Lcom/cloudbox/android/ui/Browser;->open(Ljava/lang/String;)V"
SYNC_MD5 = "5f" * 16
SYNC_ID = SYNC_MD5[:16]

#: The managed device that enrolled the sync app, and a second device
#: that never did.
SYNC_DEVICE = "10.10.0.2"
OTHER_DEVICE = "10.10.0.3"
FILE_SERVER = "203.0.113.9"


def build_database() -> SignatureDatabase:
    database = SignatureDatabase()
    database.add(
        DatabaseEntry(
            md5=SYNC_MD5,
            app_id=SYNC_ID,
            package_name="com.cloudbox.android",
            signatures=[BROWSE_SIGNATURE, UPLOAD_SIGNATURE],
        )
    )
    return database


def make_packet(src_ip: str, indexes, src_port: int, options=None) -> IPPacket:
    return IPPacket(
        src_ip=src_ip,
        dst_ip=FILE_SERVER,
        src_port=src_port,
        dst_port=443,
        payload_size=512,
        options=(
            options
            if options is not None
            else StackTraceEncoder().encode_option(SYNC_ID, indexes)
        ),
    )


def main() -> None:
    fleet = GatewayFleet(
        database=build_database(),
        policy=Policy.allow_all(name="audit-baseline"),
        num_gateways=2,
        live=False,  # staged rollout: operations decides who converges
    )
    auditor = FleetAuditor(
        window_packets=256,
        provisioned={
            SYNC_DEVICE: frozenset({SYNC_ID}),
            OTHER_DEVICE: frozenset(),
        },
        burst=4,        # four denials from one (device, app) pair page
        buffered=False,  # synchronous pipelines keep the example linear
    )
    fleet.attach_telemetry(auditor)

    # -- 1. benign traffic: uploads and browsing are both allowed.
    for port in range(40000, 40008):
        fleet.process(make_packet(SYNC_DEVICE, [0, 1], src_port=port))
    print(f"benign phase: {len(auditor.alerts)} alert(s), "
          f"{auditor.records_seen} records through telemetry")

    # -- 2. canary rollout: deny uploads, converge one gateway only.
    fleet.apply_update(
        PolicyUpdate(reason="block cloud-storage uploads").add_rule(
            PolicyRule(
                action=PolicyAction.DENY,
                level=PolicyLevel.METHOD,
                target=UPLOAD_SIGNATURE,
            ),
            rule_id="upload-deny",
        )
    )
    canary = fleet.replicas[0]
    canary.catch_up(fleet.delta_log)
    print(f"\ncanary {canary.name} converged to v{canary.version}; "
          f"lags now {fleet.lags()}")

    # The sync app keeps uploading through the canary; each attempt is
    # denied, and the fourth denial in the window trips the burst
    # detector — the canary's telemetry pages before the rollout widens.
    for attempt in range(4):
        verdict, _ = canary.enforcer.process(
            make_packet(SYNC_DEVICE, [0, 1], src_port=41000 + attempt)
        )
        print(f"  upload attempt {attempt + 1}: {verdict.value}")
    for alert in auditor.alerts:
        print(f"  ALERT {alert.summary()}")

    # -- 3. mimicry: the other device borrows the sync app's valid tag.
    spoofed = make_packet(OTHER_DEVICE, [0], src_port=42000)
    fleet.replicas[1].enforcer.process(spoofed)

    # -- 4. tag stripping: no BorderPatrol option at all.
    stripped = make_packet(SYNC_DEVICE, [], src_port=43000, options=IPOptions())
    fleet.replicas[1].enforcer.process(stripped)

    print("\nafter the attack traffic:")
    for alert in auditor.alerts:
        print(f"  ALERT {alert.summary()}")
    print(f"\nalert totals: {auditor.alert_counts()}")

    window = auditor.pipelines[canary.name].aggregator.device(SYNC_DEVICE)
    print(
        f"canary window for {SYNC_DEVICE}: {window.packets} packets, "
        f"drop rate {window.drop_rate:.2f}, {window.bytes_out} bytes out"
    )


if __name__ == "__main__":
    main()
