#!/usr/bin/env python3
"""Watching a pool-backed fleet run: spans, the top view, the export.

PR 8 made the runtime parallel; this walkthrough makes it visible.
A ``backend="pool"`` :class:`ShardedEnforcer` replays a batched trace
with a :class:`RuntimeObservability` attached, and we read what the
instrumentation captures:

1. **spans** — every batch that crosses the worker pipes carries a
   trace (serialize → ring write → queue wait → enforce → fold), and
   worker-local registry deltas fold back with the results;
2. **the top view** — ``render_top`` turns the registry plus the live
   :class:`PoolHealthSnapshot` into the ``obs`` CLI's terminal frame:
   per-worker p50/p99 batch latency, queue depth, incarnations and
   respawn counts;
3. **health events** — a :class:`PoolHealthMonitor` publishes
   edge-triggered events onto a real :class:`AlertBus`, the same bus
   the detection stack pages through;
4. **the export** — the merged registry serializes to Prometheus text
   and JSONL, ready for a scrape endpoint or a trajectory file.

On platforms without the fork start method the enforcer degrades to
sequential: no pool rows, but the sampled enforcer stages still flow.

Run with:  python examples/obs_profiler.py
"""

from repro.experiments.gateway_throughput import (
    DEFAULT_DENY_LIBRARIES,
    build_replay,
    build_signature_database,
)
from repro.core.policy import Policy
from repro.experiments.fleet import split_into_bursts
from repro.netstack.sharding import ShardedEnforcer
from repro.obs import (
    HealthThresholds,
    PoolHealthMonitor,
    RuntimeObservability,
    render_top,
    to_prometheus,
)
from repro.ops import AlertBus
from repro.ops.bus import MemorySink


def main() -> None:
    database = build_signature_database(corpus_apps=4, seed=7)
    replay = build_replay(database.entries(), packets=2_000, flows=64, seed=11)
    policy = Policy.deny_libraries(DEFAULT_DENY_LIBRARIES, name="obs-example")

    # -- 1. attach observability, then replay in bursts.
    obs = RuntimeObservability(sample_every=16)
    enforcer = ShardedEnforcer(
        database=database,
        policy=policy,
        num_shards=2,
        keep_records=False,
        backend="pool",
        flow_cache_size=0,
    )
    enforcer.attach_obs(obs)

    bus = AlertBus(clock=None)
    feed = bus.add_sink(MemorySink())
    monitor = PoolHealthMonitor(HealthThresholds(), bus=bus, source="obs-example")

    bursts = [burst for burst in split_into_bursts(replay, 8) if burst]
    for burst in bursts:
        enforcer.collect_batch(enforcer.submit_batch(burst))
        health = enforcer.pool_health()
        if health is not None:
            monitor.check(health)
    bus.pump()

    print(f"replayed {len(replay)} packets in {len(bursts)} bursts "
          f"on the {enforcer.backend!r} backend\n")

    # -- 2. the top view: what `python -m repro.cli obs` renders live.
    print(render_top(obs, "shard-pool", health=enforcer.pool_health(),
                     events=feed.alerts, title="obs walkthrough"))

    # -- 3. the spans behind it: the last batch's stage breakdown.
    trace = obs.traces.last()
    if trace is not None:
        stages = ", ".join(
            f"{stage} {seconds * 1e3:.2f} ms"
            for stage, seconds in sorted(
                trace.stage_seconds().items(), key=lambda kv: -kv[1]
            )
        )
        print(f"\nlast batch trace ({trace.batch_id}): {stages}")
    print(f"completed traces captured: {obs.traces.completed} "
          f"(ring buffer retains the most recent {len(obs.traces)})")
    print(f"health events published to the bus: {len(feed.alerts)}")

    # -- 4. the export: the merged parent registry, scrape-ready.
    text = to_prometheus(obs.registry)
    lines = text.splitlines()
    print(f"\nprometheus export: {len(lines)} lines; first worker series:")
    for line in lines:
        if line.startswith("pool_worker_batch_seconds_count"):
            print(f"  {line}")
    enforcer.close()


if __name__ == "__main__":
    main()
