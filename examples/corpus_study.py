#!/usr/bin/env python3
"""Corpus-scale study: Figure 3, the validation table and Figure 4.

Regenerates the quantitative results of the paper's evaluation section
on the synthetic corpus.  By default the corpus is scaled down so the
script finishes in well under a minute; pass ``--paper-scale`` to run
the full 2,000-app / 5,000-event configuration (several minutes).

Run with:  python examples/corpus_study.py [--paper-scale]
"""

import argparse

from repro.experiments import run_fig3, run_fig4, run_validation
from repro.experiments.case_studies import run_flow_size_study


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's full corpus size and monkey event count",
    )
    args = parser.parse_args()

    if args.paper_scale:
        fig3_kwargs = {"n_apps": 2000, "events_per_app": 5000}
        validation_kwargs = {"corpus_size": 2000, "apps_to_test": 60, "events_per_app": 5000}
        fig4_iterations = 10_000
    else:
        fig3_kwargs = {"n_apps": 400, "events_per_app": 200}
        validation_kwargs = {"corpus_size": 150, "apps_to_test": 60, "events_per_app": 200}
        fig4_iterations = 1_000

    print("=" * 72)
    print("Figure 3 — apps vs IPs-of-interest")
    print("=" * 72)
    print(run_fig3(**fig3_kwargs).table())

    print()
    print("=" * 72)
    print("Validation — blocking the Li et al. library list (paper §VI-B1)")
    print("=" * 72)
    print(run_validation(**validation_kwargs).table())

    print()
    print("=" * 72)
    print("Figure 4 — per-request latency across prototype configurations")
    print("=" * 72)
    print(run_fig4(iterations=fig4_iterations).table())

    print()
    print("=" * 72)
    print("Discussion — flow-size thresholds vs context-aware upload detection")
    print("=" * 72)
    print(run_flow_size_study().table())


if __name__ == "__main__":
    main()
