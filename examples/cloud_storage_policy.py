#!/usr/bin/env python3
"""Case study: allow cloud-storage downloads, block uploads (paper §VI-C).

Reproduces the Dropbox/Box comparison: an address-based filter either
blocks nothing, blocks everything, or collaterally breaks browsing,
while BorderPatrol's method-level rule removes only the upload path.

The second half replays the same administrative action through the
versioned policy control plane (``PolicyStore``): instead of swapping
the policy blob wholesale, the upload-deny rule is pushed as one
``PolicyUpdate`` transaction (``deployment.apply_update``), applied
live at the gateway with surgical cache invalidation, and rolled back
the same way.

Run with:  python examples/cloud_storage_policy.py
"""

from repro.core.deployment import BorderPatrolDeployment
from repro.core.policy import PolicyAction, PolicyLevel, PolicyRule
from repro.core.policy_store import PolicyUpdate
from repro.experiments import run_cloud_storage_case_study
from repro.network.topology import EnterpriseNetwork
from repro.workloads.apps import build_cloud_storage_app


def control_plane_demo() -> None:
    """Push and roll back the upload-deny rule as delta transactions."""
    app = build_cloud_storage_app()
    network = EnterpriseNetwork()
    for endpoint in sorted(app.behavior.endpoints()):
        network.add_server(endpoint)
    deployment = BorderPatrolDeployment(network=network)
    device = deployment.provision_device(name="byod-phone")
    process = deployment.install_and_launch(device, app.apk, app.behavior)

    print(f"policy version {deployment.policy_version}: "
          f"upload completes: {process.invoke('upload').completed}")

    upload_deny = PolicyRule(
        action=PolicyAction.DENY,
        level=PolicyLevel.METHOD,
        target=str(app.signature("upload")),
    )
    flushes_before = deployment.enforcer.stats.cache_invalidations
    delta = deployment.apply_update(
        PolicyUpdate(reason="block cloud-storage uploads").add_rule(
            upload_deny, rule_id="upload-deny"
        )
    )
    stats = deployment.enforcer.stats
    print(
        f"policy version {delta.version}: pushed {delta.changed_rules[0].render()}\n"
        f"  surgical invalidation: {'no' if delta.full else 'yes'} "
        f"(whole-cache flushes caused: {stats.cache_invalidations - flushes_before}, "
        f"flow entries dropped: {stats.cache_entries_invalidated}, "
        f"apps recompiled: {stats.apps_recompiled})"
    )
    print(f"  upload completes: {process.invoke('upload').completed}, "
          f"download completes: {process.invoke('download').completed}")

    rollback = deployment.apply_update(
        PolicyUpdate(reason="roll back").remove_rule("upload-deny")
    )
    print(f"policy version {rollback.version}: rolled back; "
          f"upload completes: {process.invoke('upload').completed}")
    print("\nserialized store (survives gateway restarts):")
    print(deployment.policy_store.to_json())


def main() -> None:
    result = run_cloud_storage_case_study()
    print(result.table())
    print()
    for app in ("com.cloudbox.android", "com.boxsync.android"):
        for enforcement in ("none", "on-network", "borderpatrol"):
            selective = result.achieves_selective_blocking(enforcement, app)
            preserved = result.desirable_preserved(enforcement, app)
            blocked = result.undesirable_blocked(enforcement, app)
            print(
                f"{app:22s} {enforcement:12s} uploads blocked: {str(blocked):5s} "
                f"other functions intact: {str(preserved):5s} "
                f"-> selective enforcement achieved: {selective}"
            )
    print(
        "\nTakeaway (paper §VI-C): only the context-aware policy blocks the upload "
        "path while leaving login, browsing and downloads untouched."
    )
    print("\n--- live policy control plane ---")
    control_plane_demo()


if __name__ == "__main__":
    main()
