#!/usr/bin/env python3
"""Case study: allow cloud-storage downloads, block uploads (paper §VI-C).

Reproduces the Dropbox/Box comparison: an address-based filter either
blocks nothing, blocks everything, or collaterally breaks browsing,
while BorderPatrol's method-level rule removes only the upload path.

Run with:  python examples/cloud_storage_policy.py
"""

from repro.experiments import run_cloud_storage_case_study


def main() -> None:
    result = run_cloud_storage_case_study()
    print(result.table())
    print()
    for app in ("com.cloudbox.android", "com.boxsync.android"):
        for enforcement in ("none", "on-network", "borderpatrol"):
            selective = result.achieves_selective_blocking(enforcement, app)
            preserved = result.desirable_preserved(enforcement, app)
            blocked = result.undesirable_blocked(enforcement, app)
            print(
                f"{app:22s} {enforcement:12s} uploads blocked: {str(blocked):5s} "
                f"other functions intact: {str(preserved):5s} "
                f"-> selective enforcement achieved: {selective}"
            )
    print(
        "\nTakeaway (paper §VI-C): only the context-aware policy blocks the upload "
        "path while leaving login, browsing and downloads untouched."
    )


if __name__ == "__main__":
    main()
