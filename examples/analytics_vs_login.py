#!/usr/bin/env python3
"""Case study: keep "Login with Facebook", drop Facebook analytics (paper §VI-C).

The calendar app uses the Facebook Graph API endpoint for both identity
(login) and analytics reporting.  Blocking the endpoint breaks login;
BorderPatrol derives a method-level policy with the Policy Extractor
(two guided runs) and blocks only the analytics work-flow.

The extracted policy is then loaded into the versioned control plane
(``PolicyStore``): serialized to json (each rule stored in the paper's
Snippet 1 grammar, with a stable rule id), and an administrator's later
edit is expressed as a ``diff_update`` — the minimal delta transaction
rather than a whole-policy swap.

Run with:  python examples/analytics_vs_login.py
"""

from repro.core.policy import Policy, PolicyAction, PolicyLevel, PolicyRule
from repro.core.policy_store import PolicyStore
from repro.experiments import run_facebook_case_study
from repro.experiments.case_studies import extract_facebook_policy
from repro.workloads import build_calendar_app


def control_plane_demo(policy: Policy) -> None:
    """Load the extracted policy into a store and evolve it by delta."""
    store = PolicyStore.from_policy(policy, name="calendar-policy")
    print("extracted policy as a versioned store (Snippet 1 grammar per rule):")
    print(store.to_json())

    # The administrator later also blacklists the Mixpanel SDK; the edit
    # is the diff between the running store and the revised policy.
    revised = Policy(
        rules=list(policy.rules)
        + [PolicyRule(PolicyAction.DENY, PolicyLevel.LIBRARY, "com/mixpanel/android")],
        default_action=policy.default_action,
        name="calendar-policy-revised",
    )
    update = store.diff_update(revised)
    print("administrator's revision as a delta transaction:")
    print(update.describe())
    delta = store.apply(update)
    print(
        f"applied: version {delta.version}, "
        f"{len(delta.changed_rules)} changed rule(s), "
        f"{'whole-cache' if delta.full else 'surgical'} invalidation at gateways"
    )


def main() -> None:
    app = build_calendar_app()
    policy = extract_facebook_policy(app)
    print("Policy proposed by the Policy Extractor from the two guided runs:")
    print(policy.render() or "  (no rules)")
    print()

    result = run_facebook_case_study()
    print(result.table())
    print()
    for enforcement in ("none", "on-network", "borderpatrol"):
        print(
            f"{enforcement:12s} login preserved: {result.desirable_preserved(enforcement)!s:5s} "
            f"analytics blocked: {result.undesirable_blocked(enforcement)!s:5s}"
        )
    print(
        "\nTakeaway (paper §VI-C): the address-based policy cannot separate the two "
        "work-flows because they share the Graph API endpoint; the stack-trace tag can."
    )
    print("\n--- policy control plane ---")
    control_plane_demo(policy)


if __name__ == "__main__":
    main()
