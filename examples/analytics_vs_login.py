#!/usr/bin/env python3
"""Case study: keep "Login with Facebook", drop Facebook analytics (paper §VI-C).

The calendar app uses the Facebook Graph API endpoint for both identity
(login) and analytics reporting.  Blocking the endpoint breaks login;
BorderPatrol derives a method-level policy with the Policy Extractor
(two guided runs) and blocks only the analytics work-flow.

Run with:  python examples/analytics_vs_login.py
"""

from repro.experiments import run_facebook_case_study
from repro.experiments.case_studies import extract_facebook_policy
from repro.workloads import build_calendar_app


def main() -> None:
    app = build_calendar_app()
    policy = extract_facebook_policy(app)
    print("Policy proposed by the Policy Extractor from the two guided runs:")
    print(policy.render() or "  (no rules)")
    print()

    result = run_facebook_case_study()
    print(result.table())
    print()
    for enforcement in ("none", "on-network", "borderpatrol"):
        print(
            f"{enforcement:12s} login preserved: {result.desirable_preserved(enforcement)!s:5s} "
            f"analytics blocked: {result.undesirable_blocked(enforcement)!s:5s}"
        )
    print(
        "\nTakeaway (paper §VI-C): the address-based policy cannot separate the two "
        "work-flows because they share the Graph API endpoint; the stack-trace tag can."
    )


if __name__ == "__main__":
    main()
