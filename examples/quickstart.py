#!/usr/bin/env python3
"""Quickstart: provision a device, enroll an app, enforce a first policy.

This walks through the whole BorderPatrol pipeline on a single synthetic
business app:

1. the Offline Analyzer builds the app's method-signature index database;
2. a BYOD device is provisioned (patched kernel + hooking framework +
   Context Manager) and the app is installed and launched;
3. an allow-all run shows the context tags arriving at the border;
4. a deny rule on the app's bundled analytics library is installed and
   the same behaviour is exercised again — analytics packets are dropped
   while the app's own functionality keeps working.

Run with:  python examples/quickstart.py
"""

from repro import BorderPatrolDeployment, EnterpriseNetwork, parse_policy
from repro.android import AppBehavior, Functionality, NetworkRequest
from repro.apk import AndroidManifest, build_apk
from repro.dex import DexBuilder


def build_demo_app():
    """A small expense-tracking app bundling the Flurry analytics SDK."""
    builder = DexBuilder()
    main = builder.add_class("com.example.expenses.MainActivity", superclass="android.app.Activity")
    on_click = main.add_method("onClick", ("android.view.View",))
    api = builder.add_class("com.example.expenses.net.ExpenseApi")
    submit = api.add_method("submitReport", ("java.lang.String",), "boolean")
    fetch = api.add_method("fetchReports", (), "java.util.List")
    flurry = builder.add_class("com.flurry.sdk.FlurryAgent")
    log_event = flurry.add_method("logEvent", ("java.lang.String",))
    dex = builder.build()

    apk = build_apk(AndroidManifest(package_name="com.example.expenses", app_label="Expenses"), dex)
    behavior = AppBehavior(
        package_name="com.example.expenses",
        functionalities=(
            Functionality(
                name="submit_report",
                call_chain=(on_click.signature, submit.signature),
                requests=(NetworkRequest("api.expenses.example.com", upload_bytes=2_000),),
            ),
            Functionality(
                name="fetch_reports",
                call_chain=(on_click.signature, fetch.signature),
                requests=(NetworkRequest("api.expenses.example.com", download_bytes=9_000),),
            ),
            Functionality(
                name="flurry_analytics",
                call_chain=(on_click.signature, log_event.signature),
                requests=(NetworkRequest("data.flurry.com", upload_bytes=800),),
                desirable=False,
                library="com.flurry",
            ),
        ),
    )
    return apk, behavior


def main() -> None:
    apk, behavior = build_demo_app()

    # -- enterprise side -------------------------------------------------------
    network = EnterpriseNetwork()
    for endpoint in sorted(behavior.endpoints()):
        network.add_server(endpoint)
    deployment = BorderPatrolDeployment(network=network)

    # -- device side -----------------------------------------------------------
    device = deployment.provision_device(name="employee-phone")
    process = deployment.install_and_launch(device, apk, behavior)

    print("== allow-all run ==")
    for name in behavior.names():
        outcome = process.invoke(name)
        print(f"  {name:18s} -> {'delivered' if outcome.completed else 'blocked'}")
    print(f"  context tags decoded at the border: {len(deployment.enforcer.records)}")
    sample = deployment.enforcer.records[-1]
    print("  last decoded stack:")
    for signature in sample.signatures:
        print(f"    {signature}")

    # -- install a policy and run again ------------------------------------------
    print("\n== with a library deny rule ==")
    deployment.set_policy(parse_policy('{[deny][library]["com/flurry"]}'))
    for name in behavior.names():
        outcome = process.invoke(name)
        print(f"  {name:18s} -> {'delivered' if outcome.completed else 'blocked'}")

    flurry_server = network.server_for("data.flurry.com")
    print(f"\npackets that reached data.flurry.com after the policy: "
          f"{flurry_server.packets_received - 1} new (1 from the allow-all run)")
    print(f"packets still carrying IP options outside the perimeter: "
          f"{sum(len(s.received_options()) for s in network.servers.values())}")


if __name__ == "__main__":
    main()
