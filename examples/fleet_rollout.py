#!/usr/bin/env python3
"""Staged policy rollout across a replicated gateway fleet.

The paper's deployment has one gateway, so a policy change is one
``set_policy`` call.  A fleet of gateways sharing one policy store
changes the operational picture: the administrator commits a transaction
*once*, the store's serialized delta log records it, and each gateway
replica converges by replaying the log — immediately (live
subscription) or whenever operations decides (staged catch-up).

This example walks the canonical canary rollout:

1. three gateway replicas attach to one store and serve traffic;
2. the administrator commits an upload-deny rule — one version, logged;
3. only the canary gateway catches up (the other two keep enforcing the
   old version; their lag is visible and bounded);
4. after the canary's fingerprint verifies against the store, the rest
   of the fleet converges the same way;
5. a rollback is just another logged transaction;
6. the log is compacted (snapshot + suffix) and a late-joining gateway
   bootstraps from the snapshot instead of replaying the history;
7. the same rollout runs against ``backend="pool"`` — long-lived
   gateway worker processes — where each committed version travels to
   every live worker as one compact delta record (no re-pickled policy,
   no worker restart) and the next burst enforces the new version.

Run with:  python examples/fleet_rollout.py
"""

from repro.core.database import DatabaseEntry, SignatureDatabase
from repro.core.encoding import StackTraceEncoder
from repro.core.fleet import GatewayFleet
from repro.core.policy import Policy, PolicyAction, PolicyLevel, PolicyRule
from repro.core.policy_store import PolicyUpdate
from repro.netstack.ip import IPPacket

UPLOAD_SIGNATURE = "Lcom/cloudbox/android/net/ApiClient;->upload([B)Z"
BROWSE_SIGNATURE = "Lcom/cloudbox/android/ui/Browser;->open(Ljava/lang/String;)V"
APP_MD5 = "5f" * 16
APP_ID = APP_MD5[:16]


def build_database() -> SignatureDatabase:
    database = SignatureDatabase()
    database.add(
        DatabaseEntry(
            md5=APP_MD5,
            app_id=APP_ID,
            package_name="com.cloudbox.android",
            signatures=[BROWSE_SIGNATURE, UPLOAD_SIGNATURE],
        )
    )
    return database


def make_packet(indexes, src_port: int) -> IPPacket:
    return IPPacket(
        src_ip="10.10.0.2",
        dst_ip="203.0.113.9",
        src_port=src_port,
        dst_port=443,
        payload_size=512,
        options=StackTraceEncoder().encode_option(APP_ID, indexes),
    )


def print_fleet_state(fleet: GatewayFleet, label: str) -> None:
    lags = fleet.lags()
    print(f"{label}:")
    for name, version in fleet.policy_versions().items():
        print(f"  {name}: policy v{version}, {lags[name]} version(s) behind head")


def main() -> None:
    database = build_database()
    fleet = GatewayFleet(
        database=database,
        policy=Policy.allow_all(name="fleet-baseline"),
        num_gateways=3,
        live=False,  # operations controls when each gateway converges
    )
    upload_packet = make_packet([0, 1], src_port=40001)
    browse_packet = make_packet([0], src_port=40002)

    print_fleet_state(fleet, "fleet attached at v0")
    verdicts = [fleet.process(upload_packet)[0].value for _ in fleet.replicas]
    print(f"uploads before rollout (any gateway): {verdicts[0]}\n")

    # One committed transaction; the log remembers it for every replica.
    delta = fleet.apply_update(
        PolicyUpdate(reason="block cloud-storage uploads").add_rule(
            PolicyRule(
                action=PolicyAction.DENY,
                level=PolicyLevel.METHOD,
                target=UPLOAD_SIGNATURE,
            ),
            rule_id="upload-deny",
        )
    )
    print(f"committed v{delta.version}: {delta.changed_rules[0].render()}")
    print_fleet_state(fleet, "after commit (no gateway converged yet)")

    # Stage 1: canary gateway only.
    canary = fleet.replicas[0]
    canary.catch_up(fleet.delta_log)
    assert canary.verify_against(fleet.store)
    print(f"\ncanary {canary.name} converged, fingerprint verified")
    print(f"  canary drops uploads:   {canary.enforcer.process(upload_packet)[0].value}")
    print(f"  canary keeps browsing:  {canary.enforcer.process(browse_packet)[0].value}")
    laggard = fleet.replicas[1]
    print(f"  {laggard.name} still allows uploads: "
          f"{laggard.enforcer.process(upload_packet)[0].value}")
    print_fleet_state(fleet, "mid-rollout")

    # Stage 2: the rest of the fleet.
    applied = fleet.catch_up()
    print(f"\nfleet catch-up applied: {applied}")
    print_fleet_state(fleet, "after full rollout")
    print(f"fleet converged (fingerprints verified): {fleet.converged}")
    verdicts = {
        replica.name: replica.enforcer.process(upload_packet)[0].value
        for replica in fleet.replicas
    }
    print(f"uploads everywhere: {verdicts}")

    # Rollback is just another transaction in the same log.
    rollback = fleet.apply_update(PolicyUpdate(reason="roll back").remove_rule("upload-deny"))
    fleet.catch_up()
    print(f"\nrolled back at v{rollback.version}; fleet converged: {fleet.converged}")

    # A gateway provisioned months later must not replay the whole
    # history.  Compact the log — the prefix folds into one snapshot
    # carrying the chain's fingerprint — and the late joiner attaches
    # from the serialized log alone: one fingerprint-verified bootstrap
    # plus the surviving suffix, O(suffix) however old the fleet is.
    # (`PolicyStore(compact_every=N)` does this fold automatically.)
    history = fleet.store.version
    snapshot = fleet.store.compact()
    print(
        f"\nlog compacted: snapshot @v{snapshot.version} folds "
        f"{snapshot.compacted_records} record(s); suffix holds {len(fleet.delta_log)}"
    )
    late = fleet.add_gateway()
    print(
        f"late joiner {late.name} attached from the log: applied "
        f"{late.records_applied} record(s) instead of replaying {history} version(s)"
    )
    print(f"late joiner converged (fingerprint verified): {late.verify_against(fleet.store)}")
    print(f"  {late.name} allows uploads post-rollback: "
          f"{late.enforcer.process(upload_packet)[0].value}")

    print("\nserialized delta log (what the next late joiner bootstraps from):")
    print(fleet.delta_log.to_json())

    pool_rollout(database)


def pool_rollout(database: SignatureDatabase) -> None:
    """The same canary story on the persistent worker-pool runtime.

    With ``backend="pool"`` each gateway is a long-lived forked worker
    holding its own compiled policy and replica shadow state.  A commit
    at the store does not restart or re-pickle anything: the next burst
    submission pushes the new delta-log records to every live worker,
    which applies them surgically (recompile only the touched apps)
    before enforcing.  Where the ``fork`` start method is unavailable
    the fleet degrades to the sequential model with a logged warning —
    the rollout below still runs, just in-process.
    """
    print("\n--- pool backend: delta push to live workers ---")
    fleet = GatewayFleet(
        database=database,
        policy=Policy.allow_all(name="fleet-baseline"),
        num_gateways=3,
        backend="pool",
    )
    burst = [make_packet([0, 1], src_port=41000 + i) for i in range(32)]

    # Burst 1 forks the workers and bakes in the current policy.
    token = fleet.submit_burst(burst)
    before = fleet.collect_burst(token)
    print(f"uploads before commit: {before.results[0][0].value} "
          f"({fleet.backend} backend, {before.measured_wall_s * 1e3:.1f} ms measured)")

    # One transaction; the workers are NOT restarted.  The records ride
    # ahead of the next burst and each worker's shadow replica applies
    # them before enforcing a single packet.
    delta = fleet.apply_update(
        PolicyUpdate(reason="canary: block uploads").add_rule(
            PolicyRule(
                action=PolicyAction.DENY,
                level=PolicyLevel.METHOD,
                target=UPLOAD_SIGNATURE,
            ),
            rule_id="pool-upload-deny",
        )
    )
    token = fleet.submit_burst(burst)
    after = fleet.collect_burst(token)
    stats = fleet.aggregate_stats()
    print(f"committed v{delta.version}; uploads now: {after.results[0][0].value}")
    print(f"delta records pushed to live workers: {stats.pool_delta_pushes} "
          f"(snapshot re-syncs: {stats.pool_snapshot_syncs}, "
          f"worker crashes: {stats.pool_worker_crashes})")
    fleet.close()


if __name__ == "__main__":
    main()
