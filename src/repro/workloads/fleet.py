"""Device fleets: hundreds of provisioned BYOD devices and their traffic.

The paper provisions exactly one emulator behind the gateway; the fleet
experiments need what an enterprise actually has — hundreds of enrolled
devices, each with its own mix of managed apps, all funnelling traffic
through the replicated gateways.  :class:`DeviceFleet` provisions that
population on a :class:`~repro.core.deployment.BorderPatrolDeployment`
(real :class:`~repro.core.deployment.ProvisionedDevice` objects: patched
kernel, Xposed, Context Manager) and derives a deterministic, heavy-
tailed packet trace from the installed apps' behaviour graphs:

* every device samples an app mix from the workload corpus and installs
  the actual apk + behaviour pair (the same objects the monkey
  exerciser drives);
* every (device, app, functionality) triple becomes a
  :class:`FleetFlow` — a 5-tuple from the device's enterprise IP to the
  functionality's registered endpoint, carrying the context tag the
  Context Manager would write for that functionality's call chain
  (indexes resolved through the deployment's signature database);
* :meth:`DeviceFleet.build_trace` interleaves the flows into one replay
  with skewed flow popularity, which is what the fleet benchmark pushes
  through the gateway replicas.

Keeping the tags faithful to the database means the trace exercises the
full extraction → decoding → enforcement pipeline, so fleet-level
verdicts are comparable packet-for-packet with any other gateway
configuration processing the same trace.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.encoding import EncodingError, StackTraceEncoder
from repro.netstack.ip import IPOptions, IPPacket


@dataclass
class DeviceFleetConfig:
    """Knobs for fleet provisioning and trace generation."""

    devices: int = 200
    min_apps_per_device: int = 1
    max_apps_per_device: int = 3
    seed: int = 7
    name_prefix: str = "fleet"
    #: Largest on-wire payload per trace packet (bytes).
    max_payload_bytes: int = 1400


@dataclass(frozen=True)
class FleetFlow:
    """One device flow: a 5-tuple plus the context tag its packets carry."""

    device: str
    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    package_name: str
    functionality: str
    options: IPOptions
    payload_size: int
    weight: float


@dataclass
class DeviceFleet:
    """Provision a device population and derive its traffic schedule.

    ``apps`` is any sequence of corpus/case-study app objects exposing
    ``.apk`` and ``.behavior`` (e.g.
    :class:`~repro.workloads.corpus.CorpusApp`); each is enrolled with
    the deployment's Offline Analyzer once, its endpoints registered as
    enterprise servers, and then installed on every device whose
    sampled mix includes it.
    """

    deployment: object
    apps: list
    config: DeviceFleetConfig = field(default_factory=DeviceFleetConfig)

    def __post_init__(self) -> None:
        if not self.apps:
            raise ValueError("a device fleet needs at least one app to install")
        if self.config.devices < 1:
            raise ValueError("a device fleet needs at least one device")
        if not 1 <= self.config.min_apps_per_device <= self.config.max_apps_per_device:
            raise ValueError("need 1 <= min_apps_per_device <= max_apps_per_device")
        self.provisioned = []
        self.installed: dict[str, list] = {}
        self._flows: list[FleetFlow] | None = None

    # -- provisioning ------------------------------------------------------------------

    def provision(self) -> list:
        """Enroll the corpus, register endpoints, provision every device.

        Each device gets a deterministic app mix sampled from ``apps``;
        the same seed always yields the same fleet.  Returns the
        :class:`~repro.core.deployment.ProvisionedDevice` list.
        """
        if self.provisioned:
            return self.provisioned
        seen_md5s: set[str] = set()
        endpoints: set[str] = set()
        for app in self.apps:
            if app.apk.md5 not in seen_md5s:
                seen_md5s.add(app.apk.md5)
                self.deployment.enroll_app(app.apk)
            endpoints |= app.behavior.endpoints()
        for endpoint in sorted(endpoints):
            self.deployment.network.add_server(endpoint)

        rng = random.Random(self.config.seed)
        for index in range(self.config.devices):
            provisioned = self.deployment.provision_device(
                name=f"{self.config.name_prefix}-{index:04d}"
            )
            count = rng.randint(
                self.config.min_apps_per_device,
                min(self.config.max_apps_per_device, len(self.apps)),
            )
            mix = rng.sample(self.apps, count)
            for app in mix:
                provisioned.device.install(app.apk, app.behavior)
            self.installed[provisioned.device.name] = mix
            self.provisioned.append(provisioned)
        return self.provisioned

    # -- traffic schedule --------------------------------------------------------------

    def _encode_tag(self, encoder: StackTraceEncoder, entry, call_chain) -> IPOptions:
        """The context tag for one call chain, innermost frames kept.

        Mirrors the Context Manager's behaviour under the 38-byte
        IP-option budget: when the full chain does not fit, outer frames
        are dropped first (the leaf — the method issuing the request —
        is what policies most often target).
        """
        frames = [str(signature) for signature in call_chain]
        while frames:
            try:
                indexes = [entry.index_of(frame) for frame in frames]
                return encoder.encode_option(entry.app_id, indexes)
            except EncodingError:
                frames = frames[1:]
        raise EncodingError(
            f"no frame of {entry.package_name}'s call chain fits the option budget"
        )

    def build_flows(self) -> list[FleetFlow]:
        """One flow per (device, installed app, functionality) triple.

        Flow weights combine the functionality's behavioural weight with
        a heavy-tailed per-flow popularity (like real gateway traffic,
        a few flows dominate), so the trace has both hot flows and a
        long tail across the whole fleet.
        """
        if self._flows is not None:
            return self._flows
        self.provision()
        database = self.deployment.database
        network = self.deployment.network
        encoder = StackTraceEncoder(index_width=self.deployment.index_width)
        flows: list[FleetFlow] = []
        next_port = 20000
        for provisioned in self.provisioned:
            device = provisioned.device
            for app in self.installed[device.name]:
                entry = database.lookup_md5(app.apk.md5)
                if entry is None:
                    continue
                for functionality in app.behavior:
                    options = self._encode_tag(encoder, entry, functionality.call_chain)
                    for request in functionality.requests:
                        rank = len(flows)
                        flows.append(
                            FleetFlow(
                                device=device.name,
                                src_ip=device.ip,
                                src_port=next_port,
                                dst_ip=network.dns.resolve(request.endpoint),
                                dst_port=request.port,
                                package_name=app.apk.package_name,
                                functionality=functionality.name,
                                options=options,
                                payload_size=min(
                                    max(1, request.upload_bytes),
                                    self.config.max_payload_bytes,
                                ),
                                weight=functionality.weight / (1.0 + 0.05 * rank),
                            )
                        )
                        next_port += 1
        if not flows:
            raise ValueError("the fleet produced no flows; is the corpus enrolled?")
        self._flows = flows
        return flows

    def build_trace(self, packets: int) -> list[IPPacket]:
        """A deterministic replay of ``packets`` across the fleet's flows.

        Every packet of a flow carries the same tag bytes (the Context
        Manager tags per socket), so flow caches behave exactly as they
        would at a real gateway.
        """
        if packets < 1:
            raise ValueError("the trace needs at least one packet")
        flows = self.build_flows()
        rng = random.Random(self.config.seed + 1)
        chosen = rng.choices(flows, weights=[flow.weight for flow in flows], k=packets)
        return [
            IPPacket(
                src_ip=flow.src_ip,
                dst_ip=flow.dst_ip,
                src_port=flow.src_port,
                dst_port=flow.dst_port,
                payload_size=flow.payload_size,
                options=flow.options,
            )
            for flow in chosen
        ]

    def sideload_app(self, provisioned, app) -> None:
        """Install one more app on an already-provisioned device.

        Enrolls the app with the Offline Analyzer if the database lacks
        it, installs the apk on the device, and records it in the
        install map so :meth:`provisioning_map` reflects the new
        enrolment — packets the device then sends with this app's tag
        are legitimate, not mimicry.  Cached flow/trace schedules are
        deliberately left untouched: a sideloaded app adds no benign
        flows (the cross-gateway workload hand-builds its packets).
        """
        if self.deployment.database.lookup_md5(app.apk.md5) is None:
            self.deployment.enroll_app(app.apk)
        provisioned.device.install(app.apk, app.behavior)
        self.installed[provisioned.device.name].append(app)

    def provisioned_by_ip(self, device_ip: str):
        """The provisioned device holding one enterprise IP."""
        self.provision()
        for provisioned in self.provisioned:
            if provisioned.device.ip == device_ip:
                return provisioned
        raise KeyError(f"no provisioned device has IP {device_ip}")

    # -- inspection --------------------------------------------------------------------

    def device_count(self) -> int:
        return len(self.provisioned)

    def packages(self) -> set[str]:
        """Every package installed somewhere in the fleet."""
        return {
            app.apk.package_name for mix in self.installed.values() for app in mix
        }

    def provisioning_map(self) -> dict[str, frozenset[str]]:
        """Device enterprise IP → on-wire app ids enrolled on that device.

        This is the attribution ground truth the enterprise back office
        holds (which device enrolled which apps) and the network layer
        lacks; the telemetry spoofed-tag detector compares every valid
        tag against it.
        """
        self.provision()
        database = self.deployment.database
        mapping: dict[str, frozenset[str]] = {}
        for provisioned in self.provisioned:
            device = provisioned.device
            app_ids = set()
            for app in self.installed[device.name]:
                entry = database.lookup_md5(app.apk.md5)
                if entry is not None:
                    app_ids.add(entry.app_id)
            mapping[device.ip] = frozenset(app_ids)
        return mapping
