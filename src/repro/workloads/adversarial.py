"""Adversarial device-fleet workloads: evasion traffic with ground truth.

The paper's security argument is that contextual tags let the gateway
*attribute* every flow, so evasions that defeat address- and
volume-based appliances stay visible.  This module generates the attack
traces that claim is tested against, layered over a provisioned
:class:`~repro.workloads.fleet.DeviceFleet` so every attack shares the
address space, app population and tag encoding of the benign traffic it
hides in.

Five scenarios, each labelled per packet for precision/recall scoring:

* ``tag_stripping``  — a compromised work-profile process sends with the
  BorderPatrol option removed (the classic "evade the Context Manager"
  move §VII guards against);
* ``tag_spoofing``   — mimicry: packets carry the *valid* tag of a
  whitelisted app the sending device never enrolled, copied off another
  device's traffic;
* ``tag_replay``     — stale tags of an app the enterprise revoked are
  replayed after revocation;
* ``low_and_slow``   — exfiltration fragmented across many small flows,
  each far below any per-flow size threshold;
* ``bulk_exfil``     — the naive smash-and-grab: one fat flow to a
  domain already on the threat-intel blocklist.  This is the scenario
  conventional baselines *should* catch — it keeps the comparison
  honest.

The evasive scenarios exfiltrate to a **fresh** destination the
blocklist has never seen (blocklists lag reality); only ``bulk_exfil``
uses the known-bad domain.  All generation is deterministic in the
config seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.encoding import StackTraceEncoder
from repro.netstack.ip import IPPROTO_TCP, IPOptions, IPPacket
from repro.netstack.netfilter import flow_hash

#: Scenario labels, in generation order.  ``benign`` marks everything else.
SCENARIOS = (
    "tag_stripping",
    "tag_spoofing",
    "tag_replay",
    "low_and_slow",
    "bulk_exfil",
)

#: Scenarios on which address/size baselines have no signal at all.
EVASIVE_SCENARIOS = ("tag_stripping", "tag_spoofing", "tag_replay", "low_and_slow")

#: Cross-gateway campaigns built by
#: :meth:`AdversarialWorkload.build_cross_gateway`: each one rotates
#: source ports so flow-hash routing spreads it across the whole fleet.
CROSS_GATEWAY_SCENARIOS = ("split_exfil", "split_burst", "spoof_campaign")


@dataclass
class AdversarialConfig:
    """Knobs for attack-trace generation."""

    seed: int = 23
    #: Packets for each of the stripping/spoofing/replay scenarios.
    packets_per_scenario: int = 160
    #: Destination the evasive scenarios use — *not* on any blocklist.
    fresh_endpoint: str = "cdn.syncmirror.net"
    #: Destination on the (stale) threat-intel blocklist; bulk only.
    known_bad_endpoint: str = "drop.exfil-cdn.net"
    #: Payload per low-and-slow packet (small on purpose).
    low_and_slow_payload: int = 480
    #: Flows the low-and-slow upload is fragmented across.
    low_and_slow_flows: int = 32
    #: Payload per bulk-exfiltration packet (one fat flow).
    bulk_payload: int = 1400
    #: Destination of the port-rotated split exfiltration — its own
    #: fresh endpoint, so split-campaign alert keys never collide with
    #: the single-gateway scenarios' destination.
    split_endpoint: str = "sync.meshbackup.net"
    #: Payload per split-exfiltration packet.
    split_payload: int = 1000
    #: Distinct source ports the rotation uses per gateway (each port is
    #: one flow, pinned to its gateway by the flow hash).
    ports_per_gateway: int = 4
    #: Spoofed packets each campaign device sends.
    campaign_packets_per_device: int = 12


@dataclass
class AdversarialTrace:
    """Attack packets plus everything needed to score detections."""

    packets_by_scenario: dict[str, list[IPPacket]] = field(default_factory=dict)
    #: packet_id -> scenario label for every attack packet.
    labels: dict[int, str] = field(default_factory=dict)
    #: The contractor app whose tags are replayed after revocation.
    revoked_md5: str = ""
    revoked_app_id: str = ""
    revoked_package: str = ""
    #: The whitelisted app whose identity the mimicry scenario borrows.
    spoofed_package: str = ""
    spoofed_app_id: str = ""
    spoof_attacker_ip: str = ""
    #: Exfiltration endpoint name -> resolved IP.
    exfil_ips: dict[str, str] = field(default_factory=dict)

    def packets(self, scenario: str) -> list[IPPacket]:
        return self.packets_by_scenario.get(scenario, [])

    def attack_packet_count(self) -> int:
        return sum(len(packets) for packets in self.packets_by_scenario.values())

    def revoke(self, database) -> None:
        """Revoke the contractor app (call before replaying ``tag_replay``)."""
        database.remove(self.revoked_md5)


@dataclass
class CrossGatewayTrace:
    """Port-rotated campaign packets plus their scoring ground truth.

    Every campaign here is sized so that *no single gateway* crosses its
    detection threshold while the fleet-wide merged view does — the
    labels are the ground truth the ops experiment scores per-gateway
    vs federated detection against.
    """

    gateways: int
    packets_by_scenario: dict[str, list[IPPacket]] = field(default_factory=dict)
    #: packet_id -> scenario label for every campaign packet.
    labels: dict[int, str] = field(default_factory=dict)
    #: The insider device running the split exfil / burst campaigns.
    attacker_ip: str = ""
    #: Resolved IP of the split-exfiltration destination.
    split_dst_ip: str = ""
    #: Outbound bytes the split campaign sends via each gateway.
    split_bytes_per_gateway: dict[int, int] = field(default_factory=dict)
    #: Policy denials the burst campaign provokes at each gateway.
    burst_drops_per_gateway: dict[int, int] = field(default_factory=dict)
    #: The sideloaded app whose denied functionality the burst probes.
    probe_package: str = ""
    probe_app_id: str = ""
    #: The whitelisted app the campaign devices collectively spoof.
    campaign_package: str = ""
    campaign_app_id: str = ""
    campaign_device_ips: list[str] = field(default_factory=list)

    def packets(self, scenario: str) -> list[IPPacket]:
        return self.packets_by_scenario.get(scenario, [])

    def attack_packet_count(self) -> int:
        return sum(len(packets) for packets in self.packets_by_scenario.values())


class _FlowProbe:
    """Just enough of a packet for :func:`flow_hash`: the 5-tuple."""

    __slots__ = ("flow_tuple",)

    def __init__(self, flow_tuple: tuple) -> None:
        self.flow_tuple = flow_tuple


class AdversarialWorkload:
    """Generate the attack scenarios over one provisioned device fleet."""

    def __init__(self, device_fleet, config: AdversarialConfig | None = None) -> None:
        self.fleet = device_fleet
        self.config = config or AdversarialConfig()
        #: (options, package, app_id) of the sideloaded probe app, once
        #: :meth:`prepare_probe_app` has found one.
        self._probe_cache: tuple[IPOptions, str, str] | None = None

    def insider_device(self) -> str:
        """The IP of the insider device the split campaigns run from.

        Deterministic and cheap, so experiments can learn this device's
        baselines *before* building the campaign that must slip under
        them (the attacker knows their own address).
        """
        flows = self.fleet.build_flows()
        login_flows = [flow for flow in flows if flow.functionality == "login"]
        if not login_flows:
            login_flows = flows
        return min(login_flows, key=lambda flow: (flow.src_ip, flow.src_port)).src_ip

    # -- scenario building -------------------------------------------------------------

    def build(
        self, exfil_budget_bytes: int, size_threshold_bytes: int
    ) -> AdversarialTrace:
        """Build every scenario's packets.

        ``exfil_budget_bytes`` is the telemetry volume budget the
        volume-based scenarios must exceed (the attacker does need to
        move real data); ``size_threshold_bytes`` is the per-flow
        threshold of the size baseline, which low-and-slow must stay
        *under* per flow and bulk must blow through.
        """
        config = self.config
        fleet = self.fleet
        flows = fleet.build_flows()
        deployment = fleet.deployment
        network = deployment.network
        trace = AdversarialTrace()
        for endpoint in (config.fresh_endpoint, config.known_bad_endpoint):
            if not network.dns.knows_name(endpoint):
                network.add_server(endpoint, role="external")
            trace.exfil_ips[endpoint] = network.dns.resolve(endpoint)
        fresh_ip = trace.exfil_ips[config.fresh_endpoint]
        known_bad_ip = trace.exfil_ips[config.known_bad_endpoint]
        rng = random.Random(config.seed)
        device_ips = sorted({flow.src_ip for flow in flows})

        # -- tag stripping: untagged packets from a compromised device.
        stripper_ip = device_ips[rng.randrange(len(device_ips))]
        trace.packets_by_scenario["tag_stripping"] = [
            IPPacket(
                src_ip=stripper_ip,
                dst_ip=fresh_ip,
                src_port=51000 + index % 8,
                dst_port=443,
                payload_size=600,
                options=IPOptions(),
                provenance={"adversarial": "tag_stripping"},
            )
            for index in range(config.packets_per_scenario)
        ]

        # -- tag spoofing: a valid tag from a device that lacks the app.
        # Candidates are login flows: developer-authored functionality the
        # company policy whitelists, i.e. an identity worth borrowing.
        login_flows = [flow for flow in flows if flow.functionality == "login"]
        if not login_flows:
            login_flows = flows
        provisioning = fleet.provisioning_map()
        spoof_flow, attacker_ip = self._pick_spoof(login_flows, provisioning)
        trace.spoofed_package = spoof_flow.package_name
        trace.spoofed_app_id = self._app_id_of(spoof_flow)
        trace.spoof_attacker_ip = attacker_ip
        trace.packets_by_scenario["tag_spoofing"] = [
            IPPacket(
                src_ip=attacker_ip,
                dst_ip=fresh_ip,
                src_port=52000 + index % 8,
                dst_port=443,
                payload_size=700,
                options=spoof_flow.options,
                provenance={"adversarial": "tag_spoofing"},
            )
            for index in range(config.packets_per_scenario)
        ]

        # -- tag replay: stale tags of a revoked contractor app.
        replayer_ip = device_ips[rng.randrange(len(device_ips))]
        stale_options, md5, app_id, package = self._enroll_contractor_app()
        trace.revoked_md5 = md5
        trace.revoked_app_id = app_id
        trace.revoked_package = package
        trace.packets_by_scenario["tag_replay"] = [
            IPPacket(
                src_ip=replayer_ip,
                dst_ip=fresh_ip,
                src_port=53000 + index % 8,
                dst_port=443,
                payload_size=650,
                options=stale_options,
                provenance={"adversarial": "tag_replay"},
            )
            for index in range(config.packets_per_scenario)
        ]

        # -- low and slow: fragment an upload across many small flows,
        # every flow far below the size threshold, using the attacker
        # device's *own* enrolled app tag (nothing to spoof: the insider
        # app itself leaks).
        insider_flow = min(login_flows, key=lambda flow: (flow.src_ip, flow.src_port))
        total_bytes = 2 * exfil_budget_bytes
        payload = config.low_and_slow_payload
        packet_count = max(1, -(-total_bytes // payload))
        per_flow = payload * -(-packet_count // config.low_and_slow_flows)
        if per_flow >= size_threshold_bytes:
            raise ValueError(
                "low-and-slow fragments would individually trip the size "
                f"threshold ({per_flow} >= {size_threshold_bytes}); raise "
                "low_and_slow_flows or the threshold"
            )
        trace.packets_by_scenario["low_and_slow"] = [
            IPPacket(
                src_ip=insider_flow.src_ip,
                dst_ip=fresh_ip,
                src_port=54000 + index % config.low_and_slow_flows,
                dst_port=443,
                payload_size=payload,
                options=insider_flow.options,
                provenance={"adversarial": "low_and_slow"},
            )
            for index in range(packet_count)
        ]

        # -- bulk exfiltration: one fat flow to the known-bad endpoint.
        bulk_total = max(2 * exfil_budget_bytes, 2 * size_threshold_bytes)
        bulk_count = max(1, -(-bulk_total // config.bulk_payload))
        trace.packets_by_scenario["bulk_exfil"] = [
            IPPacket(
                src_ip=insider_flow.src_ip,
                dst_ip=known_bad_ip,
                src_port=55000,
                dst_port=443,
                payload_size=config.bulk_payload,
                options=insider_flow.options,
                provenance={"adversarial": "bulk_exfil"},
            )
            for _ in range(bulk_count)
        ]

        for scenario, packets in trace.packets_by_scenario.items():
            for packet in packets:
                trace.labels[packet.packet_id] = scenario
        return trace

    # -- cross-gateway campaigns -------------------------------------------------------

    def build_cross_gateway(
        self,
        gateways: int,
        per_gateway_budget_bytes: int,
        fleet_budget_bytes: int,
        burst_threshold: int,
        campaign_devices: int = 3,
    ) -> CrossGatewayTrace:
        """Campaigns that rotate source ports to hide from every gateway.

        Flow-hash routing pins each flow to one gateway, so an attacker
        that rotates ports splits its campaign across the fleet; each
        scenario is sized so every gateway's share stays under the
        per-gateway bar while the fleet-wide total is over the fleet
        bar — per-gateway detectors miss it by construction, federated
        ones must not:

        * ``split_exfil`` — the insider device uploads
          > ``fleet_budget_bytes`` to one fresh destination, but under
          ``per_gateway_budget_bytes`` through any single gateway;
        * ``split_burst`` — a sideloaded (legitimately enrolled) probe
          app steers into denied functionality ``burst_threshold - 2``
          times per gateway: no gateway sees a burst, the fleet-wide
          denial count is over the bar;
        * ``spoof_campaign`` — ``campaign_devices`` distinct devices
          spoof one whitelisted app.  Each gateway sees isolated
          mimicry (caught locally); only the federation can see the
          coordination.
        """
        if gateways < 2:
            raise ValueError("cross-gateway evasion needs at least two gateways")
        if burst_threshold < 3:
            raise ValueError("the burst bar must be >= 3 for a per-gateway gap")
        if gateways * (burst_threshold - 2) < burst_threshold:
            raise ValueError(
                "split burst cannot reach the fleet bar: "
                f"{gateways} gateway(s) x {burst_threshold - 2} drops < "
                f"{burst_threshold}"
            )
        config = self.config
        fleet = self.fleet
        flows = fleet.build_flows()
        network = fleet.deployment.network
        trace = CrossGatewayTrace(gateways=gateways)
        if not network.dns.knows_name(config.split_endpoint):
            network.add_server(config.split_endpoint, role="external")
        split_ip = network.dns.resolve(config.split_endpoint)
        trace.split_dst_ip = split_ip

        login_flows = [flow for flow in flows if flow.functionality == "login"]
        if not login_flows:
            login_flows = flows
        insider_flow = min(login_flows, key=lambda flow: (flow.src_ip, flow.src_port))
        attacker_ip = insider_flow.src_ip
        trace.attacker_ip = attacker_ip

        # -- split exfil: balanced port rotation, per-gateway volume caps.
        payload = config.split_payload
        # Stay clearly under the per-gateway bar, land clearly over the
        # fleet bar; infeasible geometry is an error, not a silent
        # mislabel (the labels are scoring ground truth).
        share_cap = int(0.75 * per_gateway_budget_bytes)
        target_total = int(1.25 * fleet_budget_bytes) + 1
        share = -(-target_total // gateways)
        if share > share_cap:
            raise ValueError(
                "split exfil cannot evade: the needed per-gateway share "
                f"({share} B) exceeds 75% of the per-gateway budget "
                f"({per_gateway_budget_bytes} B); more gateways or a lower "
                "fleet budget needed"
            )
        ports = self._rotation_ports(attacker_ip, split_ip, gateways, base_port=56000)
        split_packets: list[IPPacket] = []
        per_gateway_packets = -(-share // payload)
        for gateway_index in range(gateways):
            sent = 0
            for index in range(per_gateway_packets):
                port = ports[gateway_index][index % len(ports[gateway_index])]
                split_packets.append(
                    IPPacket(
                        src_ip=attacker_ip,
                        dst_ip=split_ip,
                        src_port=port,
                        dst_port=443,
                        payload_size=payload,
                        options=insider_flow.options,
                        provenance={"adversarial": "split_exfil"},
                    )
                )
                sent += payload
            trace.split_bytes_per_gateway[gateway_index] = sent
        trace.packets_by_scenario["split_exfil"] = split_packets

        # -- split burst: denied probes, burst-2 per gateway.
        probe_options, probe_package, probe_app_id = self.prepare_probe_app(attacker_ip)
        trace.probe_package = probe_package
        trace.probe_app_id = probe_app_id
        burst_ports = self._rotation_ports(attacker_ip, split_ip, gateways, base_port=57000)
        per_gateway_drops = burst_threshold - 2
        burst_packets: list[IPPacket] = []
        for gateway_index in range(gateways):
            for index in range(per_gateway_drops):
                port = burst_ports[gateway_index][index % len(burst_ports[gateway_index])]
                burst_packets.append(
                    IPPacket(
                        src_ip=attacker_ip,
                        dst_ip=split_ip,
                        src_port=port,
                        dst_port=443,
                        payload_size=256,
                        options=probe_options,
                        provenance={"adversarial": "split_burst"},
                    )
                )
            trace.burst_drops_per_gateway[gateway_index] = per_gateway_drops
        trace.packets_by_scenario["split_burst"] = burst_packets

        # -- spoof campaign: K devices borrowing one whitelisted identity.
        spoof_flow, attacker_ips = self._pick_campaign(
            login_flows, fleet.provisioning_map(), campaign_devices
        )
        trace.campaign_package = spoof_flow.package_name
        trace.campaign_app_id = self._app_id_of(spoof_flow)
        trace.campaign_device_ips = attacker_ips
        campaign_packets: list[IPPacket] = []
        for device_index, device_ip in enumerate(attacker_ips):
            device_ports = self._rotation_ports(
                device_ip, split_ip, gateways, base_port=58000 + 100 * device_index
            )
            for index in range(config.campaign_packets_per_device):
                gateway_index = index % gateways
                port = device_ports[gateway_index][index % len(device_ports[gateway_index])]
                campaign_packets.append(
                    IPPacket(
                        src_ip=device_ip,
                        dst_ip=split_ip,
                        src_port=port,
                        dst_port=443,
                        payload_size=300,
                        options=spoof_flow.options,
                        provenance={"adversarial": "spoof_campaign"},
                    )
                )
        trace.packets_by_scenario["spoof_campaign"] = campaign_packets

        for scenario, packets in trace.packets_by_scenario.items():
            for packet in packets:
                trace.labels[packet.packet_id] = scenario
        return trace

    def _rotation_ports(
        self, src_ip: str, dst_ip: str, gateways: int, base_port: int
    ) -> list[list[int]]:
        """Source ports bucketed by the gateway their flow hashes to.

        Walks ports upward from ``base_port`` until every gateway has
        ``ports_per_gateway`` of them — the attacker-side computation is
        trivial because the flow hash is public and deterministic (the
        evasion needs no luck, just arithmetic).
        """
        per_gateway = self.config.ports_per_gateway
        buckets: list[list[int]] = [[] for _ in range(gateways)]
        filled = 0
        port = base_port
        while filled < gateways * per_gateway:
            if port > base_port + 65535:  # pragma: no cover - crc32 is uniform
                raise RuntimeError("could not balance ports across gateways")
            probe = _FlowProbe((src_ip, port, dst_ip, 443, IPPROTO_TCP))
            bucket = flow_hash(probe) % gateways
            if len(buckets[bucket]) < per_gateway:
                buckets[bucket].append(port)
                filled += 1
            port += 1
        return buckets

    def _pick_campaign(
        self, flows, provisioning, campaign_devices: int
    ) -> tuple:
        """A (flow, attacker_ips) pair: ``campaign_devices`` devices that
        all lack the flow's app.  Deterministic: first match in sorted order."""
        for flow in sorted(flows, key=lambda f: (f.package_name, f.src_ip, f.src_port)):
            app_id = self._app_id_of(flow)
            if not app_id:
                continue
            lacking = [
                device_ip
                for device_ip in sorted(provisioning)
                if device_ip != flow.src_ip and app_id not in provisioning[device_ip]
            ]
            if len(lacking) >= campaign_devices:
                return flow, lacking[:campaign_devices]
        raise ValueError(
            f"no app is missing from {campaign_devices} devices; the spoof "
            "campaign needs a sparser install base (more devices or apps)"
        )

    def prepare_probe_app(self, attacker_ip: str | None = None) -> tuple[IPOptions, str, str]:
        """Sideload a fresh app on the attacker device; return a tag for a
        *denied* method of it.

        The app is legitimately enrolled and installed (no integrity or
        spoof signal — the probe traffic is pure policy denial), and the
        denied method index is found the way the attacker would find it:
        probe a throwaway enforcer with the public policy until a tag
        draws a denial.  Candidates without a denied method are
        un-enrolled again, so only the probe app itself ever lands in
        the database or on the device.

        Public and idempotent so experiments can call it *before*
        snapshotting the fleet's provisioning map — a probe app
        sideloaded after the snapshot would read as tag mimicry, which
        is exactly the signal this traffic must not carry.
        """
        if self._probe_cache is not None:
            return self._probe_cache
        from repro.core.policy_enforcer import PolicyEnforcer
        from repro.netstack.netfilter import Verdict
        from repro.workloads.corpus import CorpusConfig, CorpusGenerator

        if attacker_ip is None:
            attacker_ip = self.insider_device()
        deployment = self.fleet.deployment
        database = deployment.database
        encoder = StackTraceEncoder(index_width=deployment.index_width)
        provisioned = self.fleet.provisioned_by_ip(attacker_ip)
        existing = {entry.md5 for entry in database.entries()}
        for offset in range(16):
            generator = CorpusGenerator(
                CorpusConfig(n_apps=1, seed=self.config.seed + 11000 + offset)
            )
            app = generator.generate()[0]
            if app.apk.md5 in existing:
                continue
            deployment.enroll_app(app.apk)
            entry = database.lookup_md5(app.apk.md5)
            probe = PolicyEnforcer(
                database=database,
                policy=deployment.policy,
                index_width=deployment.index_width,
                keep_records=True,
            )
            for index in range(entry.method_count):
                options = encoder.encode_option(entry.app_id, [index])
                packet = IPPacket(
                    src_ip=attacker_ip,
                    dst_ip="203.0.113.1",
                    src_port=57999,
                    dst_port=443,
                    payload_size=64,
                    options=options,
                )
                verdict, _ = probe.process(packet)
                record = probe.records[-1]
                if verdict is Verdict.DROP and record.package_name:
                    # A decoded, known tag that still drew DROP: a policy
                    # denial, not an integrity failure.
                    self.fleet.sideload_app(provisioned, app)
                    self._probe_cache = (options, entry.package_name, entry.app_id)
                    return self._probe_cache
            database.remove(app.apk.md5)
        raise ValueError(
            "no generated app exposes a policy-denied method; widen the deny "
            "policy or the candidate app range"
        )

    # -- pieces ------------------------------------------------------------------------

    def _app_id_of(self, flow) -> str:
        data = StackTraceEncoder.extract_tag_bytes(flow.options)
        return data[:8].hex() if data is not None else ""

    def _pick_spoof(self, flows, provisioning) -> tuple:
        """A (flow, attacker_ip) pair: the flow's app is not enrolled on
        the attacker's device.  Deterministic: first match in sorted order."""
        for flow in sorted(flows, key=lambda f: (f.package_name, f.src_ip, f.src_port)):
            app_id = self._app_id_of(flow)
            if not app_id:
                continue
            for device_ip in sorted(provisioning):
                if device_ip != flow.src_ip and app_id not in provisioning[device_ip]:
                    return flow, device_ip
        raise ValueError(
            "every device enrolled every app; the mimicry scenario needs a "
            "device lacking at least one fleet app (use more apps or devices)"
        )

    def _enroll_contractor_app(self) -> tuple[IPOptions, str, str, str]:
        """Enroll an app no fleet device installed; return a valid tag for it.

        The driver revokes it mid-trace
        (:meth:`AdversarialTrace.revoke`), after which the returned tag
        is exactly what a replay attack looks like at the gateway.
        """
        # Imported here: workloads.corpus already imports the network
        # package; keeping this local avoids widening module import time
        # for fleets that never build adversarial traffic.
        from repro.workloads.corpus import CorpusConfig, CorpusGenerator

        deployment = self.fleet.deployment
        existing = {
            entry.md5 for entry in deployment.database.entries()
        }
        # Generate candidate apps until one's hash is not already enrolled
        # (different seed space from the fleet corpus, so in practice the
        # first candidate wins).
        for offset in range(8):
            generator = CorpusGenerator(
                CorpusConfig(n_apps=1, seed=self.config.seed + 9000 + offset)
            )
            app = generator.generate()[0]
            if app.apk.md5 not in existing:
                break
        else:  # pragma: no cover - eight md5 collisions in a row
            raise RuntimeError("could not generate a fresh contractor app")
        deployment.enroll_app(app.apk)
        entry = deployment.database.lookup_md5(app.apk.md5)
        encoder = StackTraceEncoder(index_width=deployment.index_width)
        indexes = list(range(min(3, entry.method_count)))
        options = encoder.encode_option(entry.app_id, indexes)
        return options, entry.md5, entry.app_id, entry.package_name
