"""Adversarial device-fleet workloads: evasion traffic with ground truth.

The paper's security argument is that contextual tags let the gateway
*attribute* every flow, so evasions that defeat address- and
volume-based appliances stay visible.  This module generates the attack
traces that claim is tested against, layered over a provisioned
:class:`~repro.workloads.fleet.DeviceFleet` so every attack shares the
address space, app population and tag encoding of the benign traffic it
hides in.

Five scenarios, each labelled per packet for precision/recall scoring:

* ``tag_stripping``  — a compromised work-profile process sends with the
  BorderPatrol option removed (the classic "evade the Context Manager"
  move §VII guards against);
* ``tag_spoofing``   — mimicry: packets carry the *valid* tag of a
  whitelisted app the sending device never enrolled, copied off another
  device's traffic;
* ``tag_replay``     — stale tags of an app the enterprise revoked are
  replayed after revocation;
* ``low_and_slow``   — exfiltration fragmented across many small flows,
  each far below any per-flow size threshold;
* ``bulk_exfil``     — the naive smash-and-grab: one fat flow to a
  domain already on the threat-intel blocklist.  This is the scenario
  conventional baselines *should* catch — it keeps the comparison
  honest.

The evasive scenarios exfiltrate to a **fresh** destination the
blocklist has never seen (blocklists lag reality); only ``bulk_exfil``
uses the known-bad domain.  All generation is deterministic in the
config seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.encoding import StackTraceEncoder
from repro.netstack.ip import IPOptions, IPPacket

#: Scenario labels, in generation order.  ``benign`` marks everything else.
SCENARIOS = (
    "tag_stripping",
    "tag_spoofing",
    "tag_replay",
    "low_and_slow",
    "bulk_exfil",
)

#: Scenarios on which address/size baselines have no signal at all.
EVASIVE_SCENARIOS = ("tag_stripping", "tag_spoofing", "tag_replay", "low_and_slow")


@dataclass
class AdversarialConfig:
    """Knobs for attack-trace generation."""

    seed: int = 23
    #: Packets for each of the stripping/spoofing/replay scenarios.
    packets_per_scenario: int = 160
    #: Destination the evasive scenarios use — *not* on any blocklist.
    fresh_endpoint: str = "cdn.syncmirror.net"
    #: Destination on the (stale) threat-intel blocklist; bulk only.
    known_bad_endpoint: str = "drop.exfil-cdn.net"
    #: Payload per low-and-slow packet (small on purpose).
    low_and_slow_payload: int = 480
    #: Flows the low-and-slow upload is fragmented across.
    low_and_slow_flows: int = 32
    #: Payload per bulk-exfiltration packet (one fat flow).
    bulk_payload: int = 1400


@dataclass
class AdversarialTrace:
    """Attack packets plus everything needed to score detections."""

    packets_by_scenario: dict[str, list[IPPacket]] = field(default_factory=dict)
    #: packet_id -> scenario label for every attack packet.
    labels: dict[int, str] = field(default_factory=dict)
    #: The contractor app whose tags are replayed after revocation.
    revoked_md5: str = ""
    revoked_app_id: str = ""
    revoked_package: str = ""
    #: The whitelisted app whose identity the mimicry scenario borrows.
    spoofed_package: str = ""
    spoofed_app_id: str = ""
    spoof_attacker_ip: str = ""
    #: Exfiltration endpoint name -> resolved IP.
    exfil_ips: dict[str, str] = field(default_factory=dict)

    def packets(self, scenario: str) -> list[IPPacket]:
        return self.packets_by_scenario.get(scenario, [])

    def attack_packet_count(self) -> int:
        return sum(len(packets) for packets in self.packets_by_scenario.values())

    def revoke(self, database) -> None:
        """Revoke the contractor app (call before replaying ``tag_replay``)."""
        database.remove(self.revoked_md5)


class AdversarialWorkload:
    """Generate the attack scenarios over one provisioned device fleet."""

    def __init__(self, device_fleet, config: AdversarialConfig | None = None) -> None:
        self.fleet = device_fleet
        self.config = config or AdversarialConfig()

    # -- scenario building -------------------------------------------------------------

    def build(
        self, exfil_budget_bytes: int, size_threshold_bytes: int
    ) -> AdversarialTrace:
        """Build every scenario's packets.

        ``exfil_budget_bytes`` is the telemetry volume budget the
        volume-based scenarios must exceed (the attacker does need to
        move real data); ``size_threshold_bytes`` is the per-flow
        threshold of the size baseline, which low-and-slow must stay
        *under* per flow and bulk must blow through.
        """
        config = self.config
        fleet = self.fleet
        flows = fleet.build_flows()
        deployment = fleet.deployment
        network = deployment.network
        trace = AdversarialTrace()
        for endpoint in (config.fresh_endpoint, config.known_bad_endpoint):
            if not network.dns.knows_name(endpoint):
                network.add_server(endpoint, role="external")
            trace.exfil_ips[endpoint] = network.dns.resolve(endpoint)
        fresh_ip = trace.exfil_ips[config.fresh_endpoint]
        known_bad_ip = trace.exfil_ips[config.known_bad_endpoint]
        rng = random.Random(config.seed)
        device_ips = sorted({flow.src_ip for flow in flows})

        # -- tag stripping: untagged packets from a compromised device.
        stripper_ip = device_ips[rng.randrange(len(device_ips))]
        trace.packets_by_scenario["tag_stripping"] = [
            IPPacket(
                src_ip=stripper_ip,
                dst_ip=fresh_ip,
                src_port=51000 + index % 8,
                dst_port=443,
                payload_size=600,
                options=IPOptions(),
                provenance={"adversarial": "tag_stripping"},
            )
            for index in range(config.packets_per_scenario)
        ]

        # -- tag spoofing: a valid tag from a device that lacks the app.
        # Candidates are login flows: developer-authored functionality the
        # company policy whitelists, i.e. an identity worth borrowing.
        login_flows = [flow for flow in flows if flow.functionality == "login"]
        if not login_flows:
            login_flows = flows
        provisioning = fleet.provisioning_map()
        spoof_flow, attacker_ip = self._pick_spoof(login_flows, provisioning)
        trace.spoofed_package = spoof_flow.package_name
        trace.spoofed_app_id = self._app_id_of(spoof_flow)
        trace.spoof_attacker_ip = attacker_ip
        trace.packets_by_scenario["tag_spoofing"] = [
            IPPacket(
                src_ip=attacker_ip,
                dst_ip=fresh_ip,
                src_port=52000 + index % 8,
                dst_port=443,
                payload_size=700,
                options=spoof_flow.options,
                provenance={"adversarial": "tag_spoofing"},
            )
            for index in range(config.packets_per_scenario)
        ]

        # -- tag replay: stale tags of a revoked contractor app.
        replayer_ip = device_ips[rng.randrange(len(device_ips))]
        stale_options, md5, app_id, package = self._enroll_contractor_app()
        trace.revoked_md5 = md5
        trace.revoked_app_id = app_id
        trace.revoked_package = package
        trace.packets_by_scenario["tag_replay"] = [
            IPPacket(
                src_ip=replayer_ip,
                dst_ip=fresh_ip,
                src_port=53000 + index % 8,
                dst_port=443,
                payload_size=650,
                options=stale_options,
                provenance={"adversarial": "tag_replay"},
            )
            for index in range(config.packets_per_scenario)
        ]

        # -- low and slow: fragment an upload across many small flows,
        # every flow far below the size threshold, using the attacker
        # device's *own* enrolled app tag (nothing to spoof: the insider
        # app itself leaks).
        insider_flow = min(login_flows, key=lambda flow: (flow.src_ip, flow.src_port))
        total_bytes = 2 * exfil_budget_bytes
        payload = config.low_and_slow_payload
        packet_count = max(1, -(-total_bytes // payload))
        per_flow = payload * -(-packet_count // config.low_and_slow_flows)
        if per_flow >= size_threshold_bytes:
            raise ValueError(
                "low-and-slow fragments would individually trip the size "
                f"threshold ({per_flow} >= {size_threshold_bytes}); raise "
                "low_and_slow_flows or the threshold"
            )
        trace.packets_by_scenario["low_and_slow"] = [
            IPPacket(
                src_ip=insider_flow.src_ip,
                dst_ip=fresh_ip,
                src_port=54000 + index % config.low_and_slow_flows,
                dst_port=443,
                payload_size=payload,
                options=insider_flow.options,
                provenance={"adversarial": "low_and_slow"},
            )
            for index in range(packet_count)
        ]

        # -- bulk exfiltration: one fat flow to the known-bad endpoint.
        bulk_total = max(2 * exfil_budget_bytes, 2 * size_threshold_bytes)
        bulk_count = max(1, -(-bulk_total // config.bulk_payload))
        trace.packets_by_scenario["bulk_exfil"] = [
            IPPacket(
                src_ip=insider_flow.src_ip,
                dst_ip=known_bad_ip,
                src_port=55000,
                dst_port=443,
                payload_size=config.bulk_payload,
                options=insider_flow.options,
                provenance={"adversarial": "bulk_exfil"},
            )
            for _ in range(bulk_count)
        ]

        for scenario, packets in trace.packets_by_scenario.items():
            for packet in packets:
                trace.labels[packet.packet_id] = scenario
        return trace

    # -- pieces ------------------------------------------------------------------------

    def _app_id_of(self, flow) -> str:
        data = StackTraceEncoder.extract_tag_bytes(flow.options)
        return data[:8].hex() if data is not None else ""

    def _pick_spoof(self, flows, provisioning) -> tuple:
        """A (flow, attacker_ip) pair: the flow's app is not enrolled on
        the attacker's device.  Deterministic: first match in sorted order."""
        for flow in sorted(flows, key=lambda f: (f.package_name, f.src_ip, f.src_port)):
            app_id = self._app_id_of(flow)
            if not app_id:
                continue
            for device_ip in sorted(provisioning):
                if device_ip != flow.src_ip and app_id not in provisioning[device_ip]:
                    return flow, device_ip
        raise ValueError(
            "every device enrolled every app; the mimicry scenario needs a "
            "device lacking at least one fleet app (use more apps or devices)"
        )

    def _enroll_contractor_app(self) -> tuple[IPOptions, str, str, str]:
        """Enroll an app no fleet device installed; return a valid tag for it.

        The driver revokes it mid-trace
        (:meth:`AdversarialTrace.revoke`), after which the returned tag
        is exactly what a replay attack looks like at the gateway.
        """
        # Imported here: workloads.corpus already imports the network
        # package; keeping this local avoids widening module import time
        # for fleets that never build adversarial traffic.
        from repro.workloads.corpus import CorpusConfig, CorpusGenerator

        deployment = self.fleet.deployment
        existing = {
            entry.md5 for entry in deployment.database.entries()
        }
        # Generate candidate apps until one's hash is not already enrolled
        # (different seed space from the fleet corpus, so in practice the
        # first candidate wins).
        for offset in range(8):
            generator = CorpusGenerator(
                CorpusConfig(n_apps=1, seed=self.config.seed + 9000 + offset)
            )
            app = generator.generate()[0]
            if app.apk.md5 not in existing:
                break
        else:  # pragma: no cover - eight md5 collisions in a row
            raise RuntimeError("could not generate a fresh contractor app")
        deployment.enroll_app(app.apk)
        entry = deployment.database.lookup_md5(app.apk.md5)
        encoder = StackTraceEncoder(index_width=deployment.index_width)
        indexes = list(range(min(3, entry.method_count)))
        options = encoder.encode_option(entry.app_id, indexes)
        return options, entry.md5, entry.app_id, entry.package_name
