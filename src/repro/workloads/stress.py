"""The network stress-test app (paper §VI-D).

The performance evaluation uses a purpose-built app that repeatedly
creates a socket, issues a single HTTP GET for a static 297-byte page
served on the emulator host, and closes the socket — the worst case for
the device's network stack because every request pays the full
per-socket cost (hooking, ``getStackTrace``, encoding, ``setsockopt``).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.android.app_model import AppBehavior, Functionality, NetworkRequest
from repro.android.runtime import AppProcess
from repro.apk.manifest import AndroidManifest
from repro.apk.package import ApkFile, StoreCategory, build_apk
from repro.dex.builder import DexBuilder
from repro.network.server import STRESS_PAGE_BYTES
from repro.workloads.apps import CaseStudyApp

#: DNS name of the host-local HTTP server the stress app talks to.
STRESS_SERVER_NAME = "stress.local"

#: Size of the HTTP GET request line + headers the stress app sends.
STRESS_REQUEST_BYTES = 64


def build_stress_app(package: str = "com.borderpatrol.stresstest") -> CaseStudyApp:
    """Build the stress-test apk and its single-functionality behaviour."""
    builder = DexBuilder()
    main = builder.add_class(f"{package}.StressActivity", superclass="android.app.Activity")
    m_run = main.add_method("runIteration", (), "void")
    client = builder.add_class(f"{package}.net.TinyHttpClient")
    m_get = client.add_method("get", ("java.lang.String",), "java.lang.String")
    dex = builder.build()

    functionality = Functionality(
        name="http_get",
        call_chain=(m_run.signature, m_get.signature),
        requests=(
            NetworkRequest(
                endpoint=STRESS_SERVER_NAME,
                port=8000,
                upload_bytes=STRESS_REQUEST_BYTES,
                download_bytes=STRESS_PAGE_BYTES,
            ),
        ),
    )
    behavior = AppBehavior(package_name=package, functionalities=(functionality,), idle_weight=0.0)
    apk = build_apk(
        AndroidManifest(package_name=package, app_label="BP StressTest"),
        dex,
        category=StoreCategory.TOOLS,
    )
    return CaseStudyApp(
        apk=apk,
        behavior=behavior,
        key_signatures={"http_get": m_get.signature},
        endpoints={"server": STRESS_SERVER_NAME},
    )


@dataclass
class StressResult:
    """Latency statistics of one stress run."""

    configuration: str
    iterations: int
    per_request_ms: list[float] = field(default_factory=list)

    @property
    def mean_ms(self) -> float:
        return statistics.fmean(self.per_request_ms) if self.per_request_ms else 0.0

    @property
    def median_ms(self) -> float:
        return statistics.median(self.per_request_ms) if self.per_request_ms else 0.0

    @property
    def stdev_ms(self) -> float:
        if len(self.per_request_ms) < 2:
            return 0.0
        return statistics.stdev(self.per_request_ms)

    @property
    def total_ms(self) -> float:
        return sum(self.per_request_ms)


def run_stress_test(
    process: AppProcess, iterations: int = 10_000, configuration: str = "default"
) -> StressResult:
    """Run the stress loop: ``iterations`` socket + GET + close cycles."""
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    result = StressResult(configuration=configuration, iterations=iterations)
    clock = process.device.clock
    for _ in range(iterations):
        start = clock.now()
        process.invoke("http_get")
        result.per_request_ms.append(clock.now() - start)
    return result
