"""Workloads: synthetic app corpus, third-party library catalogue, case-study apps.

The paper evaluates BorderPatrol on the 1,000 most-downloaded apps of
each of Google Play's BUSINESS and PRODUCTIVITY categories (PlayDrone
dataset), a list of 1,050 exfiltrating third-party libraries from Li et
al., and three hand-exercised case-study apps (Dropbox, Box,
SolCalendar).  None of those artefacts are redistributable or usable
offline, so this package generates structurally faithful synthetic
equivalents — see DESIGN.md §2 for the substitution rationale.
"""

from repro.workloads.libraries import (
    LibraryBehavior,
    LibraryProfile,
    LibraryCatalog,
    builtin_catalog,
    li_library_list,
)
from repro.workloads.corpus import CorpusApp, CorpusGenerator, CorpusConfig
from repro.workloads.apps import (
    build_cloud_storage_app,
    build_box_like_app,
    build_calendar_app,
)
from repro.workloads.stress import build_stress_app, run_stress_test, StressResult
from repro.workloads.fleet import DeviceFleet, DeviceFleetConfig, FleetFlow

__all__ = [
    "LibraryBehavior",
    "LibraryProfile",
    "LibraryCatalog",
    "builtin_catalog",
    "li_library_list",
    "CorpusApp",
    "CorpusGenerator",
    "CorpusConfig",
    "build_cloud_storage_app",
    "build_box_like_app",
    "build_calendar_app",
    "build_stress_app",
    "run_stress_test",
    "StressResult",
    "DeviceFleet",
    "DeviceFleetConfig",
    "FleetFlow",
]
