"""Hand-built case-study apps (paper §VI-C).

Three behaviour models reproduce the structural facts the case studies
rely on:

* a Dropbox-like cloud-storage app whose login, browsing, download and
  upload functionality all talk to the *same* API endpoint, so address
  based filtering can only block everything or nothing;
* a Box-like app whose upload endpoint is distinct from its download
  endpoint — but the upload endpoint also serves file listing, so
  blocking it breaks browsing (and therefore downloads) too;
* a SolCalendar-like app bundling the Facebook SDK, which uses one
  endpoint (the Graph API) for both "Login with Facebook" and analytics
  event reporting.

Each builder returns a :class:`CaseStudyApp` exposing the method
signatures experiments need to write policies against (e.g. the upload
task's method, mirroring the paper's Example 3 policy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.android.app_model import AppBehavior, Functionality, NetworkRequest
from repro.apk.manifest import AndroidManifest, Permission
from repro.apk.package import ApkFile, StoreCategory, build_apk
from repro.dex.builder import DexBuilder
from repro.dex.signature import MethodSignature


@dataclass
class CaseStudyApp:
    """An apk + behaviour pair plus the signatures experiments reference."""

    apk: ApkFile
    behavior: AppBehavior
    key_signatures: dict[str, MethodSignature] = field(default_factory=dict)
    endpoints: dict[str, str] = field(default_factory=dict)

    @property
    def package_name(self) -> str:
        return self.apk.package_name

    def signature(self, key: str) -> MethodSignature:
        return self.key_signatures[key]


def build_cloud_storage_app(package: str = "com.cloudbox.android") -> CaseStudyApp:
    """The Dropbox-like app: one endpoint for login, browse, download and upload."""
    api_endpoint = "api.cloudbox.com"
    builder = DexBuilder()
    main = builder.add_class(f"{package}.DropboxBrowser", superclass="android.app.Activity")
    main.add_constructor()
    m_click = main.add_method("onClick", ("android.view.View",))
    auth = builder.add_class(f"{package}.auth.LoginActivity")
    m_auth = auth.add_method("authenticate", ("java.lang.String", "java.lang.String"), "boolean")
    browse = builder.add_class(f"{package}.files.FileListFragment")
    m_browse = browse.add_method("refreshListing", (), "int")
    m_search = browse.add_method("search", ("java.lang.String",), "java.util.List")
    download = builder.add_class(f"{package}.taskqueue.DownloadTask")
    m_download = download.add_method("run")
    upload = builder.add_class(f"{package}.taskqueue.UploadTask")
    m_upload = upload.add_method("c", (), f"{package.rsplit('.', 1)[0]}.hairball.taskqueue.TaskResult")
    dex = builder.build()

    functionalities = (
        Functionality(
            name="login",
            call_chain=(m_click.signature, m_auth.signature),
            requests=(NetworkRequest(endpoint=api_endpoint, upload_bytes=700, download_bytes=900),),
        ),
        Functionality(
            name="browse",
            call_chain=(m_click.signature, m_browse.signature),
            requests=(NetworkRequest(endpoint=api_endpoint, upload_bytes=350, download_bytes=4500),),
        ),
        Functionality(
            name="search",
            call_chain=(m_click.signature, m_search.signature),
            requests=(NetworkRequest(endpoint=api_endpoint, upload_bytes=280, download_bytes=1800),),
        ),
        Functionality(
            name="download",
            call_chain=(m_click.signature, m_browse.signature, m_download.signature),
            requests=(NetworkRequest(endpoint=api_endpoint, upload_bytes=420, download_bytes=2_400_000),),
        ),
        Functionality(
            name="upload",
            call_chain=(m_click.signature, m_upload.signature),
            requests=(NetworkRequest(endpoint=api_endpoint, upload_bytes=3_600_000, download_bytes=250),),
            desirable=False,
        ),
    )
    manifest = AndroidManifest(
        package_name=package,
        app_label="CloudBox",
        permissions=(Permission.INTERNET, Permission.READ_EXTERNAL_STORAGE),
    )
    apk = build_apk(manifest, dex, category=StoreCategory.BUSINESS, downloads=500_000_000)
    return CaseStudyApp(
        apk=apk,
        behavior=AppBehavior(package_name=package, functionalities=functionalities),
        key_signatures={
            "upload": m_upload.signature,
            "download": m_download.signature,
            "login": m_auth.signature,
            "browse": m_browse.signature,
        },
        endpoints={"api": api_endpoint},
    )


def build_box_like_app(package: str = "com.boxsync.android") -> CaseStudyApp:
    """The Box-like app: distinct endpoints, but uploads and listing share one."""
    upload_endpoint = "upload.boxsync.com"
    download_endpoint = "dl.boxsync.com"
    account_endpoint = "account.boxsync.com"
    builder = DexBuilder()
    main = builder.add_class(f"{package}.BoxActivity", superclass="android.app.Activity")
    m_click = main.add_method("onClick", ("android.view.View",))
    auth = builder.add_class(f"{package}.auth.BoxAuthentication")
    m_auth = auth.add_method("startAuthenticationUI", (), "boolean")
    listing = builder.add_class(f"{package}.browse.FolderListing")
    m_list = listing.add_method("loadFolderItems", ("java.lang.String",), "java.util.List")
    requests = builder.add_class(f"{package}.request.BoxRequestUpload")
    m_upload = requests.add_method("send", ("byte[]",), "boolean")
    downloads = builder.add_class(f"{package}.request.BoxRequestDownload")
    m_download = downloads.add_method("fetch", ("java.lang.String",), "byte[]")
    dex = builder.build()

    functionalities = (
        Functionality(
            name="login",
            call_chain=(m_click.signature, m_auth.signature),
            requests=(NetworkRequest(endpoint=account_endpoint, upload_bytes=650, download_bytes=800),),
        ),
        Functionality(
            name="browse",
            call_chain=(m_click.signature, m_list.signature),
            requests=(NetworkRequest(endpoint=upload_endpoint, upload_bytes=300, download_bytes=5200),),
        ),
        Functionality(
            name="download",
            call_chain=(m_click.signature, m_list.signature, m_download.signature),
            requests=(NetworkRequest(endpoint=download_endpoint, upload_bytes=380, download_bytes=1_900_000),),
        ),
        Functionality(
            name="upload",
            call_chain=(m_click.signature, m_upload.signature),
            requests=(NetworkRequest(endpoint=upload_endpoint, upload_bytes=2_700_000, download_bytes=200),),
            desirable=False,
        ),
    )
    manifest = AndroidManifest(package_name=package, app_label="BoxSync")
    apk = build_apk(manifest, dex, category=StoreCategory.PRODUCTIVITY, downloads=10_000_000)
    return CaseStudyApp(
        apk=apk,
        behavior=AppBehavior(package_name=package, functionalities=functionalities),
        key_signatures={
            "upload": m_upload.signature,
            "download": m_download.signature,
            "browse": m_list.signature,
            "login": m_auth.signature,
        },
        endpoints={
            "upload": upload_endpoint,
            "download": download_endpoint,
            "account": account_endpoint,
        },
    )


def build_calendar_app(package: str = "net.solcal.android") -> CaseStudyApp:
    """The SolCalendar-like app: Facebook SDK login and analytics share the Graph API."""
    graph_endpoint = "graph.facebook.com"
    backend_endpoint = "api.solcal.com"
    builder = DexBuilder()
    main = builder.add_class(f"{package}.CalendarActivity", superclass="android.app.Activity")
    m_create = main.add_method("onCreate", ("android.os.Bundle",))
    m_click = main.add_method("onClick", ("android.view.View",))
    sync = builder.add_class(f"{package}.sync.CalendarSyncAdapter")
    m_sync = sync.add_method("onPerformSync", ("android.os.Bundle",))
    fb_login = builder.add_class("com.facebook.login.LoginManager")
    m_fb_login = fb_login.add_method(
        "logInWithReadPermissions", ("java.lang.Object", "java.util.Collection")
    )
    fb_events = builder.add_class("com.facebook.appevents.AppEventsLogger")
    m_fb_log = fb_events.add_method("logEvent", ("java.lang.String",))
    m_fb_flush = fb_events.add_method("flush")
    graph = builder.add_class("com.facebook.GraphRequest")
    m_graph = graph.add_method("executeAndWait")
    dex = builder.build()

    functionalities = (
        Functionality(
            name="login_with_facebook",
            call_chain=(m_click.signature, m_fb_login.signature, m_graph.signature),
            requests=(NetworkRequest(endpoint=graph_endpoint, upload_bytes=900, download_bytes=1300),),
            library="com.facebook",
        ),
        Functionality(
            name="facebook_analytics",
            call_chain=(m_create.signature, m_fb_log.signature, m_fb_flush.signature, m_graph.signature),
            requests=(NetworkRequest(endpoint=graph_endpoint, upload_bytes=700, download_bytes=150),),
            desirable=False,
            library="com.facebook",
        ),
        Functionality(
            name="calendar_sync",
            call_chain=(m_create.signature, m_sync.signature),
            requests=(NetworkRequest(endpoint=backend_endpoint, upload_bytes=1200, download_bytes=3500),),
        ),
    )
    manifest = AndroidManifest(package_name=package, app_label="SolCalendar")
    apk = build_apk(manifest, dex, category=StoreCategory.PRODUCTIVITY, downloads=5_000_000)
    return CaseStudyApp(
        apk=apk,
        behavior=AppBehavior(package_name=package, functionalities=functionalities),
        key_signatures={
            "facebook_login": m_fb_login.signature,
            "facebook_log_event": m_fb_log.signature,
            "facebook_flush": m_fb_flush.signature,
            "graph_request": m_graph.signature,
            "calendar_sync": m_sync.signature,
        },
        endpoints={"graph": graph_endpoint, "backend": backend_endpoint},
    )
