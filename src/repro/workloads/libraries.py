"""Third-party library catalogue.

Real Android apps are "an amalgamation of developer-authored code and
various third party libraries" (paper §I).  The catalogue below models
the library ecosystem the evaluation depends on:

* named analytics / advertisement / crash-reporting SDKs with their
  characteristic packages and collector endpoints (the kind of library
  the Li et al. list flags as exfiltrating);
* HTTP client libraries (Apache HTTP client, OkHttp, Volley) that app
  components share — the mechanism behind the cross-package
  IP-of-interest cases in §VI-B;
* identity/cloud SDKs (Facebook SDK, cloud-storage SDKs) whose single
  endpoint serves both desirable and undesirable functionality.

:func:`li_library_list` reproduces the *shape* of Li et al.'s list of
1,050 privacy-invasive libraries: the named analytics/ad libraries above
plus synthetic tracker packages to reach the same count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.dex.builder import ClassSpec, LibraryTemplate, MethodSpec

#: Number of exfiltrating libraries in Li et al.'s list (paper §VI-B1).
LI_LIST_SIZE = 1050


@dataclass(frozen=True)
class LibraryBehavior:
    """One network-generating behaviour a library contributes to its host app."""

    name: str
    class_name: str
    method_name: str
    endpoint: str
    upload_bytes: int = 700
    download_bytes: int = 600
    desirable: bool = False
    weight: float = 1.0


@dataclass(frozen=True)
class LibraryProfile:
    """A library template plus the runtime behaviours it injects into apps."""

    template: LibraryTemplate
    behaviors: tuple[LibraryBehavior, ...]
    popularity: float = 1.0
    exfiltrating: bool = False

    @property
    def name(self) -> str:
        return self.template.name

    @property
    def package(self) -> str:
        return self.template.package

    @property
    def category(self) -> str:
        return self.template.category

    @property
    def slash_package(self) -> str:
        return self.package.replace(".", "/")


def _simple_library(
    name: str,
    package: str,
    category: str,
    endpoint: str,
    entry_class: str,
    entry_method: str,
    extra_methods: tuple[str, ...] = (),
    behaviors: tuple[LibraryBehavior, ...] | None = None,
    popularity: float = 1.0,
    exfiltrating: bool = False,
    upload_bytes: int = 700,
    download_bytes: int = 600,
) -> LibraryProfile:
    """Helper building a one-or-two class library with a single network entry point."""
    methods = [MethodSpec(name=entry_method, parameter_types=("java.lang.String",))]
    methods.extend(MethodSpec(name=m) for m in extra_methods)
    template = LibraryTemplate(
        name=name,
        package=package,
        category=category,
        endpoints=(endpoint,),
        classes=(
            ClassSpec(class_name=f"{package}.{entry_class}", methods=tuple(methods)),
            ClassSpec(
                class_name=f"{package}.internal.Dispatcher",
                methods=(
                    MethodSpec(name="enqueue", parameter_types=("java.lang.Object",)),
                    MethodSpec(name="flush"),
                ),
            ),
        ),
    )
    default_behavior = LibraryBehavior(
        name=f"{name.lower().replace(' ', '_')}_report",
        class_name=f"{package}.{entry_class}",
        method_name=entry_method,
        endpoint=endpoint,
        upload_bytes=upload_bytes,
        download_bytes=download_bytes,
        desirable=False,
    )
    return LibraryProfile(
        template=template,
        behaviors=behaviors if behaviors is not None else (default_behavior,),
        popularity=popularity,
        exfiltrating=exfiltrating,
    )


def _http_client_library(name: str, package: str, popularity: float) -> LibraryProfile:
    """Shared HTTP client libraries have no behaviour of their own.

    They only contribute the extra stack frames that appear when app or
    library code routes a request through them.
    """
    template = LibraryTemplate(
        name=name,
        package=package,
        category="http",
        endpoints=(),
        classes=(
            ClassSpec(
                class_name=f"{package}.client.HttpClient",
                methods=(
                    MethodSpec(name="execute", parameter_types=("java.lang.Object",)),
                    MethodSpec(name="openConnection"),
                ),
            ),
        ),
    )
    return LibraryProfile(template=template, behaviors=(), popularity=popularity)


def _builtin_profiles() -> list[LibraryProfile]:
    """The named libraries every experiment can rely on being present."""
    facebook_behaviors = (
        LibraryBehavior(
            name="facebook_login",
            class_name="com.facebook.login.LoginManager",
            method_name="logInWithReadPermissions",
            endpoint="graph.facebook.com",
            upload_bytes=900,
            download_bytes=1200,
            desirable=True,
        ),
        LibraryBehavior(
            name="facebook_app_events",
            class_name="com.facebook.appevents.AppEventsLogger",
            method_name="logEvent",
            endpoint="graph.facebook.com",
            upload_bytes=650,
            download_bytes=120,
            desirable=False,
        ),
    )
    facebook = LibraryProfile(
        template=LibraryTemplate(
            name="Facebook SDK",
            package="com.facebook",
            category="identity",
            endpoints=("graph.facebook.com",),
            classes=(
                ClassSpec(
                    class_name="com.facebook.login.LoginManager",
                    methods=(
                        MethodSpec(
                            name="logInWithReadPermissions",
                            parameter_types=("java.lang.Object", "java.util.Collection"),
                        ),
                    ),
                ),
                ClassSpec(
                    class_name="com.facebook.appevents.AppEventsLogger",
                    methods=(
                        MethodSpec(name="logEvent", parameter_types=("java.lang.String",)),
                        MethodSpec(name="flush"),
                    ),
                ),
                ClassSpec(
                    class_name="com.facebook.GraphRequest",
                    methods=(
                        MethodSpec(name="executeAndWait"),
                        MethodSpec(name="executeAsync"),
                    ),
                ),
            ),
        ),
        behaviors=facebook_behaviors,
        popularity=9.0,
        exfiltrating=False,
    )

    profiles = [
        facebook,
        _simple_library(
            "Flurry Analytics", "com.flurry.sdk", "analytics", "data.flurry.com",
            "FlurryAgent", "onEvent", ("logEvent", "onStartSession"),
            popularity=10.0, exfiltrating=True,
        ),
        _simple_library(
            "Google Analytics", "com.google.android.gms.analytics", "analytics",
            "ssl.google-analytics.com", "Tracker", "send", ("setScreenName",),
            popularity=9.5, exfiltrating=True,
        ),
        _simple_library(
            "Firebase Analytics", "com.google.firebase.analytics", "analytics",
            "app-measurement.com", "FirebaseAnalytics", "logEvent",
            popularity=9.0, exfiltrating=True,
        ),
        _simple_library(
            "Crashlytics", "com.crashlytics.android", "crash", "reports.crashlytics.com",
            "Crashlytics", "logException", popularity=8.5, exfiltrating=True,
        ),
        _simple_library(
            "Mixpanel", "com.mixpanel.android", "analytics", "api.mixpanel.com",
            "MixpanelAPI", "track", popularity=6.0, exfiltrating=True,
        ),
        _simple_library(
            "AppsFlyer", "com.appsflyer", "analytics", "t.appsflyer.com",
            "AppsFlyerLib", "trackEvent", popularity=6.5, exfiltrating=True,
        ),
        _simple_library(
            "Localytics", "com.localytics.android", "analytics", "analytics.localytics.com",
            "Localytics", "tagEvent", popularity=4.0, exfiltrating=True,
        ),
        _simple_library(
            "Adjust", "com.adjust.sdk", "analytics", "app.adjust.com",
            "Adjust", "trackEvent", popularity=4.5, exfiltrating=True,
        ),
        _simple_library(
            "Amplitude", "com.amplitude.api", "analytics", "api.amplitude.com",
            "AmplitudeClient", "logEvent", popularity=3.5, exfiltrating=True,
        ),
        _simple_library(
            "AdMob", "com.google.android.gms.ads", "advertisement", "googleads.g.doubleclick.net",
            "AdRequest", "loadAd", ("requestBanner",), popularity=9.8, exfiltrating=True,
            download_bytes=14_000,
        ),
        _simple_library(
            "MoPub", "com.mopub.mobileads", "advertisement", "ads.mopub.com",
            "MoPubView", "loadAd", popularity=7.0, exfiltrating=True, download_bytes=11_000,
        ),
        _simple_library(
            "InMobi", "com.inmobi.ads", "advertisement", "api.w.inmobi.com",
            "InMobiBanner", "load", popularity=5.5, exfiltrating=True, download_bytes=9_000,
        ),
        _simple_library(
            "Unity Ads", "com.unity3d.ads", "advertisement", "publisher-config.unityads.unity3d.com",
            "UnityAds", "show", popularity=5.0, exfiltrating=True, download_bytes=16_000,
        ),
        _simple_library(
            "Chartboost", "com.chartboost.sdk", "advertisement", "live.chartboost.com",
            "Chartboost", "showInterstitial", popularity=3.0, exfiltrating=True,
            download_bytes=8_000,
        ),
        _simple_library(
            "Vungle", "com.vungle.warren", "advertisement", "api.vungle.com",
            "Vungle", "playAd", popularity=2.5, exfiltrating=True, download_bytes=12_000,
        ),
        _simple_library(
            "OneSignal Push", "com.onesignal", "utility", "onesignal.com",
            "OneSignal", "sendTag", popularity=5.0, exfiltrating=False,
        ),
        _simple_library(
            "Branch.io", "io.branch.referral", "analytics", "api2.branch.io",
            "Branch", "initSession", popularity=3.0, exfiltrating=True,
        ),
        _simple_library(
            "Urban Airship", "com.urbanairship", "utility", "device-api.urbanairship.com",
            "UAirship", "channelUpdate", popularity=2.0, exfiltrating=False,
        ),
        _http_client_library("Apache HTTP Client", "org.apache.http", popularity=8.0),
        _http_client_library("OkHttp", "com.squareup.okhttp3", popularity=8.5),
        _http_client_library("Volley", "com.android.volley", popularity=6.0),
    ]
    return profiles


def _synthetic_tracker(index: int) -> LibraryProfile:
    """One of the anonymous tracker libraries filling out the Li-list tail."""
    package = f"com.tracker{index:04d}.sdk"
    return _simple_library(
        name=f"Tracker {index:04d}",
        package=package,
        category="analytics",
        endpoint=f"collect.tracker{index:04d}.io",
        entry_class="Collector",
        entry_method="submit",
        popularity=max(0.05, 2.0 / (index + 2)),
        exfiltrating=True,
        upload_bytes=500 + (index % 7) * 120,
        download_bytes=100,
    )


@dataclass
class LibraryCatalog:
    """All libraries available to the corpus generator."""

    profiles: list[LibraryProfile] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_package = {p.package: p for p in self.profiles}

    def add(self, profile: LibraryProfile) -> None:
        self.profiles.append(profile)
        self._by_package[profile.package] = profile

    def get(self, package: str) -> LibraryProfile | None:
        return self._by_package.get(package)

    def by_category(self, category: str) -> list[LibraryProfile]:
        return [p for p in self.profiles if p.category == category]

    def exfiltrating(self) -> list[LibraryProfile]:
        return [p for p in self.profiles if p.exfiltrating]

    def http_clients(self) -> list[LibraryProfile]:
        return self.by_category("http")

    def with_behaviors(self) -> list[LibraryProfile]:
        return [p for p in self.profiles if p.behaviors]

    def sample(self, rng: random.Random, count: int) -> list[LibraryProfile]:
        """Popularity-weighted sample without replacement."""
        available = list(self.profiles)
        chosen: list[LibraryProfile] = []
        for _ in range(min(count, len(available))):
            weights = [p.popularity for p in available]
            pick = rng.choices(available, weights=weights, k=1)[0]
            chosen.append(pick)
            available.remove(pick)
        return chosen

    def __len__(self) -> int:
        return len(self.profiles)

    def __iter__(self):
        return iter(self.profiles)


def builtin_catalog(synthetic_trackers: int = 40) -> LibraryCatalog:
    """The default catalogue: named SDKs plus ``synthetic_trackers`` filler trackers."""
    profiles = _builtin_profiles()
    profiles.extend(_synthetic_tracker(i) for i in range(synthetic_trackers))
    return LibraryCatalog(profiles=profiles)


def li_library_list(catalog: LibraryCatalog | None = None, size: int = LI_LIST_SIZE) -> list[str]:
    """The slash-form package prefixes of the Li et al. exfiltrating-library list.

    The real list contains 1,050 entries; ours contains every
    exfiltrating library of the catalogue plus synthetic tracker
    packages up to ``size`` entries, so the validation policy has the
    same shape (a long deny-list, most of whose entries never appear in
    any given app sample).
    """
    catalog = catalog or builtin_catalog()
    entries = [p.slash_package for p in catalog.exfiltrating()]
    index = 5000
    while len(entries) < size:
        entries.append(f"com/tracker{index:04d}/sdk")
        index += 1
    return entries[:size]
