"""Synthetic BUSINESS / PRODUCTIVITY app corpus.

The paper's §VI-B analysis runs 2,000 popular Google Play apps (1,000
from each of the BUSINESS and PRODUCTIVITY categories) under monkey
exercise and studies how often different app functionalities connect to
the *same* destination address (IPs-of-interest).  The generator below
produces a corpus with the structural properties that analysis measures:

* every app has developer-authored functionality talking to its own
  backend endpoints plus a popularity-weighted sample of third-party
  libraries (analytics, ads, crash reporting, HTTP clients) talking to
  their collector endpoints;
* a configurable fraction of apps (defaulting to the paper's observed
  218/2000) contain one or more IPs-of-interest — endpoints reached from
  two or more distinct calling contexts;
* of those, a configurable fraction (paper: 25%) realise the IoI through
  a shared HTTP client library, so the distinct stacks span different
  Java packages, while the rest keep all frames in one package.

Every generated app is a complete :class:`~repro.apk.package.ApkFile`
(with its own dex content, hash, manifest) plus an
:class:`~repro.android.app_model.AppBehavior`, so the corpus flows
through exactly the same Offline Analyzer → Context Manager → Policy
Enforcer pipeline as the hand-built case studies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.android.app_model import AppBehavior, Functionality, NetworkRequest
from repro.apk.manifest import AndroidManifest, Permission
from repro.apk.package import ApkFile, StoreCategory, build_apk
from repro.dex.builder import DexBuilder
from repro.dex.model import DexFile
from repro.dex.signature import MethodSignature
from repro.network.topology import EnterpriseNetwork
from repro.workloads.libraries import LibraryCatalog, LibraryProfile, builtin_catalog

_APP_WORDS = (
    "docs", "sheets", "notes", "mail", "scan", "sign", "plan", "crm", "invoice",
    "meet", "chat", "task", "time", "board", "wiki", "vault", "forms", "report",
)
_VENDOR_WORDS = (
    "acme", "globex", "initech", "umbra", "vertex", "nimbus", "quanta", "zenith",
    "orbit", "pioneer", "summit", "beacon", "cobalt", "harbor", "lumen", "strata",
)


def _find_signature(dex: DexFile, class_name: str, method_name: str) -> MethodSignature:
    """Look up the signature of ``class_name.method_name`` in a built dex file."""
    descriptor = "L" + class_name.replace(".", "/") + ";"
    class_def = dex.get_class(descriptor)
    if class_def is None:
        raise KeyError(f"class {class_name} not present in dex")
    overloads = class_def.find_methods(method_name)
    if not overloads:
        raise KeyError(f"{class_name} has no method {method_name}")
    return min(overloads, key=lambda m: m.signature.sort_key()).signature


@dataclass
class CorpusConfig:
    """Tunable knobs of the corpus generator (defaults follow the paper)."""

    n_apps: int = 2000
    seed: int = 7
    #: Fraction of apps containing at least one IP-of-interest (218 / 2000).
    ioi_probability: float = 0.109
    #: Relative weights of 1, 2, 3, 4 and 5 IoIs per IoI app (Figure 3 bars).
    ioi_count_weights: tuple[float, ...] = (152.0, 53.0, 8.0, 3.0, 2.0)
    #: Fraction of IoI apps whose distinct stacks span different Java packages.
    cross_package_fraction: float = 0.25
    #: How many third-party libraries each app bundles.
    min_libraries: int = 1
    max_libraries: int = 5
    #: Weight of "no network activity" UI events for the monkey exerciser.
    idle_weight: float = 6.0


@dataclass
class CorpusApp:
    """One generated app plus the ground truth the experiments score against."""

    apk: ApkFile
    behavior: AppBehavior
    category: StoreCategory
    libraries: list[str] = field(default_factory=list)
    designed_ioi_endpoints: list[str] = field(default_factory=list)
    ioi_style: str = "none"

    @property
    def package_name(self) -> str:
        return self.apk.package_name

    @property
    def designed_ioi_count(self) -> int:
        return len(self.designed_ioi_endpoints)

    def endpoints(self) -> set[str]:
        return self.behavior.endpoints()


class CorpusGenerator:
    """Deterministic generator for the synthetic PlayDrone-style corpus."""

    def __init__(
        self,
        config: CorpusConfig | None = None,
        catalog: LibraryCatalog | None = None,
    ) -> None:
        self.config = config or CorpusConfig()
        self.catalog = catalog or builtin_catalog()
        http_clients = self.catalog.http_clients()
        if not http_clients:
            raise ValueError("the library catalogue must contain at least one HTTP client")
        self._http_clients = http_clients
        self._facebook = self.catalog.get("com.facebook")

    # -- public API ---------------------------------------------------------------

    def generate(self, n_apps: int | None = None) -> list[CorpusApp]:
        """Generate ``n_apps`` apps (defaults to the configured corpus size)."""
        count = self.config.n_apps if n_apps is None else n_apps
        rng = random.Random(self.config.seed)
        return [self._build_app(index, rng) for index in range(count)]

    @staticmethod
    def register_endpoints(network: EnterpriseNetwork, apps: list[CorpusApp]) -> int:
        """Register every endpoint of every app as a server in the network."""
        names: set[str] = set()
        for app in apps:
            names |= app.endpoints()
        for name in sorted(names):
            network.add_server(name)
        return len(names)

    # -- app construction -----------------------------------------------------------

    def _build_app(self, index: int, rng: random.Random) -> CorpusApp:
        vendor = rng.choice(_VENDOR_WORDS)
        word = rng.choice(_APP_WORDS)
        package = f"com.{vendor}.{word}{index:04d}"
        category = StoreCategory.BUSINESS if index % 2 == 0 else StoreCategory.PRODUCTIVITY
        backend = f"api.{vendor}{index:04d}.com"

        has_ioi = rng.random() < self.config.ioi_probability
        ioi_count = 0
        if has_ioi:
            ioi_count = rng.choices(
                population=list(range(1, len(self.config.ioi_count_weights) + 1)),
                weights=list(self.config.ioi_count_weights),
                k=1,
            )[0]
        cross_package = has_ioi and rng.random() < self.config.cross_package_fraction
        use_facebook_ioi = has_ioi and self._facebook is not None and rng.random() < 0.30

        libraries = self._sample_libraries(rng, cross_package, use_facebook_ioi)
        builder = DexBuilder()
        self._add_app_classes(builder, package)
        for profile in libraries:
            builder.add_library(profile.template)
        dex = builder.build()

        functionalities: list[Functionality] = []
        ioi_endpoints: list[str] = []
        functionalities.extend(
            self._core_functionalities(
                dex, package, backend, rng,
                ioi_count=ioi_count,
                cross_package=cross_package,
                use_facebook_ioi=use_facebook_ioi,
                ioi_endpoints=ioi_endpoints,
            )
        )
        functionalities.extend(
            self._library_functionalities(dex, package, libraries, use_facebook_ioi, ioi_endpoints)
        )

        manifest = AndroidManifest(
            package_name=package,
            version_code=rng.randint(1, 40),
            app_label=f"{vendor.title()} {word.title()}",
            permissions=(Permission.INTERNET, Permission.ACCESS_NETWORK_STATE),
        )
        apk = build_apk(
            manifest,
            dex,
            resources={"res/layout/main.xml": b"<layout/>", "res/values/strings.xml": package.encode()},
            category=category,
            downloads=rng.randint(10_000, 50_000_000),
        )
        behavior = AppBehavior(
            package_name=package,
            functionalities=tuple(functionalities),
            idle_weight=self.config.idle_weight,
        )
        style = "none"
        if ioi_endpoints:
            style = "cross_package" if cross_package else "same_package"
        return CorpusApp(
            apk=apk,
            behavior=behavior,
            category=category,
            libraries=[p.package for p in libraries],
            designed_ioi_endpoints=ioi_endpoints,
            ioi_style=style,
        )

    # -- pieces -------------------------------------------------------------------------

    def _sample_libraries(
        self, rng: random.Random, cross_package: bool, use_facebook_ioi: bool
    ) -> list[LibraryProfile]:
        count = rng.randint(self.config.min_libraries, self.config.max_libraries)
        sampled = [
            p
            for p in self.catalog.sample(rng, count)
            if p.package != "com.facebook"
        ]
        if use_facebook_ioi and self._facebook is not None:
            sampled.append(self._facebook)
        if cross_package and not any(p.category == "http" for p in sampled):
            sampled.append(rng.choice(self._http_clients))
        return sampled

    def _add_app_classes(self, builder: DexBuilder, package: str) -> None:
        main = builder.add_class(f"{package}.MainActivity", superclass="android.app.Activity")
        main.add_constructor()
        main.add_method("onCreate", ("android.os.Bundle",))
        main.add_method("onClick", ("android.view.View",))
        main.add_method("onResume")
        api = builder.add_class(f"{package}.net.ApiClient")
        api.add_constructor()
        api.add_method("login", ("java.lang.String", "java.lang.String"), "boolean")
        api.add_method("syncDocuments", (), "int")
        api.add_method("fetchFeed", ("java.lang.String",), "java.lang.String")
        api.add_method("uploadReport", ("byte[]",), "boolean")
        api.add_method("callService", ("java.lang.String",), "java.lang.String", code_size=32)
        settings = builder.add_class(f"{package}.ui.SettingsActivity", superclass="android.app.Activity")
        settings.add_method("onCreate", ("android.os.Bundle",))
        settings.add_method("applyPreferences")

    def _core_functionalities(
        self,
        dex: DexFile,
        package: str,
        backend: str,
        rng: random.Random,
        ioi_count: int,
        cross_package: bool,
        use_facebook_ioi: bool,
        ioi_endpoints: list[str],
    ) -> list[Functionality]:
        main_click = _find_signature(dex, f"{package}.MainActivity", "onClick")
        api_login = _find_signature(dex, f"{package}.net.ApiClient", "login")
        api_sync = _find_signature(dex, f"{package}.net.ApiClient", "syncDocuments")
        api_fetch = _find_signature(dex, f"{package}.net.ApiClient", "fetchFeed")
        api_call = _find_signature(dex, f"{package}.net.ApiClient", "callService")

        functionalities = [
            Functionality(
                name="login",
                call_chain=(main_click, api_login),
                requests=(NetworkRequest(endpoint=backend, upload_bytes=600, download_bytes=900),),
                weight=1.2,
            )
        ]

        # The number of backend-style IoIs we still need to realise; the
        # Facebook SDK, when selected as an IoI mechanism, accounts for one.
        backend_iois = max(0, ioi_count - (1 if use_facebook_ioi else 0))

        if backend_iois >= 1:
            # IoI #1: the app's main backend serves both login and sync.
            sync_chain = [main_click, api_sync]
            if cross_package:
                http_execute = self._http_execute_signature(dex)
                if http_execute is not None:
                    sync_chain.append(http_execute)
            functionalities.append(
                Functionality(
                    name="sync_documents",
                    call_chain=tuple(sync_chain),
                    requests=(NetworkRequest(endpoint=backend, upload_bytes=1400, download_bytes=5200),),
                    weight=1.0,
                )
            )
            ioi_endpoints.append(backend)
        else:
            functionalities.append(
                Functionality(
                    name="sync_documents",
                    call_chain=(main_click, api_sync),
                    requests=(
                        NetworkRequest(endpoint=f"sync.{backend}", upload_bytes=1400, download_bytes=5200),
                    ),
                    weight=1.0,
                )
            )

        # Additional backend IoIs: one extra service endpoint per IoI, reached
        # from two distinct call chains.
        for extra in range(1, backend_iois):
            endpoint = f"svc{extra}.{backend}"
            chain_a = (main_click, api_fetch)
            chain_b: tuple[MethodSignature, ...] = (main_click, api_call)
            if cross_package and extra == 1:
                http_execute = self._http_execute_signature(dex)
                if http_execute is not None:
                    chain_b = (main_click, api_call, http_execute)
            functionalities.append(
                Functionality(
                    name=f"feature{extra}_fetch",
                    call_chain=chain_a,
                    requests=(NetworkRequest(endpoint=endpoint, upload_bytes=400, download_bytes=2600),),
                    weight=0.9,
                )
            )
            functionalities.append(
                Functionality(
                    name=f"feature{extra}_submit",
                    call_chain=chain_b,
                    requests=(NetworkRequest(endpoint=endpoint, upload_bytes=2100, download_bytes=300),),
                    weight=0.9,
                )
            )
            ioi_endpoints.append(endpoint)

        # A plain feed fetch to a distinct endpoint keeps non-IoI apps realistic.
        functionalities.append(
            Functionality(
                name="fetch_feed",
                call_chain=(main_click, api_fetch),
                requests=(
                    NetworkRequest(endpoint=f"cdn.{backend}", upload_bytes=300, download_bytes=rng.randint(800, 60_000)),
                ),
                weight=1.1,
            )
        )
        return functionalities

    def _http_execute_signature(self, dex: DexFile) -> MethodSignature | None:
        for profile in self._http_clients:
            class_name = f"{profile.package}.client.HttpClient"
            try:
                return _find_signature(dex, class_name, "execute")
            except KeyError:
                continue
        return None

    def _library_functionalities(
        self,
        dex: DexFile,
        package: str,
        libraries: list[LibraryProfile],
        use_facebook_ioi: bool,
        ioi_endpoints: list[str],
    ) -> list[Functionality]:
        main_resume = _find_signature(dex, f"{package}.MainActivity", "onResume")
        functionalities: list[Functionality] = []
        for profile in libraries:
            for behavior in profile.behaviors:
                try:
                    lib_signature = _find_signature(dex, behavior.class_name, behavior.method_name)
                except KeyError:
                    continue
                functionalities.append(
                    Functionality(
                        name=behavior.name,
                        call_chain=(main_resume, lib_signature),
                        requests=(
                            NetworkRequest(
                                endpoint=behavior.endpoint,
                                upload_bytes=behavior.upload_bytes,
                                download_bytes=behavior.download_bytes,
                            ),
                        ),
                        weight=behavior.weight,
                        desirable=behavior.desirable,
                        library=profile.package,
                    )
                )
            if profile.package == "com.facebook" and use_facebook_ioi:
                ioi_endpoints.append("graph.facebook.com")
        return functionalities
