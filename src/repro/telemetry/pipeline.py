"""The telemetry pipeline: enforcement publishes, the auditor consumes.

:class:`AuditSink` is the one-method contract the data plane sees: the
enforcer calls ``publish(record, source)`` for every packet it decides
(regardless of ``keep_records``, which only controls the enforcer's own
audit trail).  :class:`TelemetryPipeline` is the standard sink for one
gateway: it optionally appends to a durable
:class:`~repro.telemetry.audit.AuditLog`, folds the record into the
gateway's :class:`~repro.telemetry.aggregate.SlidingWindowAggregator`
and runs the detector stack.

A fleet runs one pipeline *per gateway*, federated by a
:class:`FleetAuditor`.  In the default buffered mode the enforcement
hot loop only pays a queue append (:class:`TelemetryBuffer`); each
gateway's collector consumes its stream off the fast path and its
wall-clock is charged explicitly via :meth:`FleetAuditor.drain` —
pipelined with enforcement, the fleet pays ``max(enforcement,
collection)`` per burst, the same style of parallel accounting the
fleet uses for replica catch-up.

The auditor also runs the analyses no single gateway can perform: flow
hashing spreads one device's flows across gateways, so a fragmented
exfiltration may stay under every per-gateway window budget while the
*fleet-wide* (device, destination) volume is flagrant.
:meth:`FleetAuditor.scan_exfiltration` merges the per-gateway windows
and alerts on exactly that case.
"""

from __future__ import annotations

import time

from repro.netstack.netfilter import Verdict
from repro.telemetry.aggregate import SlidingWindowAggregator
from repro.telemetry.audit import AuditLog
from repro.telemetry.detectors import (
    INTEGRITY_REASONS,
    Alert,
    Detector,
    ExfiltrationVolumeDetector,
    PolicyViolationBurstDetector,
    SpoofedTagDetector,
    UnknownTagDetector,
    default_detectors,
)

#: Detector types the pipeline inlines cheap firing preconditions for.
#: Other detectors keep the fast path alive by setting ``guarded = True``
#: and implementing :meth:`~repro.telemetry.detectors.Detector.interesting`
#: (e.g. the operator control plane's online-baseline exfiltration
#: detector); any unguarded detector disables the fast path entirely.
_GUARDED_DETECTORS = (
    UnknownTagDetector,
    SpoofedTagDetector,
    ExfiltrationVolumeDetector,
    PolicyViolationBurstDetector,
)


class AuditSink:
    """What the data plane publishes enforcement records into."""

    def publish(self, record, source: str = "") -> None:
        raise NotImplementedError


class TelemetryPipeline(AuditSink):
    """One gateway's sink: durable log + sliding windows + detectors."""

    def __init__(
        self,
        window_packets: int = 4096,
        detectors: list[Detector] | None = None,
        audit_log: AuditLog | None = None,
        source: str = "",
    ) -> None:
        self.source = source
        self.aggregator = SlidingWindowAggregator(window_packets=window_packets)
        #: Optional callable every appended alert is forwarded to (the
        #: operator alert bus attaches itself here via
        #: :meth:`FleetAuditor.attach_bus`).
        self.alert_sink = None
        self.detectors = detectors if detectors is not None else default_detectors()
        self.audit_log = audit_log
        self.alerts: list[Alert] = []
        #: Records published through this pipeline.
        self.records_seen = 0
        # Observability counters (attach_observability); None keeps the
        # publish fast path at one attribute check.
        self._obs_records = None
        self._obs_alerts = None

    @property
    def detectors(self) -> tuple[Detector, ...]:
        """The detector stack, as an immutable tuple.

        Assign a new sequence to change it — assignment recomputes the
        publish fast-path guards.  The tuple makes in-place mutation
        (``pipeline.detectors.append(...)``) fail loudly instead of
        leaving a stale guard that silently skips the new detector on
        benign traffic.
        """
        return self._detectors

    @detectors.setter
    def detectors(self, detectors) -> None:
        self._detectors = tuple(detectors)
        # Precompute the cheap firing guards.  The built-in detectors
        # can only fire on drops, integrity failures, unprovisioned tags
        # or over-budget volumes; when the stack consists solely of
        # them (or of detectors declaring their own guard), benign
        # records skip the detector loop entirely — this is what keeps
        # publish affordable inside the gateway's timed hot loop.  Any
        # unguarded custom detector disables the fast path.
        self._guarded = all(
            isinstance(detector, _GUARDED_DETECTORS)
            or getattr(detector, "guarded", False)
            for detector in self._detectors
        )
        #: Guards of guarded non-builtin detectors, consulted after the
        #: inlined builtin checks came up uninteresting.
        self._extra_guards = tuple(
            detector.interesting
            for detector in self._detectors
            if not isinstance(detector, _GUARDED_DETECTORS)
            and getattr(detector, "guarded", False)
        )
        #: (stride, hook) pairs: detectors that fold completed window
        #: state into streaming baselines.  Driven here — not from
        #: ``observe`` — so folding happens even when the fast path
        #: skips the detector loop for a benign record.
        self._window_hooks = tuple(
            (int(detector.fold_every), detector.on_window)
            for detector in self._detectors
            if getattr(detector, "fold_every", 0) and hasattr(detector, "on_window")
        )
        self._spoof_map = next(
            (
                detector.provisioned
                for detector in self._detectors
                if isinstance(detector, SpoofedTagDetector)
            ),
            None,
        )
        self._exfil_budget = next(
            (
                detector.window_bytes
                for detector in self._detectors
                if isinstance(detector, ExfiltrationVolumeDetector)
            ),
            None,
        )

    def attach_observability(self, registry, source: str | None = None) -> None:
        """Count published records and raised alerts into ``registry``
        (gauge-free: both are monotone counters labeled by gateway)."""
        label = source or self.source or "gateway"
        self._obs_records = registry.counter(
            "telemetry_records_total", "Records published per gateway", ("gateway",)
        ).labels(gateway=label)
        self._obs_alerts = registry.counter(
            "telemetry_alerts_total", "Detector alerts raised per gateway", ("gateway",)
        ).labels(gateway=label)

    def publish(self, record, source: str = "") -> None:
        self.records_seen += 1
        if self._obs_records is not None:
            self._obs_records.inc()
        label = source or self.source
        if self.audit_log is not None:
            self.audit_log.append(record)
        aggregator = self.aggregator
        aggregator.observe(record, label)
        if self._window_hooks:
            seq = aggregator.seq
            for stride, hook in self._window_hooks:
                if seq % stride == 0:
                    hook(aggregator)
        if self._guarded:
            interesting = (
                record.verdict is Verdict.DROP or record.reason in INTEGRITY_REASONS
            )
            if not interesting and self._spoof_map is not None:
                app_id = record.app_id
                if app_id and record.package_name:
                    allowed = self._spoof_map.get(record.src_ip)
                    interesting = allowed is not None and app_id not in allowed
            if not interesting and self._exfil_budget is not None:
                interesting = (
                    aggregator.volumes.get((record.src_ip, record.dst_ip), 0)
                    > self._exfil_budget
                )
            if not interesting:
                for guard in self._extra_guards:
                    if guard(record, aggregator):
                        interesting = True
                        break
            if not interesting:
                return
        for detector in self._detectors:
            alert = detector.observe(record, label, aggregator)
            if alert is not None:
                self.alerts.append(alert)
                if self._obs_alerts is not None:
                    self._obs_alerts.inc()
                if self.alert_sink is not None:
                    self.alert_sink(alert)

    def alert_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for alert in self.alerts:
            counts[alert.kind] = counts.get(alert.kind, 0) + 1
        return counts

    def flush(self) -> None:
        if self.audit_log is not None:
            self.audit_log.flush()


class TelemetryBuffer(AuditSink):
    """The hand-off queue between enforcement and a gateway's collector.

    Real gateways never run analytics inside the NFQUEUE consumer: the
    fast path enqueues the record and a collector process on another
    core consumes the stream.  ``publish`` is accordingly a bare list
    append — the only telemetry cost the enforcement hot loop pays —
    and :meth:`drain` replays the backlog through the gateway's
    :class:`TelemetryPipeline`, returning how long the collector spent
    so the caller can charge collection wall-clock explicitly (the
    fleet model charges ``max(enforcement, collection)`` per burst:
    the two are pipelined, not serialized).
    """

    def __init__(self, pipeline: TelemetryPipeline) -> None:
        self.pipeline = pipeline
        self._pending: list = []
        #: Total seconds the collector spent draining this buffer.
        self.drain_wall_s = 0.0

    def publish(self, record, source: str = "") -> None:
        # The buffer is per gateway, so the source label is implied by
        # the pipeline it drains into; a bare append keeps the data
        # plane's telemetry tax to one list operation.
        self._pending.append(record)

    def __len__(self) -> int:
        return len(self._pending)

    def drain(self) -> float:
        """Run the collector over the backlog; returns its wall-clock."""
        pending = self._pending
        if not pending:
            return 0.0
        self._pending = []
        publish = self.pipeline.publish
        started = time.perf_counter()
        for record in pending:
            publish(record)
        elapsed = time.perf_counter() - started
        self.drain_wall_s += elapsed
        return elapsed


class FleetAuditor:
    """Per-gateway pipelines plus the fleet-level analyses across them.

    ``spool_dir`` (optional) gives each gateway pipeline a rotating
    :class:`AuditLog` under ``spool_dir/<gateway>/`` so the full fleet
    record stream is recoverable; without it pipelines run windows and
    detectors only.

    With ``buffered=True`` (the default) each gateway publishes into a
    :class:`TelemetryBuffer` and the caller drives the collectors via
    :meth:`drain` (per burst, typically); ``buffered=False`` runs the
    full pipeline synchronously inside the enforcement loop — simpler,
    and what single-gateway examples use.

    ``detector_factory`` (optional) overrides the default detector
    stack: called with the gateway name, it returns the detector list
    for that gateway's pipeline — how the operator control plane swaps
    the offline-calibrated exfiltration detector for its online-baseline
    one without this module depending on :mod:`repro.ops`.
    """

    def __init__(
        self,
        window_packets: int = 4096,
        provisioned: dict[str, frozenset[str]] | None = None,
        exfil_window_bytes: int = 262144,
        burst: int = 8,
        spool_dir=None,
        audit_capacity: int = 65536,
        segment_records: int = 1024,
        buffered: bool = True,
        detector_factory=None,
    ) -> None:
        self.window_packets = window_packets
        self.provisioned = provisioned
        self.exfil_window_bytes = exfil_window_bytes
        self.burst = burst
        self.spool_dir = spool_dir
        self.audit_capacity = audit_capacity
        self.segment_records = segment_records
        self.buffered = buffered
        self.detector_factory = detector_factory
        self.pipelines: dict[str, TelemetryPipeline] = {}
        self.buffers: dict[str, TelemetryBuffer] = {}
        #: Alerts raised by fleet-level scans (not owned by one gateway).
        self.fleet_alerts: list[Alert] = []
        self._exfil_fired: set[tuple[str, str]] = set()
        #: The operator alert bus, when one is attached: every pipeline
        #: and fleet-level alert is forwarded into it as it fires.
        self.bus = None
        #: Fleet-level federated detectors (anything exposing
        #: ``scan(pipelines) -> list[Alert]``, canonically a
        #: :class:`repro.ops.federation.FleetFederation`).
        self.federation = None
        #: Metrics registry, when observability is attached: existing
        #: and lazily-created pipelines all count into it.
        self.registry = None

    # -- wiring ------------------------------------------------------------------------

    def pipeline_for(self, gateway: str) -> AuditSink:
        """The (lazily created) sink one gateway publishes into.

        Returns the gateway's :class:`TelemetryBuffer` in buffered mode
        and the :class:`TelemetryPipeline` itself otherwise; either way
        the pipeline is reachable via :attr:`pipelines`.
        """
        pipeline = self.pipelines.get(gateway)
        if pipeline is None:
            audit_log = None
            if self.spool_dir is not None:
                from pathlib import Path

                audit_log = AuditLog(
                    capacity=self.audit_capacity,
                    spool_dir=Path(self.spool_dir) / gateway,
                    segment_records=self.segment_records,
                )
            if self.detector_factory is not None:
                detectors = self.detector_factory(gateway)
            else:
                detectors = default_detectors(
                    provisioned=self.provisioned,
                    exfil_window_bytes=self.exfil_window_bytes,
                    burst=self.burst,
                )
            pipeline = TelemetryPipeline(
                window_packets=self.window_packets,
                detectors=detectors,
                audit_log=audit_log,
                source=gateway,
            )
            if self.bus is not None:
                pipeline.alert_sink = self.bus.publish
            if self.registry is not None:
                pipeline.attach_observability(self.registry, gateway)
            self.pipelines[gateway] = pipeline
            if self.buffered:
                self.buffers[gateway] = TelemetryBuffer(pipeline)
        if self.buffered:
            return self.buffers[gateway]
        return pipeline

    def attach_bus(self, bus) -> None:
        """Forward every alert — per-gateway and fleet-level — into ``bus``.

        ``bus`` is anything exposing ``publish(alert)``, canonically a
        :class:`repro.ops.bus.AlertBus` (duck-typed so telemetry never
        imports :mod:`repro.ops`).  Existing pipelines are rewired and
        lazily-created ones inherit the sink.
        """
        self.bus = bus
        for pipeline in self.pipelines.values():
            pipeline.alert_sink = bus.publish

    def attach_observability(self, registry) -> None:
        """Count record/alert volume per gateway into ``registry``.
        Existing pipelines are instrumented now; lazily-created ones
        (late-joining gateways) inherit the registry."""
        self.registry = registry
        for gateway, pipeline in self.pipelines.items():
            pipeline.attach_observability(registry, gateway)

    def attach_federation(self, federation) -> None:
        """Install the fleet-level federated detector set.

        ``federation`` exposes ``scan(pipelines) -> list[Alert]``; it is
        driven via :meth:`scan_federated`, typically once per drained
        burst.
        """
        self.federation = federation

    # -- collection --------------------------------------------------------------------

    def drain(self) -> float:
        """Run every gateway's collector over its backlog.

        Collectors are independent processes, one per gateway, so the
        fleet pays the slowest one — the returned value — per drive.
        No-op (0.0) in synchronous mode.
        """
        walls = [buffer.drain() for buffer in self.buffers.values()]
        return max(walls, default=0.0)

    # -- fleet-level analyses ----------------------------------------------------------

    def scan_exfiltration(self, window_bytes: int | None = None) -> list[Alert]:
        """Fleet-wide volume anomalies the per-gateway windows cannot see.

        Flow-hash routing splits one device's flows across gateways;
        summing the per-gateway windows reassembles the device's true
        outbound volume per destination.  A pair over the fleet budget
        must show at least ``budget / num_gateways`` on *some* gateway,
        so the scan first collects those candidates with plain integer
        compares and only sums across gateways for them — the scan runs
        per burst, so it must not re-aggregate the whole window.  Each
        offending pair alerts once per auditor lifetime.
        """
        budget = self.exfil_window_bytes if window_bytes is None else window_bytes
        pipelines = list(self.pipelines.values())
        if not pipelines:
            return []
        local_floor = budget // max(1, len(pipelines))
        fired = self._exfil_fired
        candidates: set[tuple[str, str]] = set()
        for pipeline in pipelines:
            for key, volume in pipeline.aggregator.volumes.items():
                if volume > local_floor and key not in fired:
                    candidates.add(key)
        fresh: list[Alert] = []
        for device, dst in sorted(candidates):
            volume = sum(
                pipeline.aggregator.volumes.get((device, dst), 0)
                for pipeline in pipelines
            )
            if volume <= budget:
                continue
            fired.add((device, dst))
            fresh.append(
                Alert(
                    kind="exfil-volume",
                    device=device,
                    dst_ip=dst,
                    source="fleet",
                    detail=(
                        f"{volume} bytes fleet-wide to one destination inside "
                        f"the window (budget {budget})"
                    ),
                )
            )
        self._emit_fleet_alerts(fresh)
        return fresh

    def scan_federated(self) -> list[Alert]:
        """Run the attached federated detectors across every gateway window.

        Returns the fresh fleet-level alerts (also appended to
        :attr:`fleet_alerts` and forwarded to the bus).  No-op without
        an attached federation.
        """
        if self.federation is None:
            return []
        fresh = self.federation.scan(self.pipelines)
        self._emit_fleet_alerts(fresh)
        return fresh

    def _emit_fleet_alerts(self, fresh: list[Alert]) -> None:
        self.fleet_alerts.extend(fresh)
        if self.bus is not None:
            for alert in fresh:
                self.bus.publish(alert)

    # -- aggregated inspection ---------------------------------------------------------

    @property
    def alerts(self) -> list[Alert]:
        """Every alert, gateway and fleet level, in deterministic order."""
        merged = [
            alert for pipeline in self.pipelines.values() for alert in pipeline.alerts
        ]
        merged.extend(self.fleet_alerts)
        merged.sort(key=lambda alert: (alert.packet_id, alert.kind, alert.device))
        return merged

    def alert_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for alert in self.alerts:
            counts[alert.kind] = counts.get(alert.kind, 0) + 1
        return counts

    @property
    def records_seen(self) -> int:
        return sum(pipeline.records_seen for pipeline in self.pipelines.values())

    def flush(self) -> None:
        """Drain every collector backlog, then persist partial segments,
        so the spool really does hold the full published stream."""
        self.drain()
        for pipeline in self.pipelines.values():
            pipeline.flush()

    def spooled_records(self) -> list:
        """Every spooled record across gateways, merged into packet order."""
        records: list = []
        for pipeline in self.pipelines.values():
            if pipeline.audit_log is not None and pipeline.audit_log.spool_dir:
                records.extend(AuditLog.load_segments(pipeline.audit_log.spool_dir))
        records.sort(key=lambda record: record.packet_id)
        return records
