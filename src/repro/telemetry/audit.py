"""Bounded audit storage for the enforcement record stream.

The enforcer used to append every
:class:`~repro.core.policy_enforcer.EnforcementRecord` to a plain
Python list: convenient for experiments, unbounded for a gateway that
enforces millions of packets.  :class:`AuditLog` replaces that list
with production semantics while keeping its API:

* an **in-memory ring** holds the most recent ``capacity`` records and
  supports the whole list surface the rest of the codebase uses
  (``append``/``extend``/``clear``/``len``/iteration/indexing/slicing/
  equality against lists), so it can sit directly behind
  ``PolicyEnforcer.records``;
* with a ``spool_dir``, the *full* stream survives rotation: every
  ``segment_records`` appended records are serialized to one JSON
  segment file, and :meth:`AuditLog.load_segments` /
  :meth:`AuditLog.replay` read them back losslessly (the round-trip
  property tests lean on this);
* counters (``total_appended``, ``evicted``, ``segments_written``)
  make the memory bound observable instead of silent.

Records serialize through :func:`record_to_payload` /
:func:`record_from_payload`; the verdict is stored by value so a loaded
record compares equal to the one that was written.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Iterable, Iterator

from repro.netstack.netfilter import Verdict

#: File name pattern for rotated segments; the sequence number keeps
#: lexicographic order equal to rotation order.
SEGMENT_PATTERN = "audit-{sequence:06d}.json"


def record_to_payload(record) -> dict:
    """One enforcement record as a JSON-serializable mapping."""
    payload = {
        "packet_id": record.packet_id,
        "src_ip": record.src_ip,
        "dst_ip": record.dst_ip,
        "verdict": record.verdict.value,
        "reason": record.reason,
        "app_id": record.app_id,
        "package_name": record.package_name,
        "payload_bytes": record.payload_bytes,
    }
    if record.signatures:
        payload["signatures"] = list(record.signatures)
    return payload


def record_from_payload(payload: dict):
    """Rebuild an :class:`EnforcementRecord` written by :func:`record_to_payload`."""
    # Imported here: the enforcer module imports this one for its record
    # storage, so a top-level import would be circular.
    from repro.core.policy_enforcer import EnforcementRecord

    return EnforcementRecord(
        packet_id=payload["packet_id"],
        src_ip=payload.get("src_ip", ""),
        dst_ip=payload["dst_ip"],
        verdict=Verdict(payload["verdict"]),
        reason=payload["reason"],
        app_id=payload.get("app_id", ""),
        package_name=payload.get("package_name", ""),
        signatures=tuple(payload.get("signatures", ())),
        payload_bytes=payload.get("payload_bytes", 0),
    )


class AuditLog:
    """A bounded, optionally spooling store of enforcement records.

    ``capacity`` bounds the in-memory ring; the oldest record is
    evicted once the ring is full.  ``spool_dir`` (optional) enables
    segment rotation: appended records also accumulate in a segment
    buffer that is serialized to disk every ``segment_records`` records
    (call :meth:`flush` to persist a final partial segment), so the
    complete stream is recoverable even after ring eviction.
    """

    def __init__(
        self,
        capacity: int = 65536,
        spool_dir=None,
        segment_records: int = 1024,
    ) -> None:
        if capacity < 1:
            raise ValueError("audit log capacity must be positive")
        if segment_records < 1:
            raise ValueError("segment size must be positive")
        self.capacity = capacity
        self.segment_records = segment_records
        self.spool_dir = Path(spool_dir) if spool_dir is not None else None
        self._ring: deque = deque(maxlen=capacity)
        self._segment_buffer: list = []
        #: Lifetime counters — the memory bound is observable, not silent.
        self.total_appended = 0
        self.evicted = 0
        self.segments_written = 0

    # -- the list surface the enforcer relies on ---------------------------------------

    def append(self, record) -> None:
        if len(self._ring) == self.capacity:
            self.evicted += 1
        self._ring.append(record)
        self.total_appended += 1
        if self.spool_dir is not None:
            self._segment_buffer.append(record)
            if len(self._segment_buffer) >= self.segment_records:
                self._write_segment()

    def extend(self, records: Iterable) -> None:
        for record in records:
            self.append(record)

    def clear(self) -> None:
        """Drop the in-memory ring (spooled segments stay on disk)."""
        self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)

    def __bool__(self) -> bool:
        return bool(self._ring)

    def __iter__(self) -> Iterator:
        return iter(self._ring)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self._ring)[index]
        return self._ring[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, AuditLog):
            return list(self._ring) == list(other._ring)
        if isinstance(other, (list, tuple)):
            return list(self._ring) == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AuditLog({len(self._ring)}/{self.capacity} in memory, "
            f"{self.total_appended} appended, {self.segments_written} segment(s))"
        )

    # -- segment rotation --------------------------------------------------------------

    def _write_segment(self) -> None:
        assert self.spool_dir is not None
        self.spool_dir.mkdir(parents=True, exist_ok=True)
        path = self.spool_dir / SEGMENT_PATTERN.format(sequence=self.segments_written)
        first = self.total_appended - len(self._segment_buffer)
        payload = {
            "sequence": self.segments_written,
            "first_record": first,
            "records": [record_to_payload(record) for record in self._segment_buffer],
        }
        path.write_text(json.dumps(payload), encoding="utf-8")
        self.segments_written += 1
        self._segment_buffer = []

    def flush(self) -> None:
        """Persist any partial segment so the spool holds the full stream."""
        if self.spool_dir is not None and self._segment_buffer:
            self._write_segment()

    @staticmethod
    def load_segments(spool_dir) -> list:
        """Every spooled record, in append order, across all segments."""
        records: list = []
        for path in sorted(Path(spool_dir).glob("audit-*.json")):
            payload = json.loads(path.read_text(encoding="utf-8"))
            records.extend(record_from_payload(body) for body in payload["records"])
        return records

    @classmethod
    def replay(cls, spool_dir, capacity: int = 65536) -> "AuditLog":
        """Rebuild a log (memory ring only) from a rotation spool."""
        log = cls(capacity=capacity)
        log.extend(cls.load_segments(spool_dir))
        return log
