"""Gateway telemetry and audit: the consumer side of enforcement.

Every component below the gateway produces
:class:`~repro.core.policy_enforcer.EnforcementRecord` objects; until
this package existed they piled up in an unbounded list that nothing
read.  The telemetry subsystem turns that dormant stream into
fleet-wide observability:

* :mod:`repro.telemetry.audit` — bounded audit storage: an in-memory
  ring of the most recent records plus JSON-serialized segment rotation
  for the full stream, with lossless round-trip loading;
* :mod:`repro.telemetry.aggregate` — sliding-window aggregation of the
  record stream per device, per app and per gateway (drop rates, decode
  failures, bytes out);
* :mod:`repro.telemetry.detectors` — pluggable detectors over the
  windows emitting structured :class:`~repro.telemetry.detectors.Alert`
  objects (unknown/spoofed tags, exfiltration volume anomalies,
  policy-violation bursts);
* :mod:`repro.telemetry.pipeline` — the wiring:
  :class:`~repro.telemetry.pipeline.TelemetryPipeline` is the
  :class:`~repro.telemetry.pipeline.AuditSink` one gateway publishes
  into, :class:`~repro.telemetry.pipeline.FleetAuditor` federates one
  pipeline per gateway and runs the fleet-level analyses no single
  gateway can see (e.g. exfiltration split across gateways by flow
  hashing).
"""

from repro.telemetry.audit import AuditLog, record_from_payload, record_to_payload
from repro.telemetry.aggregate import SlidingWindowAggregator, WindowStats
from repro.telemetry.detectors import (
    Alert,
    Detector,
    ExfiltrationVolumeDetector,
    PolicyViolationBurstDetector,
    SpoofedTagDetector,
    UnknownTagDetector,
)
from repro.telemetry.pipeline import AuditSink, FleetAuditor, TelemetryPipeline

__all__ = [
    "Alert",
    "AuditLog",
    "AuditSink",
    "Detector",
    "ExfiltrationVolumeDetector",
    "FleetAuditor",
    "PolicyViolationBurstDetector",
    "SlidingWindowAggregator",
    "SpoofedTagDetector",
    "TelemetryPipeline",
    "UnknownTagDetector",
    "WindowStats",
    "record_from_payload",
    "record_to_payload",
]
