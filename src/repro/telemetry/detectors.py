"""Pluggable detectors over the telemetry windows.

A detector sees every published record together with the publishing
gateway's :class:`~repro.telemetry.aggregate.SlidingWindowAggregator`
and may emit a structured :class:`Alert`.  Detectors are deterministic
functions of the record stream (no clocks, no randomness), so a fixed
trace always produces the same alerts — the property tests replay
traces twice and assert exactly that.

The four built-ins cover the attack surface the paper's contextual
tags make visible and the conventional baselines cannot attribute:

* :class:`UnknownTagDetector` — packets whose tag fails integrity
  checks (missing, unknown app hash — which is also what a replayed
  tag of a *revoked* app looks like — or out-of-range indexes);
* :class:`SpoofedTagDetector` — structurally valid tags of an app the
  sending device never enrolled: mimicry of a whitelisted app.  Needs
  the provisioning map (device IP → enrolled app ids) only the
  enterprise back office has;
* :class:`ExfiltrationVolumeDetector` — outbound volume from one
  device to one destination exceeding a window budget, no matter how
  many flows the sender fragments it across;
* :class:`PolicyViolationBurstDetector` — one (device, app) pair
  hitting policy denials in bursts.

Alert dedup is cooldown-based: a detector re-arms a key after
``rearm_packets`` further records, so a sustained condition produces a
bounded alert stream instead of one alert per packet.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.policy_enforcer import (
    REASON_DECODE_RANGE,
    REASON_UNKNOWN_APP,
    REASON_UNTAGGED,
)
from repro.netstack.netfilter import Verdict
from repro.telemetry.aggregate import SlidingWindowAggregator

#: Integrity-failure reasons: enforcement outcomes that indicate tag
#: tampering rather than an ordinary policy denial.
INTEGRITY_REASONS = frozenset({REASON_UNTAGGED, REASON_UNKNOWN_APP, REASON_DECODE_RANGE})


@dataclass(frozen=True)
class Alert:
    """One structured detection event."""

    kind: str
    device: str
    detail: str
    app: str = ""
    dst_ip: str = ""
    source: str = ""
    #: Aggregator sequence number at which the alert fired.
    seq: int = 0
    packet_id: int = 0

    def summary(self) -> str:
        parts = [f"[{self.kind}] device {self.device}"]
        if self.app:
            parts.append(f"app {self.app}")
        if self.dst_ip:
            parts.append(f"-> {self.dst_ip}")
        if self.source:
            parts.append(f"@ {self.source}")
        return " ".join(parts) + f": {self.detail}"


class Detector:
    """Base class: observe records, emit alerts, stay deterministic."""

    #: Records after which a fired (detector, key) pair may fire again.
    rearm_packets: int = 2048

    def __init__(self, rearm_packets: int | None = None) -> None:
        if rearm_packets is not None:
            self.rearm_packets = rearm_packets
        self._armed_at: dict = {}

    def _ready(self, key, seq: int) -> bool:
        """True when ``key`` is armed; firing disarms it for the cooldown."""
        fired = self._armed_at.get(key)
        if fired is not None and seq - fired < self.rearm_packets:
            return False
        self._armed_at[key] = seq
        return True

    def observe(self, record, source: str, window: SlidingWindowAggregator) -> Alert | None:
        raise NotImplementedError


class UnknownTagDetector(Detector):
    """Tag integrity failures: stripped, unknown-hash or undecodable tags.

    ``threshold`` failures from one device inside the window raise the
    alert; 1 (the default) means every first offence per cooldown is
    reported — at a real gateway even a single forged hash is worth a
    ticket.
    """

    def __init__(self, threshold: int = 1, rearm_packets: int | None = None) -> None:
        super().__init__(rearm_packets)
        if threshold < 1:
            raise ValueError("the integrity-failure threshold must be positive")
        self.threshold = threshold

    def observe(self, record, source, window) -> Alert | None:
        reason = record.reason
        if reason not in INTEGRITY_REASONS:
            return None
        failures = sum(window.device_integrity(record.src_ip))
        if failures < self.threshold:
            return None
        if not self._ready((record.src_ip, reason), window.seq):
            return None
        return Alert(
            kind="unknown-tag",
            device=record.src_ip,
            app=record.package_name or record.app_id,
            dst_ip=record.dst_ip,
            source=source,
            seq=window.seq,
            packet_id=record.packet_id,
            detail=f"{failures} tag integrity failure(s) in window ({reason})",
        )


class SpoofedTagDetector(Detector):
    """Valid tags from devices that never enrolled the tagged app.

    ``provisioned`` maps a device's enterprise IP to the set of app ids
    (truncated apk hashes) installed on it — the attribution ground the
    enterprise holds and the network layer lacks.  A record whose tag
    decodes to a known app the sending device does not have is mimicry:
    some process is borrowing a whitelisted app's identity.
    """

    def __init__(
        self,
        provisioned: dict[str, frozenset[str]],
        rearm_packets: int | None = None,
    ) -> None:
        super().__init__(rearm_packets)
        self.provisioned = {
            device: frozenset(app_ids) for device, app_ids in provisioned.items()
        }

    def observe(self, record, source, window) -> Alert | None:
        app_id = record.app_id
        if not app_id or not record.package_name:
            # No tag, or a hash the database does not know: integrity
            # territory, handled by UnknownTagDetector.
            return None
        allowed = self.provisioned.get(record.src_ip)
        if allowed is None or app_id in allowed:
            return None
        if not self._ready((record.src_ip, app_id), window.seq):
            return None
        return Alert(
            kind="spoofed-tag",
            device=record.src_ip,
            app=record.package_name,
            dst_ip=record.dst_ip,
            source=source,
            seq=window.seq,
            packet_id=record.packet_id,
            detail=(
                f"tag of {record.package_name} seen from a device that never "
                "enrolled it"
            ),
        )


class ExfiltrationVolumeDetector(Detector):
    """Per-(device, destination) outbound volume over a window budget.

    Fragmenting an upload across many small flows defeats per-flow size
    thresholds (paper §VII); the window volume is summed per (device,
    destination) pair regardless of flow, so the fragments re-aggregate
    here.
    """

    def __init__(
        self, window_bytes: int = 262144, rearm_packets: int | None = None
    ) -> None:
        super().__init__(rearm_packets)
        if window_bytes < 1:
            raise ValueError("the volume budget must be positive")
        self.window_bytes = window_bytes

    def observe(self, record, source, window) -> Alert | None:
        if record.verdict is Verdict.DROP or not record.src_ip:
            return None
        volume = window.window_volume(record.src_ip, record.dst_ip)
        if volume <= self.window_bytes:
            return None
        if not self._ready((record.src_ip, record.dst_ip), window.seq):
            return None
        return Alert(
            kind="exfil-volume",
            device=record.src_ip,
            app=record.package_name or record.app_id,
            dst_ip=record.dst_ip,
            source=source,
            seq=window.seq,
            packet_id=record.packet_id,
            detail=(
                f"{volume} bytes to one destination inside the window "
                f"(budget {self.window_bytes})"
            ),
        )


class PolicyViolationBurstDetector(Detector):
    """Bursts of policy denials from one (device, app) pair.

    Integrity failures are excluded (they have their own detector);
    this one watches an *enrolled* app repeatedly steering into denied
    functionality — misbehaving update, misconfigured policy, or an
    app probing what it can get out.
    """

    def __init__(self, burst: int = 8, rearm_packets: int | None = None) -> None:
        super().__init__(rearm_packets)
        if burst < 1:
            raise ValueError("the burst threshold must be positive")
        self.burst = burst
        self._drops: dict = {}

    def observe(self, record, source, window) -> Alert | None:
        if record.verdict is not Verdict.DROP or record.reason in INTEGRITY_REASONS:
            return None
        key = (record.src_ip, record.package_name or record.app_id)
        count = self._drops.get(key, 0) + 1
        self._drops[key] = count
        if count < self.burst:
            return None
        self._drops[key] = 0
        if not self._ready(key, window.seq):
            return None
        return Alert(
            kind="policy-burst",
            device=record.src_ip,
            app=record.package_name or record.app_id,
            dst_ip=record.dst_ip,
            source=source,
            seq=window.seq,
            packet_id=record.packet_id,
            detail=f"{self.burst} policy denials in a burst",
        )


def default_detectors(
    provisioned: dict[str, frozenset[str]] | None = None,
    exfil_window_bytes: int = 262144,
    burst: int = 8,
) -> list[Detector]:
    """The standard detector stack; spoof detection needs a provisioning map."""
    detectors: list[Detector] = [
        UnknownTagDetector(),
        ExfiltrationVolumeDetector(window_bytes=exfil_window_bytes),
        PolicyViolationBurstDetector(burst=burst),
    ]
    if provisioned is not None:
        detectors.insert(1, SpoofedTagDetector(provisioned))
    return detectors
