"""Pluggable detectors over the telemetry windows.

A detector sees every published record together with the publishing
gateway's :class:`~repro.telemetry.aggregate.SlidingWindowAggregator`
and may emit a structured :class:`Alert`.  Detectors are deterministic
functions of the record stream (no clocks, no randomness), so a fixed
trace always produces the same alerts — the property tests replay
traces twice and assert exactly that.

The four built-ins cover the attack surface the paper's contextual
tags make visible and the conventional baselines cannot attribute:

* :class:`UnknownTagDetector` — packets whose tag fails integrity
  checks (missing, unknown app hash — which is also what a replayed
  tag of a *revoked* app looks like — or out-of-range indexes);
* :class:`SpoofedTagDetector` — structurally valid tags of an app the
  sending device never enrolled: mimicry of a whitelisted app.  Needs
  the provisioning map (device IP → enrolled app ids) only the
  enterprise back office has;
* :class:`ExfiltrationVolumeDetector` — outbound volume from one
  device to one destination exceeding a window budget, no matter how
  many flows the sender fragments it across;
* :class:`PolicyViolationBurstDetector` — one (device, app) pair
  hitting policy denials in bursts.

Alert dedup is cooldown-based: a detector re-arms a key after
``rearm_packets`` further records, so a sustained condition produces a
bounded alert stream instead of one alert per packet.  Cooldown keys
always include the publishing *gateway*: detector instances may be
shared across several gateway pipelines, and a campaign observed on two
gateways must not half-suppress itself by disarming the other gateway's
key.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.core.policy_enforcer import (
    REASON_DECODE_RANGE,
    REASON_UNKNOWN_APP,
    REASON_UNTAGGED,
)
from repro.netstack.netfilter import Verdict
from repro.telemetry.aggregate import SlidingWindowAggregator

#: Integrity-failure reasons: enforcement outcomes that indicate tag
#: tampering rather than an ordinary policy denial.
INTEGRITY_REASONS = frozenset({REASON_UNTAGGED, REASON_UNKNOWN_APP, REASON_DECODE_RANGE})


@dataclass(frozen=True)
class Alert:
    """One structured detection event."""

    kind: str
    device: str
    detail: str
    app: str = ""
    dst_ip: str = ""
    source: str = ""
    #: Aggregator sequence number at which the alert fired.
    seq: int = 0
    packet_id: int = 0
    #: Absolute wall-clock timestamp (unix seconds).  Detectors leave it
    #: at 0.0 (they are deterministic functions of the record stream);
    #: the alert bus stamps it at publish time, so spooled and
    #: webhook-delivered alerts carry real operator-facing timestamps.
    ts: float = 0.0

    def summary(self) -> str:
        parts = [f"[{self.kind}] device {self.device}"]
        if self.app:
            parts.append(f"app {self.app}")
        if self.dst_ip:
            parts.append(f"-> {self.dst_ip}")
        if self.source:
            parts.append(f"@ {self.source}")
        return " ".join(parts) + f": {self.detail}"

    def to_dict(self) -> dict:
        """A stable JSON-serializable mapping of every field.

        The bus spool and webhook sinks both encode alerts through this
        single codepath, so a spooled alert, a webhook payload and a
        live :class:`Alert` always agree field for field (including the
        absolute timestamp and the gateway ``source`` attribution).
        """
        return {field.name: getattr(self, field.name) for field in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "Alert":
        """Rebuild an alert written by :meth:`to_dict`.

        Unknown keys are rejected (a spool written by a newer schema
        should fail loudly, not silently drop attribution); missing
        optional fields fall back to their defaults.
        """
        known = {field.name for field in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown alert fields: {sorted(unknown)}")
        return cls(**payload)


class Detector:
    """Base class: observe records, emit alerts, stay deterministic."""

    #: Records after which a fired (detector, key) pair may fire again.
    rearm_packets: int = 2048
    #: True when the pipeline knows a cheap firing precondition for this
    #: detector (builtin classes hard-code theirs; custom detectors set
    #: this and implement :meth:`interesting` to keep the publish fast
    #: path alive).
    guarded: bool = False

    def __init__(self, rearm_packets: int | None = None) -> None:
        if rearm_packets is not None:
            self.rearm_packets = rearm_packets
        self._armed_at: dict = {}

    def _ready(self, key, seq: int, source: str = "") -> bool:
        """True when ``key`` is armed; firing disarms it for the cooldown.

        ``source`` (the publishing gateway) is folded into the stored
        key: a detector instance shared by several gateway pipelines
        must keep one independent cooldown per gateway, or the same
        campaign seen on two gateways suppresses half of itself.
        """
        full_key = (source, key)
        fired = self._armed_at.get(full_key)
        if fired is not None and seq - fired < self.rearm_packets:
            return False
        self._armed_at[full_key] = seq
        return True

    def observe(self, record, source: str, window: SlidingWindowAggregator) -> Alert | None:
        raise NotImplementedError

    def interesting(self, record, window: SlidingWindowAggregator) -> bool:
        """Cheap precondition: may this record make :meth:`observe` fire?

        Only consulted for ``guarded`` detectors that are not one of the
        builtin classes (whose guards the pipeline inlines).  Returning
        ``False`` must be exact — the pipeline will skip ``observe``.
        """
        return True


class UnknownTagDetector(Detector):
    """Tag integrity failures: stripped, unknown-hash or undecodable tags.

    ``threshold`` failures from one device inside the window raise the
    alert; 1 (the default) means every first offence per cooldown is
    reported — at a real gateway even a single forged hash is worth a
    ticket.
    """

    guarded = True

    def __init__(self, threshold: int = 1, rearm_packets: int | None = None) -> None:
        super().__init__(rearm_packets)
        if threshold < 1:
            raise ValueError("the integrity-failure threshold must be positive")
        self.threshold = threshold

    def observe(self, record, source, window) -> Alert | None:
        reason = record.reason
        if reason not in INTEGRITY_REASONS:
            return None
        failures = sum(window.device_integrity(record.src_ip))
        if failures < self.threshold:
            return None
        if not self._ready((record.src_ip, reason), window.seq, source):
            return None
        return Alert(
            kind="unknown-tag",
            device=record.src_ip,
            app=record.package_name or record.app_id,
            dst_ip=record.dst_ip,
            source=source,
            seq=window.seq,
            packet_id=record.packet_id,
            detail=f"{failures} tag integrity failure(s) in window ({reason})",
        )


class SpoofedTagDetector(Detector):
    """Valid tags from devices that never enrolled the tagged app.

    ``provisioned`` maps a device's enterprise IP to the set of app ids
    (truncated apk hashes) installed on it — the attribution ground the
    enterprise holds and the network layer lacks.  A record whose tag
    decodes to a known app the sending device does not have is mimicry:
    some process is borrowing a whitelisted app's identity.
    """

    guarded = True

    def __init__(
        self,
        provisioned: dict[str, frozenset[str]],
        rearm_packets: int | None = None,
    ) -> None:
        super().__init__(rearm_packets)
        self.provisioned = {
            device: frozenset(app_ids) for device, app_ids in provisioned.items()
        }

    def observe(self, record, source, window) -> Alert | None:
        app_id = record.app_id
        if not app_id or not record.package_name:
            # No tag, or a hash the database does not know: integrity
            # territory, handled by UnknownTagDetector.
            return None
        allowed = self.provisioned.get(record.src_ip)
        if allowed is None or app_id in allowed:
            return None
        if not self._ready((record.src_ip, app_id), window.seq, source):
            return None
        return Alert(
            kind="spoofed-tag",
            device=record.src_ip,
            app=record.package_name,
            dst_ip=record.dst_ip,
            source=source,
            seq=window.seq,
            packet_id=record.packet_id,
            detail=(
                f"tag of {record.package_name} seen from a device that never "
                "enrolled it"
            ),
        )


class ExfiltrationVolumeDetector(Detector):
    """Per-(device, destination) outbound volume over a window budget.

    Fragmenting an upload across many small flows defeats per-flow size
    thresholds (paper §VII); the window volume is summed per (device,
    destination) pair regardless of flow, so the fragments re-aggregate
    here.
    """

    guarded = True

    def __init__(
        self, window_bytes: int = 262144, rearm_packets: int | None = None
    ) -> None:
        super().__init__(rearm_packets)
        if window_bytes < 1:
            raise ValueError("the volume budget must be positive")
        self.window_bytes = window_bytes

    def observe(self, record, source, window) -> Alert | None:
        if record.verdict is Verdict.DROP or not record.src_ip:
            return None
        volume = window.window_volume(record.src_ip, record.dst_ip)
        if volume <= self.window_bytes:
            return None
        if not self._ready((record.src_ip, record.dst_ip), window.seq, source):
            return None
        return Alert(
            kind="exfil-volume",
            device=record.src_ip,
            app=record.package_name or record.app_id,
            dst_ip=record.dst_ip,
            source=source,
            seq=window.seq,
            packet_id=record.packet_id,
            detail=(
                f"{volume} bytes to one destination inside the window "
                f"(budget {self.window_bytes})"
            ),
        )


class PolicyViolationBurstDetector(Detector):
    """Bursts of policy denials from one (device, app) pair.

    Integrity failures are excluded (they have their own detector);
    this one watches an *enrolled* app repeatedly steering into denied
    functionality — misbehaving update, misconfigured policy, or an
    app probing what it can get out.
    """

    guarded = True

    def __init__(self, burst: int = 8, rearm_packets: int | None = None) -> None:
        super().__init__(rearm_packets)
        if burst < 1:
            raise ValueError("the burst threshold must be positive")
        self.burst = burst
        self._drops: dict = {}

    def observe(self, record, source, window) -> Alert | None:
        if record.verdict is not Verdict.DROP or record.reason in INTEGRITY_REASONS:
            return None
        # The burst counter is per gateway too: a shared instance must
        # not let two gateways' independent drop trickles sum into one
        # phantom burst neither gateway actually saw.
        key = (record.src_ip, record.package_name or record.app_id)
        counter_key = (source, key)
        count = self._drops.get(counter_key, 0) + 1
        self._drops[counter_key] = count
        if count < self.burst:
            return None
        self._drops[counter_key] = 0
        if not self._ready(key, window.seq, source):
            return None
        return Alert(
            kind="policy-burst",
            device=record.src_ip,
            app=record.package_name or record.app_id,
            dst_ip=record.dst_ip,
            source=source,
            seq=window.seq,
            packet_id=record.packet_id,
            detail=f"{self.burst} policy denials in a burst",
        )


def default_detectors(
    provisioned: dict[str, frozenset[str]] | None = None,
    exfil_window_bytes: int = 262144,
    burst: int = 8,
) -> list[Detector]:
    """The standard detector stack; spoof detection needs a provisioning map."""
    detectors: list[Detector] = [
        UnknownTagDetector(),
        ExfiltrationVolumeDetector(window_bytes=exfil_window_bytes),
        PolicyViolationBurstDetector(burst=burst),
    ]
    if provisioned is not None:
        detectors.insert(1, SpoofedTagDetector(provisioned))
    return detectors
