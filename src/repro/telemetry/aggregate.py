"""Sliding-window aggregation of the enforcement record stream.

One gateway publishes a record per enforced packet; the aggregator
folds that stream into rolling views an operator (or a detector) can
ask questions of:

* per **device** (source IP), per **app** (package name, falling back
  to the on-wire app id) and per **gateway** (the publishing source
  label): packets seen, packets dropped, bytes out (accepted packets
  only — a dropped payload never left the network), and the three
  integrity outcomes — untagged packets, unknown/spoofed tag hashes,
  decode failures (:meth:`SlidingWindowAggregator.window_stats`);
* per **(device, destination)** pair: outbound payload bytes inside the
  window — the input to exfiltration-volume anomaly detection
  (:attr:`SlidingWindowAggregator.volumes`, maintained incrementally);
* per **(device, app)** pair: policy denials (integrity failures
  excluded) inside the window
  (:attr:`SlidingWindowAggregator.policy_drops`, maintained
  incrementally) — the input the fleet-level burst scan sums across
  gateways to reassemble a denial campaign flow hashing split up;
* per device: windowed tag-integrity failure counts
  (:meth:`SlidingWindowAggregator.device_integrity`), maintained on a
  side deque that only integrity events touch.

Windows are counted in *packets*, not wall-clock: the simulation has no
real clock at the gateway, and a packet-count window makes every
analysis deterministic for a fixed trace (a property the telemetry
tests assert).

The observe path sits inside the gateway's timed hot loop, so it is
deliberately asymmetric: per benign packet it only appends one compact
event tuple and maintains the volume dict (O(1), no per-key stats
objects); the full per-device/app/gateway tables are *derived* from the
event window on demand — reports ask for them a handful of times per
run, the hot path never does.
"""

from __future__ import annotations

from collections import deque

from repro.core.policy_enforcer import (
    REASON_DECODE_RANGE,
    REASON_UNKNOWN_APP,
    REASON_UNTAGGED,
)
from repro.netstack.netfilter import Verdict

#: Integrity reason -> index into the per-device integrity counts
#: (untagged, unknown tag, decode failure).  One dict probe classifies a
#: record on the hot path.
_REASON_FLAGS = {
    REASON_UNTAGGED: 0,
    REASON_UNKNOWN_APP: 1,
    REASON_DECODE_RANGE: 2,
}


class WindowStats:
    """Rolling counters for one aggregation key (device, app or gateway)."""

    __slots__ = (
        "packets",
        "dropped",
        "bytes_out",
        "untagged",
        "unknown_tags",
        "decode_failures",
    )

    def __init__(self) -> None:
        self.packets = 0
        self.dropped = 0
        self.bytes_out = 0
        self.untagged = 0
        self.unknown_tags = 0
        self.decode_failures = 0

    @property
    def drop_rate(self) -> float:
        return self.dropped / self.packets if self.packets else 0.0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{name}={getattr(self, name)}" for name in self.__slots__)
        return f"WindowStats({inner})"


class SlidingWindowAggregator:
    """Rolling per-device / per-app / per-gateway views of recent records."""

    def __init__(self, window_packets: int = 4096) -> None:
        if window_packets < 1:
            raise ValueError("the aggregation window must be at least one packet")
        self.window_packets = window_packets
        #: Monotonic count of records observed (the window's clock).
        self.seq = 0
        #: Outbound bytes per (device, destination) inside the window.
        self.volumes: dict[tuple[str, str], int] = {}
        #: Policy denials (integrity failures excluded) per (device,
        #: app) inside the window.
        self.policy_drops: dict[tuple[str, str], int] = {}
        #: One compact tuple per in-window record:
        #: (device, app, source, dst, size, dropped, reason_flag).
        self._events: deque = deque()
        #: Integrity events only: (seq, device, flag index).
        self._integrity: deque = deque()
        self._integrity_counts: dict[str, list[int]] = {}

    # -- ingestion (the hot path) ------------------------------------------------------

    def observe(self, record, source: str = "") -> None:
        """Fold one record into the window, evicting what slid out."""
        self.seq += 1
        device = record.src_ip or "(unknown-device)"
        dst = record.dst_ip
        dropped = record.verdict is Verdict.DROP
        # Dropped payloads never left the network: counting them as
        # bytes-out would let traffic the gateway already blocked raise
        # exfiltration alerts for data that was never exfiltrated.
        size = 0 if dropped else record.payload_bytes
        flag = _REASON_FLAGS.get(record.reason, -1)
        app = record.package_name or record.app_id or "(untagged)"
        volumes = self.volumes
        key = (device, dst)
        volumes[key] = volumes.get(key, 0) + size
        if dropped and flag < 0:
            drops = self.policy_drops
            drop_key = (device, app)
            drops[drop_key] = drops.get(drop_key, 0) + 1
        events = self._events
        events.append(
            (
                device,
                app,
                source or "(gateway)",
                dst,
                size,
                dropped,
                flag,
            )
        )
        if len(events) > self.window_packets:
            old = events.popleft()
            old_key = (old[0], old[3])
            # get/pop, not indexing: a zero-byte record can still sit in
            # the event window after its pair's volume entry hit zero
            # and was dropped by an earlier eviction.
            remaining = volumes.get(old_key, 0) - old[4]
            if remaining > 0:
                volumes[old_key] = remaining
            else:
                volumes.pop(old_key, None)
            if old[5] and old[6] < 0:
                drops = self.policy_drops
                old_drop_key = (old[0], old[1])
                remaining_drops = drops.get(old_drop_key, 0) - 1
                if remaining_drops > 0:
                    drops[old_drop_key] = remaining_drops
                else:
                    drops.pop(old_drop_key, None)
        if flag >= 0:
            counts = self._integrity_counts.get(device)
            if counts is None:
                counts = self._integrity_counts[device] = [0, 0, 0]
            counts[flag] += 1
            self._integrity.append((self.seq, device, flag))
            # Expire on ingest too: detectors query device_integrity()
            # only when one is installed, and the side deque must stay
            # bounded by the window either way.  Amortized O(1), paid
            # only on (rare) integrity events.
            self._expire_integrity()

    # -- queries -----------------------------------------------------------------------

    def _expire_integrity(self) -> None:
        horizon = self.seq - self.window_packets
        integrity = self._integrity
        counts = self._integrity_counts
        while integrity and integrity[0][0] <= horizon:
            _, device, flag = integrity.popleft()
            entry = counts[device]
            entry[flag] -= 1
            if entry[0] == 0 and entry[1] == 0 and entry[2] == 0:
                del counts[device]

    def device_integrity(self, src_ip: str) -> tuple[int, int, int]:
        """(untagged, unknown-tag, decode-failure) counts for one device
        inside the window.  Maintained on a side deque only integrity
        events touch, so querying it costs nothing on benign traffic."""
        self._expire_integrity()
        counts = self._integrity_counts.get(src_ip or "(unknown-device)")
        return tuple(counts) if counts else (0, 0, 0)

    def window_volume(self, src_ip: str, dst_ip: str) -> int:
        return self.volumes.get((src_ip or "(unknown-device)", dst_ip), 0)

    def window_policy_drops(self, src_ip: str, app: str) -> int:
        """Policy denials for one (device, app) pair inside the window."""
        return self.policy_drops.get((src_ip or "(unknown-device)", app), 0)

    def window_stats(self) -> dict[str, dict[str, WindowStats]]:
        """The full per-device / per-app / per-gateway window tables.

        Derived by one pass over the event window (reports call this a
        handful of times; the per-packet path never does).
        """
        tables: dict[str, dict[str, WindowStats]] = {
            "devices": {},
            "apps": {},
            "sources": {},
        }
        for device, app, source, _dst, size, dropped, flag in self._events:
            for table, key in (
                (tables["devices"], device),
                (tables["apps"], app),
                (tables["sources"], source),
            ):
                stats = table.get(key)
                if stats is None:
                    stats = table[key] = WindowStats()
                stats.packets += 1
                stats.bytes_out += size
                if dropped:
                    stats.dropped += 1
                if flag == 0:
                    stats.untagged += 1
                elif flag == 1:
                    stats.unknown_tags += 1
                elif flag == 2:
                    stats.decode_failures += 1
        return tables

    def device(self, src_ip: str) -> WindowStats | None:
        return self.window_stats()["devices"].get(src_ip)

    def app(self, label: str) -> WindowStats | None:
        return self.window_stats()["apps"].get(label)

    def source(self, label: str) -> WindowStats | None:
        return self.window_stats()["sources"].get(label)

    def snapshot(self) -> dict:
        """A JSON-friendly dump of every window (for reports and tests)."""
        tables = self.window_stats()
        return {
            "seq": self.seq,
            "devices": {key: stats.as_dict() for key, stats in tables["devices"].items()},
            "apps": {key: stats.as_dict() for key, stats in tables["apps"].items()},
            "sources": {key: stats.as_dict() for key, stats in tables["sources"].items()},
            "volumes": {
                f"{device}->{dst}": total
                for (device, dst), total in sorted(self.volumes.items())
            },
            "policy_drops": {
                f"{device}:{app}": count
                for (device, app), count in sorted(self.policy_drops.items())
            },
        }
