"""Figure 3 + §VI-B statistics: IPs-of-interest across the corpus.

The paper exercises 2,000 BUSINESS/PRODUCTIVITY apps with 5,000 monkey
events each and reports (a) the number of apps with 1..5 IPs-of-interest
(152 / 53 / 8 / 3 / 2, i.e. 218 apps with at least one IoI) and (b) that
75% of the IoI apps keep all IoI contexts within one Java package while
25% of IoIs mix packages through a shared HTTP client.

``run_fig3`` regenerates those statistics from the synthetic corpus.
The defaults are scaled down so the experiment completes in seconds; use
``n_apps=2000, events_per_app=5000`` for the paper-scale run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.ioi import IoIAnalysis
from repro.core.policy import Policy
from repro.experiments.common import CorpusRunResult, format_table, run_corpus
from repro.workloads.corpus import CorpusConfig, CorpusGenerator

#: The bars of the paper's Figure 3: apps with 1, 2, 3, 4 and 5 IoIs.
PAPER_FIG3_HISTOGRAM = {1: 152, 2: 53, 3: 8, 4: 3, 5: 2}
PAPER_APPS_WITH_IOI = 218
PAPER_TOTAL_APPS = 2000
PAPER_SAME_PACKAGE_FRACTION = 0.75
PAPER_CROSS_PACKAGE_IOI_FRACTION = 0.25


@dataclass
class Fig3Result:
    """Measured Figure 3 data plus the paper's reference values."""

    total_apps: int
    histogram: dict[int, int]
    apps_with_ioi: int
    same_package_app_fraction: float
    cross_package_ioi_fraction: float
    analysis: IoIAnalysis
    corpus_run: CorpusRunResult | None = None
    paper_histogram: dict[int, int] = field(default_factory=lambda: dict(PAPER_FIG3_HISTOGRAM))

    def scaled_paper_histogram(self) -> dict[int, float]:
        """The paper's bars scaled to this run's corpus size."""
        factor = self.total_apps / PAPER_TOTAL_APPS
        return {k: v * factor for k, v in self.paper_histogram.items()}

    def table(self) -> str:
        scaled = self.scaled_paper_histogram()
        rows = []
        for count in sorted(set(self.histogram) | set(scaled)):
            rows.append(
                (
                    count,
                    self.histogram.get(count, 0),
                    f"{scaled.get(count, 0.0):.1f}",
                    PAPER_FIG3_HISTOGRAM.get(count, 0),
                )
            )
        table = format_table(
            ("IoIs per app", "measured apps", "paper (scaled)", "paper (2000 apps)"), rows
        )
        summary = (
            f"\napps with >=1 IoI: {self.apps_with_ioi}/{self.total_apps} "
            f"(paper: {PAPER_APPS_WITH_IOI}/{PAPER_TOTAL_APPS})"
            f"\nsame-package IoI apps: {self.same_package_app_fraction:.0%} "
            f"(paper: {PAPER_SAME_PACKAGE_FRACTION:.0%})"
            f"\ncross-package IoIs: {self.cross_package_ioi_fraction:.0%} "
            f"(paper: {PAPER_CROSS_PACKAGE_IOI_FRACTION:.0%})"
        )
        return table + summary


def run_fig3(
    n_apps: int = 400,
    events_per_app: int = 200,
    corpus_seed: int = 7,
    monkey_seed: int = 11,
    keep_corpus_run: bool = False,
) -> Fig3Result:
    """Generate the corpus, exercise it, and compute the Figure 3 statistics.

    The analysis is computed from the Policy Enforcer's decoded records —
    i.e. from what BorderPatrol actually carried in IP options — under an
    allow-all policy, exactly as the paper's measurement deployment does.
    """
    generator = CorpusGenerator(CorpusConfig(n_apps=n_apps, seed=corpus_seed))
    apps = generator.generate()
    run = run_corpus(
        apps,
        policy=Policy.allow_all(),
        events_per_app=events_per_app,
        monkey_seed=monkey_seed,
    )
    analysis = IoIAnalysis.from_enforcement_records(
        run.enforcement_records(), total_apps=len(apps)
    )
    return Fig3Result(
        total_apps=len(apps),
        histogram=analysis.histogram(),
        apps_with_ioi=analysis.total_apps_with_ioi(),
        same_package_app_fraction=analysis.same_package_fraction(),
        cross_package_ioi_fraction=analysis.cross_package_ioi_fraction(),
        analysis=analysis,
        corpus_run=run if keep_corpus_run else None,
    )
