"""Fleet-scale replay: replicated gateways under live policy churn.

The ROADMAP north star (heavy traffic from millions of users) outgrows
one gateway; this driver measures the fleet runtime end to end:

* a :class:`~repro.workloads.fleet.DeviceFleet` provisions hundreds of
  BYOD devices with per-device app mixes from the workload corpus and
  derives a heavy-tailed packet trace;
* a multi-gateway :class:`~repro.core.deployment.BorderPatrolDeployment`
  routes the trace across N :class:`~repro.core.policy_store.GatewayReplica`
  gateways by flow hash, while an administrator commits rule edits to
  the shared :class:`~repro.core.policy_store.PolicyStore` between
  bursts;
* replicas are deliberately kept off the live push path, so every
  commit opens a measurable convergence lag (versions behind the delta
  log head) that the next catch-up replay closes — the staged-rollout
  loop, instrumented;
* a single head-subscribed enforcer processes the identical trace under
  the identical edit schedule, and the fleet must match it verdict for
  verdict: replication must never change what the policy decides.

:func:`run_shard_backend_comparison` separately validates the *modelled*
shard parallelism with wall-clock: the same replay through
``ShardedEnforcer`` with the sequential backend vs the real
``multiprocessing`` fork backend.

:func:`run_late_joiner_bench` measures the other scale axis — control-
plane history.  A gateway provisioned after hundreds of committed
policy versions must not replay the whole history: with log compaction
(``compact_every``) it bootstraps from the base snapshot and replays
only the delta suffix, and the bench holds it to that bound while
asserting fingerprint convergence and verdict identity against a
head-subscribed gateway.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.core.deployment import BorderPatrolDeployment
from repro.core.fleet import GatewayFleet
from repro.core.policy import Policy, PolicyAction, PolicyLevel, PolicyRule
from repro.core.policy_enforcer import PolicyEnforcer
from repro.core.policy_store import (
    RULE_INTERN_CACHE,
    GatewayReplica,
    PolicyStore,
    PolicyUpdate,
)
from repro.experiments.common import format_table, split_into_bursts
from repro.experiments.gateway_throughput import (
    DEFAULT_DENY_LIBRARIES,
    build_replay,
    build_signature_database,
)
from repro.netstack.netfilter import Verdict
from repro.netstack.sharding import ShardedEnforcer
from repro.workloads.corpus import CorpusConfig, CorpusGenerator
from repro.workloads.fleet import DeviceFleet, DeviceFleetConfig


def available_cpus() -> int:
    """CPUs this process may schedule on (what real fork parallelism has)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


@dataclass
class ShardBackendComparison:
    """Sequential vs fork-per-batch vs persistent pool on one batched replay.

    The replay is split into ``batches`` equal bursts and every backend
    processes the identical burst sequence.  Fork-per-batch pays worker
    setup (fork + shard-state inheritance + teardown) on *every* burst;
    the pool forks its workers once and amortizes that cost across the
    whole run, so the two ``*_ipc_ms_per_batch`` figures — measured
    wall minus the modelled in-worker compute, spread over the burst
    count — are the head-to-head number for the runtime overhead each
    parallel backend adds on top of the actual enforcement work.
    """

    packets: int
    shards: int
    cpus: int
    sequential_wall_s: float
    process_wall_s: float
    verdicts_match: bool
    batches: int = 1
    pool_wall_s: float = 0.0
    #: Modelled in-worker compute (sum over bursts of the slowest
    #: shard's elapsed): the wall each parallel backend would cost if
    #: fork/IPC were free.
    process_compute_s: float = 0.0
    pool_compute_s: float = 0.0

    @property
    def speedup(self) -> float:
        """Real wall-clock speedup of the fork backend over sequential."""
        if self.process_wall_s <= 0:
            return float("inf")
        return self.sequential_wall_s / self.process_wall_s

    @property
    def pool_speedup(self) -> float:
        """Real wall-clock speedup of the pool backend over sequential."""
        if self.pool_wall_s <= 0:
            return float("inf")
        return self.sequential_wall_s / self.pool_wall_s

    @property
    def pool_vs_process(self) -> float:
        """How much faster the persistent pool is than fork-per-batch."""
        if self.pool_wall_s <= 0:
            return float("inf")
        return self.process_wall_s / self.pool_wall_s

    def _amortized_ipc_ms(self, wall_s: float, compute_s: float) -> float:
        if self.batches <= 0:
            return 0.0
        return max(0.0, wall_s - compute_s) / self.batches * 1e3

    @property
    def process_ipc_ms_per_batch(self) -> float:
        """Fork-per-batch overhead beyond compute, amortized per burst."""
        return self._amortized_ipc_ms(self.process_wall_s, self.process_compute_s)

    @property
    def pool_ipc_ms_per_batch(self) -> float:
        """Pool IPC + one-time spawn beyond compute, amortized per burst."""
        return self._amortized_ipc_ms(self.pool_wall_s, self.pool_compute_s)

    def summary(self) -> str:
        return "\n".join(
            [
                f"shard backends on {self.packets} packets in {self.batches} "
                f"batch(es), {self.shards} shards, {self.cpus} cpu(s):",
                f"  sequential      {self.sequential_wall_s * 1e3:8.1f} ms",
                f"  fork-per-batch  {self.process_wall_s * 1e3:8.1f} ms "
                f"({self.speedup:.2f}x vs sequential, "
                f"{self.process_ipc_ms_per_batch:.2f} ms/batch setup+IPC)",
                f"  persistent pool {self.pool_wall_s * 1e3:8.1f} ms "
                f"({self.pool_speedup:.2f}x vs sequential, "
                f"{self.pool_vs_process:.2f}x vs fork, "
                f"{self.pool_ipc_ms_per_batch:.2f} ms/batch amortized IPC)",
                f"  verdict-identical across all three: {self.verdicts_match}",
            ]
        )


def _run_batched_replay(enforcer, bursts, backend=None, pipelined=False):
    """Run one burst sequence; return (verdicts, measured wall, compute)."""
    verdicts: list[Verdict] = []
    compute = 0.0
    started = time.perf_counter()
    if pipelined:
        tokens = [enforcer.submit_batch(burst) for burst in bursts]
        batches = [enforcer.collect_batch(token) for token in tokens]
    else:
        batches = [
            enforcer.process_batch_timed(burst, backend=backend) for burst in bursts
        ]
    wall = time.perf_counter() - started
    for batch in batches:
        verdicts.extend(verdict for verdict, _ in batch.results)
        compute += batch.parallel_wall_s
    return verdicts, wall, compute


def run_shard_backend_comparison(
    packets: int = 10_000,
    flows: int = 256,
    shards: int = 4,
    corpus_apps: int = 6,
    seed: int = 7,
    flow_cache_size: int = 0,
    batches: int = 16,
) -> ShardBackendComparison:
    """Measure all three shard backends on the identical batched replay.

    Every enforcer processes the identical burst sequence with identical
    shard configuration; ``flow_cache_size`` defaults to 0 (compiled-only
    path) so there is real per-packet work for the parallel fan-out to
    win on.  A small warm-up burst triggers lazy per-app policy
    compilation on every side before the timed runs — the pool's workers
    then fork *once* from the warmed parent, while the fork backend
    re-forks from it on every burst.  The pool run is pipelined
    (submit-ahead), so its measured wall also credits the overlap of
    parent-side stitching with worker-side enforcement.
    """
    if packets < 1:
        raise ValueError("the replay needs at least one packet")
    if shards < 2:
        raise ValueError("comparing backends needs at least two shards")
    if batches < 1:
        raise ValueError("the replay needs at least one batch")
    database = build_signature_database(corpus_apps=corpus_apps, seed=seed)
    replay = build_replay(database.entries(), packets=packets, flows=flows, seed=seed)
    bursts = [burst for burst in split_into_bursts(replay, batches) if burst]
    policy = Policy.deny_libraries(DEFAULT_DENY_LIBRARIES, name="backend-compare")
    kwargs = dict(
        database=database,
        policy=policy,
        num_shards=shards,
        keep_records=False,
        flow_cache_size=flow_cache_size,
    )
    sequential = ShardedEnforcer(backend="sequential", **kwargs)
    forked = ShardedEnforcer(backend="process", **kwargs)
    pooled = ShardedEnforcer(backend="pool", **kwargs)
    warmup = replay[: min(64, len(replay))]
    sequential.process_batch_timed(warmup)
    forked.process_batch_timed(warmup, backend="sequential")
    pooled.process_batch_timed(warmup, backend="sequential")

    seq_verdicts, seq_wall, _ = _run_batched_replay(sequential, bursts)
    fork_verdicts, fork_wall, fork_compute = _run_batched_replay(forked, bursts)
    # The pool's effective backend may have degraded to sequential on
    # fork-less platforms; pipelining only exists on the real pool.
    pool_verdicts, pool_wall, pool_compute = _run_batched_replay(
        pooled, bursts, pipelined=pooled.backend == "pool"
    )
    pooled.close()
    return ShardBackendComparison(
        packets=len(replay),
        shards=shards,
        cpus=available_cpus(),
        sequential_wall_s=seq_wall,
        process_wall_s=fork_wall,
        verdicts_match=seq_verdicts == fork_verdicts == pool_verdicts,
        batches=len(bursts),
        pool_wall_s=pool_wall,
        process_compute_s=fork_compute,
        pool_compute_s=pool_compute,
    )


@dataclass
class SchedulerComparison:
    """Static hand-tuned batching vs the adaptive scheduler on one replay.

    The static side is the experiments' profiled baseline: the replay
    split into ``static_batches`` equal bursts, one pool batch per
    routed worker per burst, pipelined submit-ahead.  The adaptive side
    hands the *same* replay to the pool in a few large macro-bursts and
    lets a :class:`~repro.runtime.scheduler.BatchScheduler` chunk each
    worker's share into its per-worker cap, re-planning between
    submits.  A sequential enforcer provides the verdict reference;
    the run itself asserts three-way verdict identity, so a scheduler
    that changed routing or ordering fails loudly, not as a footnote.
    """

    packets: int
    shards: int
    cpus: int
    #: Bursts in the hand-tuned static split (the profiled 16).
    static_batches: int
    #: Macro-bursts the adaptive side submitted (the scheduler chunks
    #: each into per-worker batches on its own).
    macro_bursts: int
    sequential_wall_s: float
    static_wall_s: float
    adaptive_wall_s: float
    verdicts_match: bool
    #: Resize decisions the scheduler took over the run.
    decisions: int = 0
    final_sizes: tuple[int, ...] = ()
    #: Effective execution backend ("pool", or "sequential" after a
    #: graceful degradation on fork-less platforms).
    backend: str = "pool"

    @property
    def adaptive_vs_static(self) -> float:
        """Wall-clock speedup of the scheduler over the static split."""
        if self.adaptive_wall_s <= 0:
            return float("inf")
        return self.static_wall_s / self.adaptive_wall_s

    @property
    def adaptive_speedup(self) -> float:
        """Wall-clock speedup of the scheduler over sequential."""
        if self.adaptive_wall_s <= 0:
            return float("inf")
        return self.sequential_wall_s / self.adaptive_wall_s

    def summary(self) -> str:
        sizes = ", ".join(str(size) for size in self.final_sizes) or "-"
        return "\n".join(
            [
                f"batch scheduling on {self.packets} packets, {self.shards} "
                f"shards, {self.cpus} cpu(s), backend={self.backend}:",
                f"  sequential              {self.sequential_wall_s * 1e3:8.1f} ms",
                f"  static {self.static_batches:3d}-burst split    "
                f"{self.static_wall_s * 1e3:8.1f} ms",
                f"  adaptive ({self.macro_bursts} macro-bursts) "
                f"{self.adaptive_wall_s * 1e3:8.1f} ms "
                f"({self.adaptive_vs_static:.2f}x vs static; "
                f"{self.decisions} resize decision(s), final caps [{sizes}])",
                f"  verdict-identical across all three: {self.verdicts_match}",
            ]
        )


def run_scheduler_comparison(
    packets: int = 10_000,
    flows: int = 256,
    shards: int = 4,
    corpus_apps: int = 6,
    seed: int = 7,
    flow_cache_size: int = 0,
    batches: int = 16,
    macro_bursts: int = 4,
    scheduler_config=None,
) -> SchedulerComparison:
    """Prove the adaptive scheduler against the static 16-burst split.

    Both pool runs are pipelined (submit-ahead) over the identical
    replay with identical shard configuration.  The static run is the
    exact shape the benchmarks profile — ``batches`` equal bursts, one
    batch per worker per burst.  The adaptive run submits only
    ``macro_bursts`` large bursts and lets the scheduler choose the
    batch boundaries inside each; the scheduler re-plans at every
    submit, so its resize decisions land between macro-bursts.  Verdict
    identity across sequential/static/adaptive is asserted here, in the
    experiment itself — a scheduler bug cannot hide behind a throughput
    number.
    """
    if packets < 1:
        raise ValueError("the replay needs at least one packet")
    if shards < 2:
        raise ValueError("comparing schedulers needs at least two shards")
    if batches < 1 or macro_bursts < 1:
        raise ValueError("both burst splits need at least one burst")
    database = build_signature_database(corpus_apps=corpus_apps, seed=seed)
    replay = build_replay(database.entries(), packets=packets, flows=flows, seed=seed)
    static_bursts = [burst for burst in split_into_bursts(replay, batches) if burst]
    adaptive_bursts = [
        burst for burst in split_into_bursts(replay, macro_bursts) if burst
    ]
    policy = Policy.deny_libraries(DEFAULT_DENY_LIBRARIES, name="scheduler-compare")
    kwargs = dict(
        database=database,
        policy=policy,
        num_shards=shards,
        keep_records=False,
        flow_cache_size=flow_cache_size,
    )
    sequential = ShardedEnforcer(backend="sequential", **kwargs)
    static = ShardedEnforcer(backend="pool", **kwargs)
    adaptive = ShardedEnforcer(
        backend="pool",
        scheduler="adaptive",
        scheduler_config=scheduler_config,
        **kwargs,
    )
    warmup = replay[: min(64, len(replay))]
    sequential.process_batch_timed(warmup)
    static.process_batch_timed(warmup, backend="sequential")
    adaptive.process_batch_timed(warmup, backend="sequential")

    seq_verdicts, seq_wall, _ = _run_batched_replay(sequential, static_bursts)
    static_verdicts, static_wall, _ = _run_batched_replay(
        static, static_bursts, pipelined=static.backend == "pool"
    )
    adaptive_verdicts, adaptive_wall, _ = _run_batched_replay(
        adaptive, adaptive_bursts, pipelined=adaptive.backend == "pool"
    )
    backend = adaptive.backend
    scheduler = adaptive.scheduler
    static.close()
    adaptive.close()
    verdicts_match = seq_verdicts == static_verdicts == adaptive_verdicts
    if not verdicts_match:
        raise RuntimeError(
            "adaptive scheduler changed verdicts: batch resizing must move "
            "batch boundaries only, never routing or intra-flow order"
        )
    return SchedulerComparison(
        packets=len(replay),
        shards=shards,
        cpus=available_cpus(),
        static_batches=len(static_bursts),
        macro_bursts=len(adaptive_bursts),
        sequential_wall_s=seq_wall,
        static_wall_s=static_wall,
        adaptive_wall_s=adaptive_wall,
        verdicts_match=verdicts_match,
        decisions=len(scheduler.decisions),
        final_sizes=tuple(scheduler.sizes()),
        backend=backend,
    )


@dataclass
class LateJoinerResult:
    """Attach cost of a gateway that joins after heavy policy churn.

    The compacted side attaches from a snapshot + suffix log; the
    control side replays the identical full history from an uncompacted
    log.  Both must land on the head's fingerprint and enforce
    verdict-identically to a head-subscribed gateway.
    """

    versions: int
    compact_every: int
    packets: int
    #: Delta records surviving compaction (the log's tail window).
    suffix_records: int
    snapshot_version: int
    snapshot_rules: int
    #: Records the late joiner applied: snapshot bootstrap + suffix.
    bootstrap_records: int
    #: Records the control replica replayed: the entire history.
    full_history_records: int
    compacted_log_bytes: int
    full_log_bytes: int
    bootstrap_wall_s: float
    full_replay_wall_s: float
    converged: bool
    verdicts_match: bool

    @property
    def bootstrap_bound_held(self) -> bool:
        """The acceptance bound: attach cost is O(suffix), not O(history)."""
        return self.bootstrap_records <= self.suffix_records + 1

    @property
    def replay_savings(self) -> float:
        """Fraction of the history the snapshot bootstrap skipped."""
        if self.full_history_records <= 0:
            return 0.0
        return 1.0 - self.bootstrap_records / self.full_history_records

    def summary(self) -> str:
        return "\n".join(
            [
                f"late joiner after {self.versions} committed versions "
                f"(compact_every={self.compact_every}):",
                f"  bootstrap cost: {self.bootstrap_records} record(s) "
                f"(snapshot @v{self.snapshot_version} with {self.snapshot_rules} rule(s) "
                f"+ {self.suffix_records}-record suffix) in {self.bootstrap_wall_s * 1e3:.1f} ms",
                f"  uncompacted control: {self.full_history_records} record(s) "
                f"in {self.full_replay_wall_s * 1e3:.1f} ms "
                f"({self.replay_savings:.0%} of the history skipped)",
                f"  log size on the wire: {self.compacted_log_bytes} bytes compacted "
                f"vs {self.full_log_bytes} bytes full history",
                f"  O(suffix) bound held: {self.bootstrap_bound_held}; "
                f"converged to head fingerprint: {self.converged}; "
                f"verdict-identical on {self.packets} packets: {self.verdicts_match}",
            ]
        )


def run_late_joiner_bench(
    versions: int = 240,
    compact_every: int = 50,
    packets: int = 2_000,
    flows: int = 128,
    gateways: int = 2,
    corpus_apps: int = 6,
    seed: int = 7,
) -> LateJoinerResult:
    """Measure snapshot bootstrap vs full-history replay for a late joiner.

    Two stores commit the identical ``versions``-transaction churn
    schedule: one with ``compact_every`` retention (its log is snapshot
    + suffix), one append-only (the control).  A fresh gateway then
    attaches to each from the serialized log alone, and both are
    replayed against a head-subscribed enforcer for verdict identity.
    """
    if versions < 1:
        raise ValueError("the late joiner needs at least one committed version")
    if compact_every < 1:
        raise ValueError("compact_every must be at least 1")
    database = build_signature_database(corpus_apps=corpus_apps, seed=seed)
    replay = build_replay(database.entries(), packets=packets, flows=flows, seed=seed)
    base_policy = Policy.deny_libraries(DEFAULT_DENY_LIBRARIES, name="late-joiner-base")

    fleet = GatewayFleet(
        database=database,
        policy=base_policy,
        num_gateways=gateways,
        live=True,
        compact_every=compact_every,
        keep_records=False,
    )
    control_store = PolicyStore.from_policy(base_policy, name="late-joiner-control")

    # The identical churn schedule commits to both stores: rotating
    # per-app deny toggles, every commit one version (ids are explicit,
    # so both histories produce identical fingerprint chains).
    churn_targets = [
        entry.package_name.replace(".", "/") for entry in database.entries()
    ]
    toggled: dict[str, bool] = {}
    for index in range(versions):
        target = churn_targets[index % len(churn_targets)]
        rule_id = f"churn-{target}"
        if toggled.get(target):
            update = PolicyUpdate(reason=f"unblock {target}").remove_rule(rule_id)
            toggled[target] = False
        else:
            update = PolicyUpdate(reason=f"block {target}").add_rule(
                PolicyRule(
                    action=PolicyAction.DENY,
                    level=PolicyLevel.LIBRARY,
                    target=target,
                ),
                rule_id=rule_id,
            )
            toggled[target] = True
        fleet.apply_update(update)
        control_store.apply(update)

    compacted_log = fleet.delta_log
    full_log = control_store.delta_log
    assert compacted_log.snapshot is not None

    started = time.perf_counter()
    late = fleet.add_gateway(name="late-joiner")
    bootstrap_wall = time.perf_counter() - started

    control = PolicyEnforcer(database=database, policy=None, keep_records=False)
    started = time.perf_counter()
    control_replica = GatewayReplica.from_log(control, full_log, name="full-history")
    full_replay_wall = time.perf_counter() - started

    head = PolicyEnforcer(
        database=database, policy=fleet.store.snapshot(), keep_records=False
    )
    head_verdicts = [head.process(packet)[0] for packet in replay]
    late_verdicts = [late.enforcer.process(packet)[0] for packet in replay]
    control_verdicts = [control_replica.enforcer.process(packet)[0] for packet in replay]

    return LateJoinerResult(
        versions=versions,
        compact_every=compact_every,
        packets=len(replay),
        suffix_records=len(compacted_log),
        snapshot_version=compacted_log.snapshot.version,
        snapshot_rules=len(compacted_log.snapshot.rules),
        bootstrap_records=late.records_applied,
        full_history_records=control_replica.records_applied,
        compacted_log_bytes=len(compacted_log.to_json()),
        full_log_bytes=len(full_log.to_json()),
        bootstrap_wall_s=bootstrap_wall,
        full_replay_wall_s=full_replay_wall,
        converged=(
            late.verify_against(fleet.store)
            and control_replica.fingerprint() == fleet.store.fingerprint()
        ),
        verdicts_match=late_verdicts == head_verdicts == control_verdicts,
    )


@dataclass
class FleetBenchResult:
    """One fleet replay under churn, plus its single-gateway baseline."""

    packets: int
    devices: int
    gateways: int
    shards_per_gateway: int
    edits: int
    flows: int
    fleet_wall_s: float = 0.0
    baseline_wall_s: float = 0.0
    fleet_verdicts: tuple = ()
    baseline_verdicts: tuple = ()
    per_gateway_packets: tuple[int, ...] = ()
    #: Largest versions-behind-head each gateway reached before a catch-up.
    max_lag: dict = field(default_factory=dict)
    #: Delta-log records each gateway replayed over the whole schedule.
    records_applied: dict = field(default_factory=dict)
    final_versions: dict = field(default_factory=dict)
    store_version: int = 0
    #: Every replica verified (version + rule-table fingerprint) against
    #: the store after the run.
    converged: bool = False
    #: Apps that lost the most flow-cache entries fleet-wide.
    top_churn_apps: list = field(default_factory=list)
    #: Interned-rule cache traffic during catch-up replay: replicas
    #: re-consuming identical logged rule strings should *hit* (reuse a
    #: parse) far more often than they *miss* (parse from scratch).
    catch_up_parse_hits: int = 0
    catch_up_parse_misses: int = 0
    #: Fleet-wide integrity failures (tag-less, unknown-app, and
    #: undecodable packets) — surfaced from the aggregated enforcer
    #: stats instead of requiring a walk over raw records.
    untagged_packets: int = 0
    unknown_apps: int = 0
    decode_errors: int = 0
    backend: ShardBackendComparison | None = None
    #: Effective gateway execution backend ("sequential", or "pool" for
    #: the persistent gateway worker pool; may read "sequential" after
    #: a graceful degradation on fork-less platforms).
    fleet_backend: str = "sequential"
    #: Pool backend only: measured submit-to-harvest wall-clock of the
    #: pipelined burst loop.  The parent commits edits, replays the
    #: baseline and catches replicas up *while* workers enforce, so this
    #: includes the overlapped control-plane work — the pipelining win
    #: is this number staying close to the workers' own compute time.
    fleet_measured_wall_s: float = 0.0
    #: Pool health counters surfaced from the aggregated stats.
    pool_worker_crashes: int = 0
    pool_delta_pushes: int = 0
    pool_worker_respawns: int = 0
    backend_fallbacks: int = 0
    pool_ring_batches: int = 0
    pool_pickled_batches: int = 0
    #: Batch scheduling mode on the gateway pool ("static" or "adaptive").
    scheduler: str = "static"
    scheduler_decisions: int = 0
    scheduler_sizes: tuple[int, ...] = ()

    @property
    def verdicts_match(self) -> bool:
        return self.fleet_verdicts == self.baseline_verdicts

    @property
    def fleet_kpps(self) -> float:
        return self.packets / self.fleet_wall_s / 1e3 if self.fleet_wall_s > 0 else float("inf")

    @property
    def baseline_kpps(self) -> float:
        return (
            self.packets / self.baseline_wall_s / 1e3
            if self.baseline_wall_s > 0
            else float("inf")
        )

    def table(self) -> str:
        rows = [
            (
                "single-gateway",
                self.packets,
                f"{self.baseline_wall_s * 1e3:.1f}",
                f"{self.baseline_kpps:.1f}",
                "-",
                "-",
            )
        ]
        lag = self.max_lag
        applied = self.records_applied
        for name, version in self.final_versions.items():
            rows.append(
                (
                    name,
                    self.per_gateway_packets[int(name[2:])]
                    if name.startswith("gw")
                    else "-",
                    "-",
                    "-",
                    f"{lag.get(name, 0)} (applied {applied.get(name, 0)})",
                    f"v{version}",
                )
            )
        rows.append(
            (
                f"fleet-{self.gateways}x{self.shards_per_gateway}",
                self.packets,
                f"{self.fleet_wall_s * 1e3:.1f}",
                f"{self.fleet_kpps:.1f}",
                "-",
                f"v{self.store_version} (head)",
            )
        )
        table = format_table(
            ("configuration", "packets", "wall (ms)", "kpps", "max lag", "policy version"),
            rows,
        )
        churn = (
            ", ".join(f"{app}:{count}" for app, count in self.top_churn_apps)
            if self.top_churn_apps
            else "(none)"
        )
        lines = [
            table,
            f"{self.devices} devices over {self.flows} flows; {self.edits} edits "
            f"committed live ({self.store_version} store versions)",
            f"apps churning the flow cache hardest: {churn}",
            f"catch-up rule parses: {self.catch_up_parse_misses} cold, "
            f"{self.catch_up_parse_hits} reused from the intern cache",
            f"integrity outcomes: {self.untagged_packets} untagged, "
            f"{self.unknown_apps} unknown-app, {self.decode_errors} decode-failure",
            f"replicas converged (fingerprint-verified): {self.converged}",
            f"fleet verdict-identical to single gateway: {self.verdicts_match}",
        ]
        if self.fleet_backend == "pool":
            lines.append(
                f"gateway pool: {self.fleet_measured_wall_s * 1e3:.1f} ms measured "
                f"pipelined wall (modelled compute {self.fleet_wall_s * 1e3:.1f} ms); "
                f"{self.pool_delta_pushes} delta pushes to live workers, "
                f"{self.pool_worker_crashes} worker crash(es)"
            )
            lines.append(
                f"pool health: {self.pool_worker_respawns} respawn(s), "
                f"{self.backend_fallbacks} backend fallback(s); batches "
                f"{self.pool_ring_batches} via ring, "
                f"{self.pool_pickled_batches} pickled"
            )
            if self.scheduler == "adaptive":
                sizes = ", ".join(str(size) for size in self.scheduler_sizes) or "-"
                lines.append(
                    f"adaptive batch scheduler: {self.scheduler_decisions} "
                    f"resize decision(s), final per-gateway caps [{sizes}]"
                )
        if self.backend is not None:
            lines.append(self.backend.summary())
        return "\n".join(lines)


def run_fleet_bench(
    packets: int = 10_000,
    devices: int = 120,
    gateways: int = 3,
    shards_per_gateway: int = 2,
    edits: int = 12,
    corpus_apps: int = 8,
    seed: int = 7,
    flow_cache_size: int = 4096,
    apps_per_device: tuple[int, int] = (1, 3),
    backend_packets: int = 0,
    backend: str = "sequential",
    scheduler: str = "static",
    scheduler_config=None,
) -> FleetBenchResult:
    """Replay one fleet workload under live churn; compare with one gateway.

    Per burst: the administrator commits a rotating set of per-app deny
    edits to the shared store (replicas off the live path lag by exactly
    those versions — the recorded convergence lag), every gateway then
    catches up by delta-log replay, and the burst is processed across
    the fleet.  A single enforcer subscribed directly to the store
    replays the identical schedule as the verdict baseline.

    ``backend="pool"`` runs the fleet on the persistent gateway worker
    pool with a *pipelined* burst loop: each burst is submitted to the
    workers first, the parent then replays the baseline and commits the
    next round of edits while the workers enforce, and only then is the
    burst harvested.  Pipe FIFO ordering keeps the worker-side record
    replay and batch enforcement in exactly the serial interleaving, so
    verdict identity against the baseline is unchanged.
    ``backend="process"`` keeps the gateways in-process but runs each
    gateway's shards on the fork-per-batch backend — the pool's
    amortization foil.  Both fork-based modes degrade gracefully to
    sequential on platforms without the ``fork`` start method.

    ``backend_packets > 0`` additionally runs
    :func:`run_shard_backend_comparison` at that replay size.

    ``scheduler="adaptive"`` (pool backend only) puts a
    :class:`~repro.runtime.scheduler.BatchScheduler` between the fleet
    and the gateway pool, so burst batch boundaries resize online from
    the pool's observed stage breakdown; verdict identity against the
    baseline is unchanged, and the taken resize decisions are reported
    on the result.
    """
    if packets <= edits:
        raise ValueError("need more packets than edits so every burst is non-empty")
    if gateways < 2:
        raise ValueError("a fleet bench needs at least two gateway replicas")
    if corpus_apps < 2:
        raise ValueError("the churn schedule needs at least two corpus apps")
    if devices < 1:
        raise ValueError("the device fleet needs at least one device")

    apps = CorpusGenerator(CorpusConfig(n_apps=corpus_apps, seed=seed)).generate()
    base_policy = Policy.deny_libraries(DEFAULT_DENY_LIBRARIES, name="fleet-base")
    if backend not in ("sequential", "process", "pool"):
        raise ValueError(
            f"unknown fleet backend {backend!r}; "
            "choose from ('sequential', 'process', 'pool')"
        )
    deployment = BorderPatrolDeployment(
        policy=base_policy,
        num_gateways=gateways,
        enforcer_shards=shards_per_gateway,
        # "pool" runs whole gateways in long-lived workers (their shards
        # in-process); "process" keeps gateways in-process and forks
        # their shards per batch — the pool's amortization foil.
        shard_backend="process" if backend == "process" else "sequential",
        gateway_backend="pool" if backend == "pool" else "sequential",
        scheduler=scheduler,
        scheduler_config=scheduler_config,
        drop_untagged=True,
        drop_unknown_apps=True,
        keep_records=False,
    )
    fleet = deployment.fleet
    device_fleet = DeviceFleet(
        deployment,
        apps,
        DeviceFleetConfig(
            devices=devices,
            min_apps_per_device=apps_per_device[0],
            max_apps_per_device=apps_per_device[1],
            seed=seed,
        ),
    )
    trace = device_fleet.build_trace(packets)
    bursts = [burst for burst in split_into_bursts(trace, edits + 1) if burst]
    store = deployment.policy_store

    # The verdict baseline: one enforcer subscribed straight to the head
    # store, so it is always at the committed version when a burst runs.
    baseline = PolicyEnforcer(
        database=deployment.database,
        policy=store.snapshot(),
        keep_records=False,
        flow_cache_size=flow_cache_size,
    )
    store.subscribe(baseline, push=False)

    # Staged-rollout mode: commits accumulate in the delta log and every
    # gateway converges by catch-up replay between bursts.
    fleet.set_live(False)

    result = FleetBenchResult(
        packets=len(trace),
        devices=device_fleet.device_count(),
        gateways=gateways,
        shards_per_gateway=shards_per_gateway,
        edits=len(bursts) - 1,
        flows=len(device_fleet.build_flows()),
        max_lag={replica.name: 0 for replica in fleet.replicas},
        records_applied={replica.name: 0 for replica in fleet.replicas},
    )

    churn_targets = [app.package_name.replace(".", "/") for app in apps]
    toggled: dict[str, bool] = {}
    fleet_verdicts: list[Verdict] = []
    baseline_verdicts: list[Verdict] = []
    fleet_wall = 0.0
    baseline_wall = 0.0
    per_gateway = [0] * gateways

    for index, burst in enumerate(bursts):
        # Converge the fleet (and record the lag the last edits opened).
        # Replicas are independent gateways catching up concurrently, so
        # the burst pays the slowest replica's replay, not the sum.
        for name, lag in fleet.lags().items():
            result.max_lag[name] = max(result.max_lag[name], lag)
        catch_up_walls = []
        hits_before = RULE_INTERN_CACHE.hits
        misses_before = RULE_INTERN_CACHE.misses
        for replica in fleet.replicas:
            started = time.perf_counter()
            applied = replica.catch_up(store.delta_log)
            catch_up_walls.append(time.perf_counter() - started)
            result.records_applied[replica.name] += applied
        result.catch_up_parse_hits += RULE_INTERN_CACHE.hits - hits_before
        result.catch_up_parse_misses += RULE_INTERN_CACHE.misses - misses_before
        fleet_wall += max(catch_up_walls, default=0.0)

        # Pipelined pool mode: hand the burst to the workers *first*
        # (they enforce at the versions the replicas hold right now),
        # then overlap the baseline replay and the next edit round with
        # the workers' enforcement, and harvest last.
        pooled = fleet.backend == "pool"
        if pooled:
            token = fleet.submit_burst(burst)
            batch = None
        else:
            batch = fleet.process_batch_timed(burst)

        started = time.perf_counter()
        processed = baseline.process_batch(burst)
        baseline_wall += time.perf_counter() - started
        baseline_verdicts.extend(verdict for verdict, _ in processed)

        if index < len(bursts) - 1:
            # Rotate 1..3 per-app deny toggles; each is one committed
            # version, so the pre-catch-up lag varies across bursts.
            # Commit time (which includes the live-subscribed baseline's
            # delta application) is charged to the baseline path, the
            # replicas' replay of the same transactions to the fleet —
            # each side pays for applying every edit exactly once.
            started = time.perf_counter()
            for offset in range(1 + index % 3):
                target = churn_targets[(index + offset) % len(churn_targets)]
                rule_id = f"churn-{target}"
                if toggled.get(target):
                    store.apply(
                        PolicyUpdate(reason=f"unblock {target}").remove_rule(rule_id)
                    )
                    toggled[target] = False
                else:
                    store.apply(
                        PolicyUpdate(reason=f"block {target}").add_rule(
                            PolicyRule(
                                action=PolicyAction.DENY,
                                level=PolicyLevel.LIBRARY,
                                target=target,
                            ),
                            rule_id=rule_id,
                        )
                    )
                    toggled[target] = True
            baseline_wall += time.perf_counter() - started

        if pooled:
            batch = fleet.collect_burst(token)
            result.fleet_measured_wall_s += batch.measured_wall_s
        fleet_wall += batch.parallel_wall_s
        fleet_verdicts.extend(verdict for verdict, _ in batch.results)
        per_gateway = [
            total + count for total, count in zip(per_gateway, batch.gateway_packet_counts)
        ]

    if backend == "process":
        # Report the effective shard backend (it may have degraded).
        result.fleet_backend = getattr(
            fleet.replicas[0].enforcer, "backend", "sequential"
        )
    else:
        result.fleet_backend = fleet.backend
    result.fleet_wall_s = fleet_wall
    result.baseline_wall_s = baseline_wall
    result.fleet_verdicts = tuple(fleet_verdicts)
    result.baseline_verdicts = tuple(baseline_verdicts)
    result.per_gateway_packets = tuple(per_gateway)
    result.final_versions = fleet.policy_versions()
    result.store_version = store.version
    result.converged = fleet.converged
    result.scheduler = scheduler
    if fleet.scheduler is not None:
        result.scheduler_decisions = len(fleet.scheduler.decisions)
        result.scheduler_sizes = tuple(fleet.scheduler.sizes())
    aggregated = fleet.aggregate_stats()
    fleet.close()
    result.top_churn_apps = aggregated.top_churn_apps(limit=3)
    result.untagged_packets = aggregated.untagged_packets
    result.unknown_apps = aggregated.unknown_apps
    result.decode_errors = aggregated.decode_errors
    result.pool_worker_crashes = aggregated.pool_worker_crashes
    result.pool_delta_pushes = aggregated.pool_delta_pushes
    result.pool_worker_respawns = aggregated.pool_worker_respawns
    result.backend_fallbacks = aggregated.backend_fallbacks
    result.pool_ring_batches = aggregated.pool_ring_batches
    result.pool_pickled_batches = aggregated.pool_pickled_batches
    # The store seeds at version 0, so its version is exactly the number
    # of churn transactions committed over the schedule.
    result.edits = store.version
    if backend_packets > 0:
        result.backend = run_shard_backend_comparison(
            packets=backend_packets,
            shards=max(2, shards_per_gateway),
            corpus_apps=corpus_apps,
            seed=seed,
        )
    return result
