"""Shared host-context metadata for every ``BENCH_*.json`` artifact.

The benchmark suites stash their structured results in pytest-benchmark's
``extra_info``; CI gates and humans reading the JSON later need to know
*where* a number came from — a 1-CPU smoke container and a 16-core full
run produce wildly different walls, and timing gates must only bind on
the latter.  :func:`record_bench_metadata` stamps one uniform ``host``
block into ``extra_info`` so every artifact is self-describing.
"""

from __future__ import annotations

import platform
import sys

from repro.experiments.fleet import available_cpus


def bench_metadata(smoke: bool) -> dict:
    """Host context every benchmark artifact should carry.

    ``smoke`` records whether the run used reduced packet counts (CI
    smoke mode); downstream gates skip timing assertions when it is
    true, mirroring the in-suite ``timing_sensitive`` convention.
    """
    return {
        "cpus": available_cpus(),
        "python": platform.python_version(),
        "platform": sys.platform,
        "smoke": bool(smoke),
    }


def record_bench_metadata(extra_info, smoke: bool) -> dict:
    """Stamp the shared ``host`` block into a benchmark's ``extra_info``."""
    meta = bench_metadata(smoke)
    extra_info["host"] = meta
    return meta
