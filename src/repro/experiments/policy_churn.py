"""Sustained gateway throughput under continuous policy churn.

The ROADMAP north-star (millions of users, continuous admin edits)
stresses the one weakness of the PR-1 fast path: the legacy
``set_policy`` whole-replacement flushes every cached flow verdict and
recompiles every app on *every* rule edit, collapsing the flow cache
exactly when the gateway is busiest.  The versioned control plane
(:mod:`repro.core.policy_store`) replaces that with delta transactions
and surgical invalidation; this driver measures what that buys.

One heavy-tailed replay is processed in bursts; between bursts an
administrator toggles a deny rule targeting a library present in only
**one** app (the app's own package prefix), so every other app's flows
are provably unaffected.  The identical burst + edit schedule runs
through:

* ``delta``     — a :class:`~repro.core.policy_store.PolicyStore`
  subscriber: each edit recompiles only the one touched app and drops
  only its flow-cache entries;
* ``flush``     — the legacy baseline: each edit is a full
  ``set_policy`` replacement (whole-cache flush, lazy full recompile);
* ``delta-sharded-N`` — the delta path broadcast over N enforcer
  shards (modelled parallel wall-clock), verifying the versioned
  broadcast converges.

All paths must produce the identical verdict sequence: the delta path
is an optimisation of *when* compilation happens, never of *what* the
policy decides.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.encoding import StackTraceEncoder
from repro.core.policy import Policy, PolicyAction, PolicyLevel, PolicyRule
from repro.core.policy_enforcer import PolicyEnforcer
from repro.core.policy_store import PolicyStore, PolicyUpdate
from repro.experiments.common import format_churn_by_app, format_table
from repro.experiments.gateway_throughput import (
    DEFAULT_DENY_LIBRARIES,
    build_replay,
    build_signature_database,
)
from repro.netstack.netfilter import Verdict
from repro.netstack.sharding import ShardedEnforcer

#: Stable rule id the churn schedule toggles in the policy store.
CHURN_RULE_ID = "churn"


@dataclass
class ChurnPathResult:
    """Counters and wall-clock for one enforcement path over the schedule."""

    name: str
    packets: int
    wall_s: float
    verdicts: tuple[Verdict, ...]
    cache_hits: int = 0
    cache_misses: int = 0
    whole_flushes: int = 0
    surgical_invalidations: int = 0
    entries_invalidated: int = 0
    apps_recompiled: int = 0
    final_policy_version: int = 0
    #: Flow-cache entries lost per app (invalidations + LRU evictions).
    churn_by_app: dict = field(default_factory=dict)

    @property
    def pps(self) -> float:
        return self.packets / self.wall_s if self.wall_s > 0 else float("inf")

    @property
    def hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0


@dataclass
class PolicyChurnResult:
    """All paths measured over one identical replay + edit schedule."""

    packets: int
    flows: int
    edits: int
    churn_library: str
    churn_app: str
    churn_app_packets: int
    results: dict[str, ChurnPathResult] = field(default_factory=dict)

    @property
    def unaffected_packets(self) -> int:
        return self.packets - self.churn_app_packets

    @property
    def verdicts_match(self) -> bool:
        sequences = [result.verdicts for result in self.results.values()]
        return all(sequence == sequences[0] for sequence in sequences[1:])

    def pps(self, name: str) -> float:
        return self.results[name].pps

    def speedup(self, name: str, baseline: str = "flush") -> float:
        return self.pps(name) / self.pps(baseline)

    def table(self) -> str:
        rows = []
        for name, result in self.results.items():
            rows.append(
                (
                    name,
                    result.packets,
                    f"{result.wall_s * 1e3:.1f}",
                    f"{result.pps / 1e3:.1f}",
                    f"{result.hit_rate * 100:.1f}%",
                    result.whole_flushes,
                    result.surgical_invalidations,
                    result.entries_invalidated,
                    result.apps_recompiled,
                )
            )
        table = format_table(
            (
                "configuration",
                "packets",
                "wall (ms)",
                "kpps",
                "hit rate",
                "whole flushes",
                "surgical",
                "entries inval",
                "apps recompiled",
            ),
            rows,
        )
        delta_churn = self.results["delta"].churn_by_app if "delta" in self.results else {}
        return table + (
            f"\n{self.edits} edits toggling deny [library][\"{self.churn_library}\"] "
            f"(touches only {self.churn_app}: {self.churn_app_packets} of "
            f"{self.packets} packets)"
            f"\napps churning the cache hardest (delta path): "
            f"{format_churn_by_app(delta_churn)}"
            f"\nall paths verdict-identical: {self.verdicts_match}"
        )


def _count_churn_packets(replay, churn_app_id: str) -> int:
    encoder = StackTraceEncoder()
    count = 0
    for packet in replay:
        tag_bytes = encoder.extract_tag_bytes(packet.options)
        if tag_bytes is not None and encoder.decode(tag_bytes).app_id == churn_app_id:
            count += 1
    return count


def _split_bursts(replay, edits: int) -> list[list]:
    burst_count = edits + 1
    size = max(1, len(replay) // burst_count)
    bursts = [replay[i * size : (i + 1) * size] for i in range(burst_count - 1)]
    bursts.append(replay[(burst_count - 1) * size :])
    return [burst for burst in bursts if burst]


def _run_schedule(name, enforcer, apply_edit, bursts, sharded: bool) -> ChurnPathResult:
    """Process every burst, applying one edit between consecutive bursts.

    Edit-application time is charged to the path's wall-clock: the
    control-plane cost of an update is part of what the schedule
    compares.
    """
    verdicts: list[Verdict] = []
    wall = 0.0
    for index, burst in enumerate(bursts):
        if sharded:
            batch = enforcer.process_batch_timed(burst)
            wall += batch.parallel_wall_s
            verdicts.extend(verdict for verdict, _ in batch.results)
        else:
            started = time.perf_counter()
            processed = enforcer.process_batch(burst)
            wall += time.perf_counter() - started
            verdicts.extend(verdict for verdict, _ in processed)
        if index < len(bursts) - 1:
            started = time.perf_counter()
            apply_edit(index)
            wall += time.perf_counter() - started
    stats = enforcer.stats
    return ChurnPathResult(
        name=name,
        packets=len(verdicts),
        wall_s=wall,
        verdicts=tuple(verdicts),
        cache_hits=stats.cache_hits,
        cache_misses=stats.cache_misses,
        whole_flushes=stats.cache_invalidations,
        surgical_invalidations=stats.cache_surgical_invalidations,
        entries_invalidated=stats.cache_entries_invalidated,
        apps_recompiled=stats.apps_recompiled,
        final_policy_version=enforcer.policy_version,
        churn_by_app=dict(stats.cache_churn_by_app),
    )


def _delta_editor(store: PolicyStore, churn_rule: PolicyRule):
    def apply_edit(_index: int) -> None:
        if CHURN_RULE_ID in store:
            store.apply(PolicyUpdate(reason="unblock churn library").remove_rule(CHURN_RULE_ID))
        else:
            store.apply(
                PolicyUpdate(reason="block churn library").add_rule(
                    churn_rule, rule_id=CHURN_RULE_ID
                )
            )

    return apply_edit


def run_policy_churn(
    packets: int = 10_000,
    flows: int = 256,
    edits: int = 24,
    corpus_apps: int = 6,
    seed: int = 7,
    shards: int = 4,
    flow_cache_size: int = 4096,
) -> PolicyChurnResult:
    """Measure delta vs whole-flush policy updates over one identical replay."""
    if packets < 1:
        raise ValueError("the replay needs at least one packet")
    if edits < 1:
        raise ValueError("a churn run needs at least one policy edit")
    if corpus_apps < 2:
        raise ValueError("churn needs >= 2 corpus apps so unaffected apps exist")
    if packets <= edits:
        raise ValueError("need more packets than edits so every burst is non-empty")

    database = build_signature_database(corpus_apps=corpus_apps, seed=seed)
    entries = database.entries()
    replay = build_replay(entries, packets=packets, flows=flows, seed=seed)
    bursts = _split_bursts(replay, edits)

    churn_entry = entries[0]
    churn_library = churn_entry.package_name.replace(".", "/")
    churn_rule = PolicyRule(
        action=PolicyAction.DENY, level=PolicyLevel.LIBRARY, target=churn_library
    )
    base = Policy.deny_libraries(DEFAULT_DENY_LIBRARIES, name="churn-base")

    result = PolicyChurnResult(
        packets=len(replay),
        flows=flows,
        edits=len(bursts) - 1,
        churn_library=churn_library,
        churn_app=churn_entry.package_name,
        churn_app_packets=_count_churn_packets(replay, churn_entry.app_id),
    )

    # Delta path: a store subscriber receiving surgical invalidations.
    store = PolicyStore.from_policy(base)
    delta_enforcer = PolicyEnforcer(
        database=database,
        policy=store.snapshot(),
        keep_records=False,
        flow_cache_size=flow_cache_size,
    )
    store.subscribe(delta_enforcer, push=False)
    result.results["delta"] = _run_schedule(
        "delta", delta_enforcer, _delta_editor(store, churn_rule), bursts, sharded=False
    )

    # Flush baseline: every edit is a legacy whole-replacement set_policy.
    flush_enforcer = PolicyEnforcer(
        database=database,
        policy=Policy(rules=list(base.rules), default_action=base.default_action, name="flush-v0"),
        keep_records=False,
        flow_cache_size=flow_cache_size,
    )
    churn_active = {"on": False}

    def flush_edit(index: int) -> None:
        churn_active["on"] = not churn_active["on"]
        rules = list(base.rules) + ([churn_rule] if churn_active["on"] else [])
        flush_enforcer.set_policy(
            Policy(rules=rules, default_action=base.default_action, name=f"flush-v{index + 1}")
        )

    result.results["flush"] = _run_schedule(
        "flush", flush_enforcer, flush_edit, bursts, sharded=False
    )

    # Delta path over the sharded gateway: versioned broadcast to N shards.
    if shards >= 2:
        sharded_store = PolicyStore.from_policy(base)
        sharded_enforcer = ShardedEnforcer(
            database=database,
            policy=sharded_store.snapshot(),
            num_shards=shards,
            keep_records=False,
            flow_cache_size=flow_cache_size,
        )
        sharded_store.subscribe(sharded_enforcer, push=False)
        result.results[f"delta-sharded-{shards}"] = _run_schedule(
            f"delta-sharded-{shards}",
            sharded_enforcer,
            _delta_editor(sharded_store, churn_rule),
            bursts,
            sharded=True,
        )

    return result
