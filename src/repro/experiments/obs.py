"""Observability overhead bench and the live fleet profiler driver.

The runtime observability layer (:mod:`repro.obs`) promises two things
the rest of the repo depends on: instrumentation must not change what
the policy decides, and it must stay cheap enough to leave attached in
production.  :func:`run_obs_bench` pins both — three pool-backed
enforcers process the identical batched replay:

* **uninstrumented** — no observability attached (the baseline);
* **null registry**  — the full instrumented code path with every
  observation a no-op (the "is it attached" branch cost);
* **instrumented**   — a live :class:`~repro.obs.RuntimeObservability`
  with sampled enforcer stages, cross-process batch spans, and worker
  registry deltas folding back into the parent.

Walls are medians over ``rounds`` interleaved repetitions; verdicts
must be identical across all three variants.  The instrumented run
additionally yields the per-stage pipeline breakdown
(serialize/ring_write/queue_wait/enforce/fold) and a per-worker latency
profile — the numbers ``BENCH_obs.json`` archives and CI gates on.

:func:`run_obs_profile` drives the same instrumented replay for the
``obs`` CLI subcommand: it captures a ``top``-style frame after each
burst plus final Prometheus/JSONL exports and any health events.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from statistics import median

from repro.core.policy import Policy
from repro.experiments.common import format_table, split_into_bursts
from repro.experiments.fleet import available_cpus
from repro.experiments.gateway_throughput import (
    DEFAULT_DENY_LIBRARIES,
    build_replay,
    build_signature_database,
)
from repro.netstack.sharding import ShardedEnforcer
from repro.obs import (
    NULL_REGISTRY,
    HealthThresholds,
    PoolHealthMonitor,
    RuntimeObservability,
    render_top,
    to_jsonl,
    to_prometheus,
)
from repro.obs.export import record_enforcer_stats, record_pool_health

#: The :class:`~repro.runtime.pool.ShardWorkerPool` default name — the
#: pool label every shard-pool metric series carries.
SHARD_POOL = "shard-pool"


@dataclass
class WorkerProfile:
    """Per-worker latency profile extracted from the batch histogram."""

    worker: int
    batches: int
    p50_ms: float
    p99_ms: float
    respawns: int = 0

    def to_dict(self) -> dict:
        return {
            "worker": self.worker,
            "batches": self.batches,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "respawns": self.respawns,
        }


@dataclass
class ObsBenchResult:
    """Instrumentation overhead plus the latency profile it bought."""

    packets: int
    shards: int
    cpus: int
    batches: int
    rounds: int
    sample_every: int
    #: Effective execution backend ("pool", or "sequential" after a
    #: fork-less degradation — overheads still bind, spans do not).
    backend: str
    uninstrumented_wall_s: float
    null_wall_s: float
    instrumented_wall_s: float
    verdicts_match: bool
    #: Total seconds per pool pipeline stage over the instrumented run.
    stage_seconds: dict = field(default_factory=dict)
    #: Sampled enforcer stage observation counts (proof sampling ran).
    enforcer_samples: dict = field(default_factory=dict)
    workers: list = field(default_factory=list)

    def _overhead_pct(self, wall_s: float) -> float:
        if self.uninstrumented_wall_s <= 0:
            return 0.0
        return (wall_s / self.uninstrumented_wall_s - 1.0) * 100.0

    @property
    def null_overhead_pct(self) -> float:
        """Cost of the attached-but-null code path vs no instrumentation."""
        return self._overhead_pct(self.null_wall_s)

    @property
    def instrumented_overhead_pct(self) -> float:
        """Cost of live metrics + traces vs no instrumentation."""
        return self._overhead_pct(self.instrumented_wall_s)

    def to_dict(self) -> dict:
        return {
            "packets": self.packets,
            "shards": self.shards,
            "cpus": self.cpus,
            "batches": self.batches,
            "rounds": self.rounds,
            "sample_every": self.sample_every,
            "backend": self.backend,
            "uninstrumented_wall_s": self.uninstrumented_wall_s,
            "null_wall_s": self.null_wall_s,
            "instrumented_wall_s": self.instrumented_wall_s,
            "null_overhead_pct": self.null_overhead_pct,
            "instrumented_overhead_pct": self.instrumented_overhead_pct,
            "verdicts_match": self.verdicts_match,
            "stage_seconds": dict(self.stage_seconds),
            "enforcer_samples": dict(self.enforcer_samples),
            "workers": [profile.to_dict() for profile in self.workers],
        }

    def table(self) -> str:
        rows = [
            ("uninstrumented", f"{self.uninstrumented_wall_s * 1e3:.1f}", "-"),
            (
                "null registry",
                f"{self.null_wall_s * 1e3:.1f}",
                f"{self.null_overhead_pct:+.2f}%",
            ),
            (
                "instrumented",
                f"{self.instrumented_wall_s * 1e3:.1f}",
                f"{self.instrumented_overhead_pct:+.2f}%",
            ),
        ]
        table = format_table(("variant", "median wall (ms)", "overhead"), rows)
        lines = [
            f"obs overhead on {self.packets} packets in {self.batches} batch(es), "
            f"{self.shards} shards, {self.cpus} cpu(s), backend={self.backend}, "
            f"sampling 1/{self.sample_every}:",
            table,
        ]
        if self.stage_seconds:
            parts = [
                f"{stage} {total * 1e3:.2f} ms"
                for stage, total in sorted(
                    self.stage_seconds.items(), key=lambda item: -item[1]
                )
            ]
            lines.append("pipeline stages: " + " | ".join(parts))
        for profile in self.workers:
            lines.append(
                f"  w{profile.worker}: {profile.batches} batches, "
                f"p50 {profile.p50_ms:.3f} ms, p99 {profile.p99_ms:.3f} ms, "
                f"{profile.respawns} respawn(s)"
            )
        lines.append(f"verdict-identical across all variants: {self.verdicts_match}")
        return "\n".join(lines)


def _run_bursts(enforcer, bursts, pipelined):
    """One replay pass; returns (verdicts, wall-clock seconds)."""
    started = time.perf_counter()
    if pipelined:
        tokens = [enforcer.submit_batch(burst) for burst in bursts]
        batches = [enforcer.collect_batch(token) for token in tokens]
    else:
        batches = [enforcer.process_batch_timed(burst) for burst in bursts]
    wall = time.perf_counter() - started
    verdicts = [
        verdict for batch in batches for verdict, _ in batch.results
    ]
    return verdicts, wall


def worker_profiles(obs, pool: str = SHARD_POOL, health=None) -> list[WorkerProfile]:
    """Per-worker p50/p99 batch latency (ms) from the registry, with
    respawn counts from a :class:`PoolHealthSnapshot` when given."""
    hist = obs.registry.get("pool_worker_batch_seconds")
    profiles: list[WorkerProfile] = []
    if hist is None or not hasattr(hist, "_series"):
        return profiles
    for key in sorted(hist._series, key=lambda item: int(item[1])):
        pool_label, worker = key
        if pool_label != pool:
            continue
        state = hist._series[key]
        index = int(worker)
        respawns = 0
        if health is not None and index < len(health.respawn_counts):
            respawns = health.respawn_counts[index]
        profiles.append(
            WorkerProfile(
                worker=index,
                batches=state.count,
                p50_ms=hist.quantile(0.50, pool=pool_label, worker=worker) * 1e3,
                p99_ms=hist.quantile(0.99, pool=pool_label, worker=worker) * 1e3,
                respawns=respawns,
            )
        )
    return profiles


def run_obs_bench(
    packets: int = 10_000,
    flows: int = 256,
    shards: int = 4,
    corpus_apps: int = 6,
    seed: int = 7,
    flow_cache_size: int = 0,
    batches: int = 16,
    rounds: int = 3,
    sample_every: int = 32,
) -> ObsBenchResult:
    """Bound instrumentation overhead on the pool-backed batched replay.

    All three variants process the identical burst sequence through
    identically-configured pool-backed ``ShardedEnforcer`` instances
    (``flow_cache_size=0`` keeps real per-packet work on the path, as
    in :func:`~repro.experiments.fleet.run_shard_backend_comparison`).
    Rounds interleave the variants so drift penalizes them equally, and
    each variant's wall is the median over rounds.
    """
    if packets < 1:
        raise ValueError("the replay needs at least one packet")
    if packets < batches:
        raise ValueError("the replay needs at least one packet per batch")
    if shards < 1:
        raise ValueError("need at least one enforcer shard")
    if rounds < 1:
        raise ValueError("need at least one timing round")
    database = build_signature_database(corpus_apps=corpus_apps, seed=seed)
    replay = build_replay(database.entries(), packets=packets, flows=flows, seed=seed)
    bursts = [burst for burst in split_into_bursts(replay, batches) if burst]
    policy = Policy.deny_libraries(DEFAULT_DENY_LIBRARIES, name="obs-bench")
    kwargs = dict(
        database=database,
        policy=policy,
        num_shards=shards,
        keep_records=False,
        flow_cache_size=flow_cache_size,
    )

    plain = ShardedEnforcer(backend="pool", **kwargs)
    nulled = ShardedEnforcer(backend="pool", **kwargs)
    nulled.attach_obs(RuntimeObservability(NULL_REGISTRY, sample_every=sample_every))
    obs = RuntimeObservability(sample_every=sample_every)
    instrumented = ShardedEnforcer(backend="pool", **kwargs)
    instrumented.attach_obs(obs)
    variants = [plain, nulled, instrumented]

    warmup = replay[: min(64, len(replay))]
    for enforcer in variants:
        enforcer.process_batch_timed(warmup, backend="sequential")

    pipelined = plain.backend == "pool"
    walls: list[list[float]] = [[], [], []]
    verdict_runs: list[list] = [[], [], []]
    for _ in range(rounds):
        for index, enforcer in enumerate(variants):
            verdicts, wall = _run_bursts(enforcer, bursts, pipelined)
            walls[index].append(wall)
            verdict_runs[index] = verdicts

    health = instrumented.pool_health()
    profiles = worker_profiles(obs, SHARD_POOL, health)
    stage_seconds = obs.stage_breakdown(SHARD_POOL)
    enforcer_hist = obs.registry.get("enforcer_stage_seconds")
    samples: dict[str, int] = {}
    if enforcer_hist is not None and hasattr(enforcer_hist, "_series"):
        for key, state in enforcer_hist._series.items():
            if state.count:
                samples[key[0]] = state.count
    for enforcer in variants:
        enforcer.close()

    return ObsBenchResult(
        packets=len(replay),
        shards=shards,
        cpus=available_cpus(),
        batches=len(bursts),
        rounds=rounds,
        sample_every=sample_every,
        backend=plain.backend,
        uninstrumented_wall_s=median(walls[0]),
        null_wall_s=median(walls[1]),
        instrumented_wall_s=median(walls[2]),
        verdicts_match=verdict_runs[0] == verdict_runs[1] == verdict_runs[2],
        stage_seconds=stage_seconds,
        enforcer_samples=samples,
        workers=profiles,
    )


@dataclass
class ObsProfile:
    """Everything one profiled replay produced: frames + exports."""

    packets: int
    shards: int
    batches: int
    backend: str
    frames: list = field(default_factory=list)
    events: list = field(default_factory=list)
    prometheus: str = ""
    jsonl: str = ""
    degraded: bool = False
    #: Batch scheduling mode the replay ran under.
    scheduler: str = "static"
    #: Resize decisions the adaptive scheduler took, in order.
    scheduler_decisions: list = field(default_factory=list)
    #: Final per-worker batch-size caps (adaptive runs only).
    batch_caps: tuple = ()

    def final_frame(self) -> str:
        return self.frames[-1] if self.frames else "(no frames captured)"

    def scheduler_summary(self) -> str:
        if self.scheduler != "adaptive":
            return "scheduler: static (one batch per worker per burst)"
        caps = ", ".join(str(cap) for cap in self.batch_caps) or "-"
        lines = [
            f"scheduler: adaptive — {len(self.scheduler_decisions)} resize "
            f"decision(s), final per-worker caps [{caps}]"
        ]
        for decision in self.scheduler_decisions:
            lines.append(
                f"  w{decision.worker}: {decision.action} ({decision.reason}) "
                f"-> {decision.size}"
            )
        return "\n".join(lines)


def run_obs_profile(
    packets: int = 4_000,
    flows: int = 128,
    shards: int = 4,
    corpus_apps: int = 6,
    seed: int = 7,
    batches: int = 8,
    sample_every: int = 32,
    frames: int = 4,
    scheduler: str = "static",
    scheduler_config=None,
) -> ObsProfile:
    """Replay once instrumented and capture live profiler frames.

    ``frames`` caps how many ``top``-style snapshots are rendered (one
    after every ``ceil(batches / frames)``-th burst plus a final one);
    the closing frame folds the cumulative enforcer stats and pool
    health gauges into the registry before export, so the Prometheus
    and JSONL text carry the full picture.

    ``scheduler="adaptive"`` runs the replay under a
    :class:`~repro.runtime.scheduler.BatchScheduler` wired to this
    profiler's health monitor, so queue-depth/backlog alerts snap batch
    caps to the floor live; the decisions it took come back on the
    profile.
    """
    if frames < 1:
        raise ValueError("need at least one profiler frame")
    if packets < batches:
        raise ValueError("the replay needs at least one packet per batch")
    database = build_signature_database(corpus_apps=corpus_apps, seed=seed)
    replay = build_replay(database.entries(), packets=packets, flows=flows, seed=seed)
    bursts = [burst for burst in split_into_bursts(replay, batches) if burst]
    policy = Policy.deny_libraries(DEFAULT_DENY_LIBRARIES, name="obs-profile")

    obs = RuntimeObservability(sample_every=sample_every)
    enforcer = ShardedEnforcer(
        database=database,
        policy=policy,
        num_shards=shards,
        keep_records=False,
        backend="pool",
        scheduler=scheduler,
        scheduler_config=scheduler_config,
    )
    enforcer.attach_obs(obs)
    monitor = PoolHealthMonitor(HealthThresholds(), source="obs-cli")
    if enforcer.scheduler is not None:
        # Health alerts the profiler raises snap the live batch caps.
        enforcer.scheduler.attach_monitor(monitor)
    degraded = enforcer.backend != "pool"

    profile = ObsProfile(
        packets=len(replay),
        shards=shards,
        batches=len(bursts),
        backend=enforcer.backend,
        degraded=degraded,
        scheduler=scheduler,
    )
    every = max(1, -(-len(bursts) // frames))
    for index, burst in enumerate(bursts):
        if degraded:
            enforcer.process_batch_timed(burst)
        else:
            enforcer.collect_batch(enforcer.submit_batch(burst))
        if (index + 1) % every == 0 or index == len(bursts) - 1:
            health = enforcer.pool_health()
            if health is not None:
                monitor.check(health, degraded=degraded)
            profile.frames.append(
                render_top(
                    obs,
                    SHARD_POOL,
                    health=health,
                    events=monitor.events,
                    title=f"obs profile [{index + 1}/{len(bursts)}]",
                    degraded=degraded,
                )
            )

    record_enforcer_stats(
        obs.registry, enforcer.aggregate_stats(), source="obs-profile"
    )
    health = enforcer.pool_health()
    if health is not None:
        record_pool_health(obs.registry, health)
    profile.events = list(monitor.events)
    if enforcer.scheduler is not None:
        profile.scheduler_decisions = list(enforcer.scheduler.decisions)
        profile.batch_caps = tuple(enforcer.scheduler.sizes())
    profile.prometheus = to_prometheus(obs.registry)
    profile.jsonl = to_jsonl(obs.registry)
    enforcer.close()
    return profile
