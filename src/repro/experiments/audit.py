"""Audit-subsystem evaluation: detection quality and telemetry overhead.

A provisioned device fleet generates benign traffic; the adversarial
workload hides five attack scenarios in it
(:mod:`repro.workloads.adversarial`).  The mixed trace replays across a
replicated gateway fleet with the telemetry pipeline attached, and the
same packets replay through the two conventional baselines the paper
argues against:

* the **IP/DNS filter** (:mod:`repro.baselines.ip_dns_filter`) armed
  with the threat-intel blocklist (which, as in reality, lags: the
  evasive scenarios use a destination it has never seen);
* the **flow-size threshold** (:mod:`repro.baselines.size_threshold`),
  which low-and-slow fragmentation is designed to slip under.

Scoring is per packet against the generator's ground-truth labels.  A
packet counts as *flagged* by BorderPatrol when the gateway dropped it
for a tag-integrity reason (stripped/unknown/undecodable tags — policy
denials are enforcement, not attack detection) or when a telemetry
alert attributes its (device, app) or (device, destination) pair; the
baselines flag exactly the packets they drop.

The telemetry *volume budget* is calibrated from the benign trace (the
maximum windowed per-(device, destination) volume, plus margin), the
way an operator would baseline an anomaly detector before arming it —
so benign traffic cannot trip the exfiltration detector by
construction, and the attacker still has to move real data.

Overhead is measured separately: the identical benign replay through an
identical fleet with telemetry attached vs detached, reported as kpps
(the acceptance bar: telemetry-on within 15% of telemetry-off).
"""

from __future__ import annotations

import gc
import random
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field

from repro.baselines.ip_dns_filter import OnNetworkFilter
from repro.baselines.size_threshold import FlowSizeThresholdFilter
from repro.core.deployment import BorderPatrolDeployment
from repro.core.policy import Policy
from repro.experiments.common import format_table, split_into_bursts
from repro.experiments.gateway_throughput import DEFAULT_DENY_LIBRARIES
from repro.netstack.netfilter import Verdict
from repro.telemetry.detectors import INTEGRITY_REASONS
from repro.telemetry.pipeline import FleetAuditor
from repro.workloads.adversarial import (
    SCENARIOS,
    AdversarialConfig,
    AdversarialTrace,
    AdversarialWorkload,
)
from repro.workloads.corpus import CorpusConfig, CorpusGenerator
from repro.workloads.fleet import DeviceFleet, DeviceFleetConfig


@dataclass
class SystemScore:
    """Per-packet detection quality of one system over the mixed trace."""

    name: str
    flagged: int = 0
    true_positives: int = 0
    recall_by_scenario: dict[str, float] = field(default_factory=dict)

    @property
    def precision(self) -> float:
        return self.true_positives / self.flagged if self.flagged else 1.0

    def recall(self, scenario: str) -> float:
        return self.recall_by_scenario.get(scenario, 0.0)


@dataclass
class AuditBenchResult:
    """Everything the audit experiment measured."""

    packets: int = 0
    benign_packets: int = 0
    attack_packets: int = 0
    devices: int = 0
    gateways: int = 0
    scenario_counts: dict[str, int] = field(default_factory=dict)
    scores: dict[str, SystemScore] = field(default_factory=dict)
    alert_counts: dict[str, int] = field(default_factory=dict)
    #: Calibrated telemetry volume budget and the size baseline's threshold.
    exfil_budget_bytes: int = 0
    size_threshold_bytes: int = 0
    #: Benign-replay throughput with and without telemetry attached.
    telemetry_on_kpps: float = 0.0
    telemetry_off_kpps: float = 0.0
    #: Audit-log rotation round-trip over the full mixed replay.
    records_published: int = 0
    segments_written: int = 0
    audit_roundtrip_ok: bool = False

    @property
    def telemetry_overhead_pct(self) -> float:
        if self.telemetry_off_kpps <= 0:
            return 0.0
        return 100.0 * (1.0 - self.telemetry_on_kpps / self.telemetry_off_kpps)

    @property
    def borderpatrol_dominates_spoof_replay(self) -> bool:
        """BorderPatrol strictly ahead of both baselines on the two
        attribution scenarios (mimicry and stale-tag replay)."""
        borderpatrol = self.scores.get("borderpatrol")
        if borderpatrol is None:
            return False
        for scenario in ("tag_spoofing", "tag_replay"):
            for baseline in ("ip-dns", "size-threshold"):
                other = self.scores.get(baseline)
                if other is None or borderpatrol.recall(scenario) <= other.recall(scenario):
                    return False
        return True

    def table(self) -> str:
        headers = ["system"] + [scenario for scenario in SCENARIOS] + ["precision"]
        rows = []
        for score in self.scores.values():
            rows.append(
                [score.name]
                + [f"{score.recall(scenario):.2f}" for scenario in SCENARIOS]
                + [f"{score.precision:.2f}"]
            )
        table = format_table(headers, rows)
        alerts = (
            ", ".join(f"{kind}:{count}" for kind, count in sorted(self.alert_counts.items()))
            or "(none)"
        )
        lines = [
            f"mixed replay: {self.packets} packets ({self.attack_packets} adversarial "
            f"across {len(self.scenario_counts)} scenarios), {self.devices} devices, "
            f"{self.gateways} gateways",
            "per-scenario recall (fraction of attack packets flagged):",
            table,
            f"alerts: {alerts}",
            f"volume budget {self.exfil_budget_bytes} B (calibrated from benign "
            f"windows), size threshold {self.size_threshold_bytes} B",
            f"telemetry overhead: {self.telemetry_off_kpps:.1f} kpps off vs "
            f"{self.telemetry_on_kpps:.1f} kpps on "
            f"({self.telemetry_overhead_pct:+.1f}%)",
            f"audit log: {self.records_published} records published, "
            f"{self.segments_written} segment(s) rotated, lossless round-trip: "
            f"{self.audit_roundtrip_ok}",
            "BorderPatrol strictly dominates on spoof/replay: "
            f"{self.borderpatrol_dominates_spoof_replay}",
        ]
        return "\n".join(lines)


def _max_window_volume(packets, window_packets: int) -> int:
    """Peak windowed per-(device, destination) outbound volume of a trace."""
    volumes: dict[tuple[str, str], int] = {}
    events: deque = deque()
    peak = 0
    for packet in packets:
        key = (packet.src_ip, packet.dst_ip)
        total = volumes.get(key, 0) + packet.payload_size
        volumes[key] = total
        if total > peak:
            peak = total
        events.append((key, packet.payload_size))
        if len(events) > window_packets:
            old_key, size = events.popleft()
            volumes[old_key] -= size
    return peak


def _mix_bursts(
    benign: list, attacks: AdversarialTrace, bursts: int, seed: int
) -> tuple[list[list], int]:
    """Interleave attack packets into the benign bursts.

    Stripping and spoofing run for the whole trace; the replay,
    low-and-slow and bulk scenarios start at the revocation burst (the
    midpoint), so the volume scenarios cluster inside one window span
    and the replayed tags are genuinely stale.  Returns the mixed
    bursts plus the index before which the contractor app is revoked.
    """
    benign_bursts = split_into_bursts(benign, bursts)
    revoke_at = len(benign_bursts) // 2
    placement = {
        "tag_stripping": list(range(len(benign_bursts))),
        "tag_spoofing": list(range(len(benign_bursts))),
        "tag_replay": list(range(revoke_at, len(benign_bursts))),
        "low_and_slow": list(range(revoke_at, len(benign_bursts))),
        "bulk_exfil": list(range(revoke_at, len(benign_bursts))),
    }
    per_burst: list[list] = [[] for _ in benign_bursts]
    for scenario, packets in attacks.packets_by_scenario.items():
        slots = placement.get(scenario, list(range(len(benign_bursts))))
        for index, packet in enumerate(packets):
            per_burst[slots[index % len(slots)]].append(packet)
    rng = random.Random(seed)
    mixed = []
    for benign_burst, attack_burst in zip(benign_bursts, per_burst):
        burst = list(benign_burst) + attack_burst
        rng.shuffle(burst)
        mixed.append(burst)
    return mixed, revoke_at


def _build_fleet(
    gateways: int,
    shards_per_gateway: int,
    devices: int,
    corpus_apps: int,
    seed: int,
) -> tuple[BorderPatrolDeployment, DeviceFleet]:
    apps = CorpusGenerator(CorpusConfig(n_apps=corpus_apps, seed=seed)).generate()
    deployment = BorderPatrolDeployment(
        policy=Policy.deny_libraries(DEFAULT_DENY_LIBRARIES, name="audit-base"),
        num_gateways=gateways,
        enforcer_shards=shards_per_gateway,
        keep_records=False,
    )
    device_fleet = DeviceFleet(
        deployment,
        apps,
        DeviceFleetConfig(devices=devices, seed=seed),
    )
    return deployment, device_fleet


def _burst_wall(deployment, burst: list, auditor: FleetAuditor | None) -> float:
    """One burst's wall-clock under the parallel fleet model.

    With an auditor attached, each gateway's collector consumes its
    record stream on its own core, pipelined with enforcement: the
    burst costs the slower of the two stages, plus the (small)
    fleet-level exfiltration scan.
    """
    fleet = deployment.fleet
    if fleet is not None:
        enforce_wall = fleet.process_batch_timed(burst).parallel_wall_s
    elif hasattr(deployment.enforcer, "process_batch_timed"):
        enforce_wall = deployment.enforcer.process_batch_timed(burst).parallel_wall_s
    else:
        started = time.perf_counter()
        deployment.enforcer.process_batch(burst)
        enforce_wall = time.perf_counter() - started
    if auditor is None:
        return enforce_wall
    collect_wall = auditor.drain()
    started = time.perf_counter()
    auditor.scan_exfiltration()
    return max(enforce_wall, collect_wall) + (time.perf_counter() - started)


def _replay_wall(deployment, bursts: list[list], auditor: FleetAuditor | None) -> float:
    """A whole replay's wall-clock: the sum of its burst walls."""
    return sum(_burst_wall(deployment, burst, auditor) for burst in bursts)


def _measure_overhead(
    gateways: int,
    shards_per_gateway: int,
    devices: int,
    corpus_apps: int,
    seed: int,
    packets: int,
    bursts: int,
    window_packets: int,
    exfil_budget: int,
    rounds: int = 7,
) -> tuple[float, float]:
    """(telemetry-off kpps, telemetry-on kpps) over identical benign replays.

    The two fleets replay in rounds, interleaved at *burst*
    granularity (off-burst, on-burst, off-burst, …): a scheduler blip
    or frequency step lands on adjacent bursts of both configurations
    instead of contaminating one whole replay.  The reported pair then
    comes from the round with the *median* on/off ratio — the median
    discards the rounds where noise still landed asymmetrically (each
    side's independent minimum lets one lucky telemetry-off round
    masquerade as overhead, the minimum *ratio* is biased just as far
    the other way).
    """
    deployment_off, fleet_off = _build_fleet(
        gateways, shards_per_gateway, devices, corpus_apps, seed
    )
    bursts_off = split_into_bursts(fleet_off.build_trace(packets), bursts)
    deployment_on, fleet_on = _build_fleet(
        gateways, shards_per_gateway, devices, corpus_apps, seed
    )
    bursts_on = split_into_bursts(fleet_on.build_trace(packets), bursts)
    auditor = FleetAuditor(
        window_packets=window_packets,
        provisioned=fleet_on.provisioning_map(),
        exfil_window_bytes=exfil_budget,
    )
    deployment_on.attach_telemetry(auditor)
    pairs: list[tuple[float, float]] = []
    # Collector pauses are not the only thing that can land inside a
    # timed section: the cyclic GC walks telemetry's live window state
    # during enforcement too.  Collect between rounds, keep the
    # automatic collector out of the timed walls (both configurations,
    # same treatment).
    gc_was_enabled = gc.isenabled()
    try:
        for _ in range(max(1, rounds)):
            gc.collect()
            gc.disable()
            try:
                wall_off = wall_on = 0.0
                for burst_off, burst_on in zip(bursts_off, bursts_on):
                    wall_off += _burst_wall(deployment_off, burst_off, None)
                    wall_on += _burst_wall(deployment_on, burst_on, auditor)
                pairs.append((wall_off, wall_on))
            finally:
                if gc_was_enabled:
                    gc.enable()
    finally:
        if gc_was_enabled:
            gc.enable()
    pairs.sort(key=lambda pair: pair[1] / pair[0])
    wall_off, wall_on = pairs[len(pairs) // 2]
    return (
        packets / wall_off / 1e3 if wall_off > 0 else float("inf"),
        packets / wall_on / 1e3 if wall_on > 0 else float("inf"),
    )


def run_audit_bench(
    packets: int = 8000,
    devices: int = 60,
    gateways: int = 2,
    shards_per_gateway: int = 2,
    corpus_apps: int = 6,
    seed: int = 7,
    bursts: int = 8,
    window_packets: int = 4096,
    size_threshold_bytes: int = 131072,
    attack_packets_per_scenario: int = 160,
    measure_overhead: bool = True,
) -> AuditBenchResult:
    """Replay mixed benign/adversarial fleet traffic; score every system."""
    if bursts < 1:
        raise ValueError("the mixed replay needs at least one burst")
    if attack_packets_per_scenario < 1:
        raise ValueError("need at least one packet per attack scenario")
    if packets < bursts:
        raise ValueError("need at least one benign packet per burst")
    if gateways < 1:
        raise ValueError("the audit bench needs at least one gateway")

    deployment, device_fleet = _build_fleet(
        gateways, shards_per_gateway, devices, corpus_apps, seed
    )
    benign = device_fleet.build_trace(packets)

    # Operator-style calibration: arm the volume detector just above the
    # worst benign window, with margin.
    merged_window = window_packets * max(1, deployment.num_gateways)
    exfil_budget = int(_max_window_volume(benign, merged_window) * 1.5) + 1

    workload = AdversarialWorkload(
        device_fleet,
        AdversarialConfig(seed=seed + 17, packets_per_scenario=attack_packets_per_scenario),
    )
    attacks = workload.build(exfil_budget, size_threshold_bytes)
    mixed_bursts, revoke_at = _mix_bursts(benign, attacks, bursts, seed + 29)
    mixed = [packet for burst in mixed_bursts for packet in burst]

    result = AuditBenchResult(
        packets=len(mixed),
        benign_packets=len(benign),
        attack_packets=attacks.attack_packet_count(),
        devices=device_fleet.device_count(),
        gateways=deployment.num_gateways,
        scenario_counts={
            scenario: len(packets_)
            for scenario, packets_ in attacks.packets_by_scenario.items()
        },
        exfil_budget_bytes=exfil_budget,
        size_threshold_bytes=size_threshold_bytes,
    )

    # -- BorderPatrol: fleet replay with the telemetry pipeline attached.
    with tempfile.TemporaryDirectory(prefix="bp-audit-") as spool_dir:
        auditor = FleetAuditor(
            window_packets=window_packets,
            provisioned=device_fleet.provisioning_map(),
            exfil_window_bytes=exfil_budget,
            spool_dir=spool_dir,
            audit_capacity=len(mixed) + 1,
            segment_records=max(256, len(mixed) // 16),
        )
        fleet = deployment.fleet
        deployment.attach_telemetry(auditor)
        for index, burst in enumerate(mixed_bursts):
            if index == revoke_at:
                attacks.revoke(deployment.database)
            if fleet is not None:
                fleet.process_batch_timed(burst)
            else:
                deployment.enforcer.process_batch(burst)
            auditor.drain()
            auditor.scan_exfiltration()
        auditor.flush()

        spooled = auditor.spooled_records()
        published = [
            record
            for pipeline in auditor.pipelines.values()
            if pipeline.audit_log is not None
            for record in pipeline.audit_log
        ]
        published.sort(key=lambda record: record.packet_id)
        result.records_published = auditor.records_seen
        result.segments_written = sum(
            pipeline.audit_log.segments_written
            for pipeline in auditor.pipelines.values()
            if pipeline.audit_log is not None
        )
        result.audit_roundtrip_ok = (
            len(spooled) == result.records_published and spooled == published
        )
        result.alert_counts = auditor.alert_counts()

        flagged_bp: set[int] = set()
        spoof_keys = {
            (alert.device, alert.app)
            for alert in auditor.alerts
            if alert.kind == "spoofed-tag"
        }
        exfil_keys = {
            (alert.device, alert.dst_ip)
            for alert in auditor.alerts
            if alert.kind == "exfil-volume"
        }
        for record in published:
            if record.verdict is Verdict.DROP and record.reason in INTEGRITY_REASONS:
                flagged_bp.add(record.packet_id)
            elif (record.src_ip, record.package_name) in spoof_keys:
                flagged_bp.add(record.packet_id)
            elif (record.src_ip, record.dst_ip) in exfil_keys:
                flagged_bp.add(record.packet_id)

    # -- baselines: identical packet order, flagged = dropped.
    network = deployment.network
    ip_dns = OnNetworkFilter(
        dns=network.dns,
        blocked_names={workload.config.known_bad_endpoint},
    )
    size = FlowSizeThresholdFilter(threshold_bytes=size_threshold_bytes)
    flagged_ip: set[int] = set()
    flagged_size: set[int] = set()
    for packet in mixed:
        if ip_dns.process(packet)[0] is Verdict.DROP:
            flagged_ip.add(packet.packet_id)
        if size.process(packet)[0] is Verdict.DROP:
            flagged_size.add(packet.packet_id)

    # -- scoring.
    labels = attacks.labels
    for name, flagged in (
        ("borderpatrol", flagged_bp),
        ("ip-dns", flagged_ip),
        ("size-threshold", flagged_size),
    ):
        score = SystemScore(name=name, flagged=len(flagged))
        score.true_positives = sum(1 for packet_id in flagged if packet_id in labels)
        for scenario, scenario_packets in attacks.packets_by_scenario.items():
            hits = sum(1 for packet in scenario_packets if packet.packet_id in flagged)
            score.recall_by_scenario[scenario] = (
                hits / len(scenario_packets) if scenario_packets else 0.0
            )
        result.scores[name] = score

    # -- telemetry overhead: identical benign replays, pipeline on vs off.
    if measure_overhead:
        result.telemetry_off_kpps, result.telemetry_on_kpps = _measure_overhead(
            gateways, shards_per_gateway, devices, corpus_apps, seed,
            packets, bursts, window_packets, exfil_budget,
        )
    return result
