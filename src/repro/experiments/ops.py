"""Operator control-plane evaluation: federated detection and bus overhead.

The audit experiment (:mod:`repro.experiments.audit`) scores attacks
that one gateway can see.  This driver scores the ones it *cannot*: the
cross-gateway campaigns of
:meth:`~repro.workloads.adversarial.AdversarialWorkload
.build_cross_gateway`, which rotate source ports so flow-hash routing
splits each campaign across the whole fleet and every per-gateway
window holds an under-threshold fraction.  The replay runs under the
full operator control plane (:mod:`repro.ops`): online streaming
baselines instead of an offline calibration pass, the durable alert
bus, severity routing, and the fleet federation.

The run has three phases:

1. **Warm-up** — pure benign fleet traffic replays with the control
   plane attached.  Per-gateway and fleet-level baselines calibrate
   from the live stream; nothing is replayed twice and no offline pass
   happens anywhere.
2. **Campaign sizing** — the learned thresholds are read back (the
   attacker models the defender), and the cross-gateway trace is built
   so each campaign stays under every per-gateway bar while crossing
   the fleet-wide one.  Infeasible geometry raises instead of silently
   mislabelling.
3. **Attack replay** — the campaigns land inside two contiguous bursts
   of the remaining benign traffic (concentrated, so one window span
   holds each campaign whole), and the same record stream is scored
   twice: flagged-by-any-single-gateway vs flagged-with-federation.

The headline claim is the recall gap: ``split_exfil`` and
``split_burst`` must be invisible per-gateway (recall < 1) and fully
caught federated (recall 1.0) without giving up the audit benchmark's
precision.  Alert-bus overhead is measured separately over identical
mixed replays (campaigns included, so alerts actually flow): the same
online + federated detection stack runs on both sides, and only one
side publishes through the durable bus (spool, router, feed) — the
kpps gap is therefore the bus itself, not a change of detector
algorithm.
"""

from __future__ import annotations

import gc
import random
import tempfile
import time
from dataclasses import dataclass, field

from repro.core.deployment import BorderPatrolDeployment
from repro.core.policy import Policy
from repro.experiments.audit import SystemScore
from repro.experiments.common import format_table, split_into_bursts
from repro.netstack.netfilter import Verdict
from repro.ops import (
    AlertBus,
    AlertRouter,
    FleetFederation,
    OnlineExfilBaselines,
    OnlineExfiltrationDetector,
    OperatorControlPlane,
    online_detector_factory,
    replay_spool,
)
from repro.telemetry.detectors import INTEGRITY_REASONS
from repro.telemetry.pipeline import FleetAuditor
from repro.workloads.adversarial import (
    CROSS_GATEWAY_SCENARIOS,
    AdversarialConfig,
    AdversarialWorkload,
)
from repro.workloads.corpus import CorpusConfig, CorpusGenerator
from repro.workloads.fleet import DeviceFleet, DeviceFleetConfig


@dataclass
class OpsBenchResult:
    """Everything the operator control-plane experiment measured."""

    packets: int = 0
    benign_packets: int = 0
    attack_packets: int = 0
    devices: int = 0
    gateways: int = 0
    window_packets: int = 0
    scenario_counts: dict[str, int] = field(default_factory=dict)
    #: "per-gateway" and "federated" scores over the identical stream.
    scores: dict[str, SystemScore] = field(default_factory=dict)
    #: Per-gateway and fleet-level alert counts by kind.
    alert_counts: dict[str, int] = field(default_factory=dict)
    fleet_alert_counts: dict[str, int] = field(default_factory=dict)
    #: The library the scoped experiment policy denies (only the
    #: sideloaded probe app bundles it, so benign traffic draws zero
    #: policy denials and burst counts are pure attack signal).
    deny_library: str = ""
    probe_package: str = ""
    campaign_package: str = ""
    attacker_ip: str = ""
    #: Streaming thresholds read back at the end of warm-up.
    per_gateway_budget_bytes: int = 0
    fleet_budget_bytes: int = 0
    baseline_snapshot: dict = field(default_factory=dict)
    #: Control-plane accounting after the full replay.
    bus_counts: dict = field(default_factory=dict)
    routing_counts: dict = field(default_factory=dict)
    federation_counts: dict = field(default_factory=dict)
    #: Durable spool round-trip: alerts replayed == alerts delivered.
    spool_alerts: int = 0
    spool_replay_ok: bool = False
    #: Mixed-replay throughput with the identical detection stack:
    #: alerts dropped on the floor vs published through the durable bus.
    bus_off_kpps: float = 0.0
    bus_on_kpps: float = 0.0

    @property
    def bus_overhead_pct(self) -> float:
        if self.bus_off_kpps <= 0:
            return 0.0
        return 100.0 * (1.0 - self.bus_on_kpps / self.bus_off_kpps)

    @property
    def federated_catches_all(self) -> bool:
        federated = self.scores.get("federated")
        if federated is None:
            return False
        return all(
            federated.recall(scenario) == 1.0 for scenario in CROSS_GATEWAY_SCENARIOS
        )

    @property
    def per_gateway_misses_split(self) -> bool:
        """The routing-split campaigns are invisible to every single
        gateway — the gap the federation exists to close."""
        per_gateway = self.scores.get("per-gateway")
        if per_gateway is None:
            return False
        return all(
            per_gateway.recall(scenario) < 1.0
            for scenario in ("split_exfil", "split_burst")
        )

    def table(self) -> str:
        headers = ["system"] + list(CROSS_GATEWAY_SCENARIOS) + ["precision"]
        rows = []
        for score in self.scores.values():
            rows.append(
                [score.name]
                + [f"{score.recall(scenario):.2f}" for scenario in CROSS_GATEWAY_SCENARIOS]
                + [f"{score.precision:.2f}"]
            )
        table = format_table(headers, rows)
        fleet_alerts = (
            ", ".join(
                f"{kind}:{count}" for kind, count in sorted(self.fleet_alert_counts.items())
            )
            or "(none)"
        )
        lines = [
            f"mixed replay: {self.packets} packets ({self.attack_packets} adversarial "
            f"across {len(self.scenario_counts)} cross-gateway campaigns), "
            f"{self.devices} devices, {self.gateways} gateways, "
            f"window {self.window_packets}",
            f"scoped policy denies {self.deny_library} "
            f"(probed by sideloaded {self.probe_package})",
            "per-scenario recall (fraction of campaign packets flagged):",
            table,
            f"fleet alerts: {fleet_alerts}",
            f"streaming budgets at warm-up: per-gateway "
            f"{self.per_gateway_budget_bytes} B, fleet {self.fleet_budget_bytes} B "
            "(no offline calibration pass)",
            f"routing: {self.routing_counts}",
            f"bus: {self.bus_counts}",
            f"alert spool: {self.spool_alerts} alert(s) replayed, lossless: "
            f"{self.spool_replay_ok}",
            f"per-gateway misses the split campaigns: {self.per_gateway_misses_split}; "
            f"federation catches everything: {self.federated_catches_all}",
        ]
        if self.bus_off_kpps > 0:
            lines.insert(
                -1,
                f"alert-bus overhead: {self.bus_off_kpps:.1f} kpps bus-off vs "
                f"{self.bus_on_kpps:.1f} kpps bus-on, identical detectors "
                f"({self.bus_overhead_pct:+.1f}%)",
            )
        return "\n".join(lines)


def pick_deny_library(apps, workload_seed: int, candidates: int = 16) -> str:
    """A library the experiment policy can deny without touching benign
    traffic.

    Walks the same candidate-app space
    :meth:`~repro.workloads.adversarial.AdversarialWorkload
    .prepare_probe_app` walks and returns the first bundled library no
    benign corpus app bundles: denying it cannot match any benign call
    chain, and the first candidate carrying it is exactly the app the
    probe search will pick (earlier candidates bundle only benign
    libraries, so none of their methods draw a denial).
    """
    benign_libraries = {library for app in apps for library in app.libraries}
    for offset in range(candidates):
        candidate = CorpusGenerator(
            CorpusConfig(n_apps=1, seed=workload_seed + 11000 + offset)
        ).generate()[0]
        fresh = sorted(set(candidate.libraries) - benign_libraries)
        if fresh:
            return fresh[0]
    raise ValueError(
        "every probe candidate bundles only benign libraries; widen the "
        "candidate range or shrink the benign corpus"
    )


def _build_ops_fleet(
    gateways: int,
    shards_per_gateway: int,
    devices: int,
    corpus_apps: int,
    seed: int,
    deny_library: str,
) -> tuple[BorderPatrolDeployment, DeviceFleet]:
    apps = CorpusGenerator(CorpusConfig(n_apps=corpus_apps, seed=seed)).generate()
    deployment = BorderPatrolDeployment(
        policy=Policy.deny_libraries([deny_library], name="ops-scoped-deny"),
        num_gateways=gateways,
        enforcer_shards=shards_per_gateway,
        keep_records=False,
    )
    device_fleet = DeviceFleet(
        deployment, apps, DeviceFleetConfig(devices=devices, seed=seed)
    )
    return deployment, device_fleet


def _online_detector(pipeline) -> OnlineExfiltrationDetector:
    for detector in pipeline.detectors:
        if isinstance(detector, OnlineExfiltrationDetector):
            return detector
    raise ValueError("pipeline has no online exfiltration detector")


def _learned_budgets(
    console: OperatorControlPlane, attacker_ip: str, dst_ip: str
) -> tuple[int, int]:
    """(min per-gateway, fleet) streaming thresholds for the attacker.

    The attacker reads the defender's model — fair game, since the
    thresholds derive from traffic the insider device can observe.  A
    non-finite threshold means warm-up was too short to calibrate.
    """
    per_gateway = min(
        _online_detector(pipeline).baselines.threshold(attacker_ip, dst_ip)
        for pipeline in console.auditor.pipelines.values()
    )
    fleet = console.federation.baselines.threshold(attacker_ip, dst_ip)
    if per_gateway == float("inf") or fleet == float("inf"):
        raise ValueError(
            "streaming baselines are uncalibrated after warm-up; use more "
            "packets, fewer gateways, or a smaller window"
        )
    return int(per_gateway), int(fleet)


def _mix_campaigns(
    benign_bursts: list[list], trace, attack_start: int, seed: int
) -> list[list]:
    """Place every campaign inside two contiguous post-warm-up bursts.

    Concentration is the point: a campaign smeared across the replay
    would never sit whole inside one window span, and the merged
    windowed view is what the federation judges.
    """
    slots = [attack_start, min(attack_start + 1, len(benign_bursts) - 1)]
    mixed = [list(burst) for burst in benign_bursts]
    for scenario in CROSS_GATEWAY_SCENARIOS:
        for index, packet in enumerate(trace.packets(scenario)):
            mixed[slots[index % len(slots)]].append(packet)
    rng = random.Random(seed)
    for index in slots:
        rng.shuffle(mixed[index])
    return mixed


def _score(name: str, flagged: set[int], trace) -> SystemScore:
    score = SystemScore(name=name, flagged=len(flagged))
    labels = trace.labels
    score.true_positives = sum(1 for packet_id in flagged if packet_id in labels)
    for scenario, packets in trace.packets_by_scenario.items():
        hits = sum(1 for packet in packets if packet.packet_id in flagged)
        score.recall_by_scenario[scenario] = hits / len(packets) if packets else 0.0
    return score


def _prepared_fleet(
    gateways: int,
    shards_per_gateway: int,
    devices: int,
    corpus_apps: int,
    seed: int,
    deny_library: str,
    workload_seed: int,
    split_endpoint: str,
) -> tuple[BorderPatrolDeployment, DeviceFleet, AdversarialWorkload]:
    """A deployment ready to replay the cross-gateway trace.

    Everything is seeded, so two calls build interchangeable fleets:
    the probe app is sideloaded (its packets must read as policy
    denials, not tag mimicry) and the split-campaign endpoint resolves.
    """
    deployment, device_fleet = _build_ops_fleet(
        gateways, shards_per_gateway, devices, corpus_apps, seed, deny_library
    )
    workload = AdversarialWorkload(device_fleet, AdversarialConfig(seed=workload_seed))
    workload.prepare_probe_app()
    network = deployment.network
    if not network.dns.knows_name(workload.config.split_endpoint):
        network.add_server(workload.config.split_endpoint, role="external")
    return deployment, device_fleet, workload


def _burst_wall_ops(deployment, burst: list, auditor: FleetAuditor, pump=None) -> float:
    """One burst's wall-clock under the online + federated stack.

    The gateway-side model matches :func:`repro.experiments.audit
    ._burst_wall`: per-gateway collectors run pipelined with
    enforcement (the slower stage is charged), then the fleet-level
    work — the federated scan plus, when a bus is attached, one pump —
    runs serially on the operator core.
    """
    fleet = deployment.fleet
    if fleet is not None:
        enforce_wall = fleet.process_batch_timed(burst).parallel_wall_s
    else:
        enforce_wall = deployment.enforcer.process_batch_timed(burst).parallel_wall_s
    collect_wall = auditor.drain()
    started = time.perf_counter()
    auditor.scan_federated()
    if pump is not None:
        pump()
    return max(enforce_wall, collect_wall) + (time.perf_counter() - started)


def _measure_bus_overhead(
    gateways: int,
    shards_per_gateway: int,
    devices: int,
    corpus_apps: int,
    seed: int,
    deny_library: str,
    workload_seed: int,
    split_endpoint: str,
    mixed_bursts: list[list],
    window_packets: int,
    fold_every: int,
    burst_threshold: int,
    campaign_devices: int,
    rounds: int = 7,
) -> tuple[float, float]:
    """(bus-off kpps, bus-on kpps) over identical mixed replays.

    This isolates the *alert bus* — the acceptance bar — rather than
    comparing two different detection algorithms.  Both configurations
    run the same online detector stack and the same federation over the
    same campaign-carrying trace; the only difference is that one
    publishes every alert through the durable bus (JSON-lines spool,
    router, feed) and pumps it once per burst, while the other leaves
    alerts in the pipeline lists where the scorer reads them anyway.

    Same discipline as the audit overhead harness: burst-granularity
    interleaving so scheduler noise lands on both configurations, GC
    kept out of the timed walls, and the round with the *median* on/off
    ratio reported.
    """

    def online_auditor(device_fleet: DeviceFleet) -> FleetAuditor:
        return FleetAuditor(
            window_packets=window_packets,
            detector_factory=online_detector_factory(
                provisioned=device_fleet.provisioning_map(),
                burst=burst_threshold,
                fold_every=fold_every,
            ),
        )

    deployment_off, fleet_off, _ = _prepared_fleet(
        gateways, shards_per_gateway, devices, corpus_apps, seed,
        deny_library, workload_seed, split_endpoint,
    )
    auditor_off = online_auditor(fleet_off)
    auditor_off.attach_federation(
        FleetFederation(burst=burst_threshold, campaign_devices=campaign_devices)
    )
    deployment_off.attach_telemetry(auditor_off)

    deployment_on, fleet_on, _ = _prepared_fleet(
        gateways, shards_per_gateway, devices, corpus_apps, seed,
        deny_library, workload_seed, split_endpoint,
    )
    with tempfile.TemporaryDirectory(prefix="bp-ops-bus-") as tmp_dir:
        console = OperatorControlPlane(
            online_auditor(fleet_on),
            bus=AlertBus(clock=None),
            router=AlertRouter(),
            federation=FleetFederation(
                burst=burst_threshold, campaign_devices=campaign_devices
            ),
            spool_dir=f"{tmp_dir}/alerts",
        )
        deployment_on.attach_ops(console)

        packets = sum(len(burst) for burst in mixed_bursts)
        pairs: list[tuple[float, float]] = []
        gc_was_enabled = gc.isenabled()
        try:
            for _ in range(max(1, rounds)):
                gc.collect()
                gc.disable()
                try:
                    wall_off = wall_on = 0.0
                    for burst in mixed_bursts:
                        wall_off += _burst_wall_ops(
                            deployment_off, burst, auditor_off
                        )
                        wall_on += _burst_wall_ops(
                            deployment_on, burst, console.auditor,
                            pump=console.bus.pump,
                        )
                    pairs.append((wall_off, wall_on))
                finally:
                    if gc_was_enabled:
                        gc.enable()
        finally:
            if gc_was_enabled:
                gc.enable()
    pairs.sort(key=lambda pair: pair[1] / pair[0])
    wall_off, wall_on = pairs[len(pairs) // 2]
    return (
        packets / wall_off / 1e3 if wall_off > 0 else float("inf"),
        packets / wall_on / 1e3 if wall_on > 0 else float("inf"),
    )


def run_ops_bench(
    packets: int = 12000,
    devices: int = 60,
    gateways: int = 4,
    shards_per_gateway: int = 2,
    corpus_apps: int = 6,
    seed: int = 7,
    bursts: int = 24,
    window_packets: int | None = None,
    fold_every: int | None = None,
    burst_threshold: int = 8,
    campaign_devices: int = 3,
    measure_overhead: bool = True,
) -> OpsBenchResult:
    """Replay cross-gateway campaigns under the operator control plane."""
    if gateways < 2:
        raise ValueError("the ops bench needs a fleet (gateways >= 2)")
    if bursts < 6:
        raise ValueError("the replay needs at least six bursts (warm-up + attack)")
    if packets < bursts:
        raise ValueError("need at least one benign packet per burst")
    if window_packets is None:
        # Small enough that per-gateway windows turn over during warm-up
        # (the streaming baselines only fold primed windows), large
        # enough that one window span holds a whole campaign burst pair.
        window_packets = max(128, packets // (gateways * 3))
    if fold_every is None:
        fold_every = max(32, window_packets // 8)

    apps = CorpusGenerator(CorpusConfig(n_apps=corpus_apps, seed=seed)).generate()
    workload_seed = seed + 17
    deny_library = pick_deny_library(apps, workload_seed)
    deployment, device_fleet = _build_ops_fleet(
        gateways, shards_per_gateway, devices, corpus_apps, seed, deny_library
    )
    benign = device_fleet.build_trace(packets)
    benign_bursts = split_into_bursts(benign, bursts)

    workload = AdversarialWorkload(device_fleet, AdversarialConfig(seed=workload_seed))
    # Sideload the probe app *before* the provisioning snapshot below:
    # its packets must read as policy denials, not tag mimicry.
    workload.prepare_probe_app()
    attacker_ip = workload.insider_device()

    network = deployment.network
    if not network.dns.knows_name(workload.config.split_endpoint):
        network.add_server(workload.config.split_endpoint, role="external")
    split_ip = network.dns.resolve(workload.config.split_endpoint)

    result = OpsBenchResult(
        devices=device_fleet.device_count(),
        gateways=deployment.num_gateways,
        window_packets=window_packets,
        deny_library=deny_library,
        attacker_ip=attacker_ip,
        benign_packets=len(benign),
    )

    with tempfile.TemporaryDirectory(prefix="bp-ops-") as tmp_dir:
        auditor = FleetAuditor(
            window_packets=window_packets,
            detector_factory=online_detector_factory(
                provisioned=device_fleet.provisioning_map(),
                burst=burst_threshold,
                fold_every=fold_every,
            ),
            spool_dir=f"{tmp_dir}/records",
            audit_capacity=packets * 2,
            segment_records=max(256, packets // 16),
        )
        console = OperatorControlPlane(
            auditor,
            federation=FleetFederation(
                burst=burst_threshold, campaign_devices=campaign_devices
            ),
            spool_dir=f"{tmp_dir}/alerts",
        )
        deployment.attach_ops(console)
        fleet = deployment.fleet

        # Phase 1: warm-up.  Streaming calibration from live traffic only.
        warmup_bursts = (2 * bursts) // 3
        for burst in benign_bursts[:warmup_bursts]:
            fleet.process_batch_timed(burst)
            console.drive()

        # Phase 2: read the learned thresholds back and size the campaigns.
        per_gateway_budget, fleet_budget = _learned_budgets(
            console, attacker_ip, split_ip
        )
        result.per_gateway_budget_bytes = per_gateway_budget
        result.fleet_budget_bytes = fleet_budget
        trace = workload.build_cross_gateway(
            gateways=deployment.num_gateways,
            per_gateway_budget_bytes=per_gateway_budget,
            fleet_budget_bytes=fleet_budget,
            burst_threshold=burst_threshold,
            campaign_devices=campaign_devices,
        )
        result.probe_package = trace.probe_package
        result.campaign_package = trace.campaign_package
        result.attack_packets = trace.attack_packet_count()
        result.scenario_counts = {
            scenario: len(trace.packets(scenario))
            for scenario in CROSS_GATEWAY_SCENARIOS
        }

        # Phase 3: the campaigns land in two contiguous bursts of the
        # remaining benign traffic.
        mixed_bursts = _mix_campaigns(
            benign_bursts, trace, attack_start=warmup_bursts + 1, seed=seed + 29
        )
        for burst in mixed_bursts[warmup_bursts:]:
            fleet.process_batch_timed(burst)
            console.drive()
        console.flush()
        result.packets = sum(len(burst) for burst in mixed_bursts)

        # -- scoring: the identical record stream, with and without the
        # federation's alerts.
        records = sorted(
            (
                record
                for pipeline in auditor.pipelines.values()
                if pipeline.audit_log is not None
                for record in pipeline.audit_log
            ),
            key=lambda record: record.packet_id,
        )
        gateway_alerts = [
            alert for pipeline in auditor.pipelines.values() for alert in pipeline.alerts
        ]
        spoof_keys = {
            (alert.device, alert.app)
            for alert in gateway_alerts
            if alert.kind == "spoofed-tag"
        }
        exfil_keys = {
            (alert.device, alert.dst_ip)
            for alert in gateway_alerts
            if alert.kind == "exfil-volume"
        }
        burst_keys = {
            (alert.device, alert.app)
            for alert in gateway_alerts
            if alert.kind == "policy-burst"
        }
        fleet_spoof, fleet_exfil, fleet_burst = set(), set(), set()
        for alert in auditor.fleet_alerts:
            if alert.kind == "exfil-volume":
                fleet_exfil.add((alert.device, alert.dst_ip))
            elif alert.kind == "policy-burst":
                fleet_burst.add((alert.device, alert.app))
            elif alert.kind == "spoof-campaign":
                for device in alert.device.split(","):
                    fleet_spoof.add((device, alert.app))

        flagged_gateway: set[int] = set()
        flagged_federated: set[int] = set()
        for record in records:
            key_app = (record.src_ip, record.package_name)
            key_dst = (record.src_ip, record.dst_ip)
            local = (
                (record.verdict is Verdict.DROP and record.reason in INTEGRITY_REASONS)
                or key_app in spoof_keys
                or key_app in burst_keys
                or key_dst in exfil_keys
            )
            if local:
                flagged_gateway.add(record.packet_id)
            if local or (
                key_app in fleet_spoof
                or key_app in fleet_burst
                or key_dst in fleet_exfil
            ):
                flagged_federated.add(record.packet_id)

        result.scores["per-gateway"] = _score("per-gateway", flagged_gateway, trace)
        result.scores["federated"] = _score("federated", flagged_federated, trace)
        result.alert_counts = auditor.alert_counts()
        fleet_counts: dict[str, int] = {}
        for alert in auditor.fleet_alerts:
            fleet_counts[alert.kind] = fleet_counts.get(alert.kind, 0) + 1
        result.fleet_alert_counts = fleet_counts
        result.baseline_snapshot = console.federation.baselines.snapshot()

        summary = console.summary()
        result.bus_counts = summary["bus"]
        result.routing_counts = summary["routing"]
        result.federation_counts = summary["federation"]

        # -- durable alert spool round-trip.
        replayed = replay_spool(f"{tmp_dir}/alerts")
        delivered = console.feed.alerts
        result.spool_alerts = len(replayed)
        result.spool_replay_ok = [alert.to_dict() for alert in replayed] == [
            alert.to_dict() for alert in delivered
        ]

    if measure_overhead:
        result.bus_off_kpps, result.bus_on_kpps = _measure_bus_overhead(
            gateways, shards_per_gateway, devices, corpus_apps, seed,
            deny_library, workload_seed, workload.config.split_endpoint,
            mixed_bursts, window_packets, fold_every, burst_threshold,
            campaign_devices,
        )
    return result
