"""Figure 4: per-request latency across the six prototype configurations.

The paper's performance evaluation (§VI-D) runs a stress app (socket +
HTTP GET for a 297-byte page + close, repeated 10,000 times, 25 runs)
against six incrementally instrumented emulator configurations:

====  =======================  =============================================
 id    name                     what is added relative to the previous row
====  =======================  =============================================
 i     default-SLIRP            stock emulator, QEMU user-mode networking
 ii    default-tap              switch to the TAP interface
 iii   default-tap-nfqueue      iptables NFQUEUE redirect + Python consumer
 iv    static-inject            patched kernel + Xposed hook + constant tag
 v     static-getStack          additionally call ``getStackTrace``
 vi    dynamic                  full Context Manager (resolve + encode)
====  =======================  =============================================

The reported deltas are ~+1 ms for the NFQUEUE stage (ii→iii) and
~+1.6 ms for ``getStackTrace`` (iv→v), with everything else negligible.
Our simulated-clock cost model is calibrated to those deltas, so the
*shape* of the figure (which stage costs what, and that the total stays
in the low-millisecond range that amortises per socket) reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.android.device import Device, NetworkMode
from repro.android.costs import CostModel
from repro.core.context_manager import ContextManager, ContextManagerMode
from repro.core.database import SignatureDatabase
from repro.core.offline_analyzer import OfflineAnalyzer
from repro.core.packet_sanitizer import PacketSanitizer
from repro.core.policy import Policy
from repro.core.policy_enforcer import PolicyEnforcer
from repro.experiments.common import format_table
from repro.netstack.sockets import KernelConfig
from repro.network.capture import CapturePoint
from repro.network.server import STRESS_PAGE_BYTES
from repro.network.topology import EnterpriseNetwork
from repro.workloads.stress import STRESS_SERVER_NAME, build_stress_app, run_stress_test, StressResult

#: Configuration identifiers, in the order of the paper's Figure 4.
CONFIGURATIONS = (
    "default-slirp",
    "default-tap",
    "default-tap-nfqueue",
    "static-inject-tap-nfqueue",
    "static-getstack-tap-nfqueue",
    "dynamic-tap-nfqueue",
)

#: Approximate bar heights read off the paper's Figure 4, for comparison only.
PAPER_REFERENCE_MS = {
    "default-slirp": 1.3,
    "default-tap": 1.0,
    "default-tap-nfqueue": 2.0,
    "static-inject-tap-nfqueue": 2.1,
    "static-getstack-tap-nfqueue": 3.7,
    "dynamic-tap-nfqueue": 3.9,
}


@dataclass
class Fig4Result:
    """Mean per-request latency for each configuration."""

    results: dict[str, StressResult] = field(default_factory=dict)

    def mean_ms(self, configuration: str) -> float:
        return self.results[configuration].mean_ms

    def delta_ms(self, earlier: str, later: str) -> float:
        return self.mean_ms(later) - self.mean_ms(earlier)

    @property
    def nfqueue_overhead_ms(self) -> float:
        """The ii→iii delta the paper attributes to the Python NFQUEUE consumer."""
        return self.delta_ms("default-tap", "default-tap-nfqueue")

    @property
    def getstacktrace_overhead_ms(self) -> float:
        """The iv→v delta the paper attributes to ``getStackTrace``."""
        return self.delta_ms("static-inject-tap-nfqueue", "static-getstack-tap-nfqueue")

    @property
    def total_overhead_ms(self) -> float:
        """Full-system overhead over the TAP baseline."""
        return self.delta_ms("default-tap", "dynamic-tap-nfqueue")

    def table(self) -> str:
        rows = []
        for configuration in CONFIGURATIONS:
            result = self.results[configuration]
            rows.append(
                (
                    configuration,
                    f"{result.mean_ms:.2f}",
                    f"{PAPER_REFERENCE_MS[configuration]:.1f}",
                    result.iterations,
                )
            )
        table = format_table(
            ("configuration", "measured mean (ms)", "paper approx (ms)", "iterations"), rows
        )
        summary = (
            f"\nNFQUEUE overhead (ii->iii): {self.nfqueue_overhead_ms:.2f} ms (paper ~1.0 ms)"
            f"\ngetStackTrace overhead (iv->v): {self.getstacktrace_overhead_ms:.2f} ms (paper ~1.6 ms)"
            f"\ntotal overhead vs TAP baseline: {self.total_overhead_ms:.2f} ms (paper < ~2.5 ms)"
        )
        return table + summary


def _make_network() -> EnterpriseNetwork:
    network = EnterpriseNetwork()
    server = network.add_server(STRESS_SERVER_NAME, role="stress", response_size=STRESS_PAGE_BYTES)
    server.latency_ms = 0.05
    return network


@dataclass
class _ConfigurationRun:
    """One configuration's stress result plus the stack it ran on."""

    stress: StressResult
    network: EnterpriseNetwork
    database: SignatureDatabase


def _run_configuration(
    configuration: str,
    iterations: int,
    cost_model: CostModel,
    enforcer_shards: int = 1,
) -> _ConfigurationRun:
    """Stand up one configuration and run the stress loop on it."""
    network = _make_network()
    stress_app = build_stress_app()
    network_mode = NetworkMode.SLIRP if configuration == "default-slirp" else NetworkMode.TAP
    with_nfqueue = configuration not in ("default-slirp", "default-tap")
    cm_mode = {
        "static-inject-tap-nfqueue": ContextManagerMode.STATIC_INJECT,
        "static-getstack-tap-nfqueue": ContextManagerMode.STATIC_GETSTACK,
        "dynamic-tap-nfqueue": ContextManagerMode.DYNAMIC,
    }.get(configuration)

    database = SignatureDatabase()
    if with_nfqueue:
        enforcer_kwargs = dict(
            database=database,
            policy=Policy.allow_all(),
            drop_untagged=False,
            drop_unknown_apps=False,
        )
        if enforcer_shards > 1:
            from repro.netstack.sharding import ShardedEnforcer

            enforcer = ShardedEnforcer(num_shards=enforcer_shards, **enforcer_kwargs)
        else:
            enforcer = PolicyEnforcer(**enforcer_kwargs)
        network.install_queue_chain(
            enforcer=enforcer,
            sanitizer=PacketSanitizer(),
            queue_latency_ms=cost_model.nfqueue_ms,
        )

    device = Device(
        name=f"stress-{configuration}",
        network=network,
        kernel_config=KernelConfig(allow_unprivileged_ip_options=cm_mode is not None),
        cost_model=cost_model,
        network_mode=network_mode,
        xposed_installed=cm_mode is not None,
    )
    if cm_mode is not None:
        if cm_mode is ContextManagerMode.DYNAMIC:
            OfflineAnalyzer(database).analyze(stress_app.apk)
        ContextManager(device=device, mode=cm_mode).install()

    device.install(stress_app.apk, stress_app.behavior)
    process = device.launch(stress_app.package_name)
    stress = run_stress_test(process, iterations=iterations, configuration=configuration)
    return _ConfigurationRun(stress=stress, network=network, database=database)


def run_fig4(iterations: int = 500, cost_model: CostModel | None = None) -> Fig4Result:
    """Run the stress test under all six configurations.

    ``iterations`` defaults to a CI-friendly value; the paper uses
    10,000 iterations averaged over 25 runs (the simulated clock makes
    repetitions deterministic, so extra runs add no information here).
    """
    cost_model = cost_model or CostModel()
    result = Fig4Result()
    for configuration in CONFIGURATIONS:
        result.results[configuration] = _run_configuration(
            configuration, iterations, cost_model
        ).stress
    return result


@dataclass
class Fig4ThroughputResult:
    """The Figure-4 workload driven through the sharded gateway.

    Latency is the stress app's simulated per-request mean (the paper's
    Figure 4 metric); throughput is measured by replaying the tagged
    packets the stress run actually presented to the gateway through the
    ``--queue-balance`` sharded enforcer — ``parallel_wall_s`` models
    the parallel deployment (slowest shard), ``serial_wall_s`` what a
    single-queue gateway would pay for the same burst.
    """

    iterations: int
    shards: int
    mean_latency_ms: float
    packets: int
    parallel_wall_s: float
    serial_wall_s: float
    shard_packet_counts: tuple[int, ...]

    @property
    def kpps(self) -> float:
        return self.packets / self.parallel_wall_s / 1e3 if self.parallel_wall_s > 0 else float("inf")

    @property
    def single_queue_kpps(self) -> float:
        return self.packets / self.serial_wall_s / 1e3 if self.serial_wall_s > 0 else float("inf")

    def summary(self) -> str:
        return (
            f"fig4 stress workload through the sharded gateway "
            f"({self.iterations} iterations, {self.shards} shards):\n"
            f"  mean per-request latency: {self.mean_latency_ms:.2f} ms (simulated)\n"
            f"  gateway throughput on the replayed tagged packets: "
            f"{self.kpps:.1f} kpps modelled parallel "
            f"({self.single_queue_kpps:.1f} kpps single queue, "
            f"{self.packets} packets over shards {list(self.shard_packet_counts)})"
        )


def run_fig4_gateway_throughput(
    iterations: int = 300,
    shards: int = 4,
    cost_model: CostModel | None = None,
) -> Fig4ThroughputResult:
    """Drive the Figure-4 experiment through the sharded gateway.

    Runs the full ``dynamic-tap-nfqueue`` configuration with the Policy
    Enforcer sharded behind an ``NFQUEUE --queue-balance`` range, then
    replays the tagged packets captured in front of the enforcer through
    a fresh sharded enforcer to measure gateway packets-per-second on
    exactly the traffic the latency experiment generated — the
    throughput figure the ROADMAP asked for alongside Figure 4's
    latency.
    """
    from repro.netstack.sharding import ShardedEnforcer

    if shards < 1:
        raise ValueError("need at least one enforcer shard")
    run = _run_configuration(
        "dynamic-tap-nfqueue", iterations, cost_model or CostModel(), enforcer_shards=shards
    )
    tagged = run.network.capture.tagged(CapturePoint.PRE_ENFORCER)
    replay_enforcer = ShardedEnforcer(
        database=run.database,
        policy=Policy.allow_all(),
        num_shards=shards,
        drop_untagged=False,
        drop_unknown_apps=False,
        keep_records=False,
    )
    batch = replay_enforcer.process_batch_timed(tagged)
    return Fig4ThroughputResult(
        iterations=iterations,
        shards=shards,
        mean_latency_ms=run.stress.mean_ms,
        packets=batch.packets,
        parallel_wall_s=batch.parallel_wall_s,
        serial_wall_s=batch.serial_wall_s,
        shard_packet_counts=tuple(batch.shard_packet_counts),
    )
