"""Experiment drivers — one module per paper figure / table / case study.

Every artefact of the paper's evaluation section has a driver here that
builds the workload, runs it through the simulated deployment and
returns a result object whose ``table()`` method prints rows comparable
to the paper's.  The benchmark suite under ``benchmarks/`` and the
examples under ``examples/`` are thin wrappers over these drivers; see
DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
paper-vs-measured numbers.
"""

from repro.experiments.common import CorpusRunResult, run_corpus, format_table
from repro.experiments.fig3_ioi import Fig3Result, run_fig3
from repro.experiments.fig4_latency import (
    Fig4Result,
    Fig4ThroughputResult,
    run_fig4,
    run_fig4_gateway_throughput,
    CONFIGURATIONS,
)
from repro.experiments.policy_churn import (
    ChurnPathResult,
    PolicyChurnResult,
    run_policy_churn,
)
from repro.experiments.table_validation import ValidationResult, run_validation
from repro.experiments.case_studies import (
    CaseStudyResult,
    run_cloud_storage_case_study,
    run_facebook_case_study,
    run_flow_size_study,
)
from repro.experiments.gateway_throughput import (
    GatewayBenchResult,
    GatewayConfigResult,
    run_gateway_bench,
)
from repro.experiments.fleet import (
    FleetBenchResult,
    ShardBackendComparison,
    run_fleet_bench,
    run_shard_backend_comparison,
)
from repro.experiments.ops import OpsBenchResult, run_ops_bench
from repro.experiments.obs import (
    ObsBenchResult,
    ObsProfile,
    run_obs_bench,
    run_obs_profile,
)
from repro.experiments.benchmeta import bench_metadata, record_bench_metadata

__all__ = [
    "CorpusRunResult",
    "run_corpus",
    "format_table",
    "Fig3Result",
    "run_fig3",
    "Fig4Result",
    "Fig4ThroughputResult",
    "run_fig4",
    "run_fig4_gateway_throughput",
    "CONFIGURATIONS",
    "ChurnPathResult",
    "PolicyChurnResult",
    "run_policy_churn",
    "ValidationResult",
    "run_validation",
    "CaseStudyResult",
    "run_cloud_storage_case_study",
    "run_facebook_case_study",
    "run_flow_size_study",
    "GatewayBenchResult",
    "GatewayConfigResult",
    "run_gateway_bench",
    "FleetBenchResult",
    "ShardBackendComparison",
    "run_fleet_bench",
    "run_shard_backend_comparison",
    "OpsBenchResult",
    "run_ops_bench",
    "ObsBenchResult",
    "ObsProfile",
    "run_obs_bench",
    "run_obs_profile",
    "bench_metadata",
    "record_bench_metadata",
]
