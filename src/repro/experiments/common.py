"""Shared experiment plumbing.

``run_corpus`` is the workhorse: it stands up an enterprise network with
a BorderPatrol deployment, enrolls and installs a corpus of apps on a
provisioned device, exercises each app with the monkey, and returns the
captures, enforcement records and per-app reports every corpus-scale
experiment (Figure 3, the validation study, the ablations) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.android.monkey import MonkeyExerciser, MonkeyReport
from repro.core.deployment import BorderPatrolDeployment, ProvisionedDevice
from repro.core.policy import Policy
from repro.network.capture import CapturePoint
from repro.network.topology import EnterpriseNetwork
from repro.workloads.corpus import CorpusApp, CorpusGenerator


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a plain-text table (experiments print these next to paper values)."""
    columns = [list(map(str, col)) for col in zip(headers, *rows)] if rows else [[h] for h in headers]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def split_into_bursts(trace: list, parts: int) -> list[list]:
    """Split ``trace`` into exactly ``parts`` contiguous bursts.

    The first ``parts - 1`` bursts hold ``len(trace) // parts`` items
    each (at least one); the last takes the remainder, so nothing is
    dropped.  Bursts may be empty when the trace is shorter than
    ``parts`` — callers that cannot use empty bursts filter them.
    """
    if parts < 1:
        raise ValueError("a replay needs at least one burst")
    size = max(1, len(trace) // parts)
    bursts = [trace[index * size : (index + 1) * size] for index in range(parts - 1)]
    bursts.append(trace[(parts - 1) * size :])
    return bursts


def format_churn_by_app(churn: dict, limit: int = 3) -> str:
    """Render a per-app flow-cache churn map, hottest apps first."""
    if not churn:
        return "(none)"
    ranked = sorted(churn.items(), key=lambda item: (-item[1], item[0]))
    return ", ".join(f"{app}:{count}" for app, count in ranked[:limit])


@dataclass
class CorpusRunResult:
    """Everything observable after exercising a corpus under a deployment."""

    deployment: BorderPatrolDeployment
    device: ProvisionedDevice
    apps: list[CorpusApp]
    monkey_reports: dict[str, MonkeyReport] = field(default_factory=dict)

    @property
    def network(self) -> EnterpriseNetwork:
        return self.deployment.network

    def egress_packets(self):
        return self.network.capture.at(CapturePoint.DEVICE_EGRESS)

    def delivered_packet_ids(self) -> set[int]:
        return {p.packet_id for p in self.network.capture.at(CapturePoint.DELIVERED)}

    def enforcement_records(self):
        return self.deployment.enforcer.records

    def outcomes_by_app(self):
        return {
            package: list(report.outcomes.values())
            for package, report in self.monkey_reports.items()
        }

    def total_packets(self) -> int:
        return len(self.egress_packets())


def run_corpus(
    apps: list[CorpusApp],
    policy: Policy | None = None,
    events_per_app: int = 200,
    monkey_seed: int = 11,
    max_triggers_per_functionality: int | None = 2,
    deployment: BorderPatrolDeployment | None = None,
) -> CorpusRunResult:
    """Exercise ``apps`` on one provisioned device under ``policy``.

    ``events_per_app`` defaults to a laptop-friendly value; pass 5,000 to
    match the paper's monkey configuration exactly.  The
    ``max_triggers_per_functionality`` cap bounds how often the same
    behaviour is re-executed (re-executions produce identical stacks and
    add no analytical information), which keeps corpus-scale runs fast
    without changing any of the measured statistics.
    """
    if deployment is None:
        network = EnterpriseNetwork()
        deployment = BorderPatrolDeployment(network=network, policy=policy)
    elif policy is not None:
        deployment.set_policy(policy)
    CorpusGenerator.register_endpoints(deployment.network, apps)
    device = deployment.provision_device(name="corpus-device")
    monkey = MonkeyExerciser(
        seed=monkey_seed, max_triggers_per_functionality=max_triggers_per_functionality
    )
    result = CorpusRunResult(deployment=deployment, device=device, apps=apps)
    for app in apps:
        process = deployment.install_and_launch(device, app.apk, app.behavior)
        result.monkey_reports[app.package_name] = monkey.run(process, n_events=events_per_app)
    return result
