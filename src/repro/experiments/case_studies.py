"""§VI-C case studies and the §VII flow-size discussion.

Three drivers:

* ``run_cloud_storage_case_study`` — the Dropbox-like and Box-like apps
  under (a) no enforcement, (b) on-network enforcement that blocks the
  upload destination by address, and (c) BorderPatrol with a
  method-level deny rule on the upload task.  The paper's finding: the
  address-based approach either blocks nothing or collaterally breaks
  browsing/downloading, while BorderPatrol blocks exactly the upload.
* ``run_facebook_case_study`` — the SolCalendar-like app with the
  Facebook SDK.  Blocking the Graph API address kills "Login with
  Facebook" together with analytics; BorderPatrol (with a policy derived
  by the Policy Extractor from two guided runs) blocks only analytics.
* ``run_flow_size_study`` — the discussion-section observation that
  legitimate single-flow transfers span 36 B to 480 MB, so a flow-size
  threshold cannot separate uploads from ordinary traffic, and splitting
  an upload across sockets evades any threshold entirely.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.android.device import Device
from repro.baselines.ip_dns_filter import OnNetworkFilter
from repro.core.deployment import BorderPatrolDeployment
from repro.core.policy import Policy, PolicyAction, PolicyLevel, PolicyRule
from repro.core.policy_extractor import PolicyExtractor, ProfileRun
from repro.experiments.common import format_table
from repro.netstack.netfilter import RuleTarget, IptablesRule
from repro.network.topology import EnterpriseNetwork
from repro.workloads.apps import CaseStudyApp, build_box_like_app, build_calendar_app, build_cloud_storage_app


@dataclass
class CaseStudyOutcome:
    """Per-functionality result under one enforcement approach."""

    app: str
    enforcement: str
    functionality: str
    desirable: bool
    completed: bool

    @property
    def verdict(self) -> str:
        return "completed" if self.completed else "blocked"


@dataclass
class CaseStudyResult:
    name: str
    outcomes: list[CaseStudyOutcome] = field(default_factory=list)

    def add(self, outcome: CaseStudyOutcome) -> None:
        self.outcomes.append(outcome)

    def outcomes_for(self, enforcement: str, app: str | None = None) -> list[CaseStudyOutcome]:
        return [
            o
            for o in self.outcomes
            if o.enforcement == enforcement and (app is None or o.app == app)
        ]

    def undesirable_blocked(self, enforcement: str, app: str | None = None) -> bool:
        targets = [o for o in self.outcomes_for(enforcement, app) if not o.desirable]
        return bool(targets) and all(not o.completed for o in targets)

    def desirable_preserved(self, enforcement: str, app: str | None = None) -> bool:
        targets = [o for o in self.outcomes_for(enforcement, app) if o.desirable]
        return bool(targets) and all(o.completed for o in targets)

    def achieves_selective_blocking(self, enforcement: str, app: str | None = None) -> bool:
        """The paper's success criterion: block the bad, keep the good."""
        return self.undesirable_blocked(enforcement, app) and self.desirable_preserved(
            enforcement, app
        )

    def table(self) -> str:
        rows = [
            (o.app, o.enforcement, o.functionality, "desirable" if o.desirable else "undesirable", o.verdict)
            for o in self.outcomes
        ]
        return format_table(("app", "enforcement", "functionality", "label", "result"), rows)


def _fresh_network_for(app: CaseStudyApp) -> EnterpriseNetwork:
    network = EnterpriseNetwork()
    for endpoint in sorted(app.behavior.endpoints()):
        network.add_server(endpoint)
    return network


def _run_unenforced(app: CaseStudyApp, result: CaseStudyResult, label: str = "none") -> None:
    network = _fresh_network_for(app)
    device = Device(name=f"{app.package_name}-plain", network=network, xposed_installed=False)
    device.install(app.apk, app.behavior)
    process = device.launch(app.package_name)
    for functionality in app.behavior:
        outcome = process.invoke(functionality)
        result.add(
            CaseStudyOutcome(
                app=app.package_name,
                enforcement=label,
                functionality=functionality.name,
                desirable=functionality.desirable,
                completed=outcome.completed,
            )
        )


def _run_on_network(
    app: CaseStudyApp, blocked_endpoints: list[str], result: CaseStudyResult,
    label: str = "on-network"
) -> None:
    """Address/DNS-based enforcement: block the given destinations outright."""
    network = _fresh_network_for(app)
    ip_filter = OnNetworkFilter(dns=network.dns, blocked_names=set(blocked_endpoints))
    network.gateway.append_rule(
        IptablesRule(target=RuleTarget.QUEUE, queue_num=1, direction="outbound",
                     comment="on-network ip/dns filter")
    )
    network.gateway.bind_queue(1, ip_filter)
    device = Device(name=f"{app.package_name}-onnet", network=network, xposed_installed=False)
    device.install(app.apk, app.behavior)
    process = device.launch(app.package_name)
    for functionality in app.behavior:
        outcome = process.invoke(functionality)
        result.add(
            CaseStudyOutcome(
                app=app.package_name,
                enforcement=label,
                functionality=functionality.name,
                desirable=functionality.desirable,
                completed=outcome.completed,
            )
        )


def _run_borderpatrol(
    app: CaseStudyApp, policy: Policy, result: CaseStudyResult, label: str = "borderpatrol"
) -> BorderPatrolDeployment:
    network = _fresh_network_for(app)
    deployment = BorderPatrolDeployment(network=network, policy=policy)
    provisioned = deployment.provision_device(name=f"{app.package_name}-bp")
    process = deployment.install_and_launch(provisioned, app.apk, app.behavior)
    for functionality in app.behavior:
        outcome = process.invoke(functionality)
        result.add(
            CaseStudyOutcome(
                app=app.package_name,
                enforcement=label,
                functionality=functionality.name,
                desirable=functionality.desirable,
                completed=outcome.completed,
            )
        )
    return deployment


# ---------------------------------------------------------------------------
# Cloud storage case study (Dropbox-like and Box-like apps).
# ---------------------------------------------------------------------------

def run_cloud_storage_case_study() -> CaseStudyResult:
    """Upload blocking for the two cloud-storage apps under three approaches."""
    result = CaseStudyResult(name="cloud-storage")

    dropbox_like = build_cloud_storage_app()
    box_like = build_box_like_app()

    for app in (dropbox_like, box_like):
        _run_unenforced(app, result)

    # On-network enforcement: block the destination that carries uploads.
    # For the Dropbox-like app that is the single shared API endpoint; for the
    # Box-like app it is the dedicated upload endpoint (which also serves the
    # folder listing, so browsing breaks).
    _run_on_network(dropbox_like, [dropbox_like.endpoints["api"]], result)
    _run_on_network(box_like, [box_like.endpoints["upload"]], result)

    # BorderPatrol: a method-level deny rule on each app's upload task
    # (the paper's Example 3 policy).
    dropbox_policy = Policy(name="cloudbox-upload-deny")
    dropbox_policy.add_rule(
        PolicyRule(
            action=PolicyAction.DENY,
            level=PolicyLevel.METHOD,
            target=str(dropbox_like.signature("upload")),
        )
    )
    _run_borderpatrol(dropbox_like, dropbox_policy, result)

    box_policy = Policy(name="boxsync-upload-deny")
    box_policy.add_rule(
        PolicyRule(
            action=PolicyAction.DENY,
            level=PolicyLevel.METHOD,
            target=str(box_like.signature("upload")),
        )
    )
    _run_borderpatrol(box_like, box_policy, result)
    return result


# ---------------------------------------------------------------------------
# Facebook SDK case study (SolCalendar-like app).
# ---------------------------------------------------------------------------

def run_facebook_case_study() -> CaseStudyResult:
    """Analytics-vs-login separation for the calendar app."""
    result = CaseStudyResult(name="facebook-sdk")
    app = build_calendar_app()

    _run_unenforced(app, result)
    _run_on_network(app, [app.endpoints["graph"]], result)

    policy = extract_facebook_policy(app)
    _run_borderpatrol(app, policy, result)
    return result


def extract_facebook_policy(app: CaseStudyApp) -> Policy:
    """Derive the analytics-blocking policy with the Policy Extractor.

    Two guided runs under an allow-all deployment: the baseline run
    exercises login (and calendar sync), the second run exercises the
    analytics functionality.  The extractor turns the signatures unique
    to the second run into method-level deny rules.
    """
    network = _fresh_network_for(app)
    deployment = BorderPatrolDeployment(network=network, policy=Policy.allow_all())
    provisioned = deployment.provision_device(name="profiling-device")
    process = deployment.install_and_launch(provisioned, app.apk, app.behavior)

    baseline = ProfileRun(label="allowed-functionality")
    process.invoke("login_with_facebook")
    process.invoke("calendar_sync")
    for record in deployment.enforcer.records:
        if record.signatures:
            baseline.add_stack(record.signatures)

    deployment.enforcer.clear_records()
    undesired = ProfileRun(label="undesired-functionality")
    process.invoke("facebook_analytics")
    for record in deployment.enforcer.records:
        if record.signatures:
            undesired.add_stack(record.signatures)

    extractor = PolicyExtractor(level=PolicyLevel.METHOD)
    extraction = extractor.extract(baseline, undesired, policy_name="facebook-analytics-deny")
    return extraction.policy


# ---------------------------------------------------------------------------
# Flow-size discussion (§VII).
# ---------------------------------------------------------------------------

@dataclass
class FlowSizeStudyResult:
    """Threshold-based upload detection over a realistic flow-size mix."""

    legitimate_flows: list[int]
    upload_flows: list[int]
    threshold_rows: list[tuple[int, float, float]] = field(default_factory=list)
    admin_threshold: int = 1_000_000
    fragmented_upload_detected: bool = False
    fragment_count: int = 0

    @property
    def min_legitimate(self) -> int:
        return min(self.legitimate_flows)

    @property
    def max_legitimate(self) -> int:
        return max(self.legitimate_flows)

    def table(self) -> str:
        rows = [
            (f"{threshold:,}", f"{false_block:.1%}", f"{missed:.1%}")
            for threshold, false_block, missed in self.threshold_rows
        ]
        table = format_table(
            ("threshold (bytes)", "legit flows falsely blocked", "uploads missed"), rows
        )
        summary = (
            f"\nlegitimate single-flow sizes span {self.min_legitimate} B .. "
            f"{self.max_legitimate / 1e6:.0f} MB (paper: 36 B .. 480 MB)"
            f"\nupload fragmented over {self.fragment_count} sockets detected by a "
            f"{self.admin_threshold:,}-byte threshold: {self.fragmented_upload_detected} "
            "(BorderPatrol detects uploads regardless of transfer size)"
        )
        return table + summary


def run_flow_size_study(
    n_legitimate_flows: int = 400,
    seed: int = 5,
    upload_size: int = 50_000_000,
    fragment_count: int = 64,
) -> FlowSizeStudyResult:
    """Evaluate flow-size thresholds against a heavy-tailed legitimate-flow mix.

    The legitimate flow sizes are drawn log-uniformly over the paper's
    empirically observed range (36 bytes to 480 MB); upload flows are a
    mix of small and large document uploads.  For every candidate
    threshold the study reports how many legitimate flows would be
    blocked and how many uploads would be missed, and finally shows that
    fragmenting one upload across sockets evades any per-flow threshold.
    """
    rng = random.Random(seed)
    low, high = 36, 480_000_000
    legitimate = [
        int(math.exp(rng.uniform(math.log(low), math.log(high)))) for _ in range(n_legitimate_flows)
    ]
    uploads = [rng.randint(2_000, 5_000_000) for _ in range(40)] + [upload_size]

    thresholds = [10_000, 100_000, 1_000_000, 10_000_000, 100_000_000]
    rows = []
    for threshold in thresholds:
        false_block = sum(1 for size in legitimate if size > threshold) / len(legitimate)
        missed = sum(1 for size in uploads if size <= threshold) / len(uploads)
        rows.append((threshold, false_block, missed))

    # The evasion argument: split one large upload across many sockets and the
    # per-flow volume drops below any threshold an administrator could set
    # without also blocking a large share of legitimate traffic.
    admin_threshold = 1_000_000
    fragment_size = upload_size // fragment_count
    fragmented_detected = fragment_size > admin_threshold

    return FlowSizeStudyResult(
        legitimate_flows=legitimate,
        upload_flows=uploads,
        threshold_rows=rows,
        admin_threshold=admin_threshold,
        fragmented_upload_detected=fragmented_detected,
        fragment_count=fragment_count,
    )
