"""Gateway fast-path throughput: naive vs compiled vs flow-cached vs sharded.

The paper's border-side bottleneck is the per-packet user-space NFQUEUE
path (§V-C; Figure 4 attributes ~+1 ms to the Python consumer).  This
driver measures how far the production-gateway techniques — policy
compilation to raw index sets, a conntrack-style flow cache, and
``--queue-balance`` flow sharding — push packets-per-second over the
same replay, and verifies all paths are verdict-identical:

* ``naive``     — per-packet decode + string-matched policy evaluation
  (the prototype's pipeline);
* ``compiled``  — :meth:`repro.core.policy.Policy.compile` lowers rules
  to per-app method-index sets, so evaluation is integer set membership;
* ``cached``    — compiled plus the :class:`~repro.core.policy_enforcer.FlowCache`,
  so repeated packets of a flow skip decode and evaluation entirely;
* ``sharded-N`` — ``cached`` fanned out over N enforcer shards by flow
  hash; reported throughput models the parallel deployment (the burst's
  wall-clock is the slowest shard, see
  :class:`repro.netstack.sharding.BatchResult`).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.core.database import DatabaseEntry, SignatureDatabase
from repro.core.encoding import StackTraceEncoder
from repro.core.offline_analyzer import OfflineAnalyzer
from repro.core.policy import Policy
from repro.core.policy_enforcer import PolicyEnforcer
from repro.experiments.common import format_churn_by_app, format_table
from repro.netstack.ip import IPPacket
from repro.netstack.netfilter import Verdict
from repro.netstack.sharding import ShardedEnforcer
from repro.workloads.corpus import CorpusConfig, CorpusGenerator

#: Library prefixes the replay policy blacklists (all in the builtin
#: catalogue, so a realistic share of replay flows is denied).
DEFAULT_DENY_LIBRARIES = (
    "com/flurry",
    "com/google/android/gms/ads",
    "com/mixpanel/android",
    "com/crashlytics/android",
)


@dataclass(frozen=True)
class ReplayFlow:
    """One synthetic flow: a 5-tuple plus the context tag its packets carry."""

    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    app_id: str
    indexes: tuple[int, ...]


@dataclass
class GatewayConfigResult:
    """Throughput and counter snapshot for one enforcement configuration."""

    name: str
    packets: int
    wall_s: float
    verdicts: tuple[Verdict, ...]
    full_decodes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    compiled_evals: int = 0
    fallback_evals: int = 0
    #: Integrity failures: tag-less packets, tags naming no enrolled app,
    #: and tags whose indexes fail to decode (previously only visible by
    #: walking raw enforcement records).
    untagged_packets: int = 0
    unknown_apps: int = 0
    decode_errors: int = 0
    shard_packet_counts: tuple[int, ...] = ()
    #: Flow-cache entries lost per app (invalidations + LRU evictions).
    churn_by_app: dict = field(default_factory=dict)
    #: Persistent-pool health (non-zero only on pool-backed rows):
    #: crash/respawn counts, construction-time degradations to
    #: sequential, and ring vs pickled batch transport.
    pool_worker_crashes: int = 0
    pool_worker_respawns: int = 0
    backend_fallbacks: int = 0
    pool_ring_batches: int = 0
    pool_pickled_batches: int = 0

    @property
    def pps(self) -> float:
        """Modelled packets per second (parallel wall-clock for shards)."""
        return self.packets / self.wall_s if self.wall_s > 0 else float("inf")


@dataclass
class GatewayBenchResult:
    """All configurations measured over one identical packet replay."""

    packets: int
    flows: int
    results: dict[str, GatewayConfigResult] = field(default_factory=dict)

    def pps(self, name: str) -> float:
        return self.results[name].pps

    def speedup(self, name: str, baseline: str = "naive") -> float:
        return self.pps(name) / self.pps(baseline)

    @property
    def verdicts_match(self) -> bool:
        """True when every configuration produced the identical verdict sequence."""
        sequences = [result.verdicts for result in self.results.values()]
        return all(sequence == sequences[0] for sequence in sequences[1:])

    def table(self) -> str:
        rows = []
        for name, result in self.results.items():
            rows.append(
                (
                    name,
                    result.packets,
                    f"{result.wall_s * 1e3:.1f}",
                    f"{result.pps / 1e3:.1f}",
                    f"{self.speedup(name):.2f}x",
                    result.full_decodes,
                    result.cache_hits,
                )
            )
        table = format_table(
            (
                "configuration",
                "packets",
                "wall (ms)",
                "kpps",
                "vs naive",
                "full decodes",
                "cache hits",
            ),
            rows,
        )
        churn: dict[str, int] = {}
        for result in self.results.values():
            for app, count in result.churn_by_app.items():
                churn[app] = churn.get(app, 0) + count
        # Every configuration processes the identical replay, so the
        # integrity counters agree across rows; report them once.
        integrity = (
            max((r.untagged_packets for r in self.results.values()), default=0),
            max((r.unknown_apps for r in self.results.values()), default=0),
            max((r.decode_errors for r in self.results.values()), default=0),
        )
        lines = [
            table,
            f"flow-cache churn by app: {format_churn_by_app(churn)}",
            "integrity outcomes: %d untagged, %d unknown-app, %d decode-failure"
            % integrity,
        ]
        # Pool health appears once any row ran on the persistent pool
        # (or a fork backend degraded at construction).
        pooled = [
            r
            for r in self.results.values()
            if r.pool_ring_batches
            or r.pool_pickled_batches
            or r.pool_worker_crashes
            or r.backend_fallbacks
        ]
        if pooled:
            crashes = sum(r.pool_worker_crashes for r in pooled)
            respawns = sum(r.pool_worker_respawns for r in pooled)
            fallbacks = sum(r.backend_fallbacks for r in pooled)
            ring = sum(r.pool_ring_batches for r in pooled)
            pickled = sum(r.pool_pickled_batches for r in pooled)
            lines.append(
                f"pool health: {crashes} crash(es), {respawns} respawn(s), "
                f"{fallbacks} backend fallback(s); batches {ring} via ring, "
                f"{pickled} pickled"
            )
        lines.append(f"all paths verdict-identical: {self.verdicts_match}")
        return "\n".join(lines)


def build_signature_database(corpus_apps: int = 6, seed: int = 7) -> SignatureDatabase:
    """A database populated from a small deterministic corpus."""
    database = SignatureDatabase()
    generator = CorpusGenerator(CorpusConfig(n_apps=corpus_apps, seed=seed))
    OfflineAnalyzer(database).analyze_batch([app.apk for app in generator.generate()])
    return database


def build_replay(
    entries: list[DatabaseEntry],
    packets: int,
    flows: int,
    seed: int = 7,
    index_width=None,
) -> list[IPPacket]:
    """A deterministic replay of ``packets`` spread over ``flows`` flows.

    Flow popularity is skewed (heavy-tailed, like real gateway traffic)
    so the flow cache has both hot flows and a long tail.  Every packet
    of a flow carries the same tag bytes, matching how the Context
    Manager tags per socket.
    """
    if not entries:
        raise ValueError("need at least one database entry to build a replay")
    rng = random.Random(seed)
    encoder = StackTraceEncoder() if index_width is None else StackTraceEncoder(index_width)

    replay_flows: list[ReplayFlow] = []
    for flow_index in range(flows):
        entry = rng.choice(entries)
        depth = rng.randint(2, 6)
        indexes = tuple(rng.randrange(entry.method_count) for _ in range(depth))
        replay_flows.append(
            ReplayFlow(
                src_ip=f"10.10.{flow_index % 32}.{2 + flow_index % 200}",
                src_port=20000 + flow_index,
                dst_ip=f"203.0.113.{1 + flow_index % 200}",
                dst_port=443,
                app_id=entry.app_id,
                indexes=indexes,
            )
        )

    weights = [1.0 / (1 + rank) for rank in range(flows)]
    chosen = rng.choices(replay_flows, weights=weights, k=packets)
    replay: list[IPPacket] = []
    for flow in chosen:
        replay.append(
            IPPacket(
                src_ip=flow.src_ip,
                dst_ip=flow.dst_ip,
                src_port=flow.src_port,
                dst_port=flow.dst_port,
                payload_size=512,
                options=encoder.encode_option(flow.app_id, flow.indexes),
            )
        )
    return replay


def _snapshot(name: str, packets: int, wall_s: float, verdicts, stats) -> GatewayConfigResult:
    return GatewayConfigResult(
        name=name,
        packets=packets,
        wall_s=wall_s,
        verdicts=tuple(verdicts),
        full_decodes=stats.full_decodes,
        cache_hits=stats.cache_hits,
        cache_misses=stats.cache_misses,
        compiled_evals=stats.compiled_evals,
        fallback_evals=stats.fallback_evals,
        untagged_packets=stats.untagged_packets,
        unknown_apps=stats.unknown_apps,
        decode_errors=stats.decode_errors,
        churn_by_app=dict(stats.cache_churn_by_app),
        pool_worker_crashes=stats.pool_worker_crashes,
        pool_worker_respawns=stats.pool_worker_respawns,
        backend_fallbacks=stats.backend_fallbacks,
        pool_ring_batches=stats.pool_ring_batches,
        pool_pickled_batches=stats.pool_pickled_batches,
    )


def run_gateway_bench(
    packets: int = 10_000,
    flows: int = 256,
    shards: int = 4,
    corpus_apps: int = 6,
    seed: int = 7,
    keep_records: bool = True,
    policy: Policy | None = None,
    backend: str = "sequential",
    scheduler: str = "static",
    scheduler_config=None,
) -> GatewayBenchResult:
    """Measure every enforcement path over one identical replay.

    ``backend`` selects how the sharded rows execute: ``"sequential"``
    (in-process model), ``"process"`` (fork-per-batch), or ``"pool"``
    (persistent worker pool).  Reported shard throughput stays the
    modelled parallel wall (slowest shard) in every mode so the rows
    remain comparable; the backend choice proves verdict identity on
    the real execution engine.  Fork-based backends need the POSIX
    ``fork`` start method and degrade to sequential elsewhere.

    ``scheduler="adaptive"`` (pool backend only) lets a
    :class:`~repro.runtime.scheduler.BatchScheduler` chunk each sharded
    row's replay into per-worker batches instead of the single batch
    per worker the static split ships; the sharded rows gain an
    ``-adaptive`` suffix.
    """
    if packets < 1:
        raise ValueError("the replay needs at least one packet")
    if flows < 1:
        raise ValueError("the replay needs at least one flow")
    if shards < 1:
        raise ValueError("need at least one enforcer shard")
    if corpus_apps < 1:
        raise ValueError("the signature database needs at least one corpus app")
    database = build_signature_database(corpus_apps=corpus_apps, seed=seed)
    replay = build_replay(database.entries(), packets=packets, flows=flows, seed=seed)
    if policy is None:
        policy = Policy.deny_libraries(DEFAULT_DENY_LIBRARIES, name="gateway-bench")
    result = GatewayBenchResult(packets=len(replay), flows=flows)

    single_queue = {
        "naive": dict(compile_policy=False, flow_cache_size=0),
        "compiled": dict(compile_policy=True, flow_cache_size=0),
        "cached": dict(compile_policy=True, flow_cache_size=4096),
    }
    for name, kwargs in single_queue.items():
        enforcer = PolicyEnforcer(
            database=database, policy=policy, keep_records=keep_records, **kwargs
        )
        started = time.perf_counter()
        processed = enforcer.process_batch(replay)
        wall_s = time.perf_counter() - started
        result.results[name] = _snapshot(
            name, len(replay), wall_s, (verdict for verdict, _ in processed), enforcer.stats
        )

    for num_shards in sorted({1, shards}):
        name = f"sharded-{num_shards}"
        if backend != "sequential":
            name += f"-{backend}"
        if scheduler != "static":
            name += f"-{scheduler}"
        sharded = ShardedEnforcer(
            database=database,
            policy=policy,
            num_shards=num_shards,
            keep_records=keep_records,
            backend=backend,
            scheduler=scheduler,
            scheduler_config=scheduler_config,
        )
        batch = sharded.process_batch_timed(replay)
        snapshot = _snapshot(
            name,
            batch.packets,
            batch.parallel_wall_s,
            (verdict for verdict, _ in batch.results),
            sharded.aggregate_stats(),
        )
        snapshot.shard_packet_counts = tuple(batch.shard_packet_counts)
        result.results[name] = snapshot
        sharded.close()

    return result
