"""Flow tracking.

The discussion section (§VII) contrasts BorderPatrol with traditional
appliances that classify uploads by measuring continuous outbound
transfer sizes per flow, noting that legitimate single-flow requests in
the authors' dataset ranged from 36 bytes to 480 MB.  The flow table
here provides exactly that per-flow accounting so the size-threshold
baseline and the DISC-FLOW experiment can be expressed against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.netstack.ip import IPPacket


@dataclass(frozen=True)
class FlowKey:
    """The canonical 5-tuple identifying a flow."""

    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    protocol: int

    @classmethod
    def from_packet(cls, packet: IPPacket) -> "FlowKey":
        return cls(
            src_ip=packet.src_ip,
            src_port=packet.src_port,
            dst_ip=packet.dst_ip,
            dst_port=packet.dst_port,
            protocol=packet.protocol,
        )


@dataclass
class Flow:
    """Aggregate statistics for one flow."""

    key: FlowKey
    packets: int = 0
    bytes: int = 0
    first_seen_ms: float = 0.0
    last_seen_ms: float = 0.0
    tagged_packets: int = 0
    connection_ids: set[int] = field(default_factory=set)

    def observe(self, packet: IPPacket) -> None:
        if self.packets == 0:
            self.first_seen_ms = packet.created_at_ms
        self.packets += 1
        self.bytes += packet.payload_size
        self.last_seen_ms = packet.created_at_ms
        if packet.has_options:
            self.tagged_packets += 1
        if packet.connection_id is not None:
            self.connection_ids.add(packet.connection_id)

    @property
    def duration_ms(self) -> float:
        return max(0.0, self.last_seen_ms - self.first_seen_ms)


class FlowTable:
    """Accumulates flows from an observed packet stream."""

    def __init__(self) -> None:
        self._flows: dict[FlowKey, Flow] = {}

    def observe(self, packet: IPPacket) -> Flow:
        key = FlowKey.from_packet(packet)
        flow = self._flows.get(key)
        if flow is None:
            flow = Flow(key=key)
            self._flows[key] = flow
        flow.observe(packet)
        return flow

    def observe_all(self, packets: Iterable[IPPacket]) -> None:
        for packet in packets:
            self.observe(packet)

    def get(self, key: FlowKey) -> Flow | None:
        return self._flows.get(key)

    def flows(self) -> list[Flow]:
        return list(self._flows.values())

    def flows_to(self, dst_ip: str) -> list[Flow]:
        return [f for f in self._flows.values() if f.key.dst_ip == dst_ip]

    def total_bytes(self) -> int:
        return sum(f.bytes for f in self._flows.values())

    def flow_sizes(self) -> list[int]:
        """Outbound byte counts per flow, for threshold-baseline analysis."""
        return sorted(f.bytes for f in self._flows.values())

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self) -> Iterator[Flow]:
        return iter(self._flows.values())
