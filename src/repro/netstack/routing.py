"""Routers and links.

Two routing facts drive BorderPatrol's architecture: packets that still
carry IP options when they reach the public Internet are liable to be
dropped (RFC 7126 filtering recommendations and vendor guidance, §IV-A4)
— which is why the Packet Sanitizer must strip the context tag at the
border — and every hop contributes latency, which the Figure 4 study
accounts for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netstack.ip import IPPacket


class RoutingError(RuntimeError):
    """Raised when a packet cannot be forwarded (TTL expiry is not an error)."""


@dataclass(frozen=True)
class RouterPolicy:
    """Per-router forwarding policy.

    ``drop_packets_with_options`` models RFC 7126-style filtering applied
    by Internet routers and security appliances; enterprise-internal
    routers leave it off so tagged packets can reach the Policy Enforcer.
    """

    drop_packets_with_options: bool = False
    decrement_ttl: bool = True


@dataclass
class RouterStats:
    forwarded: int = 0
    dropped_options: int = 0
    dropped_ttl: int = 0


@dataclass
class Router:
    """A router hop: applies its policy and forwards or drops the packet."""

    name: str
    policy: RouterPolicy = field(default_factory=RouterPolicy)
    latency_ms: float = 0.05
    stats: RouterStats = field(default_factory=RouterStats)

    def forward(self, packet: IPPacket) -> IPPacket | None:
        """Forward ``packet``; returns None when the router drops it."""
        if self.policy.drop_packets_with_options and packet.has_options:
            self.stats.dropped_options += 1
            return None
        if self.policy.decrement_ttl:
            if packet.ttl <= 1:
                self.stats.dropped_ttl += 1
                return None
            packet = packet.decremented_ttl()
        self.stats.forwarded += 1
        return packet


@dataclass(frozen=True)
class Link:
    """A point-to-point link with a propagation latency."""

    name: str
    latency_ms: float = 0.1

    def __post_init__(self) -> None:
        if self.latency_ms < 0:
            raise ValueError("latency cannot be negative")


def traverse(packet: IPPacket, hops: list[Router]) -> tuple[IPPacket | None, float]:
    """Push ``packet`` through a sequence of routers.

    Returns the surviving packet (or None if any hop dropped it) and the
    total latency charged by the traversed hops.
    """
    latency = 0.0
    current: IPPacket | None = packet
    for router in hops:
        latency += router.latency_ms
        current = router.forward(current)
        if current is None:
            break
    return current, latency
