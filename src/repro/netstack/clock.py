"""Simulated monotonic clock.

All timing in the reproduction (socket creation timestamps, per-hop
latencies, the Figure 4 latency study) is driven by this clock rather
than wall time so experiments are deterministic and fast regardless of
the host machine.
"""

from __future__ import annotations


class SimulatedClock:
    """A monotonic clock measured in milliseconds that only moves when told to."""

    def __init__(self, start_ms: float = 0.0) -> None:
        if start_ms < 0:
            raise ValueError("clock cannot start before zero")
        self._now_ms = float(start_ms)

    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now_ms

    def advance(self, delta_ms: float) -> float:
        """Advance the clock by ``delta_ms`` milliseconds and return the new time."""
        if delta_ms < 0:
            raise ValueError("time cannot move backwards")
        self._now_ms += float(delta_ms)
        return self._now_ms

    def measure(self) -> "_Stopwatch":
        """Return a stopwatch anchored at the current simulated time."""
        return _Stopwatch(self)

    def __repr__(self) -> str:
        return f"SimulatedClock(now={self._now_ms:.3f}ms)"


class _Stopwatch:
    """Records elapsed simulated time since construction."""

    def __init__(self, clock: SimulatedClock) -> None:
        self._clock = clock
        self._start = clock.now()

    def elapsed_ms(self) -> float:
        return self._clock.now() - self._start

    def restart(self) -> None:
        self._start = self._clock.now()
