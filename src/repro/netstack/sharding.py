"""Flow-sharded gateway enforcement (``NFQUEUE --queue-balance``).

Real gateways scale the user-space NFQUEUE path by binding a *range* of
queues (``iptables -j NFQUEUE --queue-balance 0:3``) and letting the
kernel spread flows across them by flow hash; one consumer process per
queue then handles its share of the traffic in parallel.

:class:`ShardedEnforcer` reproduces that architecture over the
simulation: N independent :class:`~repro.core.policy_enforcer.PolicyEnforcer`
shards (each with its own compiled policy and flow cache, so shards
share no mutable state — exactly the property that makes the real thing
embarrassingly parallel), a flow-hash router that keeps every packet of
a flow on the same shard, and a :meth:`process_batch_timed` API whose
:class:`BatchResult` models the parallel wall-clock of the bottleneck
shard.

The sharder is itself a :class:`~repro.netstack.netfilter.QueueConsumer`,
so it can be bound to a single queue; bound through
:meth:`~repro.netstack.netfilter.Iptables.bind_queue_balance` instead,
each shard owns its own queue number, mirroring the real deployment.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields

from repro.core.policy_enforcer import (
    EnforcementRecord,
    EnforcerStats,
    PolicyEnforcer,
    distinct_stacks,
)
from repro.netstack.ip import IPPacket
from repro.netstack.netfilter import Verdict, flow_hash


@dataclass
class BatchResult:
    """Outcome of one :meth:`ShardedEnforcer.process_batch_timed` burst.

    ``results`` preserves the input packet order.  ``shard_elapsed_s``
    holds the measured processing time each shard spent on its share;
    since shards are independent consumers, the modelled parallel
    wall-clock of the burst is the slowest shard, while a single-queue
    gateway would pay the sum.
    """

    results: list[tuple[Verdict, IPPacket]]
    shard_elapsed_s: list[float]
    shard_packet_counts: list[int]

    @property
    def parallel_wall_s(self) -> float:
        return max(self.shard_elapsed_s, default=0.0)

    @property
    def serial_wall_s(self) -> float:
        return sum(self.shard_elapsed_s)

    @property
    def packets(self) -> int:
        return len(self.results)


class ShardedEnforcer:
    """Hash-balanced fan-out of the Policy Enforcer across N shards."""

    def __init__(
        self,
        database,
        policy=None,
        num_shards: int = 4,
        **enforcer_kwargs,
    ) -> None:
        if num_shards < 1:
            raise ValueError("need at least one enforcer shard")
        self.num_shards = num_shards
        self.shards: list[PolicyEnforcer] = [
            PolicyEnforcer(database=database, policy=policy, **enforcer_kwargs)
            for _ in range(num_shards)
        ]

    # -- policy management -----------------------------------------------------------

    @property
    def policy(self):
        return self.shards[0].policy

    @property
    def database(self):
        return self.shards[0].database

    def set_policy(self, policy) -> None:
        """Swap the policy on every shard (compiles and flushes each cache)."""
        for shard in self.shards:
            shard.set_policy(policy)

    def sync_policy(self, policy, version: int) -> None:
        """Full control-plane resync, broadcast to every shard."""
        for shard in self.shards:
            shard.sync_policy(policy, version)

    def apply_policy_delta(self, delta) -> None:
        """Versioned broadcast of a control-plane delta.

        Every shard applies the same
        :class:`~repro.core.policy_store.PolicyDelta` (each patches its
        own compiled policy and surgically invalidates its own flow
        cache), so after the loop all shards have converged to
        ``delta.version`` — see :attr:`policy_version`.
        """
        for shard in self.shards:
            shard.apply_policy_delta(delta)

    @property
    def policy_version(self) -> int:
        """The policy version every shard has converged to.

        Raises if the shards have somehow diverged — with the
        synchronous broadcast of :meth:`apply_policy_delta` that would
        mean a shard was policy-edited behind the sharder's back.
        """
        versions = {shard.policy_version for shard in self.shards}
        if len(versions) > 1:
            raise RuntimeError(
                f"enforcer shards diverged across policy versions: {sorted(versions)}"
            )
        return next(iter(versions))

    def invalidate_caches(self) -> None:
        for shard in self.shards:
            shard.invalidate_caches()

    # -- flow routing ------------------------------------------------------------------

    def shard_index(self, packet: IPPacket) -> int:
        """The shard this packet's flow is pinned to (stable per flow)."""
        return flow_hash(packet) % self.num_shards

    def shard_for(self, packet: IPPacket) -> PolicyEnforcer:
        return self.shards[self.shard_index(packet)]

    # -- QueueConsumer interface --------------------------------------------------------

    def process(self, packet: IPPacket) -> tuple[Verdict, IPPacket]:
        return self.shard_for(packet).process(packet)

    def process_batch(self, packets: list[IPPacket]) -> list[tuple[Verdict, IPPacket]]:
        """Process a burst, preserving input order.

        Same signature and return shape as
        :meth:`~repro.core.policy_enforcer.PolicyEnforcer.process_batch`,
        so either enforcer can sit behind
        ``BorderPatrolDeployment.enforcer``; use
        :meth:`process_batch_timed` for the per-shard wall-clock model.
        """
        return self.process_batch_timed(packets).results

    def process_batch_timed(self, packets: list[IPPacket]) -> BatchResult:
        """Process a burst shard-by-shard, modelling per-shard wall-clock.

        Packets are grouped by flow shard, each group is processed on its
        shard in one timed run (the simulation executes shards
        sequentially, but the groups are independent, so the slowest
        group is the parallel-deployment bottleneck), and the verdicts
        are stitched back into input order.
        """
        groups: list[list[int]] = [[] for _ in range(self.num_shards)]
        for position, packet in enumerate(packets):
            groups[self.shard_index(packet)].append(position)

        results: list[tuple[Verdict, IPPacket] | None] = [None] * len(packets)
        elapsed: list[float] = []
        for shard, positions in zip(self.shards, groups):
            started = time.perf_counter()
            for position in positions:
                results[position] = shard.process(packets[position])
            elapsed.append(time.perf_counter() - started)
        return BatchResult(
            results=[result for result in results if result is not None],
            shard_elapsed_s=elapsed,
            shard_packet_counts=[len(positions) for positions in groups],
        )

    # -- aggregated inspection ----------------------------------------------------------

    def aggregate_stats(self) -> EnforcerStats:
        """Sum of every shard's counters (equals the per-shard totals)."""
        total = EnforcerStats()
        for shard in self.shards:
            for stat_field in fields(EnforcerStats):
                setattr(
                    total,
                    stat_field.name,
                    getattr(total, stat_field.name) + getattr(shard.stats, stat_field.name),
                )
        return total

    @property
    def stats(self) -> EnforcerStats:
        return self.aggregate_stats()

    @property
    def records(self) -> list[EnforcementRecord]:
        """All shard records merged into packet order.

        This is a freshly built list — mutating it does not touch shard
        state; use :meth:`clear_records` or :meth:`reset` for that.
        """
        merged: list[EnforcementRecord] = []
        for shard in self.shards:
            merged.extend(shard.records)
        merged.sort(key=lambda record: record.packet_id)
        return merged

    def dropped_records(self) -> list[EnforcementRecord]:
        return [record for record in self.records if record.dropped]

    def allowed_records(self) -> list[EnforcementRecord]:
        return [record for record in self.records if not record.dropped]

    def decoded_stacks_to(self, dst_ip: str) -> list[tuple[str, ...]]:
        """Distinct stacks towards ``dst_ip`` across all shards (first-seen order)."""
        return distinct_stacks(self.records, dst_ip)

    def clear_records(self) -> None:
        """Drop every shard's audit records, keeping stats and caches."""
        for shard in self.shards:
            shard.clear_records()

    def reset(self) -> None:
        for shard in self.shards:
            shard.reset()
