"""Flow-sharded gateway enforcement (``NFQUEUE --queue-balance``).

Real gateways scale the user-space NFQUEUE path by binding a *range* of
queues (``iptables -j NFQUEUE --queue-balance 0:3``) and letting the
kernel spread flows across them by flow hash; one consumer process per
queue then handles its share of the traffic in parallel.

:class:`ShardedEnforcer` reproduces that architecture over the
simulation: N independent :class:`~repro.core.policy_enforcer.PolicyEnforcer`
shards (each with its own compiled policy and flow cache, so shards
share no mutable state — exactly the property that makes the real thing
embarrassingly parallel), a flow-hash router that keeps every packet of
a flow on the same shard, and a :meth:`process_batch_timed` API whose
:class:`BatchResult` models the parallel wall-clock of the bottleneck
shard.

The sharder is itself a :class:`~repro.netstack.netfilter.QueueConsumer`,
so it can be bound to a single queue; bound through
:meth:`~repro.netstack.netfilter.Iptables.bind_queue_balance` instead,
each shard owns its own queue number, mirroring the real deployment.

Backends
--------
``backend="sequential"`` (the default) executes the shard groups one
after another and *models* the parallel wall-clock as the slowest group
— cheap, deterministic, and how every verdict-identity check runs.
``backend="process"`` is the real thing: each non-empty shard group is
handed to a forked worker process (one per shard, mirroring one NFQUEUE
consumer per core), verdicts and counter deltas are piped back and
stitched into input order, and :attr:`BatchResult.measured_wall_s` is
the *actual* elapsed wall-clock — the number that validates the model.
Workers are forked per batch, so they always see the parent's current
policy state (no staleness under live policy churn); the price is that
flow-cache warm-up inside a batch stays in the child and is not carried
to the next batch.
``backend="pool"`` replaces fork-per-batch with the persistent
:class:`~repro.runtime.pool.ShardWorkerPool`: one long-lived worker per
shard holding its own compiled policy and flow cache *across* batches,
fed over pipes (payloads on a shared-memory ring), with policy changes
pushed as delta records — see :mod:`repro.runtime.pool`.  Attach the
governing :class:`~repro.core.policy_store.PolicyStore` via
:meth:`ShardedEnforcer.attach_control` to get the surgical record-push
path; without it every policy change ships as a pickled full sync.

On platforms without the fork start method, constructing either
parallel backend degrades to sequential execution with a logged warning
(``degraded`` flag, ``backend_fallbacks`` stat) instead of raising —
a gateway must come up and enforce even where it cannot parallelise.
"""

from __future__ import annotations

import logging
import multiprocessing
import time
import weakref
from dataclasses import dataclass

from repro.core.policy_enforcer import (
    EnforcementRecord,
    EnforcerStats,
    PolicyEnforcer,
    distinct_stacks,
)
from repro.netstack.ip import IPPacket
from repro.netstack.netfilter import Verdict, flow_hash

logger = logging.getLogger(__name__)

#: Supported :meth:`ShardedEnforcer.process_batch_timed` execution backends.
BACKENDS = ("sequential", "process", "pool")


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _require_fork_context():
    """The fork start method keeps workers cheap (no re-import, no enforcer
    pickling) and inheriting the parent's current policy state; platforms
    without it (Windows, some macOS configs) must use the sequential
    backend."""
    if not _fork_available():
        raise RuntimeError(
            "the 'process' shard backend needs the fork start method; "
            "use backend='sequential' on this platform"
        )
    return multiprocessing.get_context("fork")


def _shard_worker(conn, shard: PolicyEnforcer, packets: list[IPPacket]) -> None:
    """Process one shard's packet group in a forked worker.

    Reports back (elapsed seconds, verdict values in group order, the
    stats accrued, any new audit records) — everything the parent needs
    to fold the work into its own shard state.
    """
    try:
        stats_before = shard.stats.copy()
        # Capture the batch's records in a plain list instead of slicing
        # the shard's store: the store is a bounded AuditLog ring (a
        # full ring keeps a constant length, so a length-based slice
        # reads as "no new records" forever), and with
        # ``keep_records=False`` it stores nothing at all — yet the
        # parent still needs every record of the batch to republish
        # into its audit sink.  The fork's shard state dies with the
        # worker, so swapping the hooks out is safe.  ``keep_records``
        # itself must NOT be flipped: it steers the decision path (a
        # kept record decodes signatures and counts a full decode), so
        # forcing it on would make the forked backend publish different
        # records — and different stats — than the sequential backend
        # under the identical configuration.
        captured: list = []
        if shard.keep_records:
            shard.records = captured
            # The parent republishes the piped-back records, so the
            # child must not also run its inherited copy of the sink:
            # a sink backed by a spooling AuditLog would write segment
            # files from inside the fork that collide with the
            # parent's.
            shard._sink_publish = None
        elif shard.audit_sink is not None:
            shard._sink_publish = lambda record, _source="": captured.append(record)
        started = time.perf_counter()
        results = [shard.process(packet) for packet in packets]
        elapsed = time.perf_counter() - started
        conn.send(
            (
                elapsed,
                [verdict.value for verdict, _ in results],
                shard.stats.delta_since(stats_before),
                captured,
            )
        )
    finally:
        conn.close()


@dataclass
class BatchResult:
    """Outcome of one :meth:`ShardedEnforcer.process_batch_timed` burst.

    ``results`` preserves the input packet order.  ``shard_elapsed_s``
    holds the measured processing time each shard spent on its share;
    since shards are independent consumers, the modelled parallel
    wall-clock of the burst is the slowest shard, while a single-queue
    gateway would pay the sum.

    ``measured_wall_s`` is the wall-clock the burst *actually* took:
    for the sequential backend that is the sum of the shard times (the
    simulation really ran them back to back); for the process backend
    it is the end-to-end elapsed time of the forked fan-out — fork,
    parallel processing, and result harvesting included — which is what
    validates the modelled :attr:`parallel_wall_s` on real hardware.
    """

    results: list[tuple[Verdict, IPPacket]]
    shard_elapsed_s: list[float]
    shard_packet_counts: list[int]
    backend: str = "sequential"
    measured_wall_s: float = 0.0

    @property
    def parallel_wall_s(self) -> float:
        return max(self.shard_elapsed_s, default=0.0)

    @property
    def serial_wall_s(self) -> float:
        return sum(self.shard_elapsed_s)

    @property
    def packets(self) -> int:
        return len(self.results)


class ShardedEnforcer:
    """Hash-balanced fan-out of the Policy Enforcer across N shards."""

    def __init__(
        self,
        database,
        policy=None,
        num_shards: int = 4,
        backend: str = "sequential",
        ring_bytes: int | None = None,
        scheduler: str = "static",
        scheduler_config=None,
        **enforcer_kwargs,
    ) -> None:
        if num_shards < 1:
            raise ValueError("need at least one enforcer shard")
        if backend not in BACKENDS:
            raise ValueError(f"unknown shard backend {backend!r}; choose from {BACKENDS}")
        from repro.runtime.scheduler import BatchScheduler, validate_scheduler

        validate_scheduler(scheduler)
        if scheduler == "adaptive" and backend != "pool":
            raise ValueError("the adaptive batch scheduler needs backend='pool'")
        #: ``"static"`` (one batch per worker per burst) or ``"adaptive"``.
        self.scheduler_mode = scheduler
        #: The live :class:`~repro.runtime.scheduler.BatchScheduler`
        #: (None in static mode).  Callers may ``attach_monitor`` a
        #: :class:`~repro.obs.health.PoolHealthMonitor` on it so backlog
        #: alerts snap batch sizes to the floor.
        self.scheduler = (
            BatchScheduler(
                num_workers=num_shards,
                config=scheduler_config,
                pool="shard-pool",
            )
            if scheduler == "adaptive"
            else None
        )
        #: The backend asked for at construction; ``backend`` is the one
        #: actually in effect (they differ only after degradation).
        self.requested_backend = backend
        self.degraded = False
        self._local_stats = EnforcerStats()
        if backend in ("process", "pool") and not _fork_available():
            logger.warning(
                "shard backend %r needs the fork start method, which this "
                "platform lacks; degrading to sequential execution",
                backend,
            )
            self.degraded = True
            self._local_stats.backend_fallbacks += 1
            backend = "sequential"
        self.num_shards = num_shards
        self.backend = backend
        self._ring_bytes = ring_bytes
        self._control = None
        self._obs = None
        self._pool = None
        self._pool_finalizer = None
        # Degraded-pool pipelined bursts run synchronously at submit time
        # and buffer their results here until collected by token.
        self._sync_bursts: dict[int, BatchResult] = {}
        self._next_sync_token = 0
        self.shards: list[PolicyEnforcer] = [
            PolicyEnforcer(database=database, policy=policy, **enforcer_kwargs)
            for _ in range(num_shards)
        ]

    # -- policy management -----------------------------------------------------------

    @property
    def policy(self):
        return self.shards[0].policy

    @property
    def database(self):
        return self.shards[0].database

    def attach_control(self, store) -> None:
        """Hand the pool backend its id-addressed control store.

        Pool workers can only replay compact
        :class:`~repro.core.policy_store.DeltaLogRecord` pushes against
        a :class:`~repro.core.policy_store.GatewayReplica` shadow of the
        store that commits them (remove/replace ops address stable rule
        ids).  With a control store attached, every
        :meth:`apply_policy_delta` ships the committed record — small,
        JSON-able, fingerprint-verified in the worker; without one the
        pool still works, but every change falls back to a pickled
        full-policy sync (counted in ``pool_snapshot_syncs``).
        :class:`~repro.core.policy_store.GatewayReplica` attaches its
        shadow automatically, so sharded gateways inside a fleet get the
        record-push path for free.
        """
        self._restart_pool()
        self._control = store

    def set_policy(self, policy) -> None:
        """Swap the policy on every shard (compiles and flushes each cache)."""
        for shard in self.shards:
            shard.set_policy(policy)
        if self._pool is not None:
            self._pool.push_set_policy(policy)

    def sync_policy(self, policy, version: int) -> None:
        """Full control-plane resync, broadcast to every shard."""
        for shard in self.shards:
            shard.sync_policy(policy, version)
        if self._pool is not None:
            record = self._control_record(version)
            if record is not None:
                self._pool.push_record(record)
            else:
                self._pool.push_sync(policy, version)

    def apply_policy_delta(self, delta) -> None:
        """Versioned broadcast of a control-plane delta.

        Every shard applies the same
        :class:`~repro.core.policy_store.PolicyDelta` (each patches its
        own compiled policy and surgically invalidates its own flow
        cache), so after the loop all shards have converged to
        ``delta.version`` — see :attr:`policy_version`.  Live pool
        workers get the change pushed too: the committed delta-log
        record when a control store is attached (surgical recompile in
        the worker), a pickled full sync otherwise.  The command pipes
        are FIFO, so batches already submitted still enforce at the
        pre-delta version — the serial interleaving, preserved.
        """
        for shard in self.shards:
            shard.apply_policy_delta(delta)
        if self._pool is not None:
            record = self._control_record(delta.version)
            if record is not None:
                self._pool.push_record(record)
            else:
                self._pool.push_sync(delta.policy, delta.version)

    def _control_record(self, version: int):
        """The committed log record for ``version``, or None when the
        pool must fall back to a full sync (no control store, the record
        was compacted away, or it is an opaque sync)."""
        if self._control is None:
            return None
        try:
            record = self._control.delta_log.record(version)
        except Exception:
            return None
        if record.kind == "sync" and record.rules is None:
            return None
        return record

    @property
    def policy_version(self) -> int:
        """The policy version every shard has converged to.

        Raises if the shards have somehow diverged — with the
        synchronous broadcast of :meth:`apply_policy_delta` that would
        mean a shard was policy-edited behind the sharder's back.
        """
        versions = {shard.policy_version for shard in self.shards}
        if len(versions) > 1:
            raise RuntimeError(
                f"enforcer shards diverged across policy versions: {sorted(versions)}"
            )
        return next(iter(versions))

    def invalidate_caches(self) -> None:
        for shard in self.shards:
            shard.invalidate_caches()
        if self._pool is not None:
            self._pool.push_invalidate()

    # -- pool lifecycle ----------------------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None:
            from repro.runtime.pool import ShardWorkerPool
            from repro.runtime.ring import DEFAULT_RING_BYTES

            if self.scheduler is not None and self._obs is None:
                # The adaptive scheduler is driven by the obs layer's
                # batch traces and histograms; give it a private bundle
                # when the caller did not attach one.
                from repro.obs.instrument import RuntimeObservability

                self.attach_obs(RuntimeObservability())
            ring_bytes = (
                DEFAULT_RING_BYTES if self._ring_bytes is None else self._ring_bytes
            )
            self._pool = ShardWorkerPool(
                self.shards,
                control=self._control,
                ring_bytes=ring_bytes,
                obs=self._obs,
            )
            if self.scheduler is not None:
                self.scheduler.bind_obs(self._obs)
            # The finalizer holds only the pool (not self): leaked
            # enforcers still reap their daemon workers at GC.
            self._pool_finalizer = weakref.finalize(self, self._pool.close)
        return self._pool

    def _restart_pool(self, drop_outstanding: bool = False) -> None:
        """Tear the pool down; the next pool batch respawns fresh workers.

        Used when worker-side state must be rebuilt (control store or
        audit sink attached after workers forked, :meth:`reset`).  Pool
        runtime counters fold into :attr:`aggregate_stats` first so a
        restart never loses them.  Submitted-but-uncollected pipelined
        bursts would lose their verdicts in the teardown, so the restart
        refuses while any are outstanding — collect them first; only an
        explicit :meth:`close` discards them (``drop_outstanding``).
        """
        if self._pool is not None:
            if self._pool.outstanding and not drop_outstanding:
                from repro.runtime.pool import WorkerPoolError

                raise WorkerPoolError(
                    f"{self._pool.outstanding} pipelined burst(s) still "
                    "outstanding; collect them before reconfiguring the pool"
                )
            self._local_stats.merge(self._pool.stats)
            if self._pool_finalizer is not None:
                self._pool_finalizer.detach()
                self._pool_finalizer = None
            self._pool.close()
            self._pool = None

    def close(self) -> None:
        """Stop pool workers, if any.  Safe to call on any backend.

        Uncollected pipelined bursts are discarded — the caller is
        ending the enforcer's life, so there is nowhere to deliver them.
        """
        self._restart_pool(drop_outstanding=True)

    # -- telemetry ---------------------------------------------------------------------

    def attach_audit_sink(self, sink, source: str | None = None) -> None:
        """Publish every shard's decisions into one gateway-level sink.

        All shards share the gateway's source label: telemetry
        aggregates per gateway, and inside a gateway the shards are one
        logical enforcement point.  With the ``process`` backend the
        workers' sink copies die with the fork, so each worker captures
        its batch's records and the parent republishes them (see
        :meth:`_process_batch_forked`) — ``keep_records`` does not need
        to be on for that.
        """
        # Pool workers install their capture hooks at fork time; a sink
        # attached afterwards would go unseen, so respawn them (fails
        # fast, before any shard is touched, if bursts are outstanding).
        self._restart_pool()
        for shard in self.shards:
            shard.attach_audit_sink(sink, source)

    # -- observability -----------------------------------------------------------------

    def attach_obs(self, obs) -> None:
        """Attach (or detach, with ``None``) a
        :class:`~repro.obs.instrument.RuntimeObservability`.

        Local shards get sampled per-stage enforcement latency; the pool
        backend additionally captures batch span traces and merges each
        worker's local registry deltas as they ride home on batch
        results.  Like :meth:`attach_control`, workers fork with their
        instrumentation in place, so the pool restarts (refusing while
        pipelined bursts are outstanding).
        """
        self._restart_pool()
        self._obs = obs
        if self.scheduler is not None and obs is not None:
            self.scheduler.bind_obs(obs)
        enforcer_obs = None if obs is None else obs.enforcer
        for shard in self.shards:
            shard.attach_observability(enforcer_obs)

    def pool_health(self):
        """Live :class:`~repro.obs.health.PoolHealthSnapshot`, or None
        when no pool is running (sequential backend, degraded, or no
        batch submitted yet)."""
        return self._pool.health() if self._pool is not None else None

    # -- flow routing ------------------------------------------------------------------

    def shard_index(self, packet: IPPacket) -> int:
        """The shard this packet's flow is pinned to (stable per flow)."""
        return flow_hash(packet) % self.num_shards

    def shard_for(self, packet: IPPacket) -> PolicyEnforcer:
        return self.shards[self.shard_index(packet)]

    # -- QueueConsumer interface --------------------------------------------------------

    def process(self, packet: IPPacket) -> tuple[Verdict, IPPacket]:
        return self.shard_for(packet).process(packet)

    def process_batch(self, packets: list[IPPacket]) -> list[tuple[Verdict, IPPacket]]:
        """Process a burst, preserving input order.

        Same signature and return shape as
        :meth:`~repro.core.policy_enforcer.PolicyEnforcer.process_batch`,
        so either enforcer can sit behind
        ``BorderPatrolDeployment.enforcer``; use
        :meth:`process_batch_timed` for the per-shard wall-clock model.
        """
        return self.process_batch_timed(packets).results

    def process_batch_timed(
        self, packets: list[IPPacket], backend: str | None = None
    ) -> BatchResult:
        """Process a burst shard-by-shard, modelling per-shard wall-clock.

        Packets are grouped by flow shard and the verdicts are stitched
        back into input order.  With the default ``sequential`` backend
        each group is processed on its shard in one timed run (the
        simulation executes shards sequentially, but the groups are
        independent, so the slowest group is the parallel-deployment
        bottleneck); the ``process`` backend forks one worker per
        non-empty group and runs them genuinely in parallel.
        """
        backend = self.backend if backend is None else backend
        if backend not in BACKENDS:
            raise ValueError(f"unknown shard backend {backend!r}; choose from {BACKENDS}")
        groups: list[list[int]] = [[] for _ in range(self.num_shards)]
        for position, packet in enumerate(packets):
            groups[self.shard_index(packet)].append(position)

        if backend == "process" and packets:
            return self._process_batch_forked(packets, groups)
        if backend == "pool" and packets:
            return self._process_batch_pooled(packets)

        results: list[tuple[Verdict, IPPacket] | None] = [None] * len(packets)
        elapsed: list[float] = []
        started_batch = time.perf_counter()
        for shard, positions in zip(self.shards, groups):
            started = time.perf_counter()
            for position in positions:
                results[position] = shard.process(packets[position])
            elapsed.append(time.perf_counter() - started)
        return BatchResult(
            results=[result for result in results if result is not None],
            shard_elapsed_s=elapsed,
            shard_packet_counts=[len(positions) for positions in groups],
            backend="sequential",
            measured_wall_s=time.perf_counter() - started_batch,
        )

    def _process_batch_forked(
        self, packets: list[IPPacket], groups: list[list[int]]
    ) -> BatchResult:
        """One forked worker per non-empty shard group, results stitched back.

        Forking at batch time means every worker inherits the shards'
        *current* compiled policy and flow-cache state — live policy
        churn between batches needs no worker resynchronisation.  Each
        worker's verdicts, counter deltas and audit records are folded
        back into the parent shard, so stats and records read exactly as
        if the batch had run sequentially; only in-batch cache warm-up
        stays behind in the child.
        """
        ctx = _require_fork_context()
        started_batch = time.perf_counter()
        workers = []
        for shard_index, positions in enumerate(groups):
            if not positions:
                continue
            receiver, sender = ctx.Pipe(duplex=False)
            worker = ctx.Process(
                target=_shard_worker,
                args=(
                    sender,
                    self.shards[shard_index],
                    [packets[position] for position in positions],
                ),
            )
            worker.start()
            sender.close()
            workers.append((shard_index, positions, receiver, worker))

        results: list[tuple[Verdict, IPPacket] | None] = [None] * len(packets)
        elapsed = [0.0] * self.num_shards
        try:
            for shard_index, positions, receiver, worker in workers:
                shard_elapsed, verdict_values, stats_delta, new_records = receiver.recv()
                elapsed[shard_index] = shard_elapsed
                for position, value in zip(positions, verdict_values):
                    results[position] = (Verdict(value), packets[position])
                shard = self.shards[shard_index]
                shard.stats.merge(stats_delta)
                if shard.keep_records:
                    shard.records.extend(new_records)
                if shard.audit_sink is not None:
                    # The worker's in-fork sink state is gone; replay the
                    # piped-back records into the parent's pipeline so
                    # telemetry sees the batch exactly once.
                    for record in new_records:
                        shard.audit_sink.publish(record, shard.audit_source)
        finally:
            for _, _, receiver, worker in workers:
                receiver.close()
                worker.join()
        return BatchResult(
            results=[result for result in results if result is not None],
            shard_elapsed_s=elapsed,
            shard_packet_counts=[len(positions) for positions in groups],
            backend="process",
            measured_wall_s=time.perf_counter() - started_batch,
        )

    def _process_batch_pooled(self, packets: list[IPPacket]) -> BatchResult:
        """One synchronous burst through the persistent worker pool.

        Unlike the forked backend there is no per-batch setup: workers
        already exist, already hold the current compiled policy (kept
        current by delta pushes), and keep their flow caches warm
        *across* batches.  ``measured_wall_s`` is submit-to-harvest
        wall-clock, so the amortized IPC cost per batch is directly
        visible next to the modelled compute time.
        """
        pool = self._ensure_pool()
        sizes = None if self.scheduler is None else self.scheduler.plan()
        burst = pool.collect(pool.submit(packets, batch_sizes=sizes))
        return BatchResult(
            results=burst.results,
            shard_elapsed_s=burst.worker_elapsed_s,
            shard_packet_counts=burst.worker_packet_counts,
            backend="pool",
            measured_wall_s=burst.wall_s,
        )

    # -- pipelined bursts --------------------------------------------------------------

    def submit_batch(self, packets: list[IPPacket]) -> int:
        """Hand a burst to the pool without waiting (pipelined mode).

        The parent is free to commit policy edits, drain telemetry, or
        prepare the next burst while workers enforce; pipe FIFO order
        keeps verdicts identical to the synchronous path.  Returns a
        token for :meth:`collect_batch`.

        Pipelining is a pool-backend feature: on an enforcer that asked
        for the pool but degraded (no fork start method) the burst runs
        synchronously right here and :meth:`collect_batch` hands back the
        buffered result — degraded gateways keep enforcing, they just
        lose the overlap.  Any other backend raises.
        """
        if self.backend != "pool":
            self._check_pipelined_backend()
            token = self._next_sync_token
            self._next_sync_token += 1
            self._sync_bursts[token] = self.process_batch_timed(packets)
            return token
        pool = self._ensure_pool()
        sizes = None if self.scheduler is None else self.scheduler.plan()
        return pool.submit(packets, batch_sizes=sizes)

    def collect_batch(self, token: int | None = None) -> BatchResult:
        """Harvest a submitted burst (default: the oldest outstanding)."""
        if self.backend != "pool":
            self._check_pipelined_backend()
            return self._collect_sync_burst(token)
        burst = self._ensure_pool().collect(token)
        return BatchResult(
            results=burst.results,
            shard_elapsed_s=burst.worker_elapsed_s,
            shard_packet_counts=burst.worker_packet_counts,
            backend="pool",
            measured_wall_s=burst.wall_s,
        )

    def _check_pipelined_backend(self) -> None:
        if not (self.degraded and self.requested_backend == "pool"):
            raise ValueError(
                "pipelined bursts need backend='pool'; this enforcer runs "
                f"backend={self.backend!r}"
            )

    def _collect_sync_burst(self, token: int | None):
        from repro.runtime.pool import WorkerPoolError

        if not self._sync_bursts:
            raise WorkerPoolError("no outstanding burst to collect")
        if token is None:
            token = min(self._sync_bursts)
        if token not in self._sync_bursts:
            raise WorkerPoolError(
                f"unknown or already-collected burst token {token}"
            )
        return self._sync_bursts.pop(token)

    # -- aggregated inspection ----------------------------------------------------------

    def aggregate_stats(self) -> EnforcerStats:
        """Sum of every shard's counters, plus runtime-level counters
        (pool health, backend degradation)."""
        total = EnforcerStats()
        for shard in self.shards:
            total.merge(shard.stats)
        total.merge(self._local_stats)
        if self._pool is not None:
            total.merge(self._pool.stats)
        return total

    @property
    def stats(self) -> EnforcerStats:
        return self.aggregate_stats()

    @property
    def records(self) -> list[EnforcementRecord]:
        """All shard records merged into packet order.

        This is a freshly built list — mutating it does not touch shard
        state; use :meth:`clear_records` or :meth:`reset` for that.
        """
        merged: list[EnforcementRecord] = []
        for shard in self.shards:
            merged.extend(shard.records)
        merged.sort(key=lambda record: record.packet_id)
        return merged

    def dropped_records(self) -> list[EnforcementRecord]:
        return [record for record in self.records if record.dropped]

    def allowed_records(self) -> list[EnforcementRecord]:
        return [record for record in self.records if not record.dropped]

    def decoded_stacks_to(self, dst_ip: str) -> list[tuple[str, ...]]:
        """Distinct stacks towards ``dst_ip`` across all shards (first-seen order)."""
        return distinct_stacks(self.records, dst_ip)

    def clear_records(self) -> None:
        """Drop every shard's audit records, keeping stats and caches."""
        for shard in self.shards:
            shard.clear_records()

    def reset(self) -> None:
        # Worker-side caches/stats cannot be rewound in place; fresh
        # forks at the next pool batch start from the reset state.  The
        # restart fails fast (outstanding bursts) before any shard is
        # touched.
        self._restart_pool()
        for shard in self.shards:
            shard.reset()
        self._local_stats = EnforcerStats()
        # Degradation is a platform property, not a counter: it survives
        # a reset, and so does its stats flag.
        if self.degraded:
            self._local_stats.backend_fallbacks += 1
