"""Native socket layer and the kernel-side rules BorderPatrol depends on.

Three behaviours of the real Linux kernel matter to the paper:

* ``setsockopt(IPPROTO_IP, IP_OPTIONS, ...)`` requires ``CAP_NET_RAW``;
  ordinary Android apps (and the Context Manager, which is a user-space
  Xposed module) do not hold it.  The prototype applies a one-line
  kernel patch to lift this restriction (§V-B "Instrumented Linux
  kernel"); :class:`KernelConfig.allow_unprivileged_ip_options` models
  that patch.
* The discussion (§VII "Tag-replay") proposes hardening the patch so the
  option can only be set once per socket;
  :class:`KernelConfig.enforce_setsockopt_once` models the hardened
  variant.
* Each outbound write is fragmented into MSS-sized packets, and every
  packet of a socket carries the socket's IP options — which is why the
  Context Manager only needs to tag the socket once per connection and
  the cost amortises (§VI-D).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.netstack.clock import SimulatedClock
from repro.netstack.ip import IPOptions, IPPacket, IPPROTO_TCP

#: ``level`` argument for IP-level socket options.
IPPROTO_IP = 0
#: ``optname`` for the IP options field (mirrors the Linux constant).
IP_OPTIONS = 4

_EPHEMERAL_PORT_START = 40_000
_connection_ids = itertools.count(1)


class SocketError(OSError):
    """Generic socket-layer failure (bad fd, wrong state, ...)."""


class PermissionDenied(SocketError):
    """Raised when a caller lacks the capability an operation requires."""


class Capability(enum.Flag):
    """Subset of Linux capabilities involved in IP header construction."""

    NONE = 0
    NET_RAW = enum.auto()
    NET_ADMIN = enum.auto()


class SocketState(enum.Enum):
    CREATED = "created"
    CONNECTED = "connected"
    CLOSED = "closed"


@dataclass
class KernelConfig:
    """Tunable kernel behaviour.

    Attributes
    ----------
    allow_unprivileged_ip_options:
        The paper's one-line patch: when True, any process may set
        ``IP_OPTIONS`` regardless of capabilities.
    enforce_setsockopt_once:
        The tag-replay hardening from §VII: when True the options of a
        socket may be written only once.
    mss:
        Maximum segment size used when fragmenting writes into packets.
    default_ttl:
        Initial TTL stamped on outbound packets.
    """

    allow_unprivileged_ip_options: bool = False
    enforce_setsockopt_once: bool = False
    mss: int = 1460
    default_ttl: int = 64


@dataclass
class NativeSocket:
    """Kernel-side state for one socket file descriptor."""

    fd: int
    owner_pid: int
    protocol: int = IPPROTO_TCP
    src_ip: str = "0.0.0.0"
    src_port: int = 0
    dst_ip: str | None = None
    dst_port: int | None = None
    state: SocketState = SocketState.CREATED
    ip_options: IPOptions = field(default_factory=IPOptions)
    options_write_count: int = 0
    created_at_ms: float = 0.0
    connected_at_ms: float | None = None
    connection_id: int | None = None
    bytes_sent: int = 0
    bytes_received: int = 0
    packets_sent: int = 0
    provenance: dict[str, Any] = field(default_factory=dict)

    @property
    def is_connected(self) -> bool:
        return self.state is SocketState.CONNECTED


class Kernel:
    """The per-device network kernel: sockets, system calls, packetisation."""

    def __init__(
        self,
        host_ip: str,
        clock: SimulatedClock | None = None,
        config: KernelConfig | None = None,
    ) -> None:
        self.host_ip = host_ip
        self.clock = clock or SimulatedClock()
        self.config = config or KernelConfig()
        self._sockets: dict[int, NativeSocket] = {}
        self._next_fd = 3  # 0-2 are stdio, as on a real system
        self._next_port = _EPHEMERAL_PORT_START
        #: Observers notified after each successful ``socket`` system call.
        self.socket_created_listeners: list[Callable[[NativeSocket], None]] = []
        #: Observers notified after each successful ``connect`` system call.
        self.socket_connected_listeners: list[Callable[[NativeSocket], None]] = []

    # -- system calls ----------------------------------------------------------

    def socket(self, owner_pid: int, protocol: int = IPPROTO_TCP) -> int:
        """The ``socket`` system call; returns a fresh file descriptor."""
        fd = self._next_fd
        self._next_fd += 1
        sock = NativeSocket(
            fd=fd,
            owner_pid=owner_pid,
            protocol=protocol,
            src_ip=self.host_ip,
            created_at_ms=self.clock.now(),
        )
        self._sockets[fd] = sock
        for listener in list(self.socket_created_listeners):
            listener(sock)
        return fd

    def connect(self, fd: int, dst_ip: str, dst_port: int) -> NativeSocket:
        """The ``connect`` system call: bind an ephemeral port and set the peer."""
        sock = self._get(fd)
        if sock.state is SocketState.CLOSED:
            raise SocketError(f"connect on closed fd {fd}")
        sock.dst_ip = dst_ip
        sock.dst_port = dst_port
        if sock.src_port == 0:
            sock.src_port = self._allocate_port()
        sock.state = SocketState.CONNECTED
        sock.connected_at_ms = self.clock.now()
        sock.connection_id = next(_connection_ids)
        for listener in list(self.socket_connected_listeners):
            listener(sock)
        return sock

    def setsockopt(
        self,
        fd: int,
        level: int,
        optname: int,
        value: IPOptions | bytes,
        capabilities: Capability = Capability.NONE,
    ) -> None:
        """The ``setsockopt`` system call, with the capability gate on IP options."""
        sock = self._get(fd)
        if level != IPPROTO_IP or optname != IP_OPTIONS:
            raise SocketError(f"unsupported socket option level={level} optname={optname}")
        privileged = bool(capabilities & (Capability.NET_RAW | Capability.NET_ADMIN))
        if not privileged and not self.config.allow_unprivileged_ip_options:
            raise PermissionDenied(
                "setting IP_OPTIONS requires CAP_NET_RAW "
                "(enable KernelConfig.allow_unprivileged_ip_options to apply "
                "the BorderPatrol kernel patch)"
            )
        if self.config.enforce_setsockopt_once and sock.options_write_count > 0:
            raise PermissionDenied(
                "IP_OPTIONS already set for this socket "
                "(tag-replay hardening is enabled)"
            )
        options = value if isinstance(value, IPOptions) else IPOptions.from_bytes(value)
        sock.ip_options = options
        sock.options_write_count += 1

    def send(
        self,
        fd: int,
        payload_size: int,
        provenance: Mapping[str, Any] | None = None,
    ) -> list[IPPacket]:
        """Write ``payload_size`` bytes; returns the resulting packets.

        Every packet of the write carries the socket's current IP
        options, which is the mechanism by which one ``setsockopt`` at
        connection time tags an entire flow.
        """
        sock = self._get(fd)
        if not sock.is_connected:
            raise SocketError(f"send on unconnected fd {fd}")
        if payload_size < 0:
            raise ValueError("payload size cannot be negative")
        merged_provenance = dict(sock.provenance)
        if provenance:
            merged_provenance.update(provenance)
        packets: list[IPPacket] = []
        remaining = payload_size
        while True:
            chunk = min(remaining, self.config.mss)
            packets.append(
                IPPacket(
                    src_ip=sock.src_ip,
                    dst_ip=sock.dst_ip or "0.0.0.0",
                    src_port=sock.src_port,
                    dst_port=sock.dst_port or 0,
                    protocol=sock.protocol,
                    payload_size=chunk,
                    options=sock.ip_options,
                    ttl=self.config.default_ttl,
                    socket_id=sock.fd,
                    connection_id=sock.connection_id,
                    created_at_ms=self.clock.now(),
                    provenance=merged_provenance,
                )
            )
            remaining -= chunk
            if remaining <= 0:
                break
        sock.bytes_sent += payload_size
        sock.packets_sent += len(packets)
        return packets

    def receive(self, fd: int, payload_size: int) -> None:
        """Account for inbound bytes delivered to this socket."""
        sock = self._get(fd)
        sock.bytes_received += payload_size

    def close(self, fd: int) -> None:
        sock = self._get(fd)
        sock.state = SocketState.CLOSED

    # -- inspection -------------------------------------------------------------

    def get_socket(self, fd: int) -> NativeSocket:
        return self._get(fd)

    def open_sockets(self) -> list[NativeSocket]:
        return [s for s in self._sockets.values() if s.state is not SocketState.CLOSED]

    def all_sockets(self) -> list[NativeSocket]:
        return list(self._sockets.values())

    # -- internals ----------------------------------------------------------------

    def _get(self, fd: int) -> NativeSocket:
        try:
            return self._sockets[fd]
        except KeyError as exc:
            raise SocketError(f"bad file descriptor: {fd}") from exc

    def _allocate_port(self) -> int:
        port = self._next_port
        self._next_port += 1
        if self._next_port > 65_535:
            self._next_port = _EPHEMERAL_PORT_START
        return port
