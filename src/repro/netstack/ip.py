"""IP packets and the RFC 791 options field.

The central on-wire mechanism in BorderPatrol is the ``IP_OPTIONS``
header field: at most 40 bytes, of which one byte holds the option type
and one byte the option length, leaving 38 bytes of payload for the
app-identifying hash and the encoded stack trace (paper §II-B2).  This
module models packets, their header options, and the size constraints
the Context Manager's encoder must respect.

Ground-truth bookkeeping
------------------------
Each packet carries a ``provenance`` mapping describing which app,
functionality and call stack actually produced it.  This field exists
only so experiments can score enforcement decisions against ground
truth; BorderPatrol components never read it (the Policy Enforcer works
exclusively from the bytes in ``options``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Iterator, Mapping

#: Maximum total size of the IP options field, per RFC 791.
MAX_IP_OPTIONS_BYTES = 40

#: Option type byte BorderPatrol uses for its context tag.  The value has the
#: "copied" flag set (bit 7) so the tag is replicated onto every fragment, and
#: uses option class 2 (debugging and measurement), mirroring how the paper
#: piggybacks on the security/measurement option space.
BORDERPATROL_OPTION_TYPE = 0x9E

#: Well-known option types (for realism in tests and router policies).
OPTION_END_OF_LIST = 0x00
OPTION_NOP = 0x01
OPTION_TIMESTAMP = 0x44
OPTION_RECORD_ROUTE = 0x07

IPPROTO_TCP = 6
IPPROTO_UDP = 17

_packet_ids = itertools.count(1)


class IPOptionError(ValueError):
    """Raised when an option would violate RFC 791 size constraints."""


@dataclass(frozen=True)
class IPOption:
    """A single IP option: one type byte, one length byte, then data."""

    option_type: int
    data: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.option_type <= 0xFF:
            raise IPOptionError(f"option type out of range: {self.option_type}")
        if self.wire_length > MAX_IP_OPTIONS_BYTES:
            raise IPOptionError(
                f"option of {self.wire_length} bytes exceeds the "
                f"{MAX_IP_OPTIONS_BYTES}-byte IP options limit"
            )

    @property
    def wire_length(self) -> int:
        """Total bytes on the wire: type + length byte + data."""
        if self.option_type in (OPTION_END_OF_LIST, OPTION_NOP):
            return 1
        return 2 + len(self.data)

    def to_bytes(self) -> bytes:
        if self.option_type in (OPTION_END_OF_LIST, OPTION_NOP):
            return bytes([self.option_type])
        return bytes([self.option_type, self.wire_length]) + self.data

    @classmethod
    def parse(cls, blob: bytes) -> tuple["IPOption", bytes]:
        """Parse one option from ``blob``; returns the option and the remainder."""
        if not blob:
            raise IPOptionError("empty option blob")
        option_type = blob[0]
        if option_type in (OPTION_END_OF_LIST, OPTION_NOP):
            return cls(option_type=option_type), blob[1:]
        if len(blob) < 2:
            raise IPOptionError("truncated option header")
        length = blob[1]
        if length < 2 or length > len(blob):
            raise IPOptionError(f"invalid option length {length}")
        return cls(option_type=option_type, data=blob[2:length]), blob[length:]


@dataclass(frozen=True)
class IPOptions:
    """The full options field of a packet: an ordered tuple of options."""

    options: tuple[IPOption, ...] = ()

    def __post_init__(self) -> None:
        if self.wire_length > MAX_IP_OPTIONS_BYTES:
            raise IPOptionError(
                f"options total {self.wire_length} bytes, exceeding the "
                f"{MAX_IP_OPTIONS_BYTES}-byte limit"
            )

    @property
    def wire_length(self) -> int:
        return sum(o.wire_length for o in self.options)

    @property
    def is_empty(self) -> bool:
        return not self.options

    def to_bytes(self) -> bytes:
        return b"".join(o.to_bytes() for o in self.options)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "IPOptions":
        options: list[IPOption] = []
        remaining = blob
        while remaining:
            option, remaining = IPOption.parse(remaining)
            if option.option_type == OPTION_END_OF_LIST:
                break
            options.append(option)
        return cls(options=tuple(options))

    @classmethod
    def single(cls, option_type: int, data: bytes) -> "IPOptions":
        return cls(options=(IPOption(option_type=option_type, data=data),))

    def find(self, option_type: int) -> IPOption | None:
        for option in self.options:
            if option.option_type == option_type:
                return option
        return None

    def without(self, option_type: int) -> "IPOptions":
        """Return a copy with every option of ``option_type`` removed."""
        return IPOptions(
            options=tuple(o for o in self.options if o.option_type != option_type)
        )

    def __iter__(self) -> Iterator[IPOption]:
        return iter(self.options)

    def __len__(self) -> int:
        return len(self.options)


@dataclass(frozen=True)
class IPPacket:
    """An IP packet as seen by the enforcement pipeline.

    Payload content is not modelled, only its size; BorderPatrol never
    inspects payloads, it operates purely on header options and the
    5-tuple.
    """

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    protocol: int = IPPROTO_TCP
    payload_size: int = 0
    options: IPOptions = field(default_factory=IPOptions)
    ttl: int = 64
    direction: str = "outbound"
    socket_id: int | None = None
    connection_id: int | None = None
    created_at_ms: float = 0.0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    provenance: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 65535:
                raise ValueError(f"port out of range: {port}")
        if self.payload_size < 0:
            raise ValueError("payload size cannot be negative")
        if self.ttl < 0:
            raise ValueError("ttl cannot be negative")

    @property
    def has_options(self) -> bool:
        return not self.options.is_empty

    @property
    def header_length(self) -> int:
        """IPv4 header length in bytes (20 + padded options)."""
        option_bytes = self.options.wire_length
        padding = (4 - option_bytes % 4) % 4
        return 20 + option_bytes + padding

    @property
    def total_length(self) -> int:
        return self.header_length + self.payload_size

    @property
    def flow_tuple(self) -> tuple[str, int, str, int, int]:
        return (self.src_ip, self.src_port, self.dst_ip, self.dst_port, self.protocol)

    def with_options(self, options: IPOptions) -> "IPPacket":
        return replace(self, options=options)

    def stripped(self) -> "IPPacket":
        """Copy of the packet with the options field cleared (sanitised)."""
        return replace(self, options=IPOptions())

    def decremented_ttl(self) -> "IPPacket":
        return replace(self, ttl=self.ttl - 1)

    def reply(self, payload_size: int) -> "IPPacket":
        """A response packet travelling the reverse direction of this one."""
        return IPPacket(
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            src_port=self.dst_port,
            dst_port=self.src_port,
            protocol=self.protocol,
            payload_size=payload_size,
            direction="inbound" if self.direction == "outbound" else "outbound",
            socket_id=self.socket_id,
            connection_id=self.connection_id,
            created_at_ms=self.created_at_ms,
            provenance=dict(self.provenance),
        )
