"""iptables / NFQUEUE mechanism.

The prototype routes packets that originate from the emulator into
netfilter queues (``iptables -j NFQUEUE``), which are then consumed by
user-space Python programs — the Policy Enforcer and the Packet
Sanitizer — built on the ``netfilterqueue`` bindings (§V-C, §V-D).
This module provides the rule table, the queue abstraction, and the
consumer protocol those components plug into.

Beyond the paper's single-queue prototype, rules support the kernel's
``--queue-balance lo:hi`` mechanism (:attr:`IptablesRule.queue_balance`):
packets are spread across the queue range by a deterministic flow hash
(:func:`flow_hash`), which is how production gateways run one
enforcement consumer per core — see
:class:`repro.netstack.sharding.ShardedEnforcer`.
"""

from __future__ import annotations

import enum
import ipaddress
import zlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Protocol

from repro.netstack.ip import IPPacket


def flow_hash(packet: IPPacket) -> int:
    """Deterministic hash of a packet's flow 5-tuple.

    Mirrors the kernel's flow distribution for ``NFQUEUE
    --queue-balance``: every packet of a flow lands on the same queue.
    CRC32 (rather than Python's randomised ``hash``) keeps the shard
    assignment stable across processes and runs.
    """
    src_ip, src_port, dst_ip, dst_port, protocol = packet.flow_tuple
    key = f"{src_ip}|{src_port}|{dst_ip}|{dst_port}|{protocol}"
    return zlib.crc32(key.encode("ascii"))


@lru_cache(maxsize=512)
def _parse_network(prefix: str) -> ipaddress.IPv4Network | ipaddress.IPv6Network:
    """Parse (and memoise) a CIDR prefix so the per-packet path never re-parses."""
    return ipaddress.ip_network(prefix, strict=False)


def compile_prefix_matcher(prefix: str | None) -> Callable[[str], bool] | None:
    """Lower ``prefix`` into a per-packet matcher, doing the parsing once.

    Normalisation (trimming, CIDR parsing) happens here, at rule-creation
    time, so :meth:`IptablesRule.matches` pays only a closure call per
    packet.  Returns None for a None prefix (no constraint); raises
    ValueError for malformed CIDR notation.
    """
    if prefix is None:
        return None
    if "/" in prefix:
        network = _parse_network(prefix)
        return lambda ip: ipaddress.ip_address(ip) in network
    trimmed = prefix.rstrip(".")
    if not trimmed:
        return lambda ip: True
    dotted = trimmed + "."
    return lambda ip: ip == trimmed or ip.startswith(dotted)


def ip_prefix_matches(prefix: str, ip: str) -> bool:
    """True when ``ip`` falls under ``prefix``, on octet or CIDR boundaries.

    ``prefix`` is either CIDR notation (``10.1.0.0/16``) or a dotted
    octet prefix (``10.1`` / ``10.1.``).  Octet prefixes only match at
    dot boundaries, so ``10.1`` matches ``10.1.0.5`` but *not*
    ``10.100.0.1`` — the naive ``startswith`` trap.
    """
    matcher = compile_prefix_matcher(prefix)
    return True if matcher is None else matcher(ip)


class Verdict(enum.Enum):
    """User-space verdict on a queued packet."""

    ACCEPT = "accept"
    DROP = "drop"


class QueueConsumer(Protocol):
    """A user-space program bound to an NFQUEUE.

    Consumers receive each packet, may mangle it (the returned packet
    replaces the queued one, mirroring ``set_payload``), and issue a
    verdict.
    """

    def process(self, packet: IPPacket) -> tuple[Verdict, IPPacket]:
        ...


@dataclass
class QueueStats:
    received: int = 0
    accepted: int = 0
    dropped: int = 0
    mangled: int = 0


class NetfilterQueue:
    """One NFQUEUE: a numbered queue with an attached user-space consumer."""

    def __init__(self, queue_num: int, latency_ms: float = 0.0) -> None:
        self.queue_num = queue_num
        #: Fixed user-space traversal cost charged per packet; the Figure 4
        #: study attributes roughly +1 ms to the Python NFQUEUE consumer.
        self.latency_ms = latency_ms
        self._consumer: QueueConsumer | None = None
        self.stats = QueueStats()

    def bind(self, consumer: QueueConsumer) -> None:
        if self._consumer is not None:
            raise RuntimeError(f"queue {self.queue_num} already has a consumer")
        self._consumer = consumer

    def unbind(self) -> None:
        self._consumer = None

    @property
    def is_bound(self) -> bool:
        return self._consumer is not None

    def handle(self, packet: IPPacket) -> tuple[Verdict, IPPacket]:
        """Deliver ``packet`` to the consumer and return its verdict.

        An unbound queue accepts everything unchanged, matching the
        kernel's fail-open behaviour when ``--queue-bypass`` is set.
        """
        self.stats.received += 1
        if self._consumer is None:
            self.stats.accepted += 1
            return Verdict.ACCEPT, packet
        verdict, result = self._consumer.process(packet)
        if result is not packet:
            self.stats.mangled += 1
        if verdict is Verdict.ACCEPT:
            self.stats.accepted += 1
        else:
            self.stats.dropped += 1
        return verdict, result


class RuleTarget(enum.Enum):
    ACCEPT = "ACCEPT"
    DROP = "DROP"
    QUEUE = "NFQUEUE"


@dataclass(frozen=True)
class IptablesRule:
    """A single iptables rule with the match fields the reproduction needs."""

    target: RuleTarget
    queue_num: int | None = None
    src_prefix: str | None = None
    dst_prefix: str | None = None
    dst_port: int | None = None
    protocol: int | None = None
    direction: str | None = None
    comment: str = ""
    #: ``NFQUEUE --queue-balance lo:hi`` — packets are spread across the
    #: inclusive queue range by flow hash instead of one ``queue_num``.
    queue_balance: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        # Compile prefixes once per rule (this also rejects malformed
        # CIDR notation at creation instead of on the first packet);
        # matches() then runs no normalisation or parsing per packet.
        object.__setattr__(self, "_src_matcher", compile_prefix_matcher(self.src_prefix))
        object.__setattr__(self, "_dst_matcher", compile_prefix_matcher(self.dst_prefix))

    def matches(self, packet: IPPacket) -> bool:
        if self._src_matcher is not None and not self._src_matcher(packet.src_ip):
            return False
        if self._dst_matcher is not None and not self._dst_matcher(packet.dst_ip):
            return False
        if self.dst_port is not None and packet.dst_port != self.dst_port:
            return False
        if self.protocol is not None and packet.protocol != self.protocol:
            return False
        if self.direction is not None and packet.direction != self.direction:
            return False
        return True


class Iptables:
    """An ordered rule chain with NFQUEUE dispatch.

    ``process`` walks the chain in order; the first matching rule decides
    the packet's fate.  ``QUEUE`` targets hand the packet to the bound
    user-space consumer, and when the consumer accepts, evaluation
    continues with the *next* rule so several queues can be chained —
    exactly how the prototype strings the Policy Enforcer and the Packet
    Sanitizer behind one another.
    """

    def __init__(self, default_target: RuleTarget = RuleTarget.ACCEPT) -> None:
        if default_target is RuleTarget.QUEUE:
            raise ValueError("default policy cannot be a queue")
        self.default_target = default_target
        self._rules: list[IptablesRule] = []
        self._queues: dict[int, NetfilterQueue] = {}

    # -- configuration -----------------------------------------------------------

    def append_rule(self, rule: IptablesRule) -> None:
        if rule.target is RuleTarget.QUEUE:
            if rule.queue_balance is not None:
                lo, hi = rule.queue_balance
                if lo > hi:
                    raise ValueError(f"invalid queue-balance range {lo}:{hi}")
                for queue_num in range(lo, hi + 1):
                    self._queues.setdefault(queue_num, NetfilterQueue(queue_num))
            elif rule.queue_num is None:
                raise ValueError("NFQUEUE rules need a queue number")
            else:
                self._queues.setdefault(rule.queue_num, NetfilterQueue(rule.queue_num))
        self._rules.append(rule)

    def queue(self, queue_num: int) -> NetfilterQueue:
        if queue_num not in self._queues:
            self._queues[queue_num] = NetfilterQueue(queue_num)
        return self._queues[queue_num]

    def bind_queue(self, queue_num: int, consumer: QueueConsumer, latency_ms: float = 0.0) -> NetfilterQueue:
        nfqueue = self.queue(queue_num)
        nfqueue.latency_ms = latency_ms
        nfqueue.bind(consumer)
        return nfqueue

    def bind_queue_balance(
        self, base_queue: int, consumers: list[QueueConsumer], latency_ms: float = 0.0
    ) -> list[NetfilterQueue]:
        """Bind one consumer per queue of a ``--queue-balance`` range."""
        return [
            self.bind_queue(base_queue + offset, consumer, latency_ms=latency_ms)
            for offset, consumer in enumerate(consumers)
        ]

    def rules(self) -> list[IptablesRule]:
        return list(self._rules)

    # -- packet processing ----------------------------------------------------------

    def process(self, packet: IPPacket) -> tuple[Verdict, IPPacket, float]:
        """Run ``packet`` through the chain.

        Returns the final verdict, the (possibly mangled) packet, and the
        user-space latency accumulated across traversed queues.
        """
        current = packet
        latency_ms = 0.0
        for rule in self._rules:
            if not rule.matches(current):
                continue
            if rule.target is RuleTarget.ACCEPT:
                return Verdict.ACCEPT, current, latency_ms
            if rule.target is RuleTarget.DROP:
                return Verdict.DROP, current, latency_ms
            if rule.queue_balance is not None:
                lo, hi = rule.queue_balance
                queue_num = lo + flow_hash(current) % (hi - lo + 1)
            else:
                queue_num = rule.queue_num  # type: ignore[assignment]
            nfqueue = self._queues[queue_num]  # type: ignore[index]
            latency_ms += nfqueue.latency_ms
            verdict, current = nfqueue.handle(current)
            if verdict is Verdict.DROP:
                return Verdict.DROP, current, latency_ms
            # Accepted by the queue: fall through to the next rule.
        if self.default_target is RuleTarget.DROP:
            return Verdict.DROP, current, latency_ms
        return Verdict.ACCEPT, current, latency_ms
