"""Simulated Linux networking substrate.

BorderPatrol's prototype touches the network stack in four places: the
``socket``/``setsockopt`` system calls (with their capability checks and
the one-line kernel patch that relaxes them), the ``IP_OPTIONS`` header
field (RFC 791), the netfilter/NFQUEUE mechanism that hands packets to
user-space policy programs, and routers that drop packets carrying IP
options per RFC 7126.  This package reimplements those mechanisms over a
simulated clock so the full mediation pipeline can be exercised
deterministically on a laptop.
"""

from repro.netstack.clock import SimulatedClock
from repro.netstack.ip import (
    IPOption,
    IPOptions,
    IPPacket,
    IPOptionError,
    IPPROTO_TCP,
    IPPROTO_UDP,
    MAX_IP_OPTIONS_BYTES,
    BORDERPATROL_OPTION_TYPE,
)
from repro.netstack.dns import DnsRegistry, DnsError
from repro.netstack.sockets import (
    Capability,
    KernelConfig,
    Kernel,
    NativeSocket,
    SocketState,
    SocketError,
    PermissionDenied,
    IPPROTO_IP,
    IP_OPTIONS,
)
from repro.netstack.tcp import FlowKey, Flow, FlowTable
from repro.netstack.netfilter import (
    Verdict,
    NetfilterQueue,
    IptablesRule,
    Iptables,
    QueueConsumer,
    flow_hash,
    ip_prefix_matches,
)

# NOTE: repro.netstack.sharding (ShardedEnforcer) is intentionally NOT
# imported here — it builds on repro.core.policy_enforcer, which imports
# this package's submodules, so a re-export would create an import
# cycle.  Import it as ``from repro.netstack.sharding import
# ShardedEnforcer``.
from repro.netstack.routing import Router, RouterPolicy, Link, RoutingError

__all__ = [
    "SimulatedClock",
    "IPOption",
    "IPOptions",
    "IPPacket",
    "IPOptionError",
    "IPPROTO_TCP",
    "IPPROTO_UDP",
    "MAX_IP_OPTIONS_BYTES",
    "BORDERPATROL_OPTION_TYPE",
    "DnsRegistry",
    "DnsError",
    "Capability",
    "KernelConfig",
    "Kernel",
    "NativeSocket",
    "SocketState",
    "SocketError",
    "PermissionDenied",
    "IPPROTO_IP",
    "IP_OPTIONS",
    "FlowKey",
    "Flow",
    "FlowTable",
    "Verdict",
    "NetfilterQueue",
    "IptablesRule",
    "Iptables",
    "QueueConsumer",
    "flow_hash",
    "ip_prefix_matches",
    "Router",
    "RouterPolicy",
    "Link",
    "RoutingError",
]
