"""A miniature DNS used by apps, libraries and the on-network baseline.

Third-party libraries and app backends are reached by DNS name; the
on-network enforcement baseline in the case studies (§VI-C) blocks
traffic by destination DNS name or IP address, so the registry keeps the
name-to-address mapping both ways.  Several names may resolve to the
same address (CDN sharing), which is one of the mechanisms that makes
pure network-level enforcement too coarse.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class DnsError(KeyError):
    """Raised when a name cannot be resolved or an address reverse-mapped."""


@dataclass
class DnsRegistry:
    """Bidirectional registry of DNS names and IPv4 addresses."""

    _name_to_ip: dict[str, str] = field(default_factory=dict)
    _ip_to_names: dict[str, set[str]] = field(default_factory=dict)
    _next_octet: int = 1

    def register(self, name: str, ip: str | None = None) -> str:
        """Register ``name``; allocate a fresh address when ``ip`` is omitted."""
        name = name.lower().strip(".")
        if not name:
            raise ValueError("empty DNS name")
        if name in self._name_to_ip:
            existing = self._name_to_ip[name]
            if ip is not None and ip != existing:
                raise ValueError(f"{name} already registered to {existing}")
            return existing
        address = ip or self._allocate_ip()
        self._name_to_ip[name] = address
        self._ip_to_names.setdefault(address, set()).add(name)
        return address

    def _allocate_ip(self) -> str:
        # Allocate from the TEST-NET-3 and documentation ranges, then a
        # synthetic public-looking block if those run out.
        index = self._next_octet
        self._next_octet += 1
        third, fourth = divmod(index, 254)
        return f"203.0.{113 + third}.{fourth + 1}"

    def resolve(self, name: str) -> str:
        """Forward lookup; raises :class:`DnsError` for unknown names."""
        try:
            return self._name_to_ip[name.lower().strip(".")]
        except KeyError as exc:
            raise DnsError(f"unknown DNS name: {name}") from exc

    def reverse(self, ip: str) -> set[str]:
        """All names known to point at ``ip``."""
        try:
            return set(self._ip_to_names[ip])
        except KeyError as exc:
            raise DnsError(f"no names registered for {ip}") from exc

    def knows_name(self, name: str) -> bool:
        return name.lower().strip(".") in self._name_to_ip

    def knows_ip(self, ip: str) -> bool:
        return ip in self._ip_to_names

    def names(self) -> list[str]:
        return sorted(self._name_to_ip)

    def addresses(self) -> list[str]:
        return sorted(self._ip_to_names)

    def __len__(self) -> int:
        return len(self._name_to_ip)
