"""On-device, app-granularity enforcement (CRePE / ADM style).

Existing BYOD device-management frameworks restrict *which apps* may
run or use the network, but cannot restrict individual libraries or
methods inside an allowed app (paper §VIII "On-device enforcement").
This baseline models that capability level: decisions are taken per
package, using the ground-truth provenance a device-resident agent
would have (it runs on the device, so it knows which app owns each
socket), but with no visibility below the app boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netstack.ip import IPPacket
from repro.netstack.netfilter import Verdict


@dataclass
class AppLevelStats:
    packets_seen: int = 0
    packets_dropped: int = 0
    packets_allowed: int = 0


class AppLevelEnforcer:
    """NFQUEUE-compatible consumer enforcing a per-app allow/deny list."""

    def __init__(
        self,
        blocked_packages: set[str] | None = None,
        allowed_packages: set[str] | None = None,
    ) -> None:
        if blocked_packages and allowed_packages:
            raise ValueError("configure either a blocklist or an allowlist, not both")
        self.blocked_packages = set(blocked_packages or set())
        self.allowed_packages = set(allowed_packages or set()) or None
        self.stats = AppLevelStats()

    def process(self, packet: IPPacket) -> tuple[Verdict, IPPacket]:
        self.stats.packets_seen += 1
        package = str(packet.provenance.get("package", ""))
        if self._is_blocked(package):
            self.stats.packets_dropped += 1
            return Verdict.DROP, packet
        self.stats.packets_allowed += 1
        return Verdict.ACCEPT, packet

    def _is_blocked(self, package: str) -> bool:
        if self.allowed_packages is not None:
            return package not in self.allowed_packages
        return package in self.blocked_packages

    def block_package(self, package: str) -> None:
        if self.allowed_packages is not None:
            raise ValueError("enforcer is in allowlist mode")
        self.blocked_packages.add(package)
