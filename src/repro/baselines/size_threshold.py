"""Upload detection by outbound flow volume.

Traditional filtering appliances approximate "this flow is an upload"
by watching for continuous outbound transfers exceeding a size
threshold.  The paper's discussion (§VII) points out two failure modes
reproduced here: legitimate single-flow requests span 36 bytes to
480 MB, so any threshold misclassifies, and an app can evade the
trigger entirely by fragmenting its upload across several sockets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netstack.ip import IPPacket
from repro.netstack.netfilter import Verdict
from repro.netstack.tcp import FlowKey


@dataclass
class ThresholdStats:
    packets_seen: int = 0
    packets_dropped: int = 0
    flows_tracked: int = 0
    flows_flagged: int = 0


class FlowSizeThresholdFilter:
    """NFQUEUE consumer dropping flows whose outbound volume exceeds a threshold."""

    def __init__(self, threshold_bytes: int = 1_000_000) -> None:
        if threshold_bytes <= 0:
            raise ValueError("threshold must be positive")
        self.threshold_bytes = threshold_bytes
        self.stats = ThresholdStats()
        self._flow_bytes: dict[FlowKey, int] = {}
        self._flagged: set[FlowKey] = set()

    def process(self, packet: IPPacket) -> tuple[Verdict, IPPacket]:
        self.stats.packets_seen += 1
        key = FlowKey.from_packet(packet)
        if key not in self._flow_bytes:
            self._flow_bytes[key] = 0
            self.stats.flows_tracked += 1
        self._flow_bytes[key] += packet.payload_size
        if self._flow_bytes[key] > self.threshold_bytes:
            if key not in self._flagged:
                self._flagged.add(key)
                self.stats.flows_flagged += 1
            self.stats.packets_dropped += 1
            return Verdict.DROP, packet
        return Verdict.ACCEPT, packet

    def flow_volume(self, key: FlowKey) -> int:
        return self._flow_bytes.get(key, 0)

    def flagged_flows(self) -> set[FlowKey]:
        return set(self._flagged)
