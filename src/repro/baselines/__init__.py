"""Baseline enforcement mechanisms BorderPatrol is compared against.

The case studies (§VI-C) and the related-work discussion contrast
BorderPatrol with what an enterprise can do *without* app context:

* :class:`~repro.baselines.ip_dns_filter.OnNetworkFilter` — block or
  allow traffic purely by destination IP address / DNS name, the
  capability of conventional firewalls and the "on-network enforcement"
  strawman in both case studies.
* :class:`~repro.baselines.size_threshold.FlowSizeThresholdFilter` —
  classify uploads by outbound flow volume, the traditional-appliance
  heuristic the discussion (§VII) shows to be unreliable.
* :class:`~repro.baselines.ondevice.AppLevelEnforcer` — CRePE/ADM-style
  on-device policy: allow or block entire apps (per-package
  granularity), with no visibility into which library or method inside
  the app generated the traffic.
"""

from repro.baselines.ip_dns_filter import OnNetworkFilter
from repro.baselines.size_threshold import FlowSizeThresholdFilter
from repro.baselines.ondevice import AppLevelEnforcer

__all__ = ["OnNetworkFilter", "FlowSizeThresholdFilter", "AppLevelEnforcer"]
