"""On-network enforcement by destination address or DNS name.

This is the conventional firewall capability the case studies compare
against: it can only see the information available at the network layer
(addresses, names, ports), so when an app uses the same endpoint for a
desirable and an undesirable purpose it "can only block both or neither
of these functionalities" (paper §VI-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netstack.dns import DnsRegistry
from repro.netstack.ip import IPPacket
from repro.netstack.netfilter import Verdict


@dataclass
class FilterStats:
    packets_seen: int = 0
    packets_dropped: int = 0
    packets_allowed: int = 0


class OnNetworkFilter:
    """NFQUEUE consumer blocking traffic by destination IP or DNS name."""

    def __init__(
        self,
        dns: DnsRegistry | None = None,
        blocked_ips: set[str] | None = None,
        blocked_names: set[str] | None = None,
        blocked_ports: set[int] | None = None,
    ) -> None:
        self.dns = dns
        self.blocked_ips: set[str] = set(blocked_ips or set())
        self.blocked_names: set[str] = {n.lower() for n in (blocked_names or set())}
        self.blocked_ports: set[int] = set(blocked_ports or set())
        self.stats = FilterStats()
        self._resolve_blocked_names()

    def _resolve_blocked_names(self) -> None:
        """Pre-resolve blocked DNS names so matching happens on addresses."""
        if self.dns is None:
            return
        for name in self.blocked_names:
            if self.dns.knows_name(name):
                self.blocked_ips.add(self.dns.resolve(name))

    # -- rule management ------------------------------------------------------------

    def block_ip(self, ip: str) -> None:
        self.blocked_ips.add(ip)

    def block_name(self, name: str) -> None:
        self.blocked_names.add(name.lower())
        if self.dns is not None and self.dns.knows_name(name):
            self.blocked_ips.add(self.dns.resolve(name))

    def unblock_ip(self, ip: str) -> None:
        self.blocked_ips.discard(ip)

    # -- QueueConsumer interface --------------------------------------------------------

    def process(self, packet: IPPacket) -> tuple[Verdict, IPPacket]:
        self.stats.packets_seen += 1
        if self._is_blocked(packet):
            self.stats.packets_dropped += 1
            return Verdict.DROP, packet
        self.stats.packets_allowed += 1
        return Verdict.ACCEPT, packet

    def _is_blocked(self, packet: IPPacket) -> bool:
        if packet.dst_ip in self.blocked_ips:
            return True
        if packet.dst_port in self.blocked_ports:
            return True
        if self.dns is not None and self.blocked_names and self.dns.knows_ip(packet.dst_ip):
            if self.dns.reverse(packet.dst_ip) & self.blocked_names:
                return True
        return False
