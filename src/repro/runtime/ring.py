"""Shared-memory packet ring for the persistent worker pools.

Pool workers are long-lived forks fed packet batches over pipes.  A
pickled :class:`~repro.netstack.ip.IPPacket` costs several hundred
bytes and a full pickle/unpickle round trip per packet; at fleet replay
sizes that serialization is the dominant IPC cost.  The ring removes it
from the hot path: the parent creates one anonymous *shared* ``mmap``
per worker **before** the first fork, so parent and child address the
same pages.  Batches are struct-packed into a region of the ring and
referenced over the command pipe as a tiny ``(offset, length, count)``
tuple; the child decodes packets straight out of the mapping.

Because each pool worker also survives crashes by respawning a fresh
fork from the *parent* (which keeps the mapping open), a respawned
worker inherits the very same pages — pending batch regions stay valid
across a respawn and can be replayed by reference.

Allocation is a bump cursor with FIFO reclamation: the parent frees a
region exactly when it harvests the batch's result, and per-worker
pipes deliver results in submission order, so at most
``max_inflight`` small regions are ever live.  When a batch does not
fit (ring full, oversized batch, or a packet the codec cannot
round-trip), the caller falls back to pickling that batch — the ring is
an optimization, never a correctness dependency.

What the codec carries
----------------------
Everything enforcement and audit can observe: the 5-tuple, ttl,
direction, payload size, socket/connection ids, creation timestamp,
packet id, and the raw ``options`` bytes (the BorderPatrol context tag
travels inside them).  ``provenance`` is deliberately dropped: it is
ground-truth bookkeeping the Policy Enforcer never reads, and the
parent keeps the original packet objects for result stitching, so the
decoded copies only ever feed the worker's enforcer.
"""

from __future__ import annotations

import mmap
import struct
from collections import deque

from repro.netstack.ip import IPOptions, IPPacket, OPTION_END_OF_LIST

#: Default per-worker ring capacity.  A packet encodes to ~80 bytes, so
#: 1 MiB holds ~13k packets — several bursts of inflight headroom.
DEFAULT_RING_BYTES = 1 << 20

# Fixed-width prefix of one encoded packet:
#   packet_id u64 | created_at_ms f64 | payload_size u32 |
#   src_port u16 | dst_port u16 | ttl u16 | protocol u8 | flags u8
_FIXED = struct.Struct("<QdIHHHBB")
_ID64 = struct.Struct("<q")
_COUNT = struct.Struct("<I")

_FLAG_SOCKET = 1
_FLAG_CONNECTION = 2


class RingCodecError(ValueError):
    """The packet cannot be round-tripped by the ring codec."""


def _pack_str(value: str) -> bytes:
    raw = value.encode("utf-8")
    if len(raw) > 0xFF:
        raise RingCodecError(f"string field of {len(raw)} bytes exceeds codec limit")
    return bytes([len(raw)]) + raw


def encode_packet(packet: IPPacket) -> bytes:
    """Struct-pack one packet; raises :class:`RingCodecError` when the
    packet cannot round-trip (the caller then pickles instead).

    The one structural hazard is an END_OF_LIST option:
    ``IPOptions.from_bytes`` stops at it (per RFC 791), so a tag behind
    an EOL would silently vanish in the decoded copy — refuse rather
    than risk a verdict change.
    """
    if not 0 <= packet.ttl <= 0xFFFF or not 0 <= packet.payload_size <= 0xFFFFFFFF:
        raise RingCodecError("ttl/payload_size out of codec range")
    if not 0 <= packet.protocol <= 0xFF:
        raise RingCodecError("protocol out of codec range")
    if not 0 <= packet.src_port <= 0xFFFF or not 0 <= packet.dst_port <= 0xFFFF:
        raise RingCodecError("port out of codec range")
    if not 0 <= packet.packet_id <= 0xFFFFFFFFFFFFFFFF:
        raise RingCodecError("packet_id out of codec range")
    flags = 0
    tail = b""
    for option in packet.options:
        if option.option_type == OPTION_END_OF_LIST:
            raise RingCodecError("EOL option does not survive an options round trip")
    option_bytes = packet.options.to_bytes()
    if len(option_bytes) > 0xFF:
        raise RingCodecError("options field exceeds codec limit")
    try:
        if packet.socket_id is not None:
            flags |= _FLAG_SOCKET
            tail += _ID64.pack(packet.socket_id)
        if packet.connection_id is not None:
            flags |= _FLAG_CONNECTION
            tail += _ID64.pack(packet.connection_id)
        fixed = _FIXED.pack(
            packet.packet_id,
            packet.created_at_ms,
            packet.payload_size,
            packet.src_port,
            packet.dst_port,
            packet.ttl,
            packet.protocol,
            flags,
        )
    except struct.error as exc:
        # Anything the explicit checks missed (socket/connection ids
        # beyond i64, non-numeric fields): refuse so the caller pickles.
        raise RingCodecError(f"packet field outside codec range: {exc}") from exc
    return (
        fixed
        + tail
        + _pack_str(packet.src_ip)
        + _pack_str(packet.dst_ip)
        + _pack_str(packet.direction)
        + bytes([len(option_bytes)])
        + option_bytes
    )


def encode_batch(packets: list[IPPacket]) -> bytes:
    """``count`` prefix plus the packets back to back."""
    return _COUNT.pack(len(packets)) + b"".join(encode_packet(p) for p in packets)


def _read_str(buf: bytes, offset: int) -> tuple[str, int]:
    length = buf[offset]
    offset += 1
    return buf[offset : offset + length].decode("utf-8"), offset + length


def decode_batch(buf: bytes) -> list[IPPacket]:
    """Inverse of :func:`encode_batch` (runs in the worker)."""
    (count,) = _COUNT.unpack_from(buf, 0)
    offset = _COUNT.size
    packets: list[IPPacket] = []
    for _ in range(count):
        (
            packet_id,
            created_at_ms,
            payload_size,
            src_port,
            dst_port,
            ttl,
            protocol,
            flags,
        ) = _FIXED.unpack_from(buf, offset)
        offset += _FIXED.size
        socket_id = connection_id = None
        if flags & _FLAG_SOCKET:
            (socket_id,) = _ID64.unpack_from(buf, offset)
            offset += _ID64.size
        if flags & _FLAG_CONNECTION:
            (connection_id,) = _ID64.unpack_from(buf, offset)
            offset += _ID64.size
        src_ip, offset = _read_str(buf, offset)
        dst_ip, offset = _read_str(buf, offset)
        direction, offset = _read_str(buf, offset)
        option_length = buf[offset]
        offset += 1
        options = IPOptions.from_bytes(buf[offset : offset + option_length])
        offset += option_length
        packets.append(
            IPPacket(
                src_ip=src_ip,
                dst_ip=dst_ip,
                src_port=src_port,
                dst_port=dst_port,
                protocol=protocol,
                payload_size=payload_size,
                options=options,
                ttl=ttl,
                direction=direction,
                socket_id=socket_id,
                connection_id=connection_id,
                created_at_ms=created_at_ms,
                packet_id=packet_id,
            )
        )
    return packets


class PacketRing:
    """One worker's shared batch buffer: bump allocator, FIFO reclaim.

    Must be constructed in the parent *before* the worker forks so both
    sides map the same anonymous pages.  ``try_write`` returns a
    ``(offset, length)`` region or ``None`` when the batch does not fit
    right now; ``release`` frees the region once its result has been
    harvested.  Single producer (the parent), single consumer (the
    worker) — no locking needed because a region is immutable between
    write and release.
    """

    def __init__(self, size: int = DEFAULT_RING_BYTES) -> None:
        if size < 0:
            raise ValueError("ring size cannot be negative")
        self.size = size
        self._map = mmap.mmap(-1, size) if size else None
        self._cursor = 0
        self._inflight: deque[tuple[int, int]] = deque()

    def try_write(self, blob: bytes) -> tuple[int, int] | None:
        if self._map is None or len(blob) > self.size or not blob:
            return None
        start = self._cursor
        if start + len(blob) > self.size:
            start = 0  # wrap: the tail is too short, start over
        end = start + len(blob)
        for held_start, held_end in self._inflight:
            if start < held_end and held_start < end:
                return None  # would overwrite an unharvested batch
        self._map[start:end] = blob
        self._cursor = end
        self._inflight.append((start, end))
        return (start, len(blob))

    def read(self, region: tuple[int, int]) -> bytes:
        if self._map is None:
            raise RingCodecError("ring is disabled")
        offset, length = region
        return bytes(self._map[offset : offset + length])

    def release(self, region: tuple[int, int]) -> None:
        offset, length = region
        try:
            self._inflight.remove((offset, offset + length))
        except ValueError:
            pass  # double release is harmless

    @property
    def inflight_regions(self) -> int:
        return len(self._inflight)

    def close(self) -> None:
        if self._map is not None:
            self._map.close()
            self._map = None
        self._inflight.clear()
