"""Persistent worker-pool runtime for shard- and gateway-level parallelism.

The ``process`` shard backend validates the parallel model but pays a
full ``fork()`` plus result-pipe setup for *every* batch, and loses each
batch's flow-cache warm-up with the worker.  This module is the
long-lived alternative — the multiprocessing worker-pool idiom of
SNIPPETS.md Snippet 1: workers are forked **once**, each holding its own
enforcer (compiled policy, flow cache) and, when a control store is
attached, its own :class:`~repro.core.policy_store.GatewayReplica`
shadow state; packet batches stream to them over pipes (payloads ride a
shared-memory ring, see :mod:`repro.runtime.ring`), and policy changes
are **pushed as delta-log records** — the same surgical recompile path
the in-process enforcer uses — instead of re-forking or re-pickling
snapshots.

Ordering and verdict identity
-----------------------------
Each worker's command pipe is FIFO, so a batch submitted before a delta
is enforced at the pre-delta version and a batch submitted after it at
the post-delta version — exactly the serial interleaving.  Flow-hash
routing pins every flow to one worker, workers process their group in
input order, and verdicts are stitched back by position: the pool is
verdict-identical to the sequential backend by construction, and the
conformance tests assert it packet-for-packet.

Pipelining
----------
:meth:`WorkerPool.submit` returns immediately with a burst token;
:meth:`WorkerPool.collect` harvests it.  Between the two the parent can
commit policy edits, drain telemetry, or catch up replicas while the
workers enforce — the overlap the burst loop of the fleet experiment
exploits.  Multiple bursts may be in flight (bounded by
``max_inflight`` per worker, which also keeps the two pipe directions
from ever filling simultaneously).

Crash recovery
--------------
A worker death (EOF/EPIPE) is detected during pumping: the result pipe
is drained first (results sent before the crash still count), then a
fresh fork is spawned from the parent's *current* state and every
unacknowledged batch is replayed to it, so no packet is silently
dropped.  Replayed batches enforce at the respawned worker's (current)
policy version — under live churn a crash can therefore surface
post-edit verdicts for a pre-edit batch, the same semantics as the
fork-per-batch backend.  Crash/respawn/replay counters surface in
:class:`~repro.core.policy_enforcer.EnforcerStats`.

Exactly-once accounting
-----------------------
Packet verdicts, counter deltas and audit records are reported per
batch and folded into the owning parent shard/gateway, so packet-level
stats and telemetry read exactly as if the batch had run in process.
Control-plane counters (``policy_deltas_applied`` …) are the one
honest divergence: parent *and* worker each really apply every delta,
so a pool-backed enforcer reports the genuine N+1 applications.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait

from repro.core.policy_enforcer import EnforcerStats
from repro.core.policy_store import DeltaLogRecord, GatewayReplica
from repro.netstack.ip import IPPacket
from repro.obs.instrument import EnforcerObservability
from repro.obs.trace import BatchTrace
from repro.netstack.netfilter import Verdict, flow_hash
from repro.runtime.ring import (
    DEFAULT_RING_BYTES,
    PacketRing,
    RingCodecError,
    decode_batch,
    encode_batch,
)

logger = logging.getLogger(__name__)

#: How many bursts one worker may hold unharvested before ``submit``
#: blocks on harvesting.  Bounding this keeps ring regions reclaimable
#: and prevents the cmd/result pipes from filling at the same time.
DEFAULT_MAX_INFLIGHT = 8


class PoolUnavailableError(RuntimeError):
    """The platform cannot run a persistent pool (no fork start method)."""


class WorkerPoolError(RuntimeError):
    """A pool protocol violation or unrecoverable worker failure."""


def fork_available() -> bool:
    """Whether this platform supports the fork start method the pools
    (and the fork-per-batch backend) require."""
    return "fork" in multiprocessing.get_all_start_methods()


def fork_context():
    if not fork_available():
        raise PoolUnavailableError(
            "persistent worker pools need the fork start method; "
            "use the sequential backend on this platform"
        )
    return multiprocessing.get_context("fork")


# -- worker-side seeds ---------------------------------------------------------------


class _BareSeed:
    """A worker holding only an enforcer: full-sync pushes, no delta replay."""

    def __init__(self, enforcer) -> None:
        self.enforcer = enforcer

    def apply_record(self, record: DeltaLogRecord) -> None:
        raise WorkerPoolError(
            "worker has no shadow store; the parent must push full syncs"
        )


class _ReplicaSeed:
    """A worker holding a :class:`GatewayReplica`: records replay through
    the shadow store, fanning the same surgical delta the head saw, with
    every fingerprint verified in the worker itself."""

    def __init__(self, replica: GatewayReplica) -> None:
        self.replica = replica
        self.enforcer = replica.enforcer

    def apply_record(self, record: DeltaLogRecord) -> None:
        self.replica.apply_delta(record)


class _ShardSeedSpec:
    """Parent-side recipe for one shard worker; ``materialize`` runs in
    the child, so respawns always seed from the parent's current state
    and the replica's construction-time full sync never touches the
    parent shard."""

    def __init__(self, enforcer, store, name: str, obs_config=None) -> None:
        self.enforcer = enforcer
        self.store = store
        self.name = name
        self.obs_config = obs_config

    def version(self) -> int:
        if self.store is not None:
            return self.store.version
        return getattr(self.enforcer, "policy_version", 0)

    def materialize(self):
        if self.store is None:
            return _BareSeed(self.enforcer)
        return _ReplicaSeed(GatewayReplica(self.enforcer, self.store, name=self.name))


class _GatewaySeedSpec:
    """Parent-side recipe for one gateway worker: fork the fleet's own
    replica (enforcer + shadow store), which is current by definition."""

    def __init__(self, replica: GatewayReplica, obs_config=None) -> None:
        self.replica = replica
        self.obs_config = obs_config

    def version(self) -> int:
        return self.replica.version

    def materialize(self):
        return _ReplicaSeed(self.replica)


def _enforcement_units(enforcer) -> list:
    """The :class:`PolicyEnforcer` instances behind ``enforcer`` (its
    shards for a sequential :class:`ShardedEnforcer`, itself otherwise)."""
    shards = getattr(enforcer, "shards", None)
    return list(shards) if shards is not None else [enforcer]


def _aggregate_stats(units) -> EnforcerStats:
    total = EnforcerStats()
    for unit in units:
        total.merge(unit.stats)
    return total


def _install_capture(units, captured: list) -> None:
    """Redirect every unit's record/sink hooks into ``captured``.

    Same contract as the fork-per-batch worker: the worker's in-fork
    sink state dies with it, so records are piped back for the parent
    to republish exactly once; ``keep_records`` is NOT flipped because
    it steers the decision path (and therefore stats) — see
    ``repro.netstack.sharding._shard_worker``.
    """
    for unit in units:
        if unit.keep_records:
            unit.records = captured
            unit._sink_publish = None
        elif unit.audit_sink is not None:
            unit._sink_publish = lambda record, _source="": captured.append(record)


def _worker_main(spec, ring: PacketRing, cmd, out) -> None:
    """One pool worker's loop: enforce batches, apply pushed deltas."""
    try:
        seed = spec.materialize()
        units = _enforcement_units(seed.enforcer)
        captured: list = []
        _install_capture(units, captured)
        # Worker-side observability: attach a worker-local registry whose
        # drained deltas ride home on batch/flush replies, so a respawned
        # worker is instrumented identically to the one it replaced.
        obs_config = getattr(spec, "obs_config", None)
        registry = None
        if obs_config is not None:
            registry = obs_config.build_registry()
            enforcer_obs = EnforcerObservability(registry, obs_config.sample_every)
            for unit in units:
                unit.attach_observability(enforcer_obs)
        # Baseline AFTER materialization: a replica seed's construction
        # full-sync must not leak into the first batch's stats delta.
        baseline = _aggregate_stats(units)
        while True:
            try:
                message = cmd.recv()
            except (EOFError, OSError):
                break
            received = time.perf_counter()
            kind = message[0]
            try:
                if kind == "batch":
                    _, seq, mode, payload = message
                    if mode == "ring":
                        packets = decode_batch(ring.read(payload))
                    else:
                        packets = payload
                    started = time.perf_counter()
                    results = [seed.enforcer.process(packet) for packet in packets]
                    elapsed = time.perf_counter() - started
                    current = _aggregate_stats(units)
                    obs_payload = None
                    if obs_config is not None:
                        delta = registry.drain() if registry.enabled else None
                        obs_payload = (received, delta)
                    out.send(
                        (
                            "batch",
                            seq,
                            elapsed,
                            [verdict.value for verdict, _ in results],
                            current.delta_since(baseline),
                            list(captured),
                            obs_payload,
                        )
                    )
                    baseline = current
                    captured.clear()
                elif kind == "record":
                    seed.apply_record(DeltaLogRecord.from_payload(message[1]))
                elif kind == "sync":
                    seed.enforcer.sync_policy(message[1], message[2])
                elif kind == "set_policy":
                    seed.enforcer.set_policy(message[1])
                elif kind == "invalidate":
                    seed.enforcer.invalidate_caches()
                elif kind == "flush":
                    current = _aggregate_stats(units)
                    obs_payload = None
                    if obs_config is not None:
                        delta = registry.drain() if registry.enabled else None
                        obs_payload = (received, delta)
                    out.send(
                        (
                            "flush",
                            message[1],
                            current.delta_since(baseline),
                            list(captured),
                            obs_payload,
                        )
                    )
                    baseline = current
                    captured.clear()
                elif kind == "die":
                    os._exit(23)  # chaos hook: simulate a hard crash
                elif kind == "exit":
                    break
                else:
                    raise WorkerPoolError(f"unknown pool message kind {kind!r}")
            except Exception as exc:  # surface, then die: the parent respawns
                # A batch failure names its seq so the parent can pop the
                # poisoned batch instead of replaying it into the respawn
                # (and crashing the replacement forever).
                failing_seq = message[1] if kind == "batch" else None
                try:
                    out.send(("error", f"{type(exc).__name__}: {exc}", failing_seq))
                except Exception:
                    pass
                break
    finally:
        try:
            out.close()
        except Exception:
            pass


# -- parent-side bookkeeping ---------------------------------------------------------


@dataclass
class PoolBurst:
    """One harvested burst: verdicts in input order plus the measured cost."""

    results: list[tuple[Verdict, IPPacket]]
    worker_elapsed_s: list[float]
    worker_packet_counts: list[int]
    #: Submit-to-harvest wall-clock, queueing and IPC included — the
    #: number that makes amortized per-batch IPC cost visible next to
    #: the workers' own ``worker_elapsed_s`` compute time.
    wall_s: float
    #: Batches replayed into this burst after worker crashes.
    replayed_batches: int = 0

    @property
    def parallel_wall_s(self) -> float:
        return max(self.worker_elapsed_s, default=0.0)

    @property
    def packets(self) -> int:
        return len(self.results)


class _PendingBatch:
    __slots__ = (
        "token",
        "seq",
        "positions",
        "packets",
        "mode",
        "payload",
        "region",
        "spans",
        "send_ts",
    )

    def __init__(self, token, seq, positions, packets, mode, payload, region, spans=None):
        self.token = token
        self.seq = seq
        self.positions = positions
        self.packets = packets
        self.mode = mode
        self.payload = payload
        self.region = region
        #: Parent-side encode spans {stage: (start, duration)} when
        #: tracing is active, else None.
        self.spans = spans
        #: perf_counter stamp of the (latest) send; replays re-stamp.
        self.send_ts = 0.0


class _Burst:
    __slots__ = (
        "token",
        "packets",
        "results",
        "remaining",
        "elapsed",
        "counts",
        "started",
        "wall_s",
        "replayed",
        "failed",
    )

    def __init__(self, token, packets, groups, num_workers):
        self.token = token
        self.packets = packets
        self.results = [None] * len(packets)
        #: Worker index -> outstanding batch count.  ``submit`` finalizes
        #: every count before the first dispatch (a scheduler may chunk
        #: one worker's group into several batches, and a pump inside
        #: dispatch can complete early chunks of this very burst).
        self.remaining: dict[int, int] = {}
        self.elapsed = [0.0] * num_workers
        self.counts = [len(group) for group in groups]
        self.started = time.perf_counter()
        self.wall_s = 0.0
        self.replayed = 0
        #: Set when a worker reported a deterministic enforcement error
        #: for one of this burst's batches; raised at ``collect``.
        self.failed: WorkerPoolError | None = None


class _PoolWorker:
    __slots__ = (
        "index",
        "ring",
        "process",
        "cmd",
        "results",
        "pending",
        "next_seq",
        "version",
        "shadow_stale",
        "flushed",
        "incarnation",
    )

    def __init__(self, index: int, ring: PacketRing):
        self.index = index
        self.ring = ring
        self.process = None
        self.cmd = None
        self.results = None
        self.pending: deque[_PendingBatch] = deque()
        self.next_seq = 0
        self.version = 0
        self.shadow_stale = False
        self.flushed = None
        #: Bumped at every (re)spawn; lets a caller that pumped mid-path
        #: detect that a revive replayed the work it was about to send.
        self.incarnation = 0


class WorkerPool:
    """N long-lived fork workers behind a flow-hash router.

    ``seed_specs[i]`` builds worker *i*'s state (called in the child at
    every spawn and respawn, so it always reflects the parent's current
    state); ``route(packet)`` picks the worker; ``fold(index,
    stats_delta, records)`` folds a harvested batch into the owning
    parent-side shard or gateway.
    """

    def __init__(
        self,
        seed_specs,
        route,
        fold,
        ring_bytes: int = DEFAULT_RING_BYTES,
        name: str = "pool",
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        obs=None,
    ) -> None:
        if not seed_specs:
            raise ValueError("a worker pool needs at least one seed")
        self._ctx = fork_context()
        self._specs = list(seed_specs)
        self._route = route
        self._fold = fold
        self._name = name
        self._max_inflight = max(1, max_inflight)
        #: Optional :class:`~repro.obs.instrument.RuntimeObservability`.
        #: Span capture (perf_counter stamps around encode/send/fold) is
        #: additionally gated on ``obs.enabled`` so a null-registry
        #: attach exercises only the no-op instrument calls.
        self._obs = obs
        self._trace_active = obs is not None and obs.enabled
        self._obs_counts = obs.bind_pool(name) if obs is not None else None
        self._has_shadows = False
        self._closed = False
        self._bursts: dict[int, _Burst] = {}
        self._next_token = 0
        #: Pool-runtime counters (the ``pool_*`` EnforcerStats fields);
        #: owners merge this into their aggregate view.
        self.stats = EnforcerStats()
        self._workers = [
            _PoolWorker(index, PacketRing(ring_bytes)) for index in range(len(self._specs))
        ]
        try:
            for worker in self._workers:
                self._spawn(worker)
        except BaseException:
            self.close()
            raise

    # -- lifecycle ---------------------------------------------------------------------

    @property
    def num_workers(self) -> int:
        return len(self._workers)

    @property
    def outstanding(self) -> int:
        """Bursts submitted but not yet collected."""
        return len(self._bursts)

    def worker_versions(self) -> list[int]:
        """The policy version each worker has been pushed to (parent view)."""
        return [worker.version for worker in self._workers]

    def _spawn(self, worker: _PoolWorker) -> None:
        spec = self._specs[worker.index]
        cmd_recv, cmd_send = self._ctx.Pipe(duplex=False)
        out_recv, out_send = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(spec, worker.ring, cmd_recv, out_send),
            name=f"{self._name}-w{worker.index}",
            daemon=True,
        )
        process.start()
        cmd_recv.close()
        out_send.close()
        worker.process = process
        worker.cmd = cmd_send
        worker.results = out_recv
        worker.next_seq = 0
        worker.version = spec.version()
        worker.shadow_stale = False
        worker.flushed = "spawned"
        worker.incarnation += 1

    def close(self) -> None:
        """Stop every worker and release rings/pipes.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            if worker.cmd is not None:
                try:
                    worker.cmd.send(("exit",))
                except Exception:
                    pass
        for worker in self._workers:
            if worker.process is not None:
                worker.process.join(timeout=5)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=5)
                worker.process = None
            for connection in (worker.cmd, worker.results):
                if connection is not None:
                    try:
                        connection.close()
                    except Exception:
                        pass
            worker.cmd = worker.results = None
            worker.ring.close()
        self._bursts.clear()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def kill_worker(self, index: int) -> None:
        """Chaos hook: hard-kill one worker (SIGKILL), as a crash would.

        The pool discovers the death on its next send or pump, respawns
        the worker from current parent state and replays its pending
        batches — what the robustness tests exercise.
        """
        worker = self._workers[index]
        if worker.process is not None and worker.process.is_alive():
            worker.process.kill()
            worker.process.join(timeout=5)

    # -- data plane --------------------------------------------------------------------

    def submit(self, packets: list[IPPacket], batch_sizes=None) -> int:
        """Route a burst to the workers; returns a token for :meth:`collect`.

        ``batch_sizes[i]``, when given, caps worker *i*'s batch size:
        its routed group is split into consecutive chunks of at most
        that many packets (the
        :class:`~repro.runtime.scheduler.BatchScheduler`'s lever).
        Chunking moves batch *boundaries* only — routing stays with the
        flow hash and the per-worker FIFO keeps intra-flow order — so
        verdicts are identical to an unchunked submit.
        """
        self._check_open()
        groups: list[list[int]] = [[] for _ in self._workers]
        for position, packet in enumerate(packets):
            groups[self._route(packet)].append(position)
        token = self._next_token
        self._next_token += 1
        burst = _Burst(token, packets, groups, len(self._workers))
        self._bursts[token] = burst
        plan: list[tuple[_PoolWorker, deque]] = []
        for index, positions in enumerate(groups):
            if not positions:
                continue
            size = len(positions)
            if batch_sizes is not None and batch_sizes[index]:
                size = max(1, min(size, int(batch_sizes[index])))
            chunks = deque(
                positions[start : start + size]
                for start in range(0, len(positions), size)
            )
            burst.remaining[index] = len(chunks)
            plan.append((self._workers[index], chunks))
        # Round-robin across workers so a deep chunk queue on one worker
        # never starves the others of their first batch.
        while plan:
            next_round = []
            for worker, chunks in plan:
                positions = chunks.popleft()
                group = [packets[position] for position in positions]
                self._dispatch(worker, token, positions, group)
                if chunks:
                    next_round.append((worker, chunks))
            plan = next_round
        return token

    def collect(self, token: int | None = None) -> PoolBurst:
        """Block until the given burst (default: the oldest) completes."""
        self._check_open()
        if not self._bursts:
            raise WorkerPoolError("no outstanding burst to collect")
        if token is None:
            token = min(self._bursts)
        burst = self._bursts.get(token)
        if burst is None:
            raise WorkerPoolError(f"unknown or already-collected burst token {token}")
        while burst.remaining and burst.failed is None:
            self._pump(block=True)
        del self._bursts[token]
        if burst.failed is not None:
            # The poisoned batch was already popped and accounted; late
            # results for this token fall into the void harmlessly.
            raise burst.failed
        if not burst.wall_s:
            burst.wall_s = time.perf_counter() - burst.started
        missing = [
            position for position, result in enumerate(burst.results) if result is None
        ]
        if missing:
            # Every batch acked but positions stayed unfilled: a protocol
            # bug dropped packets.  Silently returning a shorter result
            # list would read as "fewer packets" downstream — raise with
            # the evidence instead.
            preview = ", ".join(str(position) for position in missing[:8])
            if len(missing) > 8:
                preview += ", ..."
            raise WorkerPoolError(
                f"{self._name} burst {token} lost {len(missing)} of "
                f"{len(burst.packets)} result(s) (positions {preview}); "
                "a batch was dropped without an error reply"
            )
        return PoolBurst(
            results=burst.results,
            worker_elapsed_s=burst.elapsed,
            worker_packet_counts=burst.counts,
            wall_s=burst.wall_s,
            replayed_batches=burst.replayed,
        )

    def process_batch_timed(self, packets: list[IPPacket]) -> PoolBurst:
        """Synchronous submit-and-collect of one burst."""
        return self.collect(self.submit(packets))

    # -- control plane -----------------------------------------------------------------

    def push_record(self, record: DeltaLogRecord) -> None:
        """Broadcast one delta-log record; workers replay it through their
        shadow store (surgical recompile, fingerprint-verified)."""
        self._check_open()
        payload = record.to_payload()
        for worker in self._workers:
            if record.version <= worker.version:
                continue
            if worker.shadow_stale or record.version != worker.version + 1:
                # The worker's shadow cannot chain this record; a fresh
                # fork from current parent state already includes it.
                self._reseed(worker)
                continue
            self._send(worker, ("record", payload))
            worker.version = max(worker.version, record.version)
            self.stats.pool_delta_pushes += 1

    def push_log(self, log, target_versions=None) -> None:
        """Catch each worker up from a delta log (to its own target).

        ``target_versions[i]`` bounds worker *i* (the staged-rollout
        mode: a worker converges exactly as far as its parent replica);
        a worker that fell behind a compaction is reseeded by respawn
        instead — the fresh fork is current by construction.
        """
        self._check_open()
        for worker in self._workers:
            target = None if target_versions is None else target_versions[worker.index]
            if worker.shadow_stale or worker.version < log.base_version:
                self._reseed(worker)
                continue
            for record in log.since(worker.version):
                if target is not None and record.version > target:
                    break
                self._send(worker, ("record", record.to_payload()))
                worker.version = max(worker.version, record.version)
                self.stats.pool_delta_pushes += 1

    def push_sync(self, policy, version: int) -> None:
        """Full-policy fallback push (no control store, or an opaque sync)."""
        self._check_open()
        for worker in self._workers:
            self._send(worker, ("sync", policy, version))
            worker.version = max(worker.version, version)
            if self._has_shadows:
                # The worker's shadow no longer chains off its enforcer
                # state; the next record push will reseed it.
                worker.shadow_stale = True
            self.stats.pool_snapshot_syncs += 1

    def push_set_policy(self, policy) -> None:
        """Legacy by-reference policy swap, broadcast to every worker."""
        self._check_open()
        for worker in self._workers:
            self._send(worker, ("set_policy", policy))
            if self._has_shadows:
                worker.shadow_stale = True
            self.stats.pool_snapshot_syncs += 1

    def push_invalidate(self) -> None:
        self._check_open()
        for worker in self._workers:
            self._send(worker, ("invalidate",))

    def flush_stats(self) -> None:
        """Harvest counters accrued outside batches (delta applies etc.).

        Batch results already carry their own deltas; this collects the
        tail so ``aggregate_stats`` converges after the last burst.
        """
        self._check_open()
        for worker in self._workers:
            worker.flushed = None
            self._send(worker, ("flush", worker.next_seq))
        for worker in self._workers:
            # A crash during the flush resolves it too: the respawn
            # resets ``flushed`` (that incarnation's tail counters die
            # with it, like any crash-lost work).
            while worker.flushed is None:
                self._pump(block=True)

    # -- internals ---------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise WorkerPoolError("worker pool is closed")

    def _encode(self, worker: _PoolWorker, group: list[IPPacket], spans=None):
        if worker.ring.size:
            if spans is not None:
                t0 = time.perf_counter()
            try:
                blob = encode_batch(group)
            except RingCodecError:
                blob = None
            if spans is not None:
                t1 = time.perf_counter()
                spans["serialize"] = (t0, t1 - t0)
            if blob is not None:
                region = worker.ring.try_write(blob)
                if spans is not None:
                    spans["ring_write"] = (t1, time.perf_counter() - t1)
                if region is not None:
                    self.stats.pool_ring_batches += 1
                    if self._obs_counts is not None:
                        self._obs_counts.ring.inc()
                    return "ring", region, region
        self.stats.pool_pickled_batches += 1
        if self._obs_counts is not None:
            self._obs_counts.pickled.inc()
        return "pickle", group, None

    def _dispatch(self, worker, token, positions, group) -> None:
        while len(worker.pending) >= self._max_inflight:
            self._pump(block=True)
        spans = {} if self._trace_active else None
        mode, payload, region = self._encode(worker, group, spans)
        pending = _PendingBatch(
            token, worker.next_seq, positions, group, mode, payload, region, spans
        )
        worker.next_seq += 1
        worker.pending.append(pending)
        incarnation = worker.incarnation
        # Drain whatever results are ready before pushing more work:
        # keeps the result pipe shallow so the two directions cannot
        # fill (and deadlock) simultaneously.
        self._pump(block=False)
        if worker.incarnation != incarnation:
            # The pump found the worker dead and _revive already replayed
            # every pending batch — including the one just queued, under a
            # reassigned seq.  Sending it again would enforce it twice and
            # trip the out-of-order check on the duplicate result.
            return
        if self._trace_active:
            pending.send_ts = time.perf_counter()
        self._send(worker, ("batch", pending.seq, mode, payload))

    def _send(self, worker: _PoolWorker, message) -> None:
        if worker.cmd is None:
            self._revive(worker)
            return
        try:
            worker.cmd.send(message)
        except (BrokenPipeError, OSError):
            # The worker died; pending batches (including one just
            # queued) replay to its replacement, control-plane pushes
            # are subsumed by the respawn's current-state seed.
            self._revive(worker)

    def _pump(self, block: bool) -> None:
        connections = {
            worker.results: worker
            for worker in self._workers
            if worker.results is not None
        }
        if not connections:
            return
        ready = _connection_wait(list(connections), timeout=None if block else 0)
        for connection in ready:
            worker = connections[connection]
            if worker.results is not connection:
                continue  # worker was revived while handling this round
            try:
                message = connection.recv()
            except (EOFError, OSError):
                self._revive(worker)
                continue
            self._on_message(worker, message)

    def _on_message(self, worker: _PoolWorker, message) -> None:
        kind = message[0]
        if kind == "batch":
            _, seq, elapsed, verdict_values, stats_delta, records, obs_payload = message
            if not worker.pending or worker.pending[0].seq != seq:
                raise WorkerPoolError(
                    f"{self._name} worker {worker.index} returned out-of-order "
                    f"batch {seq}"
                )
            pending = worker.pending.popleft()
            if pending.region is not None:
                worker.ring.release(pending.region)
            tracing = self._trace_active and pending.spans is not None
            if tracing:
                fold_start = time.perf_counter()
            self._fold(worker.index, stats_delta, records)
            if self._obs is not None:
                if self._obs_counts is not None:
                    self._obs_counts.batches.inc()
                if obs_payload is not None:
                    recv_ts, registry_delta = obs_payload
                    if registry_delta:
                        self._obs.merge_worker(registry_delta)
                    if tracing:
                        self._close_trace(
                            worker, pending, recv_ts, elapsed, fold_start
                        )
            burst = self._bursts.get(pending.token)
            if burst is not None:
                for position, value in zip(pending.positions, verdict_values):
                    burst.results[position] = (Verdict(value), burst.packets[position])
                burst.elapsed[worker.index] += elapsed
                left = burst.remaining.get(worker.index, 0) - 1
                if left > 0:
                    burst.remaining[worker.index] = left
                else:
                    burst.remaining.pop(worker.index, None)
                if not burst.remaining:
                    burst.wall_s = time.perf_counter() - burst.started
        elif kind == "flush":
            _, flush_id, stats_delta, records, obs_payload = message
            self._fold(worker.index, stats_delta, records)
            if self._obs is not None and obs_payload is not None and obs_payload[1]:
                self._obs.merge_worker(obs_payload[1])
            worker.flushed = flush_id
        elif kind == "error":
            detail = message[1]
            failing_seq = message[2] if len(message) > 2 else None
            if (
                failing_seq is not None
                and worker.pending
                and worker.pending[0].seq == failing_seq
            ):
                self._poison(worker, detail)
            else:
                # A control-plane apply failed (record/sync/flush) — the
                # worker's state may have diverged; surface immediately.
                raise WorkerPoolError(
                    f"{self._name} worker {worker.index} failed: {detail}"
                )
        else:
            raise WorkerPoolError(f"unexpected pool result kind {kind!r}")

    def _poison(self, worker: _PoolWorker, detail: str) -> None:
        """A worker reported an enforcement error for its head batch.

        The batch is poisoned: the reply arrived, so this is a
        deterministic enforcement failure, not a lost worker — replaying
        it into the respawn would only crash every replacement, forever.
        Pop and account it (release its ring region, fail its burst with
        a clear error surfaced at :meth:`collect`); the respawn then
        replays only the healthy batches queued behind it.
        """
        pending = worker.pending.popleft()
        if pending.region is not None:
            worker.ring.release(pending.region)
        self.stats.pool_poisoned_batches += 1
        error = WorkerPoolError(
            f"{self._name} worker {worker.index} failed enforcing batch "
            f"{pending.seq} of burst {pending.token} "
            f"({len(pending.packets)} packet(s)): {detail}"
        )
        logger.error("%s", error)
        burst = self._bursts.get(pending.token)
        if burst is not None and burst.failed is None:
            burst.failed = error

    def _close_trace(
        self, worker: _PoolWorker, pending: _PendingBatch, recv_ts, elapsed, fold_start
    ) -> None:
        """Assemble and record the completed batch's span trace.

        Parent and worker stamps share the CLOCK_MONOTONIC perf_counter
        domain on one host; queue_wait is clamped at zero to absorb the
        residual cross-process jitter.
        """
        trace = BatchTrace(
            batch_id=f"{self._name}:{pending.token}.{pending.seq}",
            worker=worker.index,
        )
        for stage in ("serialize", "ring_write"):
            span = pending.spans.get(stage)
            if span is not None:
                trace.add(stage, span[0], span[1])
        if pending.send_ts:
            trace.add("queue_wait", pending.send_ts, max(0.0, recv_ts - pending.send_ts))
        trace.add("enforce", recv_ts, elapsed)
        trace.add("fold", fold_start, time.perf_counter() - fold_start)
        self._obs.observe_batch(self._name, worker.index, trace)

    def health(self):
        """A structural :class:`~repro.obs.health.PoolHealthSnapshot`."""
        from repro.obs.health import PoolHealthSnapshot

        return PoolHealthSnapshot(
            name=self._name,
            workers=len(self._workers),
            queue_depths=tuple(len(worker.pending) for worker in self._workers),
            outstanding_bursts=len(self._bursts),
            incarnations=tuple(worker.incarnation for worker in self._workers),
            alive=tuple(
                worker.process is not None and worker.process.is_alive()
                for worker in self._workers
            ),
            crashes=self.stats.pool_worker_crashes,
            respawns=self.stats.pool_worker_respawns,
            batches_replayed=self.stats.pool_batches_replayed,
            ring_batches=self.stats.pool_ring_batches,
            pickled_batches=self.stats.pool_pickled_batches,
            delta_pushes=self.stats.pool_delta_pushes,
            snapshot_syncs=self.stats.pool_snapshot_syncs,
        )

    def _revive(self, worker: _PoolWorker) -> None:
        """Respawn a dead worker and replay its unacknowledged batches."""
        # Results delivered before the crash may still sit in the pipe
        # buffer ahead of the EOF — harvest them first so completed
        # batches are not double-counted by the replay.
        if worker.results is not None:
            while True:
                try:
                    if not worker.results.poll(0):
                        break
                    message = worker.results.recv()
                except (EOFError, OSError):
                    break
                self._on_message(worker, message)
        for connection in (worker.cmd, worker.results):
            if connection is not None:
                try:
                    connection.close()
                except Exception:
                    pass
        worker.cmd = worker.results = None
        if worker.process is not None:
            worker.process.join(timeout=5)
            worker.process = None
        self.stats.pool_worker_crashes += 1
        if self._obs_counts is not None:
            self._obs_counts.crashes.inc()
        logger.warning(
            "%s worker %d died; respawning and replaying %d pending batch(es)",
            self._name,
            worker.index,
            len(worker.pending),
        )
        if self._closed:
            worker.pending.clear()
            return
        replay = list(worker.pending)
        worker.pending.clear()
        self._spawn(worker)
        self.stats.pool_worker_respawns += 1
        if self._obs_counts is not None:
            self._obs_counts.respawns.inc()
        for pending in replay:
            pending.seq = worker.next_seq
            worker.next_seq += 1
            worker.pending.append(pending)
            burst = self._bursts.get(pending.token)
            if burst is not None:
                burst.replayed += 1
            self.stats.pool_batches_replayed += 1
            if self._obs_counts is not None:
                self._obs_counts.replays.inc()
            # Ring regions were never released (no result arrived), and
            # the respawned fork inherits the very same mapping — the
            # reference replays as-is.  Re-stamp the send: queue_wait
            # measures this delivery, not the one that died.
            if self._trace_active:
                pending.send_ts = time.perf_counter()
            self._send(worker, ("batch", pending.seq, pending.mode, pending.payload))

    def _reseed(self, worker: _PoolWorker) -> None:
        """Replace a worker with a fresh fork of current parent state
        (stale shadow or behind a compaction).  Pending work drains
        first so nothing is enforced twice."""
        while worker.pending:
            self._pump(block=True)
        if worker.cmd is not None:
            try:
                worker.cmd.send(("exit",))
            except Exception:
                pass
        if worker.process is not None:
            worker.process.join(timeout=5)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5)
            worker.process = None
        for connection in (worker.cmd, worker.results):
            if connection is not None:
                try:
                    connection.close()
                except Exception:
                    pass
        worker.cmd = worker.results = None
        self._spawn(worker)
        self.stats.pool_worker_respawns += 1
        if self._obs_counts is not None:
            self._obs_counts.respawns.inc()


class ShardWorkerPool(WorkerPool):
    """One persistent worker per enforcer shard (NFQUEUE consumer model).

    With a ``control`` store attached each worker holds a
    :class:`GatewayReplica` shadow and receives surgical delta records;
    without one, policy changes fall back to pickled full syncs.
    """

    def __init__(
        self,
        shards,
        control=None,
        ring_bytes: int = DEFAULT_RING_BYTES,
        name: str = "shard-pool",
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        obs=None,
    ) -> None:
        self._shards = list(shards)
        num_shards = len(self._shards)
        obs_config = obs.worker_config() if obs is not None else None
        specs = [
            _ShardSeedSpec(shard, control, f"{name}-w{index}", obs_config)
            for index, shard in enumerate(self._shards)
        ]
        super().__init__(
            specs,
            route=lambda packet: flow_hash(packet) % num_shards,
            fold=self._fold_into_shard,
            ring_bytes=ring_bytes,
            name=name,
            max_inflight=max_inflight,
            obs=obs,
        )
        self._has_shadows = control is not None

    def _fold_into_shard(self, index: int, stats_delta, records) -> None:
        shard = self._shards[index]
        shard.stats.merge(stats_delta)
        if shard.keep_records:
            shard.records.extend(records)
        if shard.audit_sink is not None:
            for record in records:
                shard.audit_sink.publish(record, shard.audit_source)


class GatewayWorkerPool(WorkerPool):
    """One persistent worker per fleet gateway, forked around the fleet's
    own :class:`GatewayReplica` (enforcer + shadow store).  Workers run
    their gateway's shards sequentially in-process — nesting an active
    pool inside a forked worker is exactly the hazard the fleet-level
    constructor validates away."""

    def __init__(
        self,
        replicas,
        ring_bytes: int = DEFAULT_RING_BYTES,
        name: str = "gateway-pool",
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        obs=None,
    ) -> None:
        self._replicas = list(replicas)
        num_gateways = len(self._replicas)
        obs_config = obs.worker_config() if obs is not None else None
        specs = [_GatewaySeedSpec(replica, obs_config) for replica in self._replicas]
        super().__init__(
            specs,
            route=lambda packet: flow_hash(packet) % num_gateways,
            fold=self._fold_into_gateway,
            ring_bytes=ring_bytes,
            name=name,
            max_inflight=max_inflight,
            obs=obs,
        )
        self._has_shadows = True

    def _fold_into_gateway(self, index: int, stats_delta, records) -> None:
        enforcer = self._replicas[index].enforcer
        unit = _enforcement_units(enforcer)[0]
        unit.stats.merge(stats_delta)
        if unit.keep_records:
            unit.records.extend(records)
        if unit.audit_sink is not None:
            for record in records:
                unit.audit_sink.publish(record, unit.audit_source)
