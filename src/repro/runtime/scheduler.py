"""Adaptive batch scheduling for the persistent worker pools.

The pool runtime ships each burst as one batch per routed worker, so
callers tuned throughput by hand — the experiments settled on a static
16-burst split of every replay.  :class:`BatchScheduler` replaces that
hand tuning: it sits between a caller and
:meth:`~repro.runtime.pool.WorkerPool.submit`, choosing a per-worker
batch-size cap for every burst and resizing online from the signals the
observability layer already measures:

* **shrink** a worker's batches when ``queue_wait`` dominates its
  recent stage breakdown — the worker is backed up, and big batches
  only deepen its queue;
* **grow** them when ``serialize`` + ``ring_write`` overhead dominates
  — IPC amortization is losing, and bigger batches spread the fixed
  per-batch cost;
* otherwise **equalize p99 batch latency** across the pool: a worker
  whose ``pool_worker_batch_seconds`` p99 sits far above the pool
  median gets smaller batches, one far below gets bigger ones;
* **snap to the safe floor** when a
  :class:`~repro.obs.health.PoolHealthMonitor` raises a queue-depth or
  burst-backlog alert — backpressure outranks every other signal.

The hard bar: a scheduler decision moves batch *boundaries* only.
Routing is the pool's flow hash and intra-flow order is the per-worker
command FIFO — both untouched — so verdicts are identical to any other
split (pinned by the parity and hypothesis suites).

Without an observability bundle (or with the null registry, which
collects no traces) the adaptive scheduler is inert: sizes stay at
``initial_batch``, which is exactly the static behaviour.  The
integration layers therefore attach a private
:class:`~repro.obs.instrument.RuntimeObservability` when a caller asks
for ``scheduler="adaptive"`` without wiring one.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

__all__ = [
    "SCHEDULERS",
    "SchedulerConfig",
    "SchedulerDecision",
    "BatchScheduler",
    "validate_scheduler",
]

logger = logging.getLogger(__name__)

#: Supported scheduling modes (``--scheduler`` on the fleet CLIs).
#: ``static`` is the pool's native one-batch-per-worker-per-burst split;
#: ``adaptive`` is a :class:`BatchScheduler`.
SCHEDULERS = ("static", "adaptive")

#: Health alert kinds that snap batch sizes to the floor.
_FLOOR_ALERT_KINDS = frozenset({"pool-queue-depth", "pool-burst-backlog"})


def validate_scheduler(mode: str) -> str:
    if mode not in SCHEDULERS:
        raise ValueError(f"unknown scheduler {mode!r}; choose from {SCHEDULERS}")
    return mode


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs for :class:`BatchScheduler` (``--scheduler-*`` on the CLI)."""

    #: First-burst batch-size cap per worker.
    initial_batch: int = 256
    #: The safe floor backlog alerts snap to (shrink never crosses it).
    min_batch: int = 16
    #: Growth ceiling — a batch must still fit the ring comfortably.
    max_batch: int = 4096
    #: Multiplicative step for grow/shrink decisions.
    step: float = 2.0
    #: Shrink when windowed queue_wait exceeds this multiple of enforce.
    #: Pipelined (submit-ahead) callers keep a few batches queued per
    #: worker *by design*, so healthy queue wait is a small multiple of
    #: compute — the default only fires on genuine backlog beyond that.
    queue_wait_ratio: float = 4.0
    #: Grow when windowed serialize+ring_write exceed this fraction of
    #: enforce.
    overhead_ratio: float = 0.5
    #: p99 equalization band: outside ``[median/band, median*band]`` a
    #: worker's size steps toward the pool median.
    equalize_band: float = 2.0
    #: Batches a worker must complete in its window before re-judging.
    min_window_batches: int = 4


@dataclass(frozen=True)
class SchedulerDecision:
    """One resize: which worker, what happened, and why."""

    worker: int
    action: str  # "grow" | "shrink" | "floor"
    reason: str  # "queue_wait" | "overhead" | "p99-above" | "p99-below" | alert kind
    size: int


class _Window:
    """Per-worker stage sums accumulated since the worker's last judgement."""

    __slots__ = ("batches", "queue_wait", "overhead", "enforce")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.batches = 0
        self.queue_wait = 0.0
        self.overhead = 0.0
        self.enforce = 0.0


class BatchScheduler:
    """Online per-worker batch sizing for one worker pool.

    Call :meth:`plan` once per burst and pass the result to
    ``WorkerPool.submit(packets, batch_sizes=...)``.  Resizes are
    recorded in :attr:`decisions` and published to the registry as the
    ``pool_batch_size`` gauge when an observability bundle is bound.
    """

    def __init__(
        self,
        num_workers: int,
        config: SchedulerConfig | None = None,
        obs=None,
        pool: str = "shard-pool",
        monitor=None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("a batch scheduler needs at least one worker")
        self.config = config if config is not None else SchedulerConfig()
        self.pool_label = pool
        self.num_workers = num_workers
        self.decisions: list[SchedulerDecision] = []
        self._sizes = [self._clamp(self.config.initial_batch)] * num_workers
        self._windows = [_Window() for _ in range(num_workers)]
        self._obs = None
        self._gauge = None
        self._traces_seen = 0
        self._monitor = None
        self._alerts_seen = 0
        if obs is not None:
            self.bind_obs(obs)
        if monitor is not None:
            self.attach_monitor(monitor)

    # -- wiring ------------------------------------------------------------------------

    def bind_obs(self, obs) -> None:
        """Consume signals from (and publish sizes to) a
        :class:`~repro.obs.instrument.RuntimeObservability`."""
        self._obs = obs
        self._gauge = None
        self._traces_seen = 0
        if obs is not None:
            self._traces_seen = obs.traces.completed
            self._gauge = obs.registry.gauge(
                "pool_batch_size",
                "Scheduler-chosen per-worker batch-size cap",
                labels=("pool", "worker"),
            )
            self._publish_sizes()

    def attach_monitor(self, monitor) -> None:
        """Snap to the floor on this monitor's queue-depth/backlog alerts."""
        self._monitor = monitor
        self._alerts_seen = len(monitor.events) if monitor is not None else 0

    # -- the caller-facing lever -------------------------------------------------------

    def plan(self) -> list[int]:
        """Per-worker batch-size caps for the next submit.

        Absorbs new health alerts and completed batch traces, re-judges
        every worker whose signal window is mature, and returns the caps
        ``WorkerPool.submit`` chunks by.
        """
        self._absorb_alerts()
        self._absorb_traces()
        for worker in range(self.num_workers):
            self._judge(worker)
        return list(self._sizes)

    def sizes(self) -> list[int]:
        """The current per-worker caps, without re-planning."""
        return list(self._sizes)

    def force_size(self, worker: int, size: int) -> None:
        """Chaos/test hook: pin one worker's cap directly (clamped)."""
        self._sizes[worker] = self._clamp(size)
        self._windows[worker].reset()
        self._publish_sizes()

    # -- signal absorption -------------------------------------------------------------

    def _absorb_alerts(self) -> None:
        monitor = self._monitor
        if monitor is None:
            return
        fresh = monitor.events[self._alerts_seen :]
        self._alerts_seen = len(monitor.events)
        floor = self.config.min_batch
        prefix = f"{self.pool_label}-w"
        for alert in fresh:
            if alert.kind not in _FLOOR_ALERT_KINDS:
                continue
            targets = range(self.num_workers)
            if alert.device.startswith(prefix):
                # Queue-depth alerts name the backed-up worker; floor
                # just that one.
                try:
                    targets = (int(alert.device[len(prefix) :]),)
                except ValueError:
                    pass
            elif alert.device != self.pool_label:
                continue  # another pool's alert on a shared monitor
            for worker in targets:
                if 0 <= worker < self.num_workers and self._sizes[worker] != floor:
                    self._sizes[worker] = floor
                    self._windows[worker].reset()
                    self._record(worker, "floor", alert.kind)

    def _absorb_traces(self) -> None:
        obs = self._obs
        if obs is None:
            return
        log = obs.traces
        new = log.completed - self._traces_seen
        if new <= 0:
            return
        self._traces_seen = log.completed
        # The log is a bounded ring; anything that overflowed between
        # plans is just older signal we no longer need.
        retained = list(log)
        prefix = f"{self.pool_label}:"
        for trace in retained[-min(new, len(retained)) :]:
            if not trace.batch_id.startswith(prefix):
                continue
            if not 0 <= trace.worker < self.num_workers:
                continue
            window = self._windows[trace.worker]
            window.batches += 1
            for span in trace.spans:
                if span.stage == "queue_wait":
                    window.queue_wait += span.duration_s
                elif span.stage in ("serialize", "ring_write"):
                    window.overhead += span.duration_s
                elif span.stage == "enforce":
                    window.enforce += span.duration_s

    # -- decisions ---------------------------------------------------------------------

    def _judge(self, worker: int) -> None:
        config = self.config
        window = self._windows[worker]
        if window.batches < config.min_window_batches:
            return
        size = self._sizes[worker]
        enforce = max(window.enforce, 1e-9)
        if window.queue_wait > config.queue_wait_ratio * enforce:
            self._resize(worker, int(size / config.step), "shrink", "queue_wait")
        elif window.overhead > config.overhead_ratio * enforce:
            self._resize(worker, int(size * config.step), "grow", "overhead")
        else:
            self._equalize(worker)
        window.reset()

    def _equalize(self, worker: int) -> None:
        obs = self._obs
        if obs is None:
            return
        band = self.config.equalize_band
        p99s = [
            obs.batch_seconds.quantile(0.99, pool=self.pool_label, worker=str(index))
            for index in range(self.num_workers)
        ]
        positive = sorted(p99 for p99 in p99s if p99 > 0)
        if len(positive) < 2:
            return
        median = positive[len(positive) // 2]
        mine = p99s[worker]
        if mine <= 0 or median <= 0:
            return
        size = self._sizes[worker]
        step = self.config.step
        if mine > band * median:
            self._resize(worker, int(size / step), "shrink", "p99-above")
        elif mine * band < median:
            self._resize(worker, int(size * step), "grow", "p99-below")

    def _resize(self, worker: int, size: int, action: str, reason: str) -> None:
        new = self._clamp(size)
        if new == self._sizes[worker]:
            return
        self._sizes[worker] = new
        self._record(worker, action, reason)

    def _record(self, worker: int, action: str, reason: str) -> None:
        self.decisions.append(
            SchedulerDecision(
                worker=worker, action=action, reason=reason, size=self._sizes[worker]
            )
        )
        logger.debug(
            "%s scheduler: worker %d %s (%s) -> batch cap %d",
            self.pool_label,
            worker,
            action,
            reason,
            self._sizes[worker],
        )
        self._publish_sizes()

    def _publish_sizes(self) -> None:
        if self._gauge is not None:
            for worker, size in enumerate(self._sizes):
                self._gauge.set(size, pool=self.pool_label, worker=str(worker))

    def _clamp(self, size: int) -> int:
        return max(self.config.min_batch, min(self.config.max_batch, int(size)))
