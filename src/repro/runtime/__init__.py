"""Persistent worker-pool runtime (long-lived shard & gateway workers).

See :mod:`repro.runtime.pool` for the pool protocol and
:mod:`repro.runtime.ring` for the shared-memory packet ring.
"""

from repro.runtime.pool import (
    DEFAULT_MAX_INFLIGHT,
    GatewayWorkerPool,
    PoolBurst,
    PoolUnavailableError,
    ShardWorkerPool,
    WorkerPool,
    WorkerPoolError,
    fork_available,
    fork_context,
)
from repro.runtime.scheduler import (
    SCHEDULERS,
    BatchScheduler,
    SchedulerConfig,
    SchedulerDecision,
    validate_scheduler,
)
from repro.runtime.ring import (
    DEFAULT_RING_BYTES,
    PacketRing,
    RingCodecError,
    decode_batch,
    encode_batch,
    encode_packet,
)

__all__ = [
    "DEFAULT_MAX_INFLIGHT",
    "DEFAULT_RING_BYTES",
    "BatchScheduler",
    "GatewayWorkerPool",
    "PacketRing",
    "PoolBurst",
    "PoolUnavailableError",
    "RingCodecError",
    "SCHEDULERS",
    "SchedulerConfig",
    "SchedulerDecision",
    "ShardWorkerPool",
    "WorkerPool",
    "WorkerPoolError",
    "validate_scheduler",
    "decode_batch",
    "encode_batch",
    "encode_packet",
    "fork_available",
    "fork_context",
]
