"""The operator console: one object wiring the whole control plane.

Everything below this module is a part — the bus, the router, the
online baselines, the federated scans.  :class:`OperatorControlPlane`
is the assembled machine an on-call operator (or an experiment) holds:

* it builds (or accepts) an :class:`~repro.ops.bus.AlertBus` with the
  standard sink set — the :class:`~repro.ops.routing.AlertRouter`, an
  optional durable :class:`~repro.ops.bus.JsonlSpoolSink`, and a
  :class:`~repro.ops.bus.MemorySink` feed for summaries;
* it attaches the bus and a :class:`~repro.ops.federation
  .FleetFederation` to the :class:`~repro.telemetry.pipeline
  .FleetAuditor`, so every per-gateway and fleet-level alert flows
  onto the bus as it fires;
* :meth:`drive` is the per-burst operator tick: drain the gateway
  collectors, run the federated scans, pump the bus — the three steps
  every example and experiment would otherwise hand-sequence.

:func:`online_detector_factory` is the detector stack for a fleet run
under this control plane: the builtin integrity/spoof/burst detectors
plus an :class:`~repro.ops.baselines.OnlineExfiltrationDetector` whose
thresholds stream in from live traffic — no offline calibration pass
anywhere.  Pass it as ``FleetAuditor(detector_factory=...)`` (each
gateway gets fresh detector instances and its own baselines).
"""

from __future__ import annotations

import time

from repro.telemetry.detectors import (
    Detector,
    PolicyViolationBurstDetector,
    SpoofedTagDetector,
    UnknownTagDetector,
)
from repro.telemetry.pipeline import FleetAuditor
from repro.ops.baselines import OnlineExfilBaselines, OnlineExfiltrationDetector
from repro.ops.bus import AlertBus, JsonlSpoolSink, MemorySink
from repro.ops.federation import FleetFederation
from repro.ops.routing import AlertRouter


def online_detector_factory(
    provisioned: dict[str, frozenset[str]] | None = None,
    burst: int = 8,
    fold_every: int = 256,
    **baseline_kwargs,
):
    """A ``FleetAuditor`` detector factory with streaming exfil baselines.

    Returns a callable ``gateway -> [detectors]`` producing the builtin
    stack with :class:`OnlineExfiltrationDetector` in place of the
    statically-budgeted one.  Every gateway gets fresh instances and
    its own :class:`OnlineExfilBaselines` — per-gateway windows are
    partial views, and each gateway learns the shape of *its* share.
    """

    def factory(gateway: str) -> list[Detector]:
        detectors: list[Detector] = [
            UnknownTagDetector(),
            OnlineExfiltrationDetector(
                baselines=OnlineExfilBaselines(**baseline_kwargs),
                fold_every=fold_every,
            ),
            PolicyViolationBurstDetector(burst=burst),
        ]
        if provisioned is not None:
            detectors.insert(1, SpoofedTagDetector(provisioned))
        return detectors

    return factory


class OperatorControlPlane:
    """Bus + routing + federation assembled around one fleet auditor.

    ``auditor`` is the :class:`FleetAuditor` the deployment's gateways
    publish into.  The console attaches the alert bus and federation to
    it; afterwards, call :meth:`drive` once per processed burst and
    :meth:`flush` at the end of a run.

    ``clock`` stamps bus timestamps (pass a deterministic callable in
    tests); ``spool_dir`` adds a durable JSON-lines alert spool.
    """

    def __init__(
        self,
        auditor: FleetAuditor,
        bus: AlertBus | None = None,
        router: AlertRouter | None = None,
        federation: FleetFederation | None = None,
        spool_dir=None,
        clock=time.time,
    ) -> None:
        self.auditor = auditor
        self.bus = bus if bus is not None else AlertBus(clock=clock)
        self.router = router if router is not None else AlertRouter()
        self.federation = federation if federation is not None else FleetFederation()
        #: Every alert the bus delivered, in delivery order (the feed
        #: the summary and the on-call example read).
        self.feed = MemorySink(name="feed")
        self.spool = None
        if spool_dir is not None:
            self.spool = JsonlSpoolSink(spool_dir)
            self.bus.add_sink(self.spool)
        self.bus.add_sink(self.router)
        self.bus.add_sink(self.feed)
        auditor.attach_bus(self.bus)
        auditor.attach_federation(self.federation)

    # -- the operator tick -------------------------------------------------------------

    def drive(self) -> dict:
        """One control-plane tick: drain collectors, scan fleet, pump bus.

        Returns the tick's accounting: collector wall-clock, fresh
        fleet alerts, per-sink deliveries.
        """
        drain_wall_s = self.auditor.drain()
        fleet_alerts = self.auditor.scan_federated()
        delivered = self.bus.pump()
        return {
            "drain_wall_s": drain_wall_s,
            "fleet_alerts": len(fleet_alerts),
            "delivered": delivered,
        }

    def flush(self) -> None:
        """End of run: drain everything, deliver everything, spool it."""
        self.auditor.flush()
        self.auditor.scan_federated()
        self.bus.flush()

    # -- inspection --------------------------------------------------------------------

    def summary(self) -> dict:
        """One JSON-friendly view of the whole control plane's state."""
        return {
            "bus": {
                "published": self.bus.published,
                "pending": self.bus.pending,
                "dropped_backpressure": self.bus.dropped_backpressure,
                "delivery_failures": dict(self.bus.delivery_failures),
                "lag": self.bus.lag(),
            },
            "routing": self.router.counts(),
            "federation": self.federation.counts(),
            "alerts": self.auditor.alert_counts(),
        }
