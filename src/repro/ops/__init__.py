"""Operator control plane: the consumer side of fleet telemetry.

The telemetry subsystem (PR 4) made the gateway fleet *observable* —
durable audit spools, sliding windows, structured alerts.  This package
makes it *operable*: the on-call surface that decides what an alert is
worth and gets it to a human.

* :mod:`repro.ops.bus` — the durable alert bus: a bounded queue with
  pluggable :class:`~repro.ops.bus.AlertSink` delivery (JSON-lines
  spool with segment rotation, webhook-shaped callables, in-memory),
  backpressure counters and at-least-once redelivery per sink;
* :mod:`repro.ops.routing` — the triage layer: severity defaults, a
  first-match routing table over (kind, device group, severity) →
  page/ticket/log, fleet-level cooldown dedup, and escalation when one
  key keeps re-firing;
* :mod:`repro.ops.baselines` — streaming calibration: EWMA moments and
  P² quantiles per (device, destination) folded from live windows, so
  exfiltration thresholds adapt online with no calibration replay;
* :mod:`repro.ops.federation` — fleet-federated detectors that re-merge
  the campaigns flow-hash routing splits across gateways (source-port
  rotation included), which per-gateway detectors provably miss;
* :mod:`repro.ops.console` — :class:`~repro.ops.console
  .OperatorControlPlane`, the assembled machine: bus + router +
  federation wired onto a :class:`~repro.telemetry.pipeline
  .FleetAuditor`, driven one tick per burst.
"""

from repro.ops.baselines import (
    EwmaStat,
    OnlineExfilBaselines,
    OnlineExfiltrationDetector,
    P2Quantile,
)
from repro.ops.bus import (
    AlertBus,
    AlertSink,
    JsonlSpoolSink,
    MemorySink,
    WebhookSink,
    replay_spool,
)
from repro.ops.console import OperatorControlPlane, online_detector_factory
from repro.ops.federation import FleetFederation
from repro.ops.routing import (
    AlertRouter,
    EscalationPolicy,
    RouteRule,
    RoutingTable,
    severity_for,
)

__all__ = [
    "AlertBus",
    "AlertRouter",
    "AlertSink",
    "EscalationPolicy",
    "EwmaStat",
    "FleetFederation",
    "JsonlSpoolSink",
    "MemorySink",
    "OnlineExfilBaselines",
    "OnlineExfiltrationDetector",
    "OperatorControlPlane",
    "P2Quantile",
    "RouteRule",
    "RoutingTable",
    "WebhookSink",
    "online_detector_factory",
    "replay_spool",
    "severity_for",
]
